"""Tests for the sweep engine: execution, caching, determinism."""

import pytest

from repro.sweep import (
    ResultCache,
    RunnerError,
    SweepSpec,
    run_sweep,
)

#: A small app-family grid (4 points, ~1 s of simulated ECG each).
SMALL = SweepSpec(
    name="small",
    runner="app",
    axes=(
        ("app", ("3L-MF", "3L-MMD")),
        ("mode", ("single-core", "multi-core")),
    ),
    base=(("duration_s", 1.0),),
)


def test_run_sweep_executes_every_point(tmp_path):
    cache = ResultCache(root=tmp_path, fingerprint="f1")
    result = run_sweep(SMALL, cache=cache)
    assert result.n_points == 4
    assert result.cache_misses == 4 and result.cache_hits == 0
    assert result.cache_stores == 4  # every miss refilled the cache
    assert result.mode == "serial"
    for point in result.results:
        assert point.metrics["power_uw"] > 0
        assert point.simulated_s == 1.0
        assert not point.cached
    assert result.simulated_s == 4.0
    assert result.fingerprint == "f1"


def test_second_run_hits_cache_and_matches(tmp_path):
    cache = ResultCache(root=tmp_path, fingerprint="f1")
    cold = run_sweep(SMALL, cache=cache)
    warm = run_sweep(SMALL, cache=cache)
    assert warm.cache_hits == 4 and warm.cache_misses == 0
    assert warm.cache_stores == 0  # nothing executed, nothing stored
    assert all(point.cached for point in warm.results)
    for before, after in zip(cold.results, warm.results):
        assert before.point == after.point
        assert before.metrics == after.metrics


def test_fingerprint_change_forces_reexecution(tmp_path):
    run_sweep(SMALL, cache=ResultCache(root=tmp_path, fingerprint="f1"))
    changed = run_sweep(
        SMALL, cache=ResultCache(root=tmp_path, fingerprint="f2")
    )
    assert changed.cache_misses == 4 and changed.cache_hits == 0


def test_force_reexecutes_but_refreshes_cache(tmp_path):
    cache = ResultCache(root=tmp_path, fingerprint="f1")
    run_sweep(SMALL, cache=cache)
    forced = run_sweep(SMALL, cache=cache, force=True)
    assert forced.cache_misses == 4
    warm = run_sweep(SMALL, cache=cache)
    assert warm.cache_hits == 4


def test_parallel_matches_serial(tmp_path):
    serial = run_sweep(SMALL, use_cache=False)
    parallel = run_sweep(SMALL, use_cache=False, workers=2)
    assert parallel.mode == "parallel"
    assert parallel.workers == 2
    assert [p.point for p in parallel.results] == [
        p.point for p in serial.results
    ]
    for a, b in zip(serial.results, parallel.results):
        assert a.metrics == b.metrics


def test_incremental_sweep_only_runs_new_points(tmp_path):
    cache = ResultCache(root=tmp_path, fingerprint="f1")
    run_sweep(SMALL, cache=cache)
    grown = SweepSpec(
        name="small",
        runner="app",
        axes=(
            ("app", ("3L-MF", "3L-MMD", "RP-CLASS")),
            ("mode", ("single-core", "multi-core")),
        ),
        base=(("duration_s", 1.0),),
    )
    result = run_sweep(grown, cache=cache)
    assert result.cache_hits == 4
    assert result.cache_misses == 2


def test_no_cache_disables_reads_and_writes(tmp_path):
    cache = ResultCache(root=tmp_path, fingerprint="f1")
    run_sweep(SMALL, cache=cache, use_cache=False)
    assert len(cache) == 0


def test_unknown_runner_and_bad_workers_raise():
    bad = SweepSpec(name="x", runner="nope")
    with pytest.raises(RunnerError):
        run_sweep(bad, use_cache=False)
    with pytest.raises(ValueError):
        run_sweep(SMALL, workers=0, use_cache=False)


def test_fleet_and_platform_and_ablation_points(tmp_path):
    fleet = SweepSpec(
        name="f",
        runner="fleet",
        axes=(("protocol", ("none", "ftsp")),),
        base=(
            ("scenario", "dense-ward"),
            ("nodes", 2),
            ("duration_s", 2.0),
            ("seed", 7),
        ),
    )
    result = run_sweep(fleet, use_cache=False)
    assert result.n_points == 2
    for point in result.results:
        assert point.metrics["n_nodes"] == 2
        assert point.metrics["simulated_s"] == 4.0

    platform = SweepSpec(
        name="p",
        runner="platform",
        axes=(("cores", (1, 2)),),
        base=(("cycles", 2000),),
    )
    result = run_sweep(platform, use_cache=False)
    assert [p.metrics["cycles"] for p in result.results] == [2000, 2000]

    ablation = SweepSpec(
        name="a",
        runner="ablation",
        axes=(("ablation", ("broadcast",)),),
        base=(("duration_s", 1.0),),
    )
    result = run_sweep(ablation, use_cache=False)
    assert result.results[0].metrics["penalty"] > 0
