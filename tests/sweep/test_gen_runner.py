"""Generated-app axes through the cached sweep engine."""

import pytest

from repro.sweep import (
    ResultCache,
    RunnerError,
    SPECS,
    SweepSpec,
    expand,
    generated_app_axis,
    get_runner,
    run_sweep,
)

#: A tiny generated-app campaign: 2 apps x 2 policies.
TINY = SweepSpec(
    name="gen-tiny",
    runner="gen",
    axes=(
        generated_app_axis(seed=17, count=2),
        ("policy", ("paper", "balanced")),
    ),
    base=(("duration_s", 1.0), ("num_cores", 8)),
)


def test_generated_app_axis_is_json_scalar_tokens():
    axis, values = generated_app_axis(seed=17, count=3)
    assert axis == "gen_app"
    assert values == ("pipeline:17:0", "fork-join:17:1", "fan-in:17:2")
    assert all(isinstance(value, str) for value in values)


def test_gen_sweep_executes_and_caches(tmp_path):
    cache = ResultCache(root=tmp_path, fingerprint="f1")
    cold = run_sweep(TINY, cache=cache)
    assert cold.n_points == 4
    assert cold.cache_misses == 4
    for point in cold.results:
        assert point.metrics["status"] in ("ok", "repaired", "rejected")
        if point.metrics["status"] != "rejected":
            assert point.metrics["power_uw"] > 0
            assert point.metrics["simulated_s"] == 1.0
    warm = run_sweep(TINY, cache=cache)
    assert warm.cache_hits == 4 and warm.cache_misses == 0
    for before, after in zip(cold.results, warm.results):
        assert before.metrics == after.metrics


def test_gen_sweep_parallel_matches_serial():
    serial = run_sweep(TINY, use_cache=False)
    parallel = run_sweep(TINY, use_cache=False, workers=2)
    for a, b in zip(serial.results, parallel.results):
        assert a.metrics == b.metrics


def test_gen_runner_rejects_bad_tokens_and_policies():
    runner = get_runner("gen")
    with pytest.raises(RunnerError):
        runner({"gen_app": "nope:1:2"})
    with pytest.raises(RunnerError):
        runner({"gen_app": "pipeline:1:0", "policy": "nope"})


def test_builtin_gen_spec_is_registered():
    spec = SPECS["gen"]
    assert spec.runner == "gen"
    assert spec.axis_names == ("gen_app", "policy")
    points = expand(spec)
    assert len(points) == 18  # 6 generated apps x 3 policies
