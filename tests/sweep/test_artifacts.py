"""Tests for BENCH artifacts, CSV output and the regression gate."""

import csv
import json
import sys
from pathlib import Path

from repro.sweep import (
    BENCH_SCHEMA,
    ResultCache,
    SweepSpec,
    bench_payload,
    merge_bench,
    percentile_axes,
    run_bench,
    run_sweep,
    sweep_rows,
    write_bench_json,
    write_csv,
)

sys.path.insert(0, str(Path(__file__).resolve().parents[2]
                       / "benchmarks"))
from check_regression import check, update_baseline  # noqa: E402

TINY = SweepSpec(
    name="tiny",
    runner="app",
    axes=(("mode", ("single-core", "multi-core")),),
    base=(("app", "3L-MF"), ("duration_s", 1.0)),
)


def _result():
    return run_sweep(TINY, use_cache=False)


def test_bench_payload_schema_fields():
    payload = bench_payload(_result())
    assert payload["schema"] == BENCH_SCHEMA
    assert payload["name"] == "tiny"
    assert payload["points"] == 2
    assert payload["cache"] == {
        "hits": 0, "misses": 2, "stores": 0, "fingerprint": "",
    }
    assert payload["simulated_s"] == 2.0
    assert payload["sim_s_per_s"] > 0
    assert len(payload["results"]) == 2
    assert payload["spec"]["axes"] == {
        "mode": ["single-core", "multi-core"],
    }
    # the document must be JSON-serialisable as-is
    json.dumps(payload)


def test_bench_payload_percentile_axes():
    """Per-campaign aggregate blocks cover the headline metrics."""
    result = _result()
    payload = bench_payload(result)
    axes = payload["aggregates"]
    assert axes == percentile_axes(result)
    assert "power_uw" in axes and "clock_mhz" in axes
    block = axes["power_uw"]
    assert set(block) == {"count", "min", "p50", "p90", "max", "mean"}
    assert block["count"] == 2
    assert block["min"] <= block["p50"] <= block["p90"] <= block["max"]
    values = sorted(point.metrics["power_uw"]
                    for point in result.results)
    assert block["min"] == values[0] and block["max"] == values[-1]
    # non-numeric headline metrics (e.g. gen's `status`) are skipped
    json.dumps(axes)


def test_percentile_axes_skip_absent_and_non_numeric_metrics():
    from repro.sweep.engine import PointResult, SweepResult

    spec = SweepSpec(name="t", runner="gen",
                     axes=(("policy", ("paper",)),))
    results = (
        PointResult(index=0, point={"policy": "paper"}, key="k0",
                    metrics={"status": "ok", "power_uw": 10.0},
                    wall_s=0.1, cached=False),
        PointResult(index=1, point={"policy": "paper"}, key="k1",
                    metrics={"status": "rejected"},
                    wall_s=0.1, cached=False),
    )
    result = SweepResult(
        spec=spec, results=results, elapsed_s=0.2, cache_hits=0,
        cache_misses=2, workers=1, shards=1, mode="serial",
        fingerprint="")
    axes = percentile_axes(result)
    assert "status" not in axes  # strings never aggregate
    assert axes["power_uw"]["count"] == 1  # absent values skipped


def test_write_bench_json(tmp_path):
    path = write_bench_json(_result(), tmp_path / "BENCH_tiny.json")
    loaded = json.loads(path.read_text())
    assert loaded["schema"] == BENCH_SCHEMA
    assert loaded["results"][0]["cached"] is False


def test_sweep_rows_and_csv(tmp_path):
    result = _result()
    header, rows = sweep_rows(result)
    assert header[:3] == ["app", "duration_s", "mode"]
    assert "power_uw" in header
    assert header[-3:] == ["wall_s", "sim_s_per_s", "cached"]
    assert len(rows) == 2
    path = write_csv(result, tmp_path / "tiny.csv")
    with path.open() as handle:
        parsed = list(csv.reader(handle))
    assert parsed[0] == header
    assert len(parsed) == 3


def test_merge_bench_sums_totals():
    a = bench_payload(_result())
    b = bench_payload(_result())
    merged = merge_bench({"a": a, "b": b})
    assert merged["points"] == 4
    assert merged["cache"]["misses"] == 4
    assert merged["simulated_s"] == 4.0
    assert set(merged["benches"]) == {"a", "b"}


def test_run_bench_writes_named_artifact(tmp_path):
    cache = ResultCache(root=tmp_path / "cache", fingerprint="f1")
    payload, path = run_bench("table1", out_dir=tmp_path, cache=cache)
    assert path == tmp_path / "BENCH_table1.json"
    assert path.exists()
    assert payload["points"] == 6
    # second emission is served from the cache
    warm, _ = run_bench("table1", out_dir=tmp_path, cache=cache)
    assert warm["cache"]["hits"] == 6


def test_regression_gate_passes_and_fails():
    merged = merge_bench({"tiny": bench_payload(_result())})
    baseline = update_baseline(merged)
    floor = baseline["sim_s_per_s"]["tiny"]
    assert floor > 0
    assert check(merged, baseline) == []
    # a 10x faster floor must trip the gate
    tight = {"sim_s_per_s": {"tiny": floor * 1000.0}}
    failures = check(merged, tight)
    assert failures and "tiny" in failures[0]
    # missing bench is reported
    assert check({"benches": {}}, baseline)
    # warm measurements are rejected: sim_s_per_s would be meaningless
    warm = bench_payload(_result())
    warm["cache"]["hits"] = 2
    failures = check(merge_bench({"tiny": warm}), baseline)
    assert failures and "cache hit" in failures[0]
