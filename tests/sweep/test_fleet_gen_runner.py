"""Tests for the heterogeneous-fleet run family (``fleet-gen``)."""

import pytest

from repro.sweep import SPECS, BENCH_SPECS, expand, run_sweep
from repro.sweep.runners import (
    HEADLINE_METRICS,
    RunnerError,
    run_fleet_gen_point,
)

_POINT = {
    "scenario": "dense-ward",
    "suite_seed": 5,
    "suite_count": 4,
    "policy": "balanced",
    "nodes": 4,
    "duration_s": 2.0,
    "seed": 11,
}


def test_fleet_gen_point_reports_heterogeneity_metrics():
    metrics = run_fleet_gen_point(dict(_POINT))
    assert metrics["n_nodes"] == 4
    assert metrics["simulated_s"] == 8.0
    assert metrics["scenario_token"] == "gen:dense-ward:5:4:balanced"
    assert metrics["distinct_families"] >= 1
    assert metrics["mean_floor_mhz"] > 0.0
    assert metrics["repairs"] >= 0
    assert metrics["mean_power_uw"] > 0.0


def test_fleet_gen_point_is_deterministic():
    assert run_fleet_gen_point(dict(_POINT)) == \
        run_fleet_gen_point(dict(_POINT))


def test_fleet_gen_point_derives_seed_from_identity():
    """Points without an explicit seed still reproduce."""
    point = {key: value for key, value in _POINT.items()
             if key != "seed"}
    a = run_fleet_gen_point(dict(point))
    b = run_fleet_gen_point(dict(point))
    assert a == b
    assert a["seed"] != _POINT["seed"]  # derived, not inherited


def test_fleet_gen_point_families_token_narrows_suite():
    point = dict(_POINT, families="pipeline+fork-join")
    metrics = run_fleet_gen_point(point)
    assert metrics["distinct_families"] <= 2


def test_fleet_gen_point_rejects_bad_parameters():
    with pytest.raises(RunnerError):
        run_fleet_gen_point(dict(_POINT, scenario="mars-rover"))
    with pytest.raises(RunnerError):
        run_fleet_gen_point(dict(_POINT, policy="nonsense"))


def test_fleet_gen_campaign_is_registered_and_runs():
    assert "fleet-gen" in SPECS and "fleet-gen" in BENCH_SPECS
    assert HEADLINE_METRICS["fleet-gen"]
    spec = SPECS["fleet-gen"]
    assert len(expand(spec)) == 9  # 3 policies x 3 protocols
    result = run_sweep(spec, use_cache=False)
    assert result.n_points == 9
    none_rows = [point for point in result.results
                 if point.point["protocol"] == "none"]
    synced_rows = [point for point in result.results
                   if point.point["protocol"] != "none"]
    assert all(row.metrics["improvement"] == 1.0 for row in none_rows)
    assert all(row.metrics["improvement"] > 1.0 for row in synced_rows)
