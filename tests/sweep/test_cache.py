"""Tests for the content-addressed result cache."""

import json

from repro.sweep import ResultCache, code_fingerprint
from repro.sweep.cache import CACHE_ENV, default_cache_dir


def test_miss_then_put_then_hit(tmp_path):
    cache = ResultCache(root=tmp_path, fingerprint="f1")
    point = {"app": "3L-MF", "duration_s": 1.0}
    assert cache.get("app", point) is None
    cache.put("app", point, {"power_uw": 31.0}, wall_s=0.5)
    entry = cache.get("app", point)
    assert entry is not None
    assert entry["metrics"] == {"power_uw": 31.0}
    assert entry["wall_s"] == 0.5
    assert len(cache) == 1


def test_different_point_is_a_miss(tmp_path):
    cache = ResultCache(root=tmp_path, fingerprint="f1")
    cache.put("app", {"a": 1}, {"m": 1.0}, wall_s=0.0)
    assert cache.get("app", {"a": 2}) is None
    assert cache.get("fleet", {"a": 1}) is None


def test_fingerprint_change_invalidates(tmp_path):
    old = ResultCache(root=tmp_path, fingerprint="old-code")
    old.put("app", {"a": 1}, {"m": 1.0}, wall_s=0.0)
    new = ResultCache(root=tmp_path, fingerprint="new-code")
    assert new.get("app", {"a": 1}) is None
    # the old namespace is untouched until pruned
    assert old.get("app", {"a": 1}) is not None
    assert new.prune() == 1
    assert old.get("app", {"a": 1}) is None


def test_corrupt_entry_counts_as_miss(tmp_path):
    cache = ResultCache(root=tmp_path, fingerprint="f1")
    point = {"a": 1}
    entry = cache.put("app", point, {"m": 1.0}, wall_s=0.0)
    path = cache._path(entry["key"])
    path.write_text("{not json", encoding="utf-8")
    assert cache.get("app", point) is None
    path.write_text(json.dumps({"schema": "other/9"}), encoding="utf-8")
    assert cache.get("app", point) is None
    # right schema but no metrics payload: also a miss, never a crash
    path.write_text(
        json.dumps({"schema": "repro-sweep-entry/1"}), encoding="utf-8"
    )
    assert cache.get("app", point) is None


def test_code_fingerprint_tracks_source_changes(tmp_path):
    (tmp_path / "mod.py").write_text("X = 1\n")
    first = code_fingerprint(tmp_path)
    assert first == code_fingerprint(tmp_path)
    (tmp_path / "mod.py").write_text("X = 2\n")
    assert code_fingerprint(tmp_path) != first


def test_default_cache_dir_honours_env(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_ENV, str(tmp_path / "custom"))
    assert default_cache_dir() == tmp_path / "custom"
    monkeypatch.delenv(CACHE_ENV)
    assert default_cache_dir().name == "repro-sweep"
