"""Tests for sweep specs: expansion, dedup, canonical identity."""

import pytest

from repro.sweep import (
    SpecError,
    SweepSpec,
    canonical_point,
    expand,
    point_key,
    spec_from_mapping,
    stable_seed,
)


def _grid(**axes):
    return SweepSpec(
        name="t",
        runner="app",
        axes=tuple((k, tuple(v)) for k, v in axes.items()),
    )


def test_expand_cartesian_product_order():
    spec = _grid(a=(1, 2), b=("x", "y", "z"))
    points = expand(spec)
    assert len(points) == 6
    # last axis varies fastest
    assert points[0] == {"a": 1, "b": "x"}
    assert points[1] == {"a": 1, "b": "y"}
    assert points[3] == {"a": 2, "b": "x"}


def test_expand_overlays_base():
    spec = SweepSpec(
        name="t",
        runner="app",
        axes=(("a", (1, 2)),),
        base=(("fixed", "v"), ("a", 99)),
    )
    points = expand(spec)
    # the axis overrides the base value of the same name
    assert points == [{"fixed": "v", "a": 1}, {"fixed": "v", "a": 2}]


def test_expand_dedups_identical_points():
    # both axes collapse onto the same parameter values
    spec = SweepSpec(
        name="t",
        runner="app",
        axes=(("a", (1, 1, 2)), ("b", ("x", "x"))),
    )
    points = expand(spec)
    assert points == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]


def test_expand_no_axes_is_single_base_point():
    spec = SweepSpec(name="t", runner="app", base=(("a", 1),))
    assert expand(spec) == [{"a": 1}]


def test_n_points_is_grid_size_before_dedup():
    assert _grid(a=(1, 2), b=(3, 4, 5)).n_points() == 6


def test_spec_rejects_empty_axis_and_duplicates():
    with pytest.raises(SpecError):
        _grid(a=())
    with pytest.raises(SpecError):
        SweepSpec(name="t", runner="app",
                  axes=(("a", (1,)), ("a", (2,))))
    with pytest.raises(SpecError):
        SweepSpec(name="", runner="app")
    with pytest.raises(SpecError):
        _grid(a=([1],))  # non-scalar value


def test_spec_from_mapping_roundtrip():
    spec = spec_from_mapping({
        "name": "demo",
        "runner": "app",
        "description": "d",
        "base": {"duration_s": 5.0},
        "axes": {"app": ["3L-MF"], "mode": ["single-core"]},
    })
    assert spec.axis_names == ("app", "mode")
    assert dict(spec.base) == {"duration_s": 5.0}
    assert spec.as_dict()["axes"] == {
        "app": ["3L-MF"], "mode": ["single-core"],
    }


def test_spec_from_mapping_rejects_bad_shapes():
    with pytest.raises(SpecError):
        spec_from_mapping({"runner": "app"})
    with pytest.raises(SpecError):
        spec_from_mapping({"name": "x", "runner": "app", "axes": []})
    with pytest.raises(SpecError):
        spec_from_mapping([1, 2])


def test_spec_from_mapping_rejects_scalar_axis():
    # a bare string would otherwise sweep one point per character
    with pytest.raises(SpecError, match="list of values"):
        spec_from_mapping({
            "name": "x",
            "runner": "app",
            "axes": {"mode": "multi-core"},
        })


def test_point_key_is_order_insensitive_and_stable():
    key_a = point_key("app", {"a": 1, "b": 2})
    key_b = point_key("app", {"b": 2, "a": 1})
    assert key_a == key_b
    assert point_key("app", {"a": 1, "b": 3}) != key_a
    assert point_key("fleet", {"a": 1, "b": 2}) != key_a


def test_stable_seed_deterministic_and_distinct():
    seed = stable_seed("fleet", {"scenario": "dense-ward"})
    assert seed == stable_seed("fleet", {"scenario": "dense-ward"})
    assert seed != stable_seed("fleet", {"scenario": "other"})
    assert seed >= 0


def test_canonical_point_mentions_runner_and_schema():
    text = canonical_point("app", {"a": 1})
    assert '"app"' in text and "repro-sweep-point" in text
