"""The search-fast (two-tier) run family through the sweep engine."""

import pytest

from repro.sweep import (
    ResultCache,
    RunnerError,
    SPECS,
    SweepSpec,
    expand,
    generated_app_axis,
    get_runner,
    run_sweep,
)

#: A tiny two-tier campaign: 2 apps x 2 algorithms, small budgets.
TINY = SweepSpec(
    name="search-fast-tiny",
    runner="search-fast",
    axes=(
        generated_app_axis(seed=23, count=2),
        ("algorithm", ("greedy", "anneal")),
    ),
    base=(
        ("screen_budget", 10),
        ("top_k", 2),
        ("duration_s", 1.0),
        ("num_cores", 8),
        ("seed", 23),
    ),
)


def test_search_fast_sweep_executes_and_caches(tmp_path):
    cache = ResultCache(root=tmp_path, fingerprint="f1")
    cold = run_sweep(TINY, cache=cache)
    assert cold.n_points == 4
    assert cold.cache_misses == 4
    for point in cold.results:
        assert point.metrics["status"] in ("ok", "repaired", "rejected")
        if point.metrics["status"] != "rejected":
            assert point.metrics["gap"] >= 0.0
            assert point.metrics["top_k"] == 2
            assert point.metrics["screened"] > 0
            # The fast family's whole point: exact simulations stay
            # bounded by the verify set, not the walk length.
            assert point.metrics["evaluations"] <= 2 + 2
            assert point.metrics["simulated_s"] == \
                point.metrics["evaluations"] * 1.0
    warm = run_sweep(TINY, cache=cache)
    assert warm.cache_hits == 4 and warm.cache_misses == 0
    for before, after in zip(cold.results, warm.results):
        assert before.metrics == after.metrics


def test_search_fast_parallel_matches_serial():
    serial = run_sweep(TINY, use_cache=False)
    parallel = run_sweep(TINY, use_cache=False, workers=2)
    for a, b in zip(serial.results, parallel.results):
        assert a.metrics == b.metrics


def test_search_fast_matches_exact_runner_best():
    """Same point, same seed: the two families agree on the best."""
    point = {"gen_app": "pipeline:23:0", "algorithm": "greedy",
             "iterations": 10, "duration_s": 1.0, "seed": 23}
    exact = get_runner("search")(dict(point))
    fast_point = {"gen_app": "pipeline:23:0", "algorithm": "greedy",
                  "screen_budget": 10, "top_k": 4, "duration_s": 1.0,
                  "seed": 23}
    fast = get_runner("search-fast")(fast_point)
    assert fast["best_cost"] == pytest.approx(exact["best_cost"])
    assert fast["evaluations"] < exact["evaluations"]


def test_search_fast_runner_derives_stable_seed_when_omitted():
    runner = get_runner("search-fast")
    point = {"gen_app": "pipeline:23:0", "algorithm": "greedy",
             "screen_budget": 6, "top_k": 2, "duration_s": 1.0}
    first = runner(dict(point))
    second = runner(dict(point))
    assert first == second
    assert first["seed"] == second["seed"]


def test_search_fast_runner_rejects_bad_parameters():
    runner = get_runner("search-fast")
    with pytest.raises(RunnerError):
        runner({"gen_app": "nope:1:2"})
    with pytest.raises(RunnerError):
        runner({"gen_app": "pipeline:1:0", "algorithm": "nope"})
    with pytest.raises(RunnerError):
        runner({"gen_app": "pipeline:1:0", "top_k": 0})
    with pytest.raises(RunnerError):
        runner({"gen_app": "pipeline:1:0", "top_k": 5,
                "screen_budget": 4})


def test_builtin_search_fast_spec_is_registered():
    spec = SPECS["search-fast"]
    assert spec.runner == "search-fast"
    assert spec.axis_names == ("gen_app", "algorithm")
    points = expand(spec)
    assert len(points) == 8  # 4 generated apps x 2 algorithms
