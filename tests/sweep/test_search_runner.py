"""The search run family through the cached sweep engine."""

import pytest

from repro.sweep import (
    ResultCache,
    RunnerError,
    SPECS,
    SweepSpec,
    expand,
    generated_app_axis,
    get_runner,
    run_sweep,
)

#: A tiny search campaign: 2 apps x 2 algorithms, small budgets.
TINY = SweepSpec(
    name="search-tiny",
    runner="search",
    axes=(
        generated_app_axis(seed=23, count=2),
        ("algorithm", ("greedy", "anneal")),
    ),
    base=(
        ("iterations", 6),
        ("duration_s", 1.0),
        ("num_cores", 8),
        ("seed", 23),
    ),
)


def test_search_sweep_executes_and_caches(tmp_path):
    cache = ResultCache(root=tmp_path, fingerprint="f1")
    cold = run_sweep(TINY, cache=cache)
    assert cold.n_points == 4
    assert cold.cache_misses == 4
    for point in cold.results:
        assert point.metrics["status"] in ("ok", "repaired", "rejected")
        if point.metrics["status"] != "rejected":
            assert point.metrics["gap"] >= 0.0
            assert point.metrics["best_cost"] <= \
                point.metrics["start_cost"] + 1e-9
            assert point.metrics["simulated_s"] == \
                point.metrics["evaluations"] * 1.0
    warm = run_sweep(TINY, cache=cache)
    assert warm.cache_hits == 4 and warm.cache_misses == 0
    for before, after in zip(cold.results, warm.results):
        assert before.metrics == after.metrics


def test_search_sweep_parallel_matches_serial():
    serial = run_sweep(TINY, use_cache=False)
    parallel = run_sweep(TINY, use_cache=False, workers=2)
    for a, b in zip(serial.results, parallel.results):
        assert a.metrics == b.metrics


def test_search_runner_derives_stable_seed_when_omitted():
    runner = get_runner("search")
    point = {"gen_app": "pipeline:23:0", "algorithm": "greedy",
             "iterations": 4, "duration_s": 1.0}
    first = runner(dict(point))
    second = runner(dict(point))
    assert first == second
    assert first["seed"] == second["seed"]


def test_search_runner_rejects_bad_parameters():
    runner = get_runner("search")
    with pytest.raises(RunnerError):
        runner({"gen_app": "nope:1:2"})
    with pytest.raises(RunnerError):
        runner({"gen_app": "pipeline:1:0", "algorithm": "nope"})
    with pytest.raises(RunnerError):
        runner({"gen_app": "pipeline:1:0", "cost": "nope"})


def test_builtin_search_spec_is_registered():
    spec = SPECS["search"]
    assert spec.runner == "search"
    assert spec.axis_names == ("gen_app", "algorithm")
    points = expand(spec)
    assert len(points) == 8  # 4 generated apps x 2 algorithms
