"""Tests for banked memories and power gating."""

import pytest

from repro.hw.memory import BankedMemory, MemoryBank, MemoryFault


def test_bank_read_write_and_counters():
    bank = MemoryBank(words=16, word_mask=0xFFFF)
    bank.write(3, 0x1234)
    assert bank.read(3) == 0x1234
    assert bank.reads == 1
    assert bank.writes == 1
    assert bank.accesses == 2


def test_bank_masks_stored_words():
    bank = MemoryBank(words=4, word_mask=0xFFFF)
    bank.write(0, 0x1_0001)
    assert bank.read(0) == 0x0001


def test_powered_off_bank_faults():
    bank = MemoryBank(words=4, word_mask=0xFFFF)
    bank.power_off()
    with pytest.raises(MemoryFault, match="powered off"):
        bank.read(0)
    with pytest.raises(MemoryFault, match="powered off"):
        bank.write(0, 1)
    bank.power_on()
    bank.write(0, 1)  # works again


def test_out_of_range_faults():
    bank = MemoryBank(words=4, word_mask=0xFFFF)
    with pytest.raises(MemoryFault, match="out of range"):
        bank.read(4)


def test_peek_poke_do_not_count():
    bank = MemoryBank(words=4, word_mask=0xFFFF)
    bank.poke(1, 7)
    assert bank.peek(1) == 7
    assert bank.accesses == 0


def test_poke_requires_power():
    bank = MemoryBank(words=4, word_mask=0xFFFF)
    bank.power_off()
    with pytest.raises(MemoryFault):
        bank.poke(0, 1)


def test_banked_memory_power_off_unused():
    memory = BankedMemory(banks=8, words_per_bank=4, word_mask=0xFFFF)
    memory.power_off_unused({0, 3})
    assert memory.powered_banks == 2
    assert memory.bank(0).powered
    assert not memory.bank(1).powered
    memory.power_off_unused({1})
    assert memory.bank(1).powered
    assert not memory.bank(0).powered


def test_banked_memory_activity_snapshot():
    memory = BankedMemory(banks=2, words_per_bank=4, word_mask=0xFFFF)
    memory.write(0, 1, 5)
    memory.read(0, 1)
    memory.read(1, 0)
    activity = memory.activity()
    assert activity.reads == 2
    assert activity.writes == 1
    assert activity.accesses == 3
    assert activity.per_bank_accesses == (2, 1)
    assert activity.powered_banks == 2


def test_reset_counters_keeps_power_state():
    memory = BankedMemory(banks=2, words_per_bank=4, word_mask=0xFFFF)
    memory.read(0, 0)
    memory.power_off_unused({0})
    memory.reset_counters()
    assert memory.activity().accesses == 0
    assert memory.powered_banks == 1
