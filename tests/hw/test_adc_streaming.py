"""End-to-end streaming: ECG samples through the ADC into sync'd cores.

Exercises the full Fig. 2 stack together: the synthetic ECG feeds the
three-channel ADC; three cores (one per lead, sharing one code section)
subscribe to their data-ready interrupt lines, SLEEP between samples,
and accumulate a running maximum in their private memories; results
land in shared memory.  Everything — interrupt forwarding, clock
gating, the ATU private/shared split, broadcast on the common code —
must cooperate for the checksums to match numpy.
"""

import numpy as np

from repro.hw.system import System
from repro.isa import assemble
from repro.isa.layout import (
    REG_ADC_DATA0,
    REG_CORE_ID,
    REG_INT_SUBSCRIBE,
)
from repro.signals import cse_like_record

SAMPLES = 40


def _streaming_source() -> str:
    return f"""
    .equ RESULT, 0x900
    .equ NSAMP, {SAMPLES}
    .entry 0, main
    .entry 1, main
    .entry 2, main

main:
    li   r5, {REG_CORE_ID}
    lw   r6, 0(r5)           ; my lead index
    addi r1, zero, 1
    sll  r1, r1, r6          ; subscription mask = 1 << id
    li   r5, {REG_INT_SUBSCRIBE}
    sw   r1, 0(r5)
    li   r3, NSAMP           ; samples to consume
    addi r2, zero, 0         ; running maximum (unsigned)
wait:
    sleep                    ; gate until my channel raises data-ready
    li   r5, {REG_ADC_DATA0}
    add  r5, r5, r6          ; my channel's data register
    lw   r4, 0(r5)
    bgeu r2, r4, not_bigger  ; data-dependent branch
    mv   r2, r4
not_bigger:
    addi r3, r3, -1
    bnez r3, wait
    li   r5, RESULT
    add  r5, r5, r6
    sw   r2, 0(r5)
    halt
"""


def test_three_leads_streamed_through_adc():
    record = cse_like_record(duration_s=2.0, num_leads=3)
    streams = [np.abs(lead[:SAMPLES]).astype(int).tolist()
               for lead in record.leads]

    system = System.multicore(num_cores=8)
    system.load(assemble(_streaming_source()))
    # Sample period chosen so the cores easily keep up (no overruns).
    system.attach_adc(streams, period_cycles=120)
    system.run(120 * (SAMPLES + 4))

    assert system.all_halted
    assert system.adc.total_overruns == 0
    for lead_index, stream in enumerate(streams):
        assert system.dm_peek(0x900 + lead_index) == max(stream)


def test_cores_sleep_between_samples():
    record = cse_like_record(duration_s=2.0, num_leads=3)
    streams = [np.abs(lead[:SAMPLES]).astype(int).tolist()
               for lead in record.leads]
    system = System.multicore(num_cores=8)
    system.load(assemble(_streaming_source()))
    system.attach_adc(streams, period_cycles=150)
    system.run(150 * (SAMPLES + 4))
    assert system.all_halted
    for core in system.cores[:3]:
        # Gated for most of the run: the inner loop costs ~10 cycles
        # out of every 150-cycle sample period.
        assert core.stats.gated_cycles > 0.8 * core.stats.active_cycles


def test_identical_consumers_broadcast_fetches():
    """The three lead handlers share code: fetches merge while aligned."""
    record = cse_like_record(duration_s=2.0, num_leads=3)
    streams = [np.abs(lead[:SAMPLES]).astype(int).tolist()
               for lead in record.leads]
    system = System.multicore(num_cores=8)
    system.load(assemble(_streaming_source()))
    system.attach_adc(streams, period_cycles=120)
    system.run(120 * (SAMPLES + 4))
    activity = system.activity()
    # All three wake on the same cycle (simultaneous sampling) and run
    # the same handler; data-dependent branches cost some alignment.
    assert activity.im_broadcast_fraction > 0.3
