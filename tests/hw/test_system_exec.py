"""Integration tests: assembled programs running on the platform."""

import pytest

from repro.hw.system import SimulationError, System
from repro.isa import assemble
from repro.isa.layout import REG_ADC_DATA0, REG_CORE_ID, REG_INT_SUBSCRIBE


def _run_single(source, max_cycles=5000, dm_banks_on=None, adc=None,
                adc_period=None):
    system = System.singlecore()
    image = assemble(source)
    system.load(image, dm_banks_on=dm_banks_on)
    if adc is not None:
        system.attach_adc(adc, adc_period)
    system.run(max_cycles)
    assert system.all_halted, "program did not halt"
    return system


def test_arithmetic_program():
    system = _run_single("""
        .equ RESULT, 0x900
        .dmfootprint RESULT
        main:
            addi r1, zero, 21
            slli r2, r1, 1        ; 42
            li   r5, RESULT
            sw   r2, 0(r5)
            halt
    """)
    assert system.dm_peek(0x900) == 42


def test_loop_sums_one_to_ten():
    system = _run_single("""
        .equ RESULT, 0x900
        .dmfootprint RESULT
        main:
            addi r1, zero, 10
            addi r2, zero, 0
        loop:
            add  r2, r2, r1
            addi r1, r1, -1
            bnez r1, loop
            li   r5, RESULT
            sw   r2, 0(r5)
            halt
    """)
    assert system.dm_peek(0x900) == 55


def test_multiply_and_signed_ops():
    system = _run_single("""
        .equ RESULT, 0x900
        .dmfootprint RESULT
        main:
            addi r1, zero, -6
            addi r2, zero, 7
            mul  r3, r1, r2       ; -42
            neg  r3, r3           ; 42
            li   r5, RESULT
            sw   r3, 0(r5)
            halt
    """)
    assert system.dm_peek(0x900) == 42


def test_function_call_and_return():
    system = _run_single("""
        .equ RESULT, 0x900
        .dmfootprint RESULT
        main:
            addi r1, zero, 5
            call double
            li   r5, RESULT
            sw   r1, 0(r5)
            halt
        double:
            add  r1, r1, r1
            ret
    """)
    assert system.dm_peek(0x900) == 10


def test_memory_round_trip_through_dm():
    system = _run_single("""
        .equ BUF, 0x920
        .dmfootprint BUF + 2
        main:
            li   r5, BUF
            addi r1, zero, 0x5A
            sw   r1, 0(r5)
            lw   r2, 0(r5)
            addi r2, r2, 1
            sw   r2, 1(r5)
            halt
    """)
    assert system.dm_peek(0x920) == 0x5A
    assert system.dm_peek(0x921) == 0x5B


def test_dm_init_is_visible_to_program():
    system = _run_single("""
        .equ TABLE, 0x930
        .dm TABLE, 11, 22
        main:
            li  r5, TABLE
            lw  r1, 0(r5)
            lw  r2, 1(r5)
            add r3, r1, r2
            sw  r3, 2(r5)
            halt
    """)
    assert system.dm_peek(0x932) == 33


def test_core_id_register():
    system = _run_single(f"""
        .equ RESULT, 0x900
        .dmfootprint RESULT
        main:
            li  r5, {REG_CORE_ID}
            lw  r1, 0(r5)
            li  r6, RESULT
            sw  r1, 0(r6)
            halt
    """)
    assert system.dm_peek(0x900) == 0


def test_single_core_powers_off_unused_dm_banks():
    system = _run_single("""
        main: halt
    """)
    # Footprint is tiny -> only bank 0 stays on.
    assert system.dm.powered_banks == 1
    # IM: one bank used.
    assert system.im.powered_banks == 1


def test_adc_driven_consumer():
    source = f"""
        .equ RESULT, 0x900
        .dmfootprint RESULT
        main:
            addi r1, zero, 1          ; subscribe to ADC channel 0
            li   r5, {REG_INT_SUBSCRIBE}
            sw   r1, 0(r5)
            addi r2, zero, 3          ; samples to consume
            addi r3, zero, 0          ; accumulator
        wait:
            sleep
            li   r6, {REG_ADC_DATA0}
            lw   r4, 0(r6)
            add  r3, r3, r4
            addi r2, r2, -1
            bnez r2, wait
            li   r6, RESULT
            sw   r3, 0(r6)
            halt
    """
    system = _run_single(source, max_cycles=2000,
                         adc=[[5, 6, 7]], adc_period=50)
    assert system.dm_peek(0x900) == 18
    assert system.adc.total_overruns == 0
    # The core actually slept between samples.
    assert system.cores[0].stats.gated_cycles > 50


def test_fetch_from_uninitialised_im_raises():
    system = System.singlecore()
    image = assemble("main: nop")  # falls off the end
    image.im.pop(max(image.im))    # remove the only instruction? keep nop
    system.load(assemble("main: nop\n nop"))
    # nop twice then runs into uninitialised IM
    with pytest.raises(SimulationError, match="uninitialised IM"):
        system.run(10)


# ---------------------------------------------------------------------------
# Multi-core behaviour
# ---------------------------------------------------------------------------

_LOCKSTEP_TWIN = """
    .equ RESULT, 0x900
    .entry 0, main
    .entry 1, main
    main:
        li   r7, {REG_CORE_ID}
        lw   r6, 0(r7)            ; r6 = core id
        addi r1, zero, 20
        addi r2, zero, 0
    loop:
        add  r2, r2, r1
        addi r1, r1, -1
        bnez r1, loop
        li   r5, RESULT
        add  r5, r5, r6           ; distinct result slots
        sw   r2, 0(r5)
        halt
"""


def test_two_cores_in_lockstep_broadcast_fetches():
    system = System.multicore(num_cores=8)
    source = _LOCKSTEP_TWIN.replace("{REG_CORE_ID}", str(REG_CORE_ID))
    system.load(assemble(source))
    system.run(10_000)
    assert system.all_halted
    assert system.dm_peek(0x900) == 210
    assert system.dm_peek(0x901) == 210
    activity = system.activity()
    # Both cores execute identical code in lock-step: nearly half of all
    # fetch grants are served by broadcast.
    assert activity.im_broadcast_fraction > 0.45


def test_broadcast_disabled_halves_nothing():
    system = System.multicore(num_cores=8, broadcast=False)
    source = _LOCKSTEP_TWIN.replace("{REG_CORE_ID}", str(REG_CORE_ID))
    system.load(assemble(source))
    system.run(10_000)
    assert system.all_halted
    activity = system.activity()
    assert activity.im_broadcast_fraction == 0.0
    # Without merging, same-address fetches serialise -> conflicts.
    assert activity.im_xbar.conflicts > 0


def test_producer_consumer_through_sync_instructions():
    source = """
        .equ DATA, 0x900
        .equ SP, 0
        .entry 0, producer
        .entry 1, consumer

        .section prod, bank=0
        producer:
            sinc SP                 ; register as producer
            addi r1, zero, 30       ; ... compute ...
            addi r1, r1, 12
            li   r5, DATA
            sw   r1, 0(r5)          ; publish datum
            sdec SP                 ; data ready
            halt

        .section cons, bank=1
        consumer:
            nop                     ; let the producer SINC first
            snop SP                 ; register interest
            sleep                   ; gate until data ready
            li   r5, DATA
            lw   r2, 0(r5)
            sw   r2, 1(r5)
            halt
    """
    system = System.multicore(num_cores=8)
    system.load(assemble(source))
    system.run(10_000)
    assert system.all_halted
    assert system.dm_peek(0x901) == 42
    stats = system.synchronizer.stats
    assert stats.op_counts["sinc"] == 1
    assert stats.op_counts["sdec"] == 1
    assert stats.op_counts["snop"] == 1
    assert stats.point_fires >= 1


def test_dm_bank_conflicts_are_resolved_by_stalling():
    # Two cores hammer different addresses in the same DM bank.
    # Shared addresses interleave mod 16, so addresses 0x800 and 0x810
    # both live in bank 0.
    # The two loops sit in *different* IM banks (the paper's mapping
    # rule) so instruction fetches never conflict and the stores really
    # collide on the DM bank.
    source = """
        .entry 0, main0
        .entry 1, main1
        .section code0, bank=0
        main0:
            li   r5, 0x800
            addi r1, zero, 64
        loop0:
            sw   r1, 0(r5)
            addi r1, r1, -1
            bnez r1, loop0
            halt
        .section code1, bank=1
        main1:
            li   r5, 0x810
            addi r1, zero, 64
        loop1:
            sw   r1, 0(r5)
            addi r1, r1, -1
            bnez r1, loop1
            halt
    """
    system = System.multicore(num_cores=8)
    system.load(assemble(source))
    system.run(10_000)
    assert system.all_halted
    activity = system.activity()
    assert activity.dm_xbar.conflicts > 0
    # Both loops completed despite the conflicts.
    assert system.dm_peek(0x800) == 1
    assert system.dm_peek(0x810) == 1


def test_lockstep_region_recovers_after_divergent_branches():
    """Two cores diverge on data-dependent work, then re-align.

    Each core busy-loops a different number of iterations inside a
    SINC/SDEC-delimited region; after the region both must resume in
    the same cycle (lock-step), which we observe via broadcast on the
    common tail.
    """
    source = """
        .equ SP, 1
        .equ OUT, 0x940
        .entry 0, main
        .entry 1, main
        main:
            li   r7, 0x7F20        ; REG_CORE_ID
            lw   r6, 0(r7)
            sinc SP                ; enter data-dependent region
            addi r1, r6, 1         ; core 0: 1 iteration, core 1: 2
        spin:
            addi r1, r1, -1
            bnez r1, spin
            sdec SP                ; leave region
            sleep                  ; wait for the laggard
            li   r5, OUT
            add  r5, r5, r6
            sw   r6, 0(r5)
            halt
    """
    system = System.multicore(num_cores=8)
    system.load(assemble(source))
    system.run(10_000)
    assert system.all_halted
    assert system.dm_peek(0x940) == 0
    assert system.dm_peek(0x941) == 1
    assert system.synchronizer.stats.point_fires == 1
    # One core slept, the other fell through via the latch.
    assert system.synchronizer.stats.fall_through_sleeps == 1


def test_deadlock_detection():
    source = """
        main:
            sleep       ; nothing will ever wake us
            halt
    """
    system = System.singlecore()
    system.load(assemble(source))
    with pytest.raises(SimulationError, match="deadlock"):
        system.run(1000)


def test_activity_snapshot_consistency():
    system = _run_single("""
        main:
            addi r1, zero, 5
        loop:
            addi r1, r1, -1
            bnez r1, loop
            halt
    """)
    activity = system.activity()
    assert activity.instructions == system.cores[0].stats.instructions
    assert activity.cycles == system.cycle
    assert activity.active_cores == 1
    assert activity.im.reads == activity.im_xbar.accesses
