"""Differential test: the RISC core against an independent golden model.

Hypothesis generates random straight-line ALU programs; both the
cycle-level platform and a from-scratch interpreter written here (no
shared code with ``repro.hw.core``) execute them, and the final
register files must agree.  This catches semantic drift in either the
encoder, the assembler-free loader path, or the core's execute logic.
"""

from hypothesis import given, settings, strategies as st

from repro.hw.system import System
from repro.isa.encoding import Instruction, encode
from repro.isa.program import ProgramImage
from repro.isa.spec import Op

_ALU_R = [Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLL, Op.SRL,
          Op.SRA, Op.SLT, Op.SLTU, Op.MUL, Op.MULH]
_ALU_I = [Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI, Op.SRLI,
          Op.SRAI, Op.SLTI, Op.LUI]

_REG = st.integers(min_value=0, max_value=7)
_IMM = st.integers(min_value=-2048, max_value=2047)
_IMM8 = st.integers(min_value=0, max_value=255)


@st.composite
def alu_instruction(draw) -> Instruction:
    if draw(st.booleans()):
        op = draw(st.sampled_from(_ALU_R))
        return Instruction(op, rd=draw(_REG), ra=draw(_REG),
                           rb=draw(_REG))
    op = draw(st.sampled_from(_ALU_I))
    imm = draw(_IMM8) if op is Op.LUI else draw(_IMM)
    return Instruction(op, rd=draw(_REG), ra=draw(_REG), imm=imm)


def _signed(value: int) -> int:
    value &= 0xFFFF
    return value - 0x10000 if value & 0x8000 else value


def _golden(instructions: list[Instruction]) -> list[int]:
    """Independent interpreter of the ALU subset."""
    regs = [0] * 8

    def read(index: int) -> int:
        return 0 if index == 0 else regs[index]

    def write(index: int, value: int) -> None:
        if index != 0:
            regs[index] = value & 0xFFFF

    for instr in instructions:
        op = instr.op
        a, b = read(instr.ra), read(instr.rb)
        if op is Op.ADD:
            write(instr.rd, a + b)
        elif op is Op.SUB:
            write(instr.rd, a - b)
        elif op is Op.AND:
            write(instr.rd, a & b)
        elif op is Op.OR:
            write(instr.rd, a | b)
        elif op is Op.XOR:
            write(instr.rd, a ^ b)
        elif op is Op.SLL:
            write(instr.rd, a << (b & 0xF))
        elif op is Op.SRL:
            write(instr.rd, a >> (b & 0xF))
        elif op is Op.SRA:
            write(instr.rd, _signed(a) >> (b & 0xF))
        elif op is Op.SLT:
            write(instr.rd, int(_signed(a) < _signed(b)))
        elif op is Op.SLTU:
            write(instr.rd, int(a < b))
        elif op is Op.MUL:
            write(instr.rd, _signed(a) * _signed(b))
        elif op is Op.MULH:
            write(instr.rd, (_signed(a) * _signed(b)) >> 16)
        elif op is Op.ADDI:
            write(instr.rd, a + instr.imm)
        elif op is Op.ANDI:
            write(instr.rd, a & (instr.imm & 0xFFFF))
        elif op is Op.ORI:
            write(instr.rd, a | (instr.imm & 0xFFFF))
        elif op is Op.XORI:
            write(instr.rd, a ^ (instr.imm & 0xFFFF))
        elif op is Op.SLLI:
            write(instr.rd, a << (instr.imm & 0xF))
        elif op is Op.SRLI:
            write(instr.rd, a >> (instr.imm & 0xF))
        elif op is Op.SRAI:
            write(instr.rd, _signed(a) >> (instr.imm & 0xF))
        elif op is Op.SLTI:
            write(instr.rd, int(_signed(a) < instr.imm))
        elif op is Op.LUI:
            write(instr.rd, (instr.imm & 0xFF) << 8)
        else:  # pragma: no cover
            raise AssertionError(f"unexpected op {op}")
    return regs


@settings(max_examples=120, deadline=None)
@given(st.lists(alu_instruction(), min_size=1, max_size=40))
def test_core_matches_golden_model(instructions):
    image = ProgramImage()
    for address, instr in enumerate(instructions):
        image.im[address] = encode(instr)
    image.im[len(instructions)] = encode(Instruction(Op.HALT))
    image.entries[0] = 0

    system = System.singlecore()
    system.load(image)
    system.run(10 * len(instructions) + 10)
    assert system.all_halted

    expected = _golden(instructions)
    actual = [system.cores[0].read_reg(index) for index in range(8)]
    assert actual == expected
