"""Tests for the broadcasting crossbar and its arbitration."""

from hypothesis import given, strategies as st

from repro.hw.interconnect import Crossbar, MemRequest


def _read(port, bank, index):
    return MemRequest(port=port, bank=bank, index=index)


def _write(port, bank, index, value):
    return MemRequest(port=port, bank=bank, index=index, is_write=True,
                      value=value)


def test_same_address_reads_merge_into_one_access():
    xbar = Crossbar(ports=4, banks=2)
    result = xbar.arbitrate([_read(0, 0, 5), _read(1, 0, 5), _read(2, 0, 5)])
    assert len(result.granted) == 1
    assert result.granted[0].broadcast_extra == 2
    assert not result.stalled
    assert xbar.stats.accesses == 1
    assert xbar.stats.broadcast_merged == 2
    assert xbar.stats.broadcast_fraction == 2 / 3


def test_different_addresses_same_bank_conflict():
    xbar = Crossbar(ports=4, banks=2)
    result = xbar.arbitrate([_read(0, 0, 5), _read(1, 0, 6)])
    assert len(result.granted) == 1
    assert len(result.stalled) == 1
    assert xbar.stats.conflicts == 1


def test_different_banks_do_not_conflict():
    xbar = Crossbar(ports=4, banks=4)
    result = xbar.arbitrate([_read(0, 0, 5), _read(1, 1, 5),
                             _read(2, 2, 9)])
    assert len(result.granted) == 3
    assert not result.stalled


def test_writes_never_merge():
    xbar = Crossbar(ports=4, banks=2)
    result = xbar.arbitrate([_write(0, 0, 5, 1), _write(1, 0, 5, 2)])
    assert len(result.granted) == 1
    assert len(result.stalled) == 1
    assert xbar.stats.broadcast_merged == 0


def test_broadcast_disabled_serialises_same_address_reads():
    xbar = Crossbar(ports=4, banks=2, broadcast=False)
    result = xbar.arbitrate([_read(0, 0, 5), _read(1, 0, 5)])
    assert len(result.granted) == 1
    assert len(result.stalled) == 1
    assert xbar.stats.broadcast_merged == 0


def test_round_robin_is_fair_over_time():
    """Two ports fighting for one bank must alternate grants."""
    xbar = Crossbar(ports=2, banks=1)
    winners = []
    for _ in range(10):
        result = xbar.arbitrate([_read(0, 0, 1), _read(1, 0, 2)])
        winners.append(result.granted[0].requests[0].port)
    assert winners.count(0) == 5
    assert winners.count(1) == 5


def test_single_port_never_conflicts():
    xbar = Crossbar(ports=1, banks=4)
    for index in range(20):
        result = xbar.arbitrate([_read(0, index % 4, index)])
        assert not result.stalled
    assert xbar.stats.conflicts == 0
    assert xbar.stats.broadcast_fraction == 0.0


_REQS = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 3), st.integers(0, 5),
              st.booleans()),
    min_size=0, max_size=16)


@given(_REQS)
def test_every_request_is_granted_or_stalled_exactly_once(spec):
    """Conservation: requests are never lost or duplicated."""
    # At most one request per port per cycle, like real cores.
    seen_ports = set()
    requests = []
    for port, bank, index, is_write in spec:
        if port in seen_ports:
            continue
        seen_ports.add(port)
        requests.append(MemRequest(port=port, bank=bank, index=index,
                                   is_write=is_write))
    xbar = Crossbar(ports=8, banks=4)
    result = xbar.arbitrate(requests)
    granted_ports = [request.port for group in result.granted
                     for request in group.requests]
    stalled_ports = [request.port for request in result.stalled]
    assert sorted(granted_ports + stalled_ports) == \
        sorted(request.port for request in requests)
    assert len(set(granted_ports) & set(stalled_ports)) == 0


@given(_REQS)
def test_at_most_one_access_per_bank_per_cycle(spec):
    seen_ports = set()
    requests = []
    for port, bank, index, is_write in spec:
        if port in seen_ports:
            continue
        seen_ports.add(port)
        requests.append(MemRequest(port=port, bank=bank, index=index,
                                   is_write=is_write))
    xbar = Crossbar(ports=8, banks=4)
    result = xbar.arbitrate(requests)
    banks = [group.bank for group in result.granted]
    assert len(banks) == len(set(banks))


def test_stalled_requests_eventually_complete():
    """Replaying stalled requests drains any backlog."""
    xbar = Crossbar(ports=4, banks=1)
    outstanding = [_read(p, 0, p) for p in range(4)]  # all conflict
    rounds = 0
    while outstanding:
        result = xbar.arbitrate(outstanding)
        outstanding = list(result.stalled)
        rounds += 1
        assert rounds <= 4
    assert rounds == 4
