"""Tests for the Address Translation Units (private/shared DM split)."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.atu import MulticoreAtu, SingleCoreTranslation
from repro.hw.memory import MemoryFault
from repro.isa.layout import DmGeometry, MemoryMap

GEOM = DmGeometry(banks=16, words_per_bank=2048)
MMAP = MemoryMap(private_words=2048, shared_words=15 * 1024,
                 sync_point_base=0x4000, sync_points=64)


@pytest.fixture()
def atu() -> MulticoreAtu:
    return MulticoreAtu(num_cores=8, geometry=GEOM, memory_map=MMAP)


def test_private_addresses_get_per_core_tag(atu):
    loc0 = atu.translate(0, 100)
    loc1 = atu.translate(1, 100)
    assert loc0 != loc1
    assert loc0.bank in atu.banks_for_core_private(0)
    assert loc1.bank in atu.banks_for_core_private(1)


def test_shared_addresses_are_core_independent(atu):
    address = MMAP.shared_base + 123
    assert atu.translate(0, address) == atu.translate(7, address)


def test_shared_section_interleaves_across_all_banks(atu):
    banks = {atu.translate(0, MMAP.shared_base + offset).bank
             for offset in range(GEOM.banks)}
    assert banks == set(range(GEOM.banks))


def test_consecutive_shared_words_land_in_consecutive_banks(atu):
    first = atu.translate(0, MMAP.shared_base)
    second = atu.translate(0, MMAP.shared_base + 1)
    assert second.bank == (first.bank + 1) % GEOM.banks


def test_peripheral_addresses_rejected(atu):
    with pytest.raises(MemoryFault, match="memory-mapped"):
        atu.translate(0, 0x7F00)


def test_unmapped_hole_rejected(atu):
    with pytest.raises(MemoryFault, match="unmapped"):
        atu.translate(0, MMAP.shared_limit)


def test_sync_points_translate_through_shared_path(atu):
    location = atu.shared_location(MMAP.sync_point_address(5))
    assert 0 <= location.bank < GEOM.banks
    assert atu.translate(3, MMAP.sync_point_address(5)) == location


def test_shared_location_rejects_private(atu):
    with pytest.raises(MemoryFault, match="outside the shared"):
        atu.shared_location(10)


_CORES = st.integers(min_value=0, max_value=7)
_MAPPED = st.integers(min_value=0, max_value=MMAP.shared_limit - 1)


@given(_CORES, _MAPPED)
def test_translation_targets_valid_physical_locations(core, address):
    atu = MulticoreAtu(num_cores=8, geometry=GEOM, memory_map=MMAP)
    location = atu.translate(core, address)
    assert 0 <= location.bank < GEOM.banks
    assert 0 <= location.index < GEOM.words_per_bank


@given(_CORES, _CORES,
       st.integers(min_value=0, max_value=MMAP.private_words - 1),
       st.integers(min_value=0, max_value=MMAP.private_words - 1))
def test_private_sections_never_collide_across_cores(core_a, core_b,
                                                     addr_a, addr_b):
    """Isolation invariant: distinct cores' private words are disjoint."""
    atu = MulticoreAtu(num_cores=8, geometry=GEOM, memory_map=MMAP)
    if core_a == core_b:
        return
    assert atu.translate(core_a, addr_a) != atu.translate(core_b, addr_b)


@given(_CORES,
       st.integers(min_value=0, max_value=MMAP.private_words - 1),
       st.integers(min_value=MMAP.shared_base,
                   max_value=MMAP.shared_limit - 1))
def test_private_and_shared_never_collide(core, private_addr, shared_addr):
    """A private word and a shared word never alias physically."""
    atu = MulticoreAtu(num_cores=8, geometry=GEOM, memory_map=MMAP)
    assert atu.translate(core, private_addr) != \
        atu.translate(core, shared_addr)


@given(_CORES, _MAPPED, _MAPPED)
def test_translation_is_injective_per_core(core, addr_a, addr_b):
    atu = MulticoreAtu(num_cores=8, geometry=GEOM, memory_map=MMAP)
    if addr_a == addr_b:
        return
    assert atu.translate(core, addr_a) != atu.translate(core, addr_b)


def test_atu_rejects_oversized_shared_section():
    with pytest.raises(ValueError, match="exceeds"):
        MulticoreAtu(num_cores=8, geometry=GEOM,
                     memory_map=MemoryMap(private_words=2048,
                                          shared_words=31 * 1024,
                                          sync_point_base=0x4000))


def test_atu_rejects_indivisible_bank_count():
    with pytest.raises(ValueError, match="not divisible"):
        MulticoreAtu(num_cores=3, geometry=GEOM, memory_map=MMAP)


def test_single_core_translation_is_linear():
    translation = SingleCoreTranslation(GEOM, MMAP)
    location = translation.translate(0, 5000)
    assert location.bank == 5000 // 2048
    assert location.index == 5000 % 2048


def test_single_core_footprint_banks():
    translation = SingleCoreTranslation(GEOM, MMAP)
    assert translation.banks_for_footprint(100) == {0}
    assert translation.banks_for_footprint(2048) == {0, 1}
    assert translation.banks_for_footprint(3 * 2048) == {0, 1, 2, 3}


def test_single_core_rejects_peripheral_and_overflow():
    translation = SingleCoreTranslation(GEOM, MMAP)
    with pytest.raises(MemoryFault):
        translation.translate(0, 0x7F10)
