"""Test package (unique import roots for same-basename test modules)."""
