"""Tests for the ADC peripheral."""

import pytest

from repro.hw.adc import Adc


def _make(streams, period=4):
    raised = []
    adc = Adc(streams, period_cycles=period, raise_irq=raised.append)
    return adc, raised


def test_samples_delivered_on_period_boundaries():
    adc, raised = _make([[10, 20, 30]], period=4)
    for _ in range(3):
        adc.tick()
    assert raised == []
    adc.tick()  # 4th cycle -> first sample
    assert raised == [0]
    assert adc.read_data(0) == 10
    for _ in range(4):
        adc.tick()
    assert raised == [0, 0]
    assert adc.read_data(0) == 20


def test_three_channels_raise_distinct_lines():
    adc, raised = _make([[1], [2], [3]], period=2)
    adc.tick()
    adc.tick()
    assert raised == [0, 1, 2]
    assert adc.read_data(0) == 1
    assert adc.read_data(1) == 2
    assert adc.read_data(2) == 3


def test_status_mask_and_read_to_acknowledge():
    adc, _ = _make([[5], [6]], period=1)
    adc.tick()
    assert adc.status_mask() == 0b11
    adc.read_data(0)
    assert adc.status_mask() == 0b10


def test_overrun_detection():
    adc, _ = _make([[1, 2]], period=1)
    adc.tick()
    adc.tick()  # second sample overwrites the unread first
    assert adc.total_overruns == 1
    assert adc.read_data(0) == 2


def test_no_overrun_when_consumed_in_time():
    adc, _ = _make([[1, 2, 3]], period=2)
    for _ in range(3):
        adc.tick()
        adc.tick()
        adc.read_data(0)
    assert adc.total_overruns == 0
    assert adc.all_exhausted


def test_disabled_channel_is_silent():
    adc, raised = _make([[1], [2]], period=1)
    adc.write_ctrl(0b10)  # only channel 1 enabled
    adc.tick()
    assert raised == [1]
    assert not adc.channels[0].stats.delivered


def test_exhausted_stream_stops_interrupting():
    adc, raised = _make([[7]], period=1)
    adc.tick()
    adc.tick()
    adc.tick()
    assert raised == [0]
    assert adc.all_exhausted


def test_negative_samples_wrap_to_u16():
    adc, _ = _make([[-3]], period=1)
    adc.tick()
    assert adc.read_data(0) == 0xFFFD


def test_zero_period_rejected():
    with pytest.raises(ValueError):
        Adc([[1]], period_cycles=0, raise_irq=lambda line: None)
