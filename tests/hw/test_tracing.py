"""Tests for the execution tracer."""

from repro.hw.system import System
from repro.hw.tracing import Tracer
from repro.isa import assemble

_PROGRAM = """
    .equ SP, 0
    .entry 0, main
    .entry 1, main
main:
    li   r5, 0x7F20       ; REG_CORE_ID
    lw   r6, 0(r5)
    sinc SP
    addi r1, r6, 1        ; core 0 spins once, core 1 twice ->
spin:                     ; they leave the region at different times
    addi r1, r1, -1
    bnez r1, spin
    sdec SP
    sleep
    halt
"""


def _traced_system(cores=None):
    system = System.multicore(num_cores=8)
    tracer = Tracer.attach(system, cores=cores)
    system.load(assemble(_PROGRAM))
    system.run(1000)
    assert system.all_halted
    return system, tracer


def test_tracer_records_executed_instructions():
    _, tracer = _traced_system()
    texts = [event.text for event in tracer.of_core(0)
             if event.kind == "exec"]
    assert "sinc 0" in texts
    assert "sdec 0" in texts
    assert "halt" in texts


def test_tracer_sees_gating_and_wakeups():
    _, tracer = _traced_system()
    kinds = {event.kind for event in tracer.gate_events()}
    # One core gates on SLEEP and is woken; the other falls through.
    assert "gate" in kinds
    assert "wake" in kinds


def test_tracer_core_filter():
    _, tracer = _traced_system(cores={1})
    assert tracer.of_core(0) == []
    assert tracer.of_core(1)


def test_tracer_render_and_limit():
    _, tracer = _traced_system()
    text = tracer.render(limit=3)
    assert "core" in text
    assert "more events" in text


def test_detach_restores_fast_path():
    system = System.multicore(num_cores=8)
    tracer = Tracer.attach(system)
    tracer.detach()
    system.load(assemble(_PROGRAM))
    system.run(1000)
    assert system.all_halted
    assert tracer.events == []  # nothing recorded after detach


def test_tracer_events_are_cycle_ordered():
    _, tracer = _traced_system()
    cycles = [event.cycle for event in tracer.events]
    assert cycles == sorted(cycles)
