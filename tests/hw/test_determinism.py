"""Simulation determinism and reload behaviour."""

from repro.hw.system import System
from repro.isa import assemble

_PROGRAM = """
    .equ SP, 0
    .entry 0, main
    .entry 1, main
main:
    li   r5, 0x7F20
    lw   r6, 0(r5)
    sinc SP
    addi r1, r6, 3
spin:
    addi r1, r1, -1
    bnez r1, spin
    sdec SP
    sleep
    li   r5, 0x900
    add  r5, r5, r6
    sw   r6, 0(r5)
    halt
"""


def _run():
    system = System.multicore(num_cores=8)
    system.load(assemble(_PROGRAM))
    system.run(5000)
    assert system.all_halted
    return system


def test_two_runs_are_bit_identical():
    a, b = _run(), _run()
    assert a.cycle == b.cycle
    assert a.activity().im_xbar.broadcast_merged == \
        b.activity().im_xbar.broadcast_merged
    assert a.activity().dm.accesses == b.activity().dm.accesses
    for core_a, core_b in zip(a.cores, b.cores):
        assert core_a.stats.instructions == core_b.stats.instructions
        assert core_a.stats.gated_cycles == core_b.stats.gated_cycles


def test_reload_resets_state_and_counters():
    system = _run()
    first_cycle_count = system.cycle
    system.load(assemble(_PROGRAM))  # reload the same image
    assert system.synchronizer.stats.total_sync_instructions == 0
    assert system.activity().im.accesses == 0
    system.run(5000)
    assert system.all_halted
    assert system.dm_peek(0x900) == 0
    assert system.dm_peek(0x901) == 1
    assert system.cycle - first_cycle_count > 0
