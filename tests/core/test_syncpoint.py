"""Unit + property tests for synchronization point semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.core.syncpoint import (
    SyncOp,
    SyncPoint,
    SyncPointLayout,
    SyncProtocolError,
    SyncRequest,
    apply_update,
    merge_requests,
)

LAYOUT = SyncPointLayout(num_cores=8, word_bits=16)


def _requests(ops):
    return [SyncRequest(core=c, op=o, point=0) for c, o in ops]


# ---------------------------------------------------------------------------
# Layout
# ---------------------------------------------------------------------------

def test_flags_occupy_msbs_counter_lsbs():
    # Fig. 3: core 0's flag is the most significant bit.
    assert LAYOUT.flag_bit(0) == 0x8000
    assert LAYOUT.flag_bit(7) == 0x0100
    assert LAYOUT.counter_mask == 0x00FF
    assert LAYOUT.max_counter == 255


def test_encode_decode_round_trip():
    word = LAYOUT.encode(LAYOUT.flag_bit(2) | LAYOUT.flag_bit(5), 9)
    flags, counter = LAYOUT.decode(word)
    assert LAYOUT.cores_of(flags) == (2, 5)
    assert counter == 9


def test_layout_rejects_too_many_cores():
    with pytest.raises(ValueError):
        SyncPointLayout(num_cores=16, word_bits=16)


def test_flag_bit_range_checked():
    with pytest.raises(ValueError):
        LAYOUT.flag_bit(8)


@given(st.integers(min_value=0, max_value=0xFFFF))
def test_decode_encode_round_trip_any_word(word):
    flags, counter = LAYOUT.decode(word)
    assert LAYOUT.encode(flags, counter) == word


# ---------------------------------------------------------------------------
# Merge reduction
# ---------------------------------------------------------------------------

def test_merge_matches_fig3a():
    # cores 0,1,2 SINC; core 4 SNOP -> flags {0,1,2,4}, counter 3
    update = merge_requests(LAYOUT, _requests([
        (0, SyncOp.SINC), (1, SyncOp.SINC), (2, SyncOp.SINC),
        (4, SyncOp.SNOP),
    ]))
    assert LAYOUT.cores_of(update.flag_mask) == (0, 1, 2, 4)
    assert update.counter_delta == 3
    assert update.merged_away == 3


def test_merge_matches_fig3b():
    # cores 0,1,2 SINC then core 0 SDEC -> flags {0,1,2}, counter 2
    update = merge_requests(LAYOUT, _requests([
        (0, SyncOp.SINC), (1, SyncOp.SINC), (2, SyncOp.SINC),
        (0, SyncOp.SDEC),
    ]))
    assert LAYOUT.cores_of(update.flag_mask) == (0, 1, 2)
    assert update.counter_delta == 2


def test_merge_rejects_mixed_points():
    batch = [SyncRequest(0, SyncOp.SINC, 0), SyncRequest(1, SyncOp.SINC, 1)]
    with pytest.raises(ValueError):
        merge_requests(LAYOUT, batch)


def test_empty_merge_is_identity():
    update = merge_requests(LAYOUT, [])
    assert update.flag_mask == 0
    assert update.counter_delta == 0
    assert update.requests == 0


_OPS = st.sampled_from([SyncOp.SINC, SyncOp.SDEC, SyncOp.SNOP])
_BATCH = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7), _OPS),
    min_size=1, max_size=12)


@given(_BATCH, st.randoms())
def test_merge_is_order_independent(ops, rng):
    """The hardware merge must not depend on arbitration order."""
    batch = _requests(ops)
    shuffled = list(batch)
    rng.shuffle(shuffled)
    merged_a = merge_requests(LAYOUT, batch)
    merged_b = merge_requests(LAYOUT, shuffled)
    assert merged_a.flag_mask == merged_b.flag_mask
    assert merged_a.counter_delta == merged_b.counter_delta


@given(_BATCH)
def test_merge_counter_delta_is_sinc_minus_sdec(ops):
    update = merge_requests(LAYOUT, _requests(ops))
    sincs = sum(1 for _, op in ops if op is SyncOp.SINC)
    sdecs = sum(1 for _, op in ops if op is SyncOp.SDEC)
    assert update.counter_delta == sincs - sdecs


@given(_BATCH)
def test_merged_flags_cover_exactly_registering_cores(ops):
    update = merge_requests(LAYOUT, _requests(ops))
    registering = {c for c, op in ops if op is not SyncOp.SDEC}
    assert set(LAYOUT.cores_of(update.flag_mask)) == registering


# ---------------------------------------------------------------------------
# Fire semantics
# ---------------------------------------------------------------------------

def test_point_fires_when_counter_returns_to_zero():
    point = SyncPoint(LAYOUT)
    point.apply(merge_requests(LAYOUT, _requests(
        [(0, SyncOp.SINC), (1, SyncOp.SINC), (4, SyncOp.SNOP)])))
    assert point.counter == 2
    result = point.apply(merge_requests(LAYOUT, _requests(
        [(0, SyncOp.SDEC)])))
    assert not result.fired
    result = point.apply(merge_requests(LAYOUT, _requests(
        [(1, SyncOp.SDEC)])))
    assert result.fired
    assert result.woken_cores == (0, 1, 4)
    assert point.flags == 0
    assert point.counter == 0


def test_registration_at_zero_counter_fires_immediately():
    """A consumer that registers after data is ready must not hang."""
    point = SyncPoint(LAYOUT)
    result = point.apply(merge_requests(LAYOUT, _requests(
        [(3, SyncOp.SNOP)])))
    assert result.fired
    assert result.woken_cores == (3,)


def test_no_fire_without_requests():
    point = SyncPoint(LAYOUT)
    result = point.apply(merge_requests(LAYOUT, []))
    assert not result.fired


def test_strict_underflow_raises():
    point = SyncPoint(LAYOUT, strict=True)
    with pytest.raises(SyncProtocolError):
        point.apply(merge_requests(LAYOUT, _requests([(0, SyncOp.SDEC)])))


def test_permissive_underflow_saturates():
    point = SyncPoint(LAYOUT, strict=False)
    point.apply(merge_requests(LAYOUT, _requests([(0, SyncOp.SDEC)])))
    assert point.counter == 0


def test_strict_overflow_raises():
    layout = SyncPointLayout(num_cores=8, word_bits=16)
    word = layout.encode(0, layout.max_counter)
    update = merge_requests(layout, _requests([(0, SyncOp.SINC)]))
    with pytest.raises(SyncProtocolError):
        apply_update(layout, word, update, strict=True)


def test_registered_cores_reflect_flags():
    point = SyncPoint(LAYOUT)
    point.apply(merge_requests(LAYOUT, _requests(
        [(2, SyncOp.SINC), (6, SyncOp.SNOP), (2, SyncOp.SINC)])))
    assert point.registered_cores() == (2, 6)


@given(_BATCH)
def test_fire_always_clears_flags_and_zero_counter(ops):
    point = SyncPoint(LAYOUT, strict=False)
    result = point.apply(merge_requests(LAYOUT, _requests(ops)))
    if result.fired:
        assert point.flags == 0
        assert point.counter == 0
    word_flags, word_counter = LAYOUT.decode(point.word)
    assert word_flags == point.flags
    assert word_counter == point.counter
