"""Tests for the protocol recipes (producer-consumer, lock-step, barrier)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.primitives import (
    LockstepRegion,
    ProducerConsumerChannel,
    SenseBarrier,
    SyncDomain,
)
from repro.core.syncpoint import SyncOp


def test_producer_consumer_channel_happy_path():
    domain = SyncDomain(num_cores=8)
    channel = ProducerConsumerChannel(domain, point=0)

    for producer in (0, 1, 2):
        channel.begin_production(producer)
    channel.register(4)
    assert channel.wait(4) is True
    assert domain.is_gated(4)

    for producer in (0, 1):
        channel.complete_production(producer)
        assert domain.is_gated(4)
    result = channel.complete_production(2)
    assert 4 in result.woken
    assert not domain.is_gated(4)


def test_consumer_registering_after_data_ready_does_not_hang():
    domain = SyncDomain(num_cores=8)
    channel = ProducerConsumerChannel(domain, point=0)
    channel.begin_production(0)
    channel.complete_production(0)  # data ready before consumer arrives
    channel.register(4)             # fires immediately (counter == 0)
    assert channel.wait(4) is False
    assert not domain.is_gated(4)


def test_lockstep_region_releases_all_cores_together():
    domain = SyncDomain(num_cores=8)
    region = LockstepRegion(domain, point=1)
    region.enter([0, 1, 2])

    _, gated = region.leave(1)
    assert gated
    _, gated = region.leave(0)
    assert gated
    result, gated = region.leave(2)
    assert not gated  # last core's SLEEP falls through via the latch
    assert not any(domain.is_gated(core) for core in (0, 1, 2))


def test_lockstep_single_core_region_is_transparent():
    domain = SyncDomain(num_cores=4)
    region = LockstepRegion(domain, point=0)
    region.enter([2])
    _, gated = region.leave(2)
    assert not gated


def test_sense_barrier_single_epoch():
    domain = SyncDomain(num_cores=4)
    barrier = SenseBarrier(domain, point_even=0, point_odd=1,
                           parties=[0, 1, 2, 3])
    barrier.prime()
    assert barrier.arrive(0) is True
    assert barrier.arrive(1) is True
    assert barrier.arrive(2) is True
    assert barrier.arrive(3) is False  # last arrival falls through
    assert barrier.everyone_released()


def test_sense_barrier_is_reusable_across_epochs():
    domain = SyncDomain(num_cores=3)
    barrier = SenseBarrier(domain, point_even=0, point_odd=1,
                           parties=[0, 1, 2])
    barrier.prime()
    for _ in range(4):  # four consecutive epochs
        for core in (0, 1):
            assert barrier.arrive(core) is True
        assert barrier.arrive(2) is False
        assert barrier.everyone_released()


def test_sense_barrier_rejects_duplicate_points():
    domain = SyncDomain(num_cores=2)
    with pytest.raises(ValueError):
        SenseBarrier(domain, point_even=3, point_odd=3, parties=[0, 1])


def test_sense_barrier_rejects_non_party():
    domain = SyncDomain(num_cores=4)
    barrier = SenseBarrier(domain, point_even=0, point_odd=1, parties=[0, 1])
    with pytest.raises(ValueError):
        barrier.arrive(3)


@settings(max_examples=30)
@given(st.permutations(list(range(5))), st.integers(min_value=2, max_value=5))
def test_sense_barrier_any_arrival_order(order, parties_count):
    """No arrival order may deadlock or double-release the barrier."""
    parties = list(range(parties_count))
    domain = SyncDomain(num_cores=5)
    barrier = SenseBarrier(domain, point_even=0, point_odd=1,
                           parties=parties)
    barrier.prime()
    arrival_order = [core for core in order if core in parties]
    for index, core in enumerate(arrival_order):
        slept = barrier.arrive(core)
        is_last = index == len(arrival_order) - 1
        assert slept != is_last
    assert barrier.everyone_released()


def test_step_merges_same_cycle_requests():
    domain = SyncDomain(num_cores=8)
    result = domain.step([
        (0, SyncOp.SINC, 0),
        (1, SyncOp.SINC, 0),
        (1, SyncOp.SDEC, 0),
        (0, SyncOp.SDEC, 0),
    ])
    # net delta zero with flags set -> fires immediately, nobody gated
    assert set(result.woken) == set()  # both running -> latched
    assert domain.synchronizer.has_pending_event(0)
    assert domain.synchronizer.has_pending_event(1)
