"""Tests for the synchronizer unit: gating, latches, interrupts, stats."""

import pytest

from repro.core.syncpoint import SyncOp
from repro.core.synchronizer import DictStorage, Synchronizer


def _make(num_cores=8, **kwargs):
    return Synchronizer(num_cores=num_cores, num_points=8, **kwargs)


def test_producer_consumer_wakeup():
    sync = _make()
    # consumer 4 registers while producer already SINCed
    sync.submit(0, SyncOp.SINC, 0)
    assert sync.end_cycle() == ()
    sync.submit(4, SyncOp.SNOP, 0)
    assert sync.end_cycle() == ()
    assert sync.sleep(4) is True
    assert sync.is_gated(4)
    sync.submit(0, SyncOp.SDEC, 0)
    woken = sync.end_cycle()
    # Gated consumer resumes; the running producer gets a latched event.
    assert woken == (4,)
    assert not sync.is_gated(4)
    assert sync.has_pending_event(0)


def test_same_cycle_requests_are_merged_into_one_write():
    storage = DictStorage()
    sync = _make(storage=storage)
    baseline = storage.writes
    for core in (0, 1, 2):
        sync.submit(core, SyncOp.SINC, 3)
    sync.end_cycle()
    assert storage.writes == baseline + 1
    assert sync.stats.merged_writes_saved == 2
    flags, counter = sync.point_state(3)
    assert counter == 3
    assert sync.registered_cores(3) == (0, 1, 2)


def test_sdec_then_sleep_race_is_absorbed_by_latch():
    """The last core of a lock-step region must not sleep forever."""
    sync = _make()
    # Cores 0 and 1 enter a lock-step region together.
    sync.submit(0, SyncOp.SINC, 0)
    sync.submit(1, SyncOp.SINC, 0)
    sync.end_cycle()
    # Core 1 finishes first: SDEC + SLEEP -> gated.
    sync.submit(1, SyncOp.SDEC, 0)
    sync.end_cycle()
    assert sync.sleep(1) is True
    # Core 0 finishes last: its SDEC zeroes the counter, firing the
    # event toward core 0 itself (running) and core 1 (gated).
    sync.submit(0, SyncOp.SDEC, 0)
    woken = sync.end_cycle()
    assert woken == (1,)
    assert sync.has_pending_event(0)
    # Core 0's subsequent SLEEP falls through thanks to the latch.
    assert sync.sleep(0) is False
    assert not sync.is_gated(0)
    assert sync.stats.fall_through_sleeps == 1


def test_interrupt_subscription_and_wake():
    sync = _make()
    sync.subscribe(2, 1 << 5)
    assert sync.subscription(2) == 1 << 5
    assert sync.sleep(2) is True
    sync.raise_interrupt(5)
    assert sync.end_cycle() == (2,)
    assert not sync.is_gated(2)


def test_interrupt_to_running_core_sets_latch():
    sync = _make()
    sync.subscribe(3, 1)
    sync.raise_interrupt(0)
    assert sync.end_cycle() == ()
    assert sync.has_pending_event(3)
    assert sync.sleep(3) is False


def test_unsubscribed_core_is_not_woken():
    sync = _make()
    sync.subscribe(1, 1 << 2)
    assert sync.sleep(1) is True
    sync.raise_interrupt(3)
    assert sync.end_cycle() == ()
    assert sync.is_gated(1)


def test_two_independent_points_fire_independently():
    sync = _make()
    sync.submit(0, SyncOp.SINC, 0)
    sync.submit(1, SyncOp.SINC, 1)
    sync.end_cycle()
    sync.submit(0, SyncOp.SDEC, 0)
    woken = sync.end_cycle()
    assert woken == ()  # core 0 running -> latched, not woken
    assert sync.has_pending_event(0)
    flags, counter = sync.point_state(1)
    assert counter == 1  # point 1 untouched


def test_points_live_in_shared_storage():
    storage = DictStorage()
    sync = Synchronizer(num_cores=4, num_points=4, point_base=0x4000,
                        storage=storage)
    sync.submit(0, SyncOp.SINC, 2)
    sync.end_cycle()
    assert storage.words[0x4002] != 0
    assert sync.point_word(2) == storage.words[0x4002]


def test_stats_count_ops_and_overhead_numerator():
    sync = _make()
    sync.submit(0, SyncOp.SINC, 0)
    sync.submit(1, SyncOp.SNOP, 0)
    sync.end_cycle()
    sync.submit(0, SyncOp.SDEC, 0)
    sync.end_cycle()
    sync.sleep(1)
    assert sync.stats.op_counts == {
        "sinc": 1, "sdec": 1, "snop": 1, "sleep": 1}
    assert sync.stats.total_sync_instructions == 4


def test_on_wake_callback_invoked():
    woken = []
    sync = Synchronizer(num_cores=2, num_points=2, on_wake=woken.append)
    sync.submit(0, SyncOp.SINC, 0)
    sync.end_cycle()
    sync.sleep(0)
    sync.submit(1, SyncOp.SDEC, 0)
    sync.end_cycle()
    assert woken == [0]


def test_reset_clears_everything():
    sync = _make()
    sync.submit(0, SyncOp.SINC, 0)
    sync.end_cycle()
    sync.sleep(1)
    sync.reset()
    assert sync.point_state(0) == (0, 0)
    assert not sync.is_gated(1)
    assert sync.stats.total_sync_instructions == 0


def test_point_out_of_range_rejected():
    sync = _make()
    with pytest.raises(ValueError):
        sync.submit(0, SyncOp.SINC, 99)


def test_core_out_of_range_rejected():
    sync = _make(num_cores=2)
    with pytest.raises(ValueError):
        sync.sleep(5)
