"""Randomised stress tests of the synchronization protocol.

Hypothesis drives the synchronizer through arbitrary interleavings of
well-formed protocol actions and checks global invariants that must
hold for *any* schedule:

* conservation — every `SINC` is eventually balanced by exactly one
  `SDEC`, so a drained system has all counters at zero;
* liveness — once all pending work is drained, no core remains
  clock-gated (no lost wake-ups), regardless of interleaving;
* merge soundness — splitting one cycle's requests across several
  cycles never changes the final point value, only the firing time.
"""

from hypothesis import given, settings, strategies as st

from repro.core.syncpoint import SyncOp, SyncPointLayout, SyncRequest, \
    apply_update, merge_requests
from repro.core.synchronizer import Synchronizer

LAYOUT = SyncPointLayout(num_cores=8)


@st.composite
def producer_consumer_scripts(draw):
    """Random interleavings of complete producer-consumer episodes.

    Each episode on a point: ``k`` producers SINC, a consumer SNOPs
    (at a random moment), every producer SDECs.  Episodes on distinct
    points interleave arbitrarily.
    """
    episodes = draw(st.integers(min_value=1, max_value=4))
    actions = []
    for point in range(episodes):
        producers = draw(st.lists(
            st.integers(min_value=0, max_value=6), min_size=1,
            max_size=3, unique=True))
        consumer = 7  # distinct core acts as consumer for all points
        episode = []
        for producer in producers:
            episode.append(("sinc", producer, point))
        episode.append(("snop", consumer, point))
        episode.append(("sleep", consumer, point))
        for producer in producers:
            episode.append(("sdec", producer, point))
        actions.append(episode)
    # interleave episodes while preserving each episode's inner order
    merged = []
    cursors = [0] * len(actions)
    order = draw(st.permutations(
        [index for index, episode in enumerate(actions)
         for _ in episode]))
    for index in order:
        merged.append(actions[index][cursors[index]])
        cursors[index] += 1
    return merged


@settings(max_examples=60, deadline=None)
@given(producer_consumer_scripts())
def test_no_lost_wakeups_under_any_interleaving(script):
    sync = Synchronizer(num_cores=8, num_points=8)
    for kind, core, point in script:
        if kind == "sinc":
            sync.submit(core, SyncOp.SINC, point)
        elif kind == "snop":
            sync.submit(core, SyncOp.SNOP, point)
        elif kind == "sdec":
            sync.submit(core, SyncOp.SDEC, point)
        else:  # sleep
            sync.sleep(core)
        sync.end_cycle()
    # Drained: every counter zero, nobody left gated.
    for point in range(8):
        _, counter = sync.point_state(point)
        assert counter == 0
    assert not any(sync.is_gated(core) for core in range(8))


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 7),
                          st.sampled_from([SyncOp.SINC, SyncOp.SNOP])),
                min_size=1, max_size=10),
       st.data())
def test_split_batches_reach_same_point_value(ops, data):
    """Applying requests in any batching yields the same final word
    when no firing occurs in between (counter kept positive)."""
    # Prefix with enough SINCs that no intermediate batch can fire.
    guard = [(0, SyncOp.SINC)] * (len(ops) + 1)
    requests = [SyncRequest(core=c, op=o, point=0)
                for c, o in guard + ops]

    # one big batch
    word_a, _ = apply_update(LAYOUT, 0,
                             merge_requests(LAYOUT, requests))

    # random split into consecutive batches
    word_b = 0
    index = 0
    while index < len(requests):
        size = data.draw(st.integers(min_value=1,
                                     max_value=len(requests) - index))
        batch = requests[index:index + size]
        word_b, result = apply_update(LAYOUT, word_b,
                                      merge_requests(LAYOUT, batch))
        assert not result.fired  # the guard keeps the counter positive
        index += size

    assert word_a == word_b


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=6), min_size=2,
                max_size=7, unique=True),
       st.randoms())
def test_lockstep_group_always_releases(cores, rng):
    """Any SDEC completion order releases every participant."""
    sync = Synchronizer(num_cores=8, num_points=2)
    for core in cores:
        sync.submit(core, SyncOp.SINC, 0)
    sync.end_cycle()
    order = list(cores)
    rng.shuffle(order)
    for index, core in enumerate(order):
        sync.submit(core, SyncOp.SDEC, 0)
        sync.end_cycle()
        gated = sync.sleep(core)
        is_last = index == len(order) - 1
        assert gated != is_last  # only the last falls through
    assert not any(sync.is_gated(core) for core in cores)
    assert sync.point_state(0) == (0, 0)
