"""EXP-F3: replay the worked examples of the paper's Figure 3.

Fig. 3-a: "cores 0, 1 and 2 should jointly produce data for core 4;
data is not yet available" -> flags {0,1,2,4}, counter = 3.

Fig. 3-b: "cores 0, 1 and 2 have entered a data-dependent branch,
core 0 has finished executing it" -> flags {0,1,2}, counter = 2.
"""

from repro.core.syncpoint import SyncOp, SyncPointLayout
from repro.core.synchronizer import Synchronizer

LAYOUT = SyncPointLayout(num_cores=8, word_bits=16)


def test_figure_3a_producer_consumer_snapshot():
    sync = Synchronizer(num_cores=8, num_points=1, layout=LAYOUT)
    sync.submit(0, SyncOp.SINC, 0)
    sync.submit(1, SyncOp.SINC, 0)
    sync.submit(2, SyncOp.SINC, 0)
    sync.submit(4, SyncOp.SNOP, 0)
    sync.end_cycle()

    flags, counter = sync.point_state(0)
    assert LAYOUT.cores_of(flags) == (0, 1, 2, 4)
    assert counter == 3
    # Bit pattern of Fig. 3-a: flags 1110 1000, counter 0000 0011.
    assert sync.point_word(0) == 0b1110_1000_0000_0011


def test_figure_3b_lockstep_snapshot():
    sync = Synchronizer(num_cores=8, num_points=1, layout=LAYOUT)
    sync.submit(0, SyncOp.SINC, 0)
    sync.submit(1, SyncOp.SINC, 0)
    sync.submit(2, SyncOp.SINC, 0)
    sync.submit(0, SyncOp.SDEC, 0)
    sync.end_cycle()

    flags, counter = sync.point_state(0)
    assert LAYOUT.cores_of(flags) == (0, 1, 2)
    assert counter == 2
    # Bit pattern of Fig. 3-b: flags 1110 0000, counter 0000 0010.
    assert sync.point_word(0) == 0b1110_0000_0000_0010


def test_figure_3a_completion_wakes_consumer():
    """Continue Fig. 3-a until the data is ready."""
    sync = Synchronizer(num_cores=8, num_points=1, layout=LAYOUT)
    for core in (0, 1, 2):
        sync.submit(core, SyncOp.SINC, 0)
    sync.submit(4, SyncOp.SNOP, 0)
    sync.end_cycle()
    assert sync.sleep(4) is True  # consumer clock-gates

    for core in (0, 1, 2):
        sync.submit(core, SyncOp.SDEC, 0)
    woken = sync.end_cycle()
    assert 4 in woken
    assert sync.point_state(0) == (0, 0)


def test_figure_3b_completion_restores_lockstep():
    """Continue Fig. 3-b until all three cores resume together."""
    sync = Synchronizer(num_cores=8, num_points=1, layout=LAYOUT)
    for core in (0, 1, 2):
        sync.submit(core, SyncOp.SINC, 0)
    sync.end_cycle()

    # Cores finish the branch in the order 0, 2, 1.
    sync.submit(0, SyncOp.SDEC, 0)
    sync.end_cycle()
    assert sync.sleep(0) is True
    sync.submit(2, SyncOp.SDEC, 0)
    sync.end_cycle()
    assert sync.sleep(2) is True
    sync.submit(1, SyncOp.SDEC, 0)
    woken = sync.end_cycle()
    assert set(woken) == {0, 2}
    # Core 1 fired the event toward itself; its SLEEP falls through.
    assert sync.sleep(1) is False
