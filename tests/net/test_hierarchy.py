"""Hierarchy-layer tests: tokens, validation, error compounding."""

import pytest

from repro.net.clock import ClockSpec, LocalClock
from repro.net.hierarchy import (
    HIERARCHIES,
    HierarchySpec,
    MEGA_CAMPUS,
    ROOT_PATH,
    Tier,
    WARD_CAMPUS,
    _stream,
    build_member,
    compose_errors,
    get_hierarchy,
    hierarchy_token,
    hop_error_samples,
    parse_hierarchy,
)
from repro.net.radio import beacon_schedule, receive_beacons
from repro.net.scenarios import get_scenario


# ---------------------------------------------------------------------------
# Tokens and presets
# ---------------------------------------------------------------------------

def test_presets_serialise_to_their_registry_names():
    for name, spec in HIERARCHIES.items():
        assert hierarchy_token(spec) == name
        assert parse_hierarchy(name) is spec
        assert get_hierarchy(name) is spec


def test_token_round_trip_preserves_tiers_and_base():
    token = "tiers:ftsp@10x4~0.5/rbs@2.5x6:dense-ward"
    spec = parse_hierarchy(token)
    assert spec.name == token
    assert hierarchy_token(spec) == token
    assert spec.base is get_scenario("dense-ward")
    assert [t.name for t in spec.tiers] == ["backbone", "cluster"]
    backbone, cluster = spec.tiers
    assert backbone.protocol == "ftsp"
    assert backbone.beacon_period_s == 10.0
    assert backbone.fan_out == 4
    assert backbone.drift_scale == 0.5
    assert cluster.protocol == "rbs"
    assert cluster.beacon_period_s == 2.5
    assert cluster.drift_scale == 1.0  # omitted scale defaults to 1


def test_unit_drift_scale_is_omitted_from_tokens():
    spec = parse_hierarchy("tiers:rbs@2x6:dense-ward")
    assert "~" not in hierarchy_token(spec)
    assert [t.name for t in spec.tiers] == ["cluster"]


def test_three_tier_tokens_name_the_middle_levels():
    spec = parse_hierarchy("tiers:ftsp@10x2/ftsp@5x2/rbs@1x3:dense-ward")
    assert [t.name for t in spec.tiers] == ["backbone", "relay1",
                                            "cluster"]


def test_generated_base_tokens_survive_the_round_trip():
    token = "tiers:rbs@2x3:gen:dense-ward:7:4:balanced"
    spec = parse_hierarchy(token)
    assert spec.base.apps.kind == "generated-suite"
    assert hierarchy_token(spec) == token


@pytest.mark.parametrize("bad", [
    "no-such-preset",
    "tiers:",
    "tiers:rbs@2x6",            # no base
    "tiers:rbs2x6:dense-ward",  # missing @
    "tiers:rbs@2q6:dense-ward",  # missing x
    "tiers:rbs@abcx6:dense-ward",
    "tiers:rbs@2x6~zz:dense-ward",
    "tiers:rbs@2x6:no-such-scenario",
])
def test_malformed_tokens_raise_value_error(bad):
    with pytest.raises(ValueError):
        parse_hierarchy(bad)


def test_tier_and_spec_validation():
    with pytest.raises(ValueError):
        Tier(name="", protocol="rbs", beacon_period_s=1.0, fan_out=2)
    with pytest.raises(ValueError):
        Tier(name="x", protocol="nope", beacon_period_s=1.0, fan_out=2)
    with pytest.raises(ValueError):
        Tier(name="x", protocol="rbs", beacon_period_s=0.0, fan_out=2)
    with pytest.raises(ValueError):
        Tier(name="x", protocol="rbs", beacon_period_s=1.0, fan_out=0)
    with pytest.raises(ValueError):
        Tier(name="x", protocol="rbs", beacon_period_s=1.0, fan_out=2,
             drift_scale=0.0)
    with pytest.raises(ValueError):
        HierarchySpec(name="x", base="dense-ward")  # not a Scenario
    with pytest.raises(ValueError):
        HierarchySpec(name="x", base=get_scenario("dense-ward"),
                      tiers=("rbs",))


# ---------------------------------------------------------------------------
# Shape arithmetic and degenerate specs
# ---------------------------------------------------------------------------

def test_tier_counts_are_cumulative_fan_out_products():
    assert WARD_CAMPUS.tier_counts == (8, 128)
    assert WARD_CAMPUS.n_nodes == 137
    assert WARD_CAMPUS.subtrees == 8
    assert WARD_CAMPUS.subtree_nodes == 17  # 1 gateway + 16 leaves
    assert MEGA_CAMPUS.n_nodes == 1 + 320 + 320 * 320


def test_empty_hierarchy_is_the_root_alone():
    spec = HierarchySpec(name="solo", base=get_scenario("dense-ward"))
    assert spec.tier_counts == ()
    assert spec.n_nodes == 1
    assert spec.subtrees == 0
    assert spec.subtree_nodes == 0


# ---------------------------------------------------------------------------
# Member draws
# ---------------------------------------------------------------------------

def test_member_draws_depend_on_path_not_call_order():
    spec = WARD_CAMPUS
    a1, c1 = build_member(spec, 0, "3", seed=9, duration_s=4.0)
    _ = build_member(spec, 1, "3.7", seed=9, duration_s=4.0)
    a2, c2 = build_member(spec, 0, "3", seed=9, duration_s=4.0)
    assert (a1.name, a1.token, a1.policy) == (a2.name, a2.token,
                                              a2.policy)
    assert c1.spec == c2.spec
    _, other = build_member(spec, 0, "4", seed=9, duration_s=4.0)
    assert other.spec != c1.spec


def test_drift_scale_scales_the_drawn_magnitude():
    base = get_scenario("dense-ward")
    tier = dict(protocol="rbs", beacon_period_s=2.0, fan_out=4)
    full = HierarchySpec(name="f", base=base,
                         tiers=(Tier(name="t", **tier),))
    half = HierarchySpec(name="h", base=base,
                         tiers=(Tier(name="t", drift_scale=0.5, **tier),))
    _, clock_full = build_member(full, 0, "0", seed=5, duration_s=4.0)
    _, clock_half = build_member(half, 0, "0", seed=5, duration_s=4.0)
    assert clock_half.spec.drift_ppm == pytest.approx(
        clock_full.spec.drift_ppm * 0.5)


def test_only_leaf_tiers_suffer_power_loss():
    spec = parse_hierarchy(
        "tiers:ftsp@10x2/rbs@1x2:intermittent-harvesting")
    assert spec.base.power_loss_rate_hz > 0
    _, gateway = build_member(spec, 0, "0", seed=1, duration_s=4.0)
    _, leaf = build_member(spec, 1, "0.0", seed=1, duration_s=4.0)
    _, root = build_member(spec, -1, ROOT_PATH, seed=1, duration_s=4.0)
    assert gateway.spec.power_loss_rate_hz == 0.0
    assert root.spec.power_loss_rate_hz == 0.0
    assert leaf.spec.power_loss_rate_hz == spec.base.power_loss_rate_hz


# ---------------------------------------------------------------------------
# Error compounding across hops
# ---------------------------------------------------------------------------

def _clock(drift_ppm, offset_s, horizon_s=8.0):
    return LocalClock(
        ClockSpec(drift_ppm=drift_ppm, jitter_s=0.0,
                  initial_offset_s=offset_s),
        _stream(1, f"test{drift_ppm}:{offset_s}", "clock"),
        horizon_s=horizon_s)


def test_composed_baselines_telescope_to_leaf_minus_root():
    """(leaf - gateway) + (gateway - root) == leaf - root, per sample."""
    base = get_scenario("dense-ward")
    duration = 8.0
    sample_times = [0.5 * (i + 1) for i in range(16)]
    root = _clock(0.0, 0.0)
    gateway = _clock(40.0, 0.002)
    leaf = _clock(-80.0, -0.003)
    root_readings = [root.read(t) for t in sample_times]
    gw_beacons = beacon_schedule(2.0, duration, root)
    gw_rx = receive_beacons(gw_beacons, gateway, base.radio,
                            _stream(1, "t:gw", "radio"))
    gw_hop, gw_base = hop_error_samples(
        "ftsp", gw_rx, gateway, sample_times, root_readings)
    gw_readings = [gateway.read(t) for t in sample_times]
    leaf_beacons = beacon_schedule(1.0, duration, gateway)
    leaf_rx = receive_beacons(leaf_beacons, leaf, base.radio,
                              _stream(1, "t:leaf", "radio"))
    leaf_hop, leaf_base = hop_error_samples(
        "rbs", leaf_rx, leaf, sample_times, gw_readings)

    composed = compose_errors(leaf_base, compose_errors(gw_base, None))
    direct = [leaf.read(t) - root_readings[i]
              for i, t in enumerate(sample_times)]
    assert composed == pytest.approx(direct, abs=1e-12)

    # Synced composition: effective error is hop + parent, exactly.
    eff = compose_errors(leaf_hop, gw_hop)
    assert eff == [h + p for h, p in zip(leaf_hop, gw_hop)]
    # A synced leaf beats its free-running counterfactual.
    assert sum(abs(e) for e in eff) < sum(abs(b) for b in composed)


def test_tier0_members_compose_against_nothing():
    hop = [0.1, -0.2, 0.3]
    assert compose_errors(hop, None) == hop
    assert compose_errors(hop, None) is not hop  # defensive copy


def test_hop_errors_are_signed():
    """Composition needs signs: a fast clock yields positive errors."""
    sample_times = [1.0, 2.0, 3.0]
    fast = _clock(200.0, 0.01)
    parent = [float(t) for t in sample_times]
    _, baselines = hop_error_samples("none", [], fast, sample_times,
                                     parent)
    assert all(b > 0 for b in baselines)
    slow = _clock(-200.0, -0.01)
    _, baselines = hop_error_samples("none", [], slow, sample_times,
                                     parent)
    assert all(b < 0 for b in baselines)
