"""Property-based round-trip tests for net scenario and tiers tokens.

Scenario tokens (``gen:<base>:<seed>:<count>:<policy>[:<fams>]
[:<cores>]``) and hierarchy tokens (``tiers:<proto@PxF[~S]/...>:
<base>``) ride through sweep points, caches and artifacts as plain
JSON scalars, so their canonical form must survive ``token -> parse
-> token`` byte-identically.  Malformed tokens must raise
:class:`ValueError` naming the offending field.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.gen.policies import POLICIES
from repro.gen.topology import FAMILY_ORDER
from repro.net.hierarchy import HIERARCHIES, hierarchy_token, parse_hierarchy
from repro.net.scenarios import (
    SCENARIOS,
    generated_scenario,
    parse_scenario,
    scenario_token,
)
from repro.net.timesync import PROTOCOLS

#: Positive floats whose ``{value:g}`` rendering parses back to the
#: same double — one decimal digit, <= 6 significant digits.
nice_floats = st.integers(min_value=1, max_value=5000).map(
    lambda n: n / 10
)

scenario_tokens = st.builds(
    lambda base, seed, count, policy, families, cores: scenario_token(
        generated_scenario(
            base=base,
            seed=seed,
            count=count,
            policy=policy,
            families=families or None,
            num_cores=cores,
        )
    ),
    base=st.sampled_from(sorted(SCENARIOS)),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    count=st.integers(min_value=1, max_value=32),
    policy=st.sampled_from(sorted(POLICIES)),
    families=st.lists(
        st.sampled_from(FAMILY_ORDER), unique=True, max_size=5
    ).map(tuple),
    cores=st.integers(min_value=1, max_value=32),
)

base_tokens = st.sampled_from(sorted(SCENARIOS)) | scenario_tokens

tier_segments = st.builds(
    lambda proto, period, fan, scale: (
        f"{proto}@{period:g}x{fan}"
        + (f"~{scale:g}" if scale is not None else "")
    ),
    proto=st.sampled_from(sorted(PROTOCOLS)),
    period=nice_floats,
    fan=st.integers(min_value=1, max_value=16),
    scale=st.none() | nice_floats.filter(lambda v: v != 1.0),
)

tiers_tokens = st.builds(
    lambda segments, base: f"tiers:{'/'.join(segments)}:{base}",
    segments=st.lists(tier_segments, min_size=1, max_size=3),
    base=base_tokens,
)


@settings(deadline=None)
@given(name=st.sampled_from(sorted(SCENARIOS)))
def test_scenario_preset_round_trips(name):
    assert scenario_token(parse_scenario(name)) == name


@settings(deadline=None)
@given(token=scenario_tokens)
def test_generated_scenario_token_round_trips(token):
    assert scenario_token(parse_scenario(token)) == token


@settings(deadline=None)
@given(name=st.sampled_from(sorted(HIERARCHIES)))
def test_hierarchy_preset_round_trips(name):
    assert hierarchy_token(parse_hierarchy(name)) == name


@settings(deadline=None, max_examples=50)
@given(token=tiers_tokens)
def test_tiers_token_round_trips(token):
    assert hierarchy_token(parse_hierarchy(token)) == token


@settings(deadline=None)
@given(
    name=st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12
    ).filter(lambda s: s not in SCENARIOS)
)
def test_unknown_scenario_names_the_choices(name):
    with pytest.raises(ValueError) as err:
        parse_scenario(name)
    assert "choose from" in str(err.value)


@settings(deadline=None)
@given(seed=st.sampled_from(("x", "1.5", "", "one")))
def test_non_integer_scenario_seed_names_the_field(seed):
    with pytest.raises(ValueError, match="seed"):
        parse_scenario(f"gen:dense-ward:{seed}:3:paper")


@settings(deadline=None)
@given(
    parts=st.integers(min_value=1, max_value=4)
    | st.integers(min_value=8, max_value=9)
)
def test_wrong_arity_scenario_token_is_malformed(parts):
    token = ":".join(["gen", "dense-ward", "1", "3", "paper", "", "8",
                      "9", "10"][:parts])
    with pytest.raises(ValueError, match="malformed|unknown"):
        parse_scenario(token)


@settings(deadline=None)
@given(segment=st.sampled_from(("ftsp10x4", "rbs@2y6", "x", "@x")))
def test_malformed_tier_segment_is_rejected(segment):
    with pytest.raises(ValueError, match="malformed hierarchy token"):
        parse_hierarchy(f"tiers:{segment}:dense-ward")


@settings(deadline=None)
@given(period=st.sampled_from(("p", "", "2x3")))
def test_non_numeric_tier_period_names_the_field(period):
    with pytest.raises(ValueError, match="period"):
        parse_hierarchy(f"tiers:ftsp@{period}x4:dense-ward")
