"""Tests for the per-node clock model (drift, jitter, resets)."""

import random

import pytest

from repro.net.clock import ClockSpec, LocalClock


def _clock(spec: ClockSpec, seed: str = "t", horizon: float = 100.0):
    return LocalClock(spec, random.Random(seed), horizon_s=horizon)


def test_drift_is_linear_in_global_time():
    clock = _clock(ClockSpec(drift_ppm=100.0, initial_offset_s=1.5))
    assert clock.read(0.0) == pytest.approx(1.5)
    assert clock.read(10.0) == pytest.approx(1.5 + 10.0 * 1.0001)
    # 100 ppm fast: one extra millisecond every ten seconds.
    assert clock.read(10.0) - clock.read(0.0) - 10.0 == \
        pytest.approx(1e-3)


def test_negative_drift_runs_slow():
    clock = _clock(ClockSpec(drift_ppm=-50.0))
    assert clock.read(20.0) < 20.0
    assert 20.0 - clock.read(20.0) == pytest.approx(1e-3)


def test_timestamp_adds_noise_but_read_is_exact():
    spec = ClockSpec(drift_ppm=0.0, jitter_s=1e-4)
    clock = _clock(spec)
    reads = {clock.read(5.0) for _ in range(5)}
    assert reads == {5.0}
    stamps = [clock.timestamp(5.0) for _ in range(50)]
    assert len(set(stamps)) > 1
    assert max(abs(s - 5.0) for s in stamps) < 1e-3  # ~10 sigma


def test_timestamp_stream_is_seed_deterministic():
    spec = ClockSpec(jitter_s=1e-5)
    a = [_clock(spec, seed="s").timestamp(t) for t in (1.0, 2.0)]
    b = [_clock(spec, seed="s").timestamp(t) for t in (1.0, 2.0)]
    assert a == b


def test_power_loss_resets_restart_the_epoch():
    spec = ClockSpec(drift_ppm=0.0, initial_offset_s=7.0,
                     power_loss_rate_hz=0.2)
    clock = _clock(spec, horizon=200.0)
    assert clock.reset_times, "expected resets at rate 0.2/s over 200 s"
    first = clock.reset_times[0]
    assert clock.resets_before(first - 1e-9) == 0
    assert clock.resets_before(first + 1e-9) == 1
    # Before the reset the boot offset is visible; just after, the
    # counter restarts from (near) zero.
    assert clock.read(first - 1e-6) > 7.0
    assert clock.read(first + 1e-6) == pytest.approx(0.0, abs=1e-5)


def test_no_resets_when_rate_is_zero():
    clock = _clock(ClockSpec(power_loss_rate_hz=0.0))
    assert clock.reset_times == []
    assert clock.resets_before(1e9) == 0
