"""Compute fast-path tests: keys, cache tiers, byte-determinism.

The resolver's contract has three load-bearing halves, each pinned
here: the exact tier is *byte-identical* to the legacy inline path
(golden artifacts captured before the resolver landed), the analytic
tier agrees with exact simulation to calibration accuracy on every
scenario preset, and every artifact is deterministic across hash
seeds, worker counts, cache temperature and kill-and-resume.
"""

import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.net.compute import (
    COMPUTE_CACHE_ENV,
    COMPUTE_ENTRY_SCHEMA,
    ComputeCache,
    ComputeResolver,
    ComputeSettings,
    ComputeSummary,
    clear_process_caches,
    compute_settings,
    report_from_payload,
    schedule_signature,
)
from repro.net.fleet import run_fleet
from repro.net.node import build_node
from repro.net.scenarios import SCENARIOS, get_scenario, parse_scenario
from repro.net.streaming import run_streaming
from repro.power.energy import PowerReport
from repro.power.vfs import OperatingPoint
from repro.sysc.engine import (
    BeatEvent,
    cached_uniform_schedule,
    uniform_schedule,
)

ROOT = Path(__file__).resolve().parents[2]
GOLDEN = Path(__file__).parent / "golden"

#: Heterogeneous scenario token shared by several tests.
GEN = "gen:drifting-wearables:1:8:balanced"


def _subprocess_env(**overrides):
    """Env for CLI subprocesses: src importable, no disk cache."""
    env = dict(os.environ)
    env.pop(COMPUTE_CACHE_ENV, None)
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src if not existing else src + os.pathsep + existing
    )
    env.update(overrides)
    return env


def _eval_net(args, tmp_path, name, **env_overrides):
    """Run ``python -m repro.eval net`` writing a JSON artifact."""
    out = tmp_path / name
    subprocess.run(
        [sys.executable, "-m", "repro.eval", "net", *args,
         "--json", str(out)],
        check=True, cwd=tmp_path, env=_subprocess_env(**env_overrides),
        stdout=subprocess.DEVNULL)
    return out


# ---------------------------------------------------------------------------
# Schedule memo + signature
# ---------------------------------------------------------------------------

def test_cached_uniform_schedule_memoises_per_shape():
    cached_uniform_schedule.cache_clear()
    a = cached_uniform_schedule(2.0, 250.0, 72.0, 0.25)
    b = cached_uniform_schedule(2.0, 250.0, 72.0, 0.25)
    assert a is b  # same object, not merely equal
    assert a == tuple(uniform_schedule(2.0, 250.0, bpm=72.0,
                                       abnormal_ratio=0.25))
    c = cached_uniform_schedule(2.0, 250.0, 80.0, 0.25)
    assert c is not a
    cached_uniform_schedule.cache_clear()
    d = cached_uniform_schedule(2.0, 250.0, 72.0, 0.25)
    assert d is not a and d == a


def test_schedule_signature_reads_what_simulate_reads():
    schedule = [
        BeatEvent(sample=5, abnormal=True),
        BeatEvent(sample=12, abnormal=False),   # normal: invisible
        BeatEvent(sample=90, abnormal=True),    # beyond ticks: counted
        BeatEvent(sample=40, abnormal=True),
    ]
    assert schedule_signature(schedule, 80) == [80, 3, [5, 40]]
    # Normal beats never influence the signature at all.
    padded = schedule + [BeatEvent(sample=7, abnormal=False)]
    assert schedule_signature(padded, 80) == \
        schedule_signature(schedule, 80)
    # Zero-ratio fleets collapse onto one signature per shape.
    assert schedule_signature(
        uniform_schedule(2.0, 250.0, bpm=60.0), 500) == [500, 0, []]


def test_compute_request_key_is_content_addressed():
    node_a = build_node(get_scenario("dense-ward"), 1, 3, 4.0)
    node_b = build_node(get_scenario("dense-ward"), 1, 3, 4.0)
    assert node_a.compute_request().key == node_b.compute_request().key
    longer = build_node(get_scenario("dense-ward"), 1, 3, 8.0)
    assert longer.compute_request().key != node_a.compute_request().key


# ---------------------------------------------------------------------------
# Exact tier == legacy inline path
# ---------------------------------------------------------------------------

def _strip_provenance(nodes):
    return tuple(replace(node, compute_key="", compute_tier="")
                 for node in nodes)


def test_exact_resolver_matches_legacy_inline():
    clear_process_caches()
    legacy = run_fleet("dense-ward", n_nodes=6, duration_s=2.0)
    exact = run_fleet("dense-ward", n_nodes=6, duration_s=2.0,
                      compute="exact")
    assert legacy.compute is None
    assert exact.compute is not None and exact.compute.mode == "exact"
    assert exact.summary == legacy.summary
    assert _strip_provenance(exact.nodes) == legacy.nodes
    assert all(node.compute_tier == "exact" and node.compute_key
               for node in exact.nodes)
    assert all(node.compute_key == "" and node.compute_tier == ""
               for node in legacy.nodes)


def test_streaming_exact_resolver_matches_legacy():
    token = "tiers:ftsp@4x10/rbs@2x10:dense-ward"
    clear_process_caches()
    legacy = run_streaming(token, duration_s=2.0, seed=1)
    exact = run_streaming(token, duration_s=2.0, seed=1,
                          compute="exact")
    assert legacy.compute is None
    assert exact.compute is not None
    assert exact.summary == legacy.summary
    assert exact.tiers == legacy.tiers


# ---------------------------------------------------------------------------
# Analytic tier: parity with exact simulation on every preset
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("preset", sorted(SCENARIOS))
def test_analytic_parity_on_preset(preset):
    clear_process_caches()
    exact = run_fleet(preset, n_nodes=6, duration_s=2.0,
                      compute="exact")
    clear_process_caches()  # force the analytic tier to do real work
    analytic = run_fleet(preset, n_nodes=6, duration_s=2.0,
                         compute="analytic")
    summary = analytic.compute
    assert summary.mode == "analytic"
    assert summary.calibration is not None
    assert summary.calibration["within"] is True
    assert summary.screened > 0
    assert summary.screened + summary.exact == summary.requests
    # The radio/clock/sync half is shared verbatim.
    assert analytic.summary.sync == exact.summary.sync
    assert analytic.summary.steady_sync == exact.summary.steady_sync
    assert analytic.summary.unsync == exact.summary.unsync
    assert analytic.summary.beacons_heard == exact.summary.beacons_heard
    # Power agrees to calibration accuracy (closed-form vs RTL walk).
    assert analytic.summary.mean_power_uw == pytest.approx(
        exact.summary.mean_power_uw, rel=1e-9)
    for a, b in zip(analytic.nodes, exact.nodes):
        assert a.power.total_uw == pytest.approx(b.power.total_uw,
                                                 rel=1e-9)


def test_analytic_worker_count_determinism():
    clear_process_caches()
    serial = run_fleet(GEN, n_nodes=10, duration_s=2.0,
                       compute="analytic", workers=1)
    parallel = run_fleet(GEN, n_nodes=10, duration_s=2.0,
                         compute="analytic", workers=3)
    assert parallel.mode == "parallel"
    assert parallel.summary == serial.summary
    assert parallel.nodes == serial.nodes
    assert parallel.compute == serial.compute


# ---------------------------------------------------------------------------
# Logical counters + cache temperature independence
# ---------------------------------------------------------------------------

def test_summary_counters_are_logical():
    summary = ComputeSummary(mode="analytic", requests=24,
                             distinct_keys=9, screened=20, exact=4)
    assert summary.cache_hits == 15
    assert summary.cache_misses == 9
    assert summary.cache_stores == 9
    block = summary.to_mapping()
    assert block["cache"] == {"hits": 15, "misses": 9, "stores": 9}
    assert "calibration" not in block


def test_resolver_summary_identical_cold_and_warm():
    scenario = get_scenario("dense-ward")
    requests = [
        build_node(scenario, node_id, 3, 2.0).compute_request()
        for node_id in range(6)
    ]
    clear_process_caches()
    resolver = ComputeResolver(ComputeSettings(mode="exact"))
    cold = resolver.resolve(requests)
    warm = resolver.resolve(requests)  # memo now serves every key
    assert warm.summary == cold.summary
    for key, entry in cold.table.items():
        assert warm.table[key].payload == entry.payload


def test_disk_cache_cold_vs_warm_nodes_identical(tmp_path, monkeypatch):
    monkeypatch.setenv(COMPUTE_CACHE_ENV, str(tmp_path))
    clear_process_caches()
    cold = run_fleet(GEN, n_nodes=8, duration_s=2.0,
                     compute="analytic")
    assert list(tmp_path.rglob("*.json"))  # disk layer engaged
    clear_process_caches()  # second run must be served from disk
    warm = run_fleet(GEN, n_nodes=8, duration_s=2.0,
                     compute="analytic")
    assert warm.summary == cold.summary
    assert warm.nodes == cold.nodes
    assert warm.compute == cold.compute


# ---------------------------------------------------------------------------
# ComputeCache mechanics
# ---------------------------------------------------------------------------

def _entry_payload():
    report = PowerReport(
        operating_point=OperatingPoint(frequency_mhz=12.0, voltage=1.0),
        duration_s=2.0,
        categories={"cores_logic": 10.0, "leakage": 1.5},
    )
    return {
        "schema": COMPUTE_ENTRY_SCHEMA,
        "tier": "exact",
        "frequency_mhz": report.operating_point.frequency_mhz,
        "voltage": report.operating_point.voltage,
        "duration_s": report.duration_s,
        "categories": dict(report.categories),
    }


def test_cache_roundtrip_and_corrupt_entries(tmp_path):
    cache = ComputeCache(tmp_path)
    key = "ab" + "0" * 38
    cache.put(key, _entry_payload())
    clear_process_caches()  # force the disk read
    assert ComputeCache(tmp_path).get(key) == _entry_payload()
    # Corrupt bytes and foreign schemas both read as misses.
    path = cache._path(key)
    path.write_text("{not json", encoding="utf-8")
    clear_process_caches()
    assert ComputeCache(tmp_path).get(key) is None
    path.write_text(json.dumps({"schema": "other/1"}), encoding="utf-8")
    clear_process_caches()
    assert ComputeCache(tmp_path).get(key) is None


def test_cache_root_from_environment(tmp_path, monkeypatch):
    monkeypatch.setenv(COMPUTE_CACHE_ENV, str(tmp_path))
    assert ComputeCache(None).root == tmp_path
    monkeypatch.delenv(COMPUTE_CACHE_ENV)
    assert ComputeCache(None).root is None
    assert ComputeCache(tmp_path / "explicit").root == \
        tmp_path / "explicit"


def test_report_rebuilds_in_canonical_category_order():
    payload = _entry_payload()
    # A JSON round trip with sort_keys scrambles insertion order.
    scrambled = json.loads(json.dumps(payload, sort_keys=True))
    scrambled["categories"]["radio"] = 3.25  # unknown extra category
    report = report_from_payload(scrambled)
    assert list(report.categories) == ["cores_logic", "leakage",
                                       "radio"]
    assert report.total_uw == 10.0 + 1.5 + 3.25


def test_compute_settings_normalisation():
    assert compute_settings(None) is None
    settings = compute_settings("analytic", "/tmp/x")
    assert settings == ComputeSettings(mode="analytic",
                                       cache_dir="/tmp/x")
    assert compute_settings(settings) is settings
    with pytest.raises(ValueError):
        compute_settings("fuzzy")


# ---------------------------------------------------------------------------
# Universe enumeration (the closed set streaming pre-resolves)
# ---------------------------------------------------------------------------

def test_benchmark_universe_covers_the_mix():
    scenario = get_scenario("dense-ward")
    universe = scenario.apps.universe(scenario.abnormal_ratio)
    names = [binding.app.name for binding in universe]
    assert names == list(dict.fromkeys(
        name for name, _ in scenario.apps.mix))
    assert all(binding.app_key for binding in universe)


def test_generated_universe_covers_every_fleet_binding():
    scenario = parse_scenario(GEN)
    universe = scenario.apps.universe(scenario.abnormal_ratio)
    tokens = {binding.token for binding in universe}
    result = run_fleet(GEN, n_nodes=12, duration_s=2.0)
    assert {node.token for node in result.nodes
            if node.node_id != 0} <= tokens


# ---------------------------------------------------------------------------
# Byte-determinism of the CLI artifacts
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("args, golden", [
    (["--scenario", "dense-ward", "--nodes", "8", "--duration", "2"],
     "net_v1_dense-ward_n8_d2.json"),
    (["--suite-seed", "7", "--suite-count", "12", "--policy",
      "balanced", "--nodes", "10", "--duration", "4"],
     "net_v2_suite7_n10_d4.json"),
    (["--tiers", "ward-campus", "--duration", "4"],
     "net_v3_ward-campus_d4.json"),
])
def test_exact_mode_artifact_matches_pre_resolver_golden(
        args, golden, tmp_path):
    """Default ``--compute exact`` must reproduce the pre-PR bytes."""
    out = _eval_net(args, tmp_path, "artifact.json")
    assert out.read_bytes() == (GOLDEN / golden).read_bytes()


def test_analytic_artifact_stable_across_hash_seeds(tmp_path):
    args = ["--scenario", "dense-ward", "--nodes", "6",
            "--duration", "2", "--compute", "analytic"]
    a = _eval_net(args, tmp_path, "a.json", PYTHONHASHSEED="1")
    b = _eval_net(args, tmp_path, "b.json", PYTHONHASHSEED="42")
    assert a.read_bytes() == b.read_bytes()
    payload = json.loads(a.read_text(encoding="utf-8"))
    block = payload["compute_summary"]
    assert block["mode"] == "analytic"
    assert block["calibration"]["within"] is True
    assert block["cache"]["hits"] == \
        block["requests"] - block["distinct_keys"]


def test_analytic_streaming_kill_and_resume_byte_identical(tmp_path):
    token = "tiers:ftsp@4x10/rbs@2x10:dense-ward"
    base = ["--tiers", token, "--duration", "2", "--wave", "2",
            "--compute", "analytic"]
    ckpt = tmp_path / "ckpt"
    interrupted = tmp_path / "resumed.json"
    subprocess.run(
        [sys.executable, "-m", "repro.eval", "net", *base,
         "--checkpoint-dir", str(ckpt), "--max-waves", "1",
         "--json", str(interrupted)],
        check=True, cwd=tmp_path, env=_subprocess_env(),
        stdout=subprocess.DEVNULL)
    assert not interrupted.exists()  # incomplete runs write nothing
    resumed = _eval_net(
        base + ["--checkpoint-dir", str(ckpt)], tmp_path,
        "resumed.json")
    cold = _eval_net(base, tmp_path, "cold.json")
    assert resumed.read_bytes() == cold.read_bytes()
