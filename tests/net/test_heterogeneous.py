"""Determinism and reporting of heterogeneous generated-app fleets.

The guarantees under test mirror the homogeneous fleet contract:
identical ``(scenario, seed)`` must produce bit-identical fleets
regardless of worker count, process boundaries or hash
randomisation — now with nodes that regenerate applications and run
mapping policies inside worker processes.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.eval.netexp import net_payload, run_net
from repro.net.fleet import run_fleet

_SRC_ROOT = str(Path(repro.__file__).resolve().parent.parent)

#: Serialise one heterogeneous fleet's deterministic artifact.
_DUMP_SCRIPT = """
import json
from repro.eval.netexp import net_payload, run_net
report = run_net(suite_seed=5, suite_count=6, policy="balanced",
                 n_nodes=6, duration_s=2.0, seed=9)
print(json.dumps(net_payload(report), sort_keys=True,
                 separators=(",", ":")))
"""


def _dump_with_hashseed(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = _SRC_ROOT + os.pathsep + \
        env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _DUMP_SCRIPT],
        env=env, capture_output=True, text=True, check=True)
    return result.stdout


def test_heterogeneous_fleet_identical_across_hashseeds():
    dumps = [_dump_with_hashseed(seed) for seed in ("0", "1", "4242")]
    assert dumps[0] == dumps[1] == dumps[2]
    # And the subprocess output matches this very process too.
    report = run_net(suite_seed=5, suite_count=6, policy="balanced",
                     n_nodes=6, duration_s=2.0, seed=9)
    local = json.dumps(net_payload(report), sort_keys=True,
                       separators=(",", ":")) + "\n"
    assert dumps[0] == local


def test_heterogeneous_fleet_workers_do_not_change_bytes():
    """workers=1 and workers=4 produce the same summary and nodes."""
    common = dict(n_nodes=9, duration_s=2.0, seed=4)
    serial = run_fleet("generated-swarm", workers=1, **common)
    parallel = run_fleet("generated-swarm", workers=4, **common)
    assert parallel.mode == "parallel"
    assert parallel.summary == serial.summary
    assert parallel.nodes == serial.nodes
    # the artifact built from either run is the same document
    a = net_payload(run_net(scenario="generated-swarm", workers=1,
                            n_nodes=9, duration_s=2.0, seed=4,
                            suite_seed=None))
    b = net_payload(run_net(scenario="generated-swarm", workers=4,
                            n_nodes=9, duration_s=2.0, seed=4,
                            suite_seed=None))
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_mixed_fleet_workers_do_not_change_bytes():
    common = dict(n_nodes=8, duration_s=2.0, seed=6)
    serial = run_fleet("mixed-clinic", workers=1, **common)
    parallel = run_fleet("mixed-clinic", workers=3, **common)
    assert parallel.summary == serial.summary
    assert parallel.nodes == serial.nodes


def test_heterogeneous_summary_carries_breakdowns():
    result = run_fleet("generated-swarm", n_nodes=8, duration_s=2.0,
                       seed=2)
    summary = result.summary
    assert summary.source == "generated-suite"
    assert summary.families and summary.policies
    assert sum(group.nodes for group in summary.families) == 8
    assert sum(group.nodes for group in summary.policies) == 8
    assert [group.name for group in summary.families] == \
        sorted(group.name for group in summary.families)
    # every node carries its app token and pays its own clock floor
    assert all(node.token for node in result.nodes)
    assert any(node.floor_mhz > 0 for node in result.nodes)
    # follower error samples are fully attributed to family groups
    followers = [n for n in result.nodes if n.node_id != 0]
    assert sum(g.steady_sync.count for g in summary.families) == \
        sum(n.steady_sync.count for n in followers)


def test_benchmark_fleet_summary_stays_benchmark_shaped():
    result = run_fleet("dense-ward", n_nodes=4, duration_s=2.0, seed=2)
    summary = result.summary
    assert summary.source == "benchmark"
    # groups exist (grouped by app name / implicit paper policy) but
    # the artifact and the renderer keep the v1 shape
    payload = net_payload(run_net(scenario="dense-ward", n_nodes=4,
                                  duration_s=2.0, seed=2))
    assert payload["schema"] == "repro-net/1"
    assert "families" not in payload
    assert "token" not in payload["nodes"][0]


def test_heterogeneous_payload_is_v2_with_node_identities():
    report = run_net(suite_seed=5, suite_count=6, policy="balanced",
                     n_nodes=5, duration_s=2.0, seed=9)
    payload = net_payload(report)
    assert payload["schema"] == "repro-net/2"
    assert payload["source"] == "generated-suite"
    assert {group["name"] for group in payload["policies"]} == \
        {"balanced"}
    for node in payload["nodes"]:
        assert node["token"]
        assert node["policy"] == "balanced"


def test_nodes_pay_their_sources_platform_width():
    """num_cores reaches the simulator: narrow platforms cost less."""
    from repro.net.scenarios import generated_scenario

    def fleet(num_cores):
        scenario = generated_scenario(
            base="dense-ward", seed=5, count=4, policy="balanced",
            families=("pipeline",), num_cores=num_cores)
        return run_fleet(scenario, n_nodes=3, duration_s=1.0, seed=2)

    narrow, wide = fleet(4), fleet(12)
    for narrow_node, wide_node in zip(narrow.nodes, wide.nodes):
        assert narrow_node.token == wide_node.token  # same draws
    # clock-tree/leakage power scales with the provisioned width
    assert narrow.summary.mean_power_uw < wide.summary.mean_power_uw


def test_run_fleet_rejects_unknown_scenarios_at_entry():
    """The satellite fix: a clear ValueError before any lookup."""
    with pytest.raises(ValueError, match="unknown scenario 'mars-rover'"):
        run_fleet("mars-rover")
    with pytest.raises(ValueError, match="dense-ward"):
        run_fleet("mars-rover")  # lists the valid names
    with pytest.raises(ValueError, match="must be a name or Scenario"):
        run_fleet(42)  # type: ignore[arg-type]
