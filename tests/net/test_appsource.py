"""Tests for the pluggable per-node application sources."""

import random

import pytest

from repro.apps.mapping import MappingError
from repro.gen.generator import parse_app_token
from repro.net.appsource import (
    APPS,
    BenchmarkSource,
    GeneratedSuiteSource,
    MixedSource,
    source_from_mapping,
)
from repro.net.scenarios import (
    SCENARIOS,
    generated_scenario,
    parse_scenario,
    scenario_token,
)


def _rng(seed="x"):
    return random.Random(seed)


# ---------------------------------------------------------------------------
# BenchmarkSource
# ---------------------------------------------------------------------------

def test_benchmark_source_draw_is_byte_compatible_with_app_mix():
    """Binding consumes exactly the historical weighted draw."""
    mix = (("3L-MF", 2.0), ("3L-MMD", 1.0))
    source = BenchmarkSource(mix=mix)
    rng_old, rng_new = _rng(), _rng()
    names = [name for name, _ in mix]
    weights = [weight for _, weight in mix]
    expected = rng_old.choices(names, weights=weights)[0]
    binding = source.bind(rng_new)
    assert binding.name == expected
    # the streams stay aligned after the draw, so every later draw
    # (bpm, drift, ...) is unchanged too
    assert rng_old.random() == rng_new.random()
    assert binding.plan is None and binding.token == ""
    assert binding.floor_mhz == 0.0


def test_benchmark_source_validates_mix():
    with pytest.raises(ValueError, match="unknown benchmark"):
        BenchmarkSource(mix=(("NOPE", 1.0),))
    with pytest.raises(ValueError, match="weight"):
        BenchmarkSource(mix=(("3L-MF", 0.0),))
    with pytest.raises(ValueError, match="non-empty"):
        BenchmarkSource(mix=())


# ---------------------------------------------------------------------------
# GeneratedSuiteSource
# ---------------------------------------------------------------------------

def test_generated_source_binds_suite_apps_with_plans():
    source = GeneratedSuiteSource(seed=11, count=6, policy="balanced")
    binding = source.bind(_rng())
    assert binding.token in source.tokens()
    family, seed, _, _ = parse_app_token(binding.token)
    assert binding.family == family and seed == 11
    assert binding.policy == "balanced"
    assert binding.plan is not None and binding.plan.multicore
    assert binding.floor_mhz > 0.0
    assert binding.app.name.startswith("G")


def test_generated_source_binding_is_deterministic():
    source = GeneratedSuiteSource(seed=3, count=5, policy="paper")
    a = source.bind(_rng("node-4"))
    b = source.bind(_rng("node-4"))
    assert a.token == b.token
    assert a.plan.section_banks == b.plan.section_banks
    other = source.bind(_rng("node-5"))
    # 5 tokens: different stream names usually land elsewhere, but at
    # minimum the draw is a pure function of the stream
    assert other.token in source.tokens()


def test_generated_source_single_core_policy_yields_sc_plan():
    source = GeneratedSuiteSource(seed=3, count=4, policy="single-core")
    binding = source.bind(_rng())
    assert binding.plan is not None and not binding.plan.multicore
    assert binding.floor_mhz == 0.0  # SC clocks are sized downstream


def test_generated_source_skips_unplaceable_apps():
    """Narrow platforms force repairs; zero-core rejects everything."""
    source = GeneratedSuiteSource(seed=11, count=6, policy="paper",
                                  num_cores=2)
    binding = source.bind(_rng())
    # every generated app has >= 1 phase; with 2 cores wide apps must
    # be repaired (replicas trimmed) or skipped, never crash
    assert binding.plan.active_cores <= 2


def test_generated_source_raises_when_nothing_places():
    source = GeneratedSuiteSource(seed=11, count=2, policy="paper",
                                  num_cores=1)
    with pytest.raises(MappingError, match="places no app"):
        source.bind(_rng())


def test_generated_source_validates_parameters():
    with pytest.raises(ValueError):
        GeneratedSuiteSource(seed=1, count=0)
    with pytest.raises(ValueError):
        GeneratedSuiteSource(seed=1, count=3, policy="nonsense")
    with pytest.raises(ValueError):
        GeneratedSuiteSource(seed=1, count=3, families=("martian",))


# ---------------------------------------------------------------------------
# MixedSource
# ---------------------------------------------------------------------------

def test_mixed_source_delegates_to_parts():
    source = MixedSource(parts=(
        (BenchmarkSource(mix=(("3L-MF", 1.0),)), 1.0),
        (GeneratedSuiteSource(seed=5, count=4, policy="balanced"), 1.0),
    ))
    kinds = set()
    for node in range(30):
        binding = source.bind(_rng(f"n{node}"))
        kinds.add("gen" if binding.token else "bench")
    assert kinds == {"gen", "bench"}


def test_mixed_source_validates_parts():
    with pytest.raises(ValueError):
        MixedSource(parts=())
    with pytest.raises(ValueError):
        MixedSource(parts=((BenchmarkSource(mix=(("3L-MF", 1.0),)),
                            0.0),))


# ---------------------------------------------------------------------------
# Serialisation
# ---------------------------------------------------------------------------

def test_sources_round_trip_through_mappings():
    sources = [
        BenchmarkSource(mix=(("3L-MF", 2.0), ("RP-CLASS", 1.0))),
        GeneratedSuiteSource(seed=9, count=7,
                             families=("pipeline", "fan-in"),
                             policy="critical-path", num_cores=6),
        MixedSource(parts=(
            (BenchmarkSource(mix=(("3L-MMD", 1.0),)), 2.0),
            (GeneratedSuiteSource(seed=2, count=3), 1.0),
        )),
    ]
    for source in sources:
        assert source_from_mapping(source.to_mapping()) == source


def test_source_from_mapping_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown app-source kind"):
        source_from_mapping({"kind": "martian"})


def test_every_preset_source_describes_itself():
    for scenario in SCENARIOS.values():
        assert scenario.apps.describe()
        assert scenario.apps.kind in ("benchmark", "generated-suite",
                                      "mixed")


def test_benchmark_registry_unchanged():
    assert set(APPS) == {"3L-MF", "3L-MMD", "RP-CLASS"}


# ---------------------------------------------------------------------------
# Scenario tokens
# ---------------------------------------------------------------------------

def test_scenario_tokens_round_trip():
    scenario = generated_scenario(base="dense-ward", seed=7, count=12,
                                  policy="balanced")
    token = scenario_token(scenario)
    assert token == "gen:dense-ward:7:12:balanced"
    assert parse_scenario(token) == scenario

    with_families = generated_scenario(
        base="drifting-wearables", seed=3, count=6, policy="paper",
        families=("pipeline", "fork-join"))
    token = scenario_token(with_families)
    assert token == "gen:drifting-wearables:3:6:paper:pipeline+fork-join"
    assert parse_scenario(token) == with_families

    narrow = generated_scenario(base="dense-ward", seed=5, count=4,
                                policy="balanced", num_cores=4)
    token = scenario_token(narrow)
    assert token == "gen:dense-ward:5:4:balanced::4"
    assert parse_scenario(token) == narrow

    narrow_fams = generated_scenario(
        base="dense-ward", seed=5, count=4, policy="balanced",
        families=("pipeline",), num_cores=12)
    token = scenario_token(narrow_fams)
    assert token == "gen:dense-ward:5:4:balanced:pipeline:12"
    assert parse_scenario(token) == narrow_fams

    for name in SCENARIOS:
        assert scenario_token(SCENARIOS[name]) == name
        assert parse_scenario(name) == SCENARIOS[name]


def test_parse_scenario_rejects_malformed_tokens():
    with pytest.raises(ValueError, match="unknown scenario"):
        parse_scenario("mars-rover")
    with pytest.raises(ValueError, match="malformed scenario token"):
        parse_scenario("gen:dense-ward:7")
    with pytest.raises(ValueError, match="seed, count and cores"):
        parse_scenario("gen:dense-ward:x:y:balanced")
    with pytest.raises(ValueError, match="seed, count and cores"):
        parse_scenario("gen:dense-ward:5:4:balanced::many")
    with pytest.raises(ValueError, match="unknown scenario"):
        parse_scenario("gen:mars-rover:7:12:balanced")
    with pytest.raises(ValueError, match="unknown mapping policy"):
        parse_scenario("gen:dense-ward:7:12:nonsense")
