"""Tests for scenario presets and seeded node construction."""

import dataclasses

import pytest

from repro.net.node import APPS, build_node
from repro.net.scenarios import SCENARIOS, Scenario, get_scenario


def test_registry_holds_the_presets():
    assert set(SCENARIOS) == {"dense-ward", "drifting-wearables",
                              "intermittent-harvesting",
                              "generated-swarm", "mixed-clinic"}
    for scenario in SCENARIOS.values():
        assert isinstance(scenario, Scenario)
        assert scenario.default_nodes > 0
        assert scenario.beacon_period_s > 0
        for app_name, weight in scenario.app_mix:
            assert app_name in APPS
            assert weight > 0
    # the benchmark presets still expose their mix through app_mix
    assert SCENARIOS["dense-ward"].app_mix == \
        (("3L-MF", 2.0), ("3L-MMD", 1.0))
    # heterogeneous sources have no fixed benchmark mix
    assert SCENARIOS["generated-swarm"].app_mix == ()


def test_get_scenario_protocol_override_does_not_mutate_preset():
    overridden = get_scenario("dense-ward", protocol="none")
    assert overridden.protocol == "none"
    assert SCENARIOS["dense-ward"].protocol == "rbs"
    assert get_scenario("dense-ward").protocol == "rbs"


def test_get_scenario_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown scenario"):
        get_scenario("mars-rover")


def test_build_node_is_a_pure_function_of_its_seed():
    scenario = get_scenario("drifting-wearables")
    a = build_node(scenario, 5, fleet_seed=9, duration_s=10.0)
    b = build_node(scenario, 5, fleet_seed=9, duration_s=10.0)
    assert (a.app_name, a.bpm, a.clock.spec) == \
        (b.app_name, b.bpm, b.clock.spec)
    other = build_node(scenario, 6, fleet_seed=9, duration_s=10.0)
    assert (a.bpm, a.clock.spec) != (other.bpm, other.clock.spec)


def test_node_parameters_respect_scenario_ranges():
    scenario = get_scenario("drifting-wearables")
    for node_id in range(20):
        node = build_node(scenario, node_id, fleet_seed=4,
                          duration_s=5.0)
        low, high = scenario.drift_ppm_range
        assert low <= abs(node.clock.spec.drift_ppm) <= high
        assert scenario.bpm_range[0] <= node.bpm <= scenario.bpm_range[1]
        assert abs(node.clock.spec.initial_offset_s) <= \
            scenario.initial_offset_s


def test_reference_node_is_continuously_powered():
    scenario = get_scenario("intermittent-harvesting")
    reference = build_node(scenario, 0, fleet_seed=2, duration_s=50.0)
    assert reference.clock.spec.power_loss_rate_hz == 0.0
    assert reference.clock.reset_times == []
    # Followers really do brown out in this scenario.
    resets = sum(
        len(build_node(scenario, node_id, fleet_seed=2,
                       duration_s=50.0).clock.reset_times)
        for node_id in range(1, 8))
    assert resets > 0


def test_presets_can_be_specialised_with_replace():
    tiny = dataclasses.replace(get_scenario("dense-ward"),
                               default_nodes=2)
    assert tiny.default_nodes == 2
    assert SCENARIOS["dense-ward"].default_nodes == 64
