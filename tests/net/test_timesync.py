"""Tests for the inter-node sync protocols and their acceptance bar."""

import pytest

from repro.eval.netexp import run_net
from repro.net.fleet import run_fleet
from repro.net.timesync import (
    FtspSync,
    NoSync,
    ReferenceBroadcastSync,
    make_protocol,
)


def test_nosync_trusts_the_local_clock():
    proto = NoSync()
    proto.on_beacon(123.0, 1.0)
    assert proto.estimate_reference(42.0) == 42.0


def test_rbs_jumps_to_the_last_offset():
    proto = ReferenceBroadcastSync()
    assert proto.estimate_reference(5.0) == 5.0  # nothing heard yet
    proto.on_beacon(100.0, 10.0)
    assert proto.estimate_reference(12.0) == pytest.approx(102.0)
    proto.on_beacon(200.0, 20.0)  # only the latest beacon matters
    assert proto.estimate_reference(21.0) == pytest.approx(201.0)
    proto.on_reboot()
    assert proto.estimate_reference(5.0) == 5.0


def test_ftsp_recovers_offset_and_skew_exactly():
    # Reference runs at ref = 3.0 + 1.0002 * local: noiseless pairs
    # must be reproduced exactly, including extrapolation.
    proto = FtspSync(window=8)
    for local in (10.0, 20.0, 30.0, 40.0):
        proto.on_beacon(3.0 + 1.0002 * local, local)
    assert proto.estimate_reference(100.0) == \
        pytest.approx(3.0 + 1.0002 * 100.0, abs=1e-9)


def test_ftsp_degrades_gracefully():
    proto = FtspSync()
    assert proto.estimate_reference(7.0) == 7.0  # no pairs: local
    proto.on_beacon(50.0, 5.0)
    assert proto.estimate_reference(6.0) == pytest.approx(51.0)  # offset
    proto.on_reboot()
    assert proto.estimate_reference(7.0) == 7.0


def test_ftsp_window_must_hold_two_pairs():
    with pytest.raises(ValueError):
        FtspSync(window=1)


def test_make_protocol_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown sync protocol"):
        make_protocol("ntp")
    assert make_protocol("ftsp").name == "ftsp"


# ---------------------------------------------------------------------------
# Acceptance: >= 10x steady-state error reduction on drifting wearables.
# ---------------------------------------------------------------------------

def test_sync_beats_unsynchronized_drift_by_10x():
    report = run_net("drifting-wearables", n_nodes=12, duration_s=10.0,
                     workers=1, seed=7)
    assert report.unsynced.count == report.synced.count > 0
    assert report.improvement >= 10.0
    # Free-running ±30-120 ppm clocks with ±0.25 s boot offsets sit
    # tens of milliseconds apart; synced they track within ~1 ms.
    assert report.unsynced.mean_abs_s > 10e-3
    assert report.synced.mean_abs_s < 5e-3


def test_free_running_baseline_matches_a_nosync_fleet():
    # The counterfactual recorded alongside the active protocol must
    # equal what an actual protocol="none" fleet measures.
    common = dict(n_nodes=6, duration_s=6.0, seed=13)
    ftsp = run_fleet("drifting-wearables", protocol="ftsp", **common)
    none = run_fleet("drifting-wearables", protocol="none", **common)
    assert ftsp.summary.unsync == none.summary.sync
    assert ftsp.summary.steady_unsync == none.summary.steady_sync
    assert none.summary.sync == none.summary.unsync


def test_skew_compensation_beats_offset_only_sync():
    common = dict(n_nodes=12, duration_s=20.0, seed=11)
    rbs = run_fleet("drifting-wearables", protocol="rbs", **common)
    ftsp = run_fleet("drifting-wearables", protocol="ftsp", **common)
    assert ftsp.summary.steady_sync.mean_abs_s < \
        rbs.summary.steady_sync.mean_abs_s
