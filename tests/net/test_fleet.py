"""Fleet runner tests: determinism, sharding edge cases, scale."""

import pytest

from repro.net.fleet import FleetConfig, FleetRunner, run_fleet
from repro.net.node import REFERENCE_NODE_ID
from repro.net.scenarios import get_scenario
from repro.net.stats import SyncError


def _config(n_nodes, scenario="dense-ward", duration_s=4.0, seed=3):
    return FleetConfig(scenario=get_scenario(scenario), n_nodes=n_nodes,
                       duration_s=duration_s, seed=seed)


def test_serial_and_parallel_are_bit_identical():
    config = _config(7)
    serial = FleetRunner(config).run(workers=1)
    parallel = FleetRunner(config).run(workers=3)
    assert parallel.mode == "parallel"
    assert serial.mode == "serial"
    assert parallel.summary == serial.summary
    assert parallel.nodes == serial.nodes


def test_shard_count_not_dividing_node_count():
    config = _config(7)
    baseline = FleetRunner(config).run(workers=1)
    # 7 nodes in shards of 3 -> shards of 3, 3, 1.
    uneven = FleetRunner(config).run(workers=2, shard_size=3)
    assert uneven.shards == 3
    assert uneven.summary == baseline.summary
    assert uneven.nodes == baseline.nodes


def test_zero_node_fleet_is_empty_but_valid():
    for workers in (1, 2):
        result = FleetRunner(_config(0)).run(workers=workers)
        assert result.nodes == ()
        assert result.summary.n_nodes == 0
        assert result.summary.total_power_uw == 0
        assert result.summary.sync == SyncError()


def test_single_node_fleet_is_the_reference_alone():
    result = FleetRunner(_config(1)).run(workers=2)
    assert len(result.nodes) == 1
    node = result.nodes[0]
    assert node.node_id == REFERENCE_NODE_ID
    assert node.protocol == "reference"
    assert node.beacons_heard == 0
    assert result.summary.beacons_sent > 0  # it still broadcasts
    assert result.summary.sync.count == 0  # nobody to be out of sync


def test_same_seed_reproduces_different_seed_differs():
    a = FleetRunner(_config(5, seed=42)).run()
    b = FleetRunner(_config(5, seed=42)).run()
    c = FleetRunner(_config(5, seed=43)).run()
    assert a.summary == b.summary and a.nodes == b.nodes
    assert c.summary != a.summary


def test_radio_energy_lands_in_the_power_report():
    result = FleetRunner(_config(3)).run()
    reference, *followers = result.nodes
    # The hub pays per-beacon TX energy on top of the listening floor.
    spec = get_scenario("dense-ward").radio
    assert reference.radio_uw > spec.listen_uw
    for node in followers:
        assert node.power.categories["radio"] == node.radio_uw
        assert node.radio_uw > 0.0
    # Radio is part of the node's total power decomposition.
    assert reference.power.total_uw > sum(
        v for k, v in reference.power.categories.items() if k != "radio")


def test_runner_validates_arguments():
    with pytest.raises(ValueError):
        FleetRunner(_config(-1))
    with pytest.raises(ValueError):
        FleetRunner(FleetConfig(scenario=get_scenario("dense-ward"),
                                n_nodes=1, duration_s=0.0))
    runner = FleetRunner(_config(2))
    with pytest.raises(ValueError):
        runner.run(workers=0)
    with pytest.raises(ValueError):
        runner.run(workers=2, shard_size=0)


def test_merged_sync_error_matches_global_statistics():
    result = FleetRunner(_config(6, scenario="drifting-wearables")).run()
    followers = [n for n in result.nodes if n.node_id != 0]
    merged = SyncError.merged([n.sync for n in followers])
    assert merged.count == sum(n.sync.count for n in followers)
    assert merged.max_abs_s == max(n.sync.max_abs_s for n in followers)
    weighted = sum(n.sync.count * n.sync.mean_abs_s for n in followers)
    assert merged.mean_abs_s == pytest.approx(weighted / merged.count)


# ---------------------------------------------------------------------------
# Acceptance: >= 200 drifting nodes for >= 10 s, parallel == serial.
# ---------------------------------------------------------------------------

def test_200_drifting_nodes_parallel_matches_serial():
    common = dict(n_nodes=200, duration_s=10.0, seed=1)
    serial = run_fleet("drifting-wearables", workers=1, **common)
    parallel = run_fleet("drifting-wearables", workers=4, **common)
    assert parallel.mode == "parallel" and parallel.shards == 4
    assert serial.summary.n_nodes == 200
    assert serial.summary.duration_s == 10.0
    assert parallel.summary == serial.summary
    assert parallel.nodes == serial.nodes
    # The fleet really is heterogeneous: drifts spread both ways and
    # several applications are mapped.
    drifts = {round(n.drift_ppm, 3) for n in serial.nodes}
    assert len(drifts) > 100
    assert min(n.drift_ppm for n in serial.nodes) < 0 < \
        max(n.drift_ppm for n in serial.nodes)
    assert len({n.app_name for n in serial.nodes}) > 1
