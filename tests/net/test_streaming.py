"""Streaming executor tests: invariance, checkpoints, degeneracy."""

import json

import pytest

from repro.eval.netexp import hierarchy_payload
from repro.net.hierarchy import HierarchySpec, parse_hierarchy
from repro.net.scenarios import get_scenario
from repro.net.streaming import (
    StreamingConfig,
    StreamingRunner,
    run_streaming,
)

#: Small two-tier fixture: 3 subtrees of 1 gateway + 4 leaves each.
TOKEN = "tiers:ftsp@5x3/rbs@1x4:dense-ward"


def _run(**kwargs):
    kwargs.setdefault("duration_s", 2.0)
    kwargs.setdefault("seed", 7)
    return run_streaming(TOKEN, **kwargs)


def test_wave_size_does_not_change_the_result():
    whole = _run()
    wave1 = _run(wave_size=1)
    wave2 = _run(wave_size=2)
    assert whole.wave_size == 3  # one wave covers every subtree
    assert wave1.waves == 3 and wave2.waves == 2
    assert wave1.summary == whole.summary == wave2.summary
    assert wave1.tiers == whole.tiers == wave2.tiers


def test_worker_count_does_not_change_the_result():
    serial = _run(workers=1)
    parallel = _run(workers=2)
    assert parallel.summary == serial.summary
    assert parallel.tiers == serial.tiers


def test_summary_counts_match_the_spec_shape():
    result = _run()
    spec = parse_hierarchy(TOKEN)
    assert result.completed
    assert result.summary.n_nodes == spec.n_nodes == 16
    assert result.summary.protocol == "ftsp/rbs"
    assert [t.nodes for t in result.tiers] == [3, 12]
    assert result.summary.beacons_heard == sum(
        t.beacons_heard for t in result.tiers)
    # Effective leaf error compounds the gateway hop, so the merged
    # fleet error can never beat the best single tier's hop error.
    assert result.summary.sync.count == sum(
        t.sync.count for t in result.tiers)


def test_checkpoint_resume_is_byte_identical_to_cold(tmp_path):
    cold = _run()
    interrupted = _run(wave_size=1, checkpoint_dir=tmp_path, max_waves=2)
    assert not interrupted.completed
    assert interrupted.subtrees_done == 2
    assert (tmp_path / interrupted.checkpoint.split("/")[-1]).exists()
    resumed = _run(wave_size=1, checkpoint_dir=tmp_path)
    assert resumed.completed
    assert resumed.resumed_subtrees == 2
    assert resumed.summary == cold.summary
    assert resumed.tiers == cold.tiers
    cold_doc = json.dumps(hierarchy_payload(cold), sort_keys=True)
    resumed_doc = json.dumps(hierarchy_payload(resumed), sort_keys=True)
    assert resumed_doc == cold_doc


def test_resume_mid_wave_boundary_mismatch_is_fine(tmp_path):
    """A checkpoint taken at wave size 1 resumes under wave size 2."""
    cold = _run()
    _run(wave_size=1, checkpoint_dir=tmp_path, max_waves=1)
    resumed = _run(wave_size=2, checkpoint_dir=tmp_path)
    assert resumed.resumed_subtrees == 1
    assert resumed.summary == cold.summary
    assert resumed.tiers == cold.tiers


def test_corrupt_checkpoint_is_ignored(tmp_path):
    interrupted = _run(wave_size=1, checkpoint_dir=tmp_path, max_waves=1)
    path = tmp_path / interrupted.checkpoint.split("/")[-1]
    path.write_text("{not json", encoding="utf-8")
    resumed = _run(wave_size=1, checkpoint_dir=tmp_path)
    assert resumed.resumed_subtrees == 0  # started over, not trusted
    assert resumed.summary == _run().summary


def test_checkpoint_identity_keys_on_seed_and_duration(tmp_path):
    _run(wave_size=1, checkpoint_dir=tmp_path, max_waves=2)
    other_seed = _run(seed=8, wave_size=1, checkpoint_dir=tmp_path)
    assert other_seed.resumed_subtrees == 0
    other_duration = _run(duration_s=1.0, wave_size=1,
                          checkpoint_dir=tmp_path)
    assert other_duration.resumed_subtrees == 0


def test_completed_checkpoint_short_circuits_the_rerun(tmp_path):
    done = _run(checkpoint_dir=tmp_path)
    again = _run(checkpoint_dir=tmp_path)
    assert again.resumed_subtrees == again.subtrees
    assert again.summary == done.summary


def test_rootless_hierarchy_is_degenerate_but_valid():
    spec = HierarchySpec(name="solo", base=get_scenario("dense-ward"))
    result = run_streaming(spec, duration_s=2.0)
    assert result.completed
    assert result.subtrees == result.waves == 0
    assert result.summary.n_nodes == 1
    assert result.summary.protocol == "none"
    assert result.summary.sync.count == 0
    assert result.tiers == ()
    assert result.summary.total_power_uw > 0  # the root still runs


def test_single_tier_hierarchy_runs():
    result = run_streaming("tiers:rbs@1x3:dense-ward", duration_s=2.0)
    assert result.summary.n_nodes == 4
    assert len(result.tiers) == 1
    assert result.tiers[0].beacons_sent > 0


def test_config_validation():
    spec = parse_hierarchy(TOKEN)
    with pytest.raises(ValueError):
        StreamingConfig(spec=spec, duration_s=0.0)
    with pytest.raises(ValueError):
        StreamingConfig(spec=spec, wave_size=0)


def test_checkpointing_unserialisable_specs_is_rejected(tmp_path):
    nameless = HierarchySpec(name="ad-hoc",
                             base=get_scenario("dense-ward"))
    with pytest.raises(ValueError, match="token-serialisable"):
        StreamingRunner(StreamingConfig(
            spec=nameless, checkpoint_dir=tmp_path)).run()
