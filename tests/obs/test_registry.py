"""Registry semantics, the no-op default and the worker merge."""

import pytest

from repro import obs
from repro.parallel import pool_map


def test_default_is_noop_and_allocates_nothing():
    # Nothing active by default: module-level recording is a no-op
    # and leaves no collector state behind.
    assert obs.active() is None
    assert not obs.is_active()
    obs.add("some.counter")
    obs.gauge("some.gauge", 3.0)
    obs.observe("some.timer", 0.5)
    assert obs.active() is None
    # Spans still measure (result dataclasses report elapsed_s) but
    # record nothing anywhere.
    span = obs.span("some.span").start()
    assert span.stop() >= 0.0
    assert obs.active() is None


def test_counter_gauge_timing_semantics():
    registry = obs.MetricsRegistry()
    registry.add("hits")
    registry.add("hits", 4)
    registry.gauge("wave", 2.0)
    registry.gauge("wave", 1.0)  # below the high-water mark: kept out
    registry.observe("run", 1.0)
    registry.observe("run", 3.0)
    snap = registry.snapshot()
    assert snap["counters"] == {"hits": 5}
    assert snap["gauges"] == {"wave": 2.0}
    assert snap["timings"] == {
        "run": {"count": 2, "total_s": 4.0, "max_s": 3.0}}
    # The deterministic view carries no timings at all.
    assert set(registry.deterministic()) == {"counters", "gauges"}


def test_merge_is_commutative():
    a = obs.MetricsRegistry()
    a.add("n", 2)
    a.gauge("g", 1.0)
    a.observe("t", 2.0)
    b = obs.MetricsRegistry()
    b.add("n", 3)
    b.add("only.b")
    b.gauge("g", 4.0)
    b.observe("t", 1.0)

    ab = obs.MetricsRegistry()
    ab.merge(a.snapshot())
    ab.merge(b.snapshot())
    ba = obs.MetricsRegistry()
    ba.merge(b.snapshot())
    ba.merge(a.snapshot())
    assert ab.snapshot() == ba.snapshot()
    assert ab.counters == {"n": 5, "only.b": 1}
    assert ab.gauges == {"g": 4.0}
    assert ab.timings == {"t": [2, 3.0, 2.0]}


def test_counter_delta_keeps_only_growth():
    registry = obs.MetricsRegistry()
    registry.add("before", 2)
    base = registry.deterministic()
    registry.add("before", 3)
    registry.add("after")
    registry.gauge("g", 1.5)
    delta = obs.counter_delta(base, registry.deterministic())
    assert delta == {
        "counters": {"before": 3, "after": 1},
        "gauges": {"g": 1.5},
    }
    # Replaying the delta on top of the base reconstructs the total.
    replay = obs.MetricsRegistry()
    replay.merge(base)
    replay.merge(delta)
    assert replay.deterministic() == registry.deterministic()


def test_collecting_activates_and_restores():
    assert obs.active() is None
    with obs.collecting() as registry:
        assert obs.active() is registry
        obs.add("seen")
    assert obs.active() is None
    assert registry.counters == {"seen": 1}


def test_collecting_restores_on_error():
    with pytest.raises(RuntimeError):
        with obs.collecting():
            raise RuntimeError("boom")
    assert obs.active() is None


def test_suspended_masks_collection():
    with obs.collecting() as registry:
        obs.add("outside")
        with obs.suspended():
            obs.add("inside")  # cache-dependent work: not recorded
        obs.add("outside")
    assert registry.counters == {"outside": 2}


def test_span_records_only_when_active():
    with obs.collecting() as registry:
        with obs.span("timed"):
            pass
    assert registry.timings["timed"][0] == 1
    with pytest.raises(RuntimeError, match="never started"):
        obs.span("unstarted").stop()


def _observed_square(value):
    obs.add("squares")
    obs.add("work", value)
    return value * value


@pytest.mark.parametrize("workers", [1, 2])
def test_pool_map_merges_worker_registries(workers):
    payloads = [1, 2, 3, 4]
    with obs.collecting() as registry:
        results = pool_map(_observed_square, payloads, workers=workers)
    assert results == [1, 4, 9, 16]
    # Same counters whether the work ran inline or in forked workers.
    assert registry.counters == {"squares": 4, "work": 10}


def test_pool_map_without_registry_stays_plain():
    assert obs.active() is None
    assert pool_map(_observed_square, [2, 3], workers=2) == [4, 9]
    assert obs.active() is None
