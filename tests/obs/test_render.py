"""Golden render and artifact-shape tests for repro-metrics/1."""

import json

from repro import obs
from repro.obs import (
    METRICS_SCHEMA,
    dumps_metrics,
    metrics_payload,
    render_metrics,
    strip_timings,
    write_metrics_json,
)

GOLDEN = """\
Metrics: 4 counter(s), 1 gauge(s), 1 timer(s)
  counters:
    net
      stream
        subtrees      3
        waves         2
    sweep
      cache
        hit       1,200
        miss          7
  gauges:
    net.stream.wave_size  2
  timings (wall-clock; excluded from determinism):
    net.stream.run      1 call(s)      1.500 s total     1.500 s max"""


def _registry() -> obs.MetricsRegistry:
    registry = obs.MetricsRegistry()
    registry.add("sweep.cache.hit", 1200)
    registry.add("sweep.cache.miss", 7)
    registry.add("net.stream.waves", 2)
    registry.add("net.stream.subtrees", 3)
    registry.gauge("net.stream.wave_size", 2.0)
    registry.observe("net.stream.run", 1.5)
    return registry


def test_render_metrics_golden():
    assert render_metrics(_registry()) == GOLDEN


def test_render_empty_registry():
    assert render_metrics(obs.MetricsRegistry()) == \
        "Metrics: 0 counter(s), 0 gauge(s), 0 timer(s)"


def test_metrics_payload_shape():
    payload = metrics_payload(_registry(), experiment="net")
    assert payload["schema"] == METRICS_SCHEMA == "repro-metrics/1"
    assert payload["experiment"] == "net"
    assert payload["counters"]["sweep.cache.hit"] == 1200
    assert payload["timings"]["net.stream.run"]["count"] == 1
    stripped = strip_timings(payload)
    assert "timings" not in stripped
    assert stripped["counters"] == payload["counters"]


def test_dumps_metrics_is_canonical():
    payload = metrics_payload(_registry())
    text = dumps_metrics(payload)
    assert text.endswith("\n")
    assert text == json.dumps(payload, indent=2, sort_keys=True) + "\n"


def test_write_metrics_json_round_trips(tmp_path):
    path = tmp_path / "deep" / "metrics.json"
    write_metrics_json(_registry(), path, experiment="sweep")
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["schema"] == "repro-metrics/1"
    assert payload["experiment"] == "sweep"
    assert payload["gauges"] == {"net.stream.wave_size": 2.0}
