"""Cross-process and cross-configuration counter determinism.

The contract under test: the ``counters`` (and ``gauges``) of a
collected run are byte-identical across ``PYTHONHASHSEED`` values,
worker counts, and streaming kill-and-resume points.  ``timings`` are
wall-clock and carry no such guarantee.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import repro
from repro import obs
from repro.eval.__main__ import main
from repro.eval.genexp import GEN_POLICIES
from repro.net.streaming import run_streaming

#: Small two-tier fixture (16 nodes), same as tests/net/test_streaming.
TOKEN = "tiers:ftsp@5x3/rbs@1x4:dense-ward"

#: Run the streaming fixture under a collector and print the
#: deterministic sections canonically.
_STREAM_SCRIPT = f"""
import json
from repro import obs
from repro.net.streaming import run_streaming
with obs.collecting() as registry:
    run_streaming({TOKEN!r}, duration_s=2.0, seed=7, workers=%d)
print(json.dumps(registry.deterministic(), sort_keys=True,
                 separators=(",", ":")))
"""

_SRC_ROOT = str(Path(repro.__file__).resolve().parent.parent)


def _stream_counters(hashseed: str, workers: int) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = _SRC_ROOT + os.pathsep + \
        env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _STREAM_SCRIPT % workers],
        env=env, capture_output=True, text=True, check=True)
    return result.stdout


def test_streaming_counters_across_hashseeds_and_workers():
    dumps = [
        _stream_counters("0", 1),
        _stream_counters("1", 2),
        _stream_counters("4242", 2),
    ]
    assert dumps[0] == dumps[1] == dumps[2]
    # And the subprocess output matches this very process too.
    with obs.collecting() as registry:
        run_streaming(TOKEN, duration_s=2.0, seed=7)
    local = json.dumps(registry.deterministic(), sort_keys=True,
                       separators=(",", ":")) + "\n"
    assert dumps[0] == local


def test_streaming_resume_counters_match_cold(tmp_path):
    with obs.collecting() as cold:
        run_streaming(TOKEN, duration_s=2.0, seed=7, wave_size=1)
    with obs.collecting() as first:
        interrupted = run_streaming(
            TOKEN, duration_s=2.0, seed=7, wave_size=1,
            checkpoint_dir=tmp_path, max_waves=2)
    assert not interrupted.completed
    # The resumed run merges the checkpointed counter delta, so its
    # totals equal the cold run's — not just the tail it executed.
    with obs.collecting() as resumed:
        done = run_streaming(TOKEN, duration_s=2.0, seed=7,
                             wave_size=1, checkpoint_dir=tmp_path)
    assert done.completed and done.resumed_subtrees == 2
    assert resumed.deterministic() == cold.deterministic()
    # The interrupted run itself only saw the first two subtrees.
    assert first.counters["net.stream.subtrees"] == 2
    assert cold.counters["net.stream.subtrees"] == 3


def test_old_checkpoints_without_obs_still_load(tmp_path):
    interrupted = run_streaming(
        TOKEN, duration_s=2.0, seed=7, wave_size=1,
        checkpoint_dir=tmp_path, max_waves=1)
    path = tmp_path / interrupted.checkpoint.split("/")[-1]
    doc = json.loads(path.read_text(encoding="utf-8"))
    assert "obs" not in doc  # no collector active: no delta persisted
    with obs.collecting() as registry:
        resumed = run_streaming(TOKEN, duration_s=2.0, seed=7,
                                wave_size=1, checkpoint_dir=tmp_path)
    assert resumed.completed and resumed.resumed_subtrees == 1
    # Pre-obs checkpoints under-count the skipped prefix but resume.
    assert registry.counters["net.stream.subtrees"] == 2


def test_checkpoint_persists_counter_delta(tmp_path):
    with obs.collecting():
        interrupted = run_streaming(
            TOKEN, duration_s=2.0, seed=7, wave_size=1,
            checkpoint_dir=tmp_path, max_waves=2)
    path = tmp_path / interrupted.checkpoint.split("/")[-1]
    doc = json.loads(path.read_text(encoding="utf-8"))
    delta = doc["obs"]
    assert delta["counters"]["net.stream.waves"] == 2
    assert delta["counters"]["net.stream.subtrees"] == 2
    # Only wave-loop growth is persisted; the preamble counters the
    # resumed run regenerates itself stay out of the delta.
    assert delta["counters"]["net.stream.nodes"] == 10


def test_cli_metrics_artifacts_are_deterministic(tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    argv = ["gen", "--seed", "7", "--count", "2", "--duration", "1",
            "--metrics"]
    assert main(argv + [str(a)]) == 0
    assert main(argv + [str(b)]) == 0
    out = capsys.readouterr().out
    assert "Metrics:" in out
    first = json.loads(a.read_text(encoding="utf-8"))
    second = json.loads(b.read_text(encoding="utf-8"))
    assert first["schema"] == "repro-metrics/1"
    assert first["experiment"] == "gen"
    assert first["counters"] == second["counters"]
    # Every (app, policy) pair of the exploration is one point.
    assert first["counters"]["gen.points"] == 2 * len(GEN_POLICIES)


def test_cli_metrics_flag_without_path_only_prints(tmp_path, capsys):
    assert main(["sweep", "--list", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "Metrics: 0 counter(s)" in out
    assert list(tmp_path.iterdir()) == []


def test_cli_without_metrics_never_activates(capsys):
    assert main(["sweep", "--list"]) == 0
    assert obs.active() is None
    assert "Metrics:" not in capsys.readouterr().out
