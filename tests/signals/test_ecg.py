"""Tests for the synthetic ECG generator (CSE substitute)."""

import numpy as np
import pytest

from repro.signals import (
    BeatLabel,
    EcgConfig,
    NoiseProfile,
    cse_like_record,
    rp_class_record,
    synthesize_ecg,
)


def test_basic_record_shape():
    record = cse_like_record(duration_s=10.0, num_leads=3)
    assert record.num_leads == 3
    assert record.num_samples == 2500
    assert record.duration_s == pytest.approx(10.0)
    record.validate()


def test_heart_rate_produces_expected_beat_count():
    record = synthesize_ecg(EcgConfig(duration_s=60.0,
                                      heart_rate_bpm=72.0))
    # ~72 beats in a minute, minus edge effects.
    assert 65 <= len(record.annotations) <= 75


def test_generation_is_deterministic():
    a = synthesize_ecg(EcgConfig(duration_s=5.0, seed=7))
    b = synthesize_ecg(EcgConfig(duration_s=5.0, seed=7))
    for lead_a, lead_b in zip(a.leads, b.leads):
        assert np.array_equal(lead_a, lead_b)
    assert a.annotations == b.annotations


def test_different_seeds_differ():
    a = synthesize_ecg(EcgConfig(duration_s=5.0, seed=1))
    b = synthesize_ecg(EcgConfig(duration_s=5.0, seed=2))
    assert not np.array_equal(a.leads[0], b.leads[0])


def test_leads_are_correlated_projections():
    record = cse_like_record(duration_s=20.0, num_leads=2)
    lead0 = record.leads[0].astype(float)
    lead1 = record.leads[1].astype(float)
    correlation = np.corrcoef(lead0, lead1)[0, 1]
    assert abs(correlation) > 0.5  # same heart, different projection


def test_pathological_ratio_is_honoured():
    for ratio in (0.0, 0.2, 0.5, 1.0):
        record = rp_class_record(duration_s=60.0, pathological_ratio=ratio)
        assert record.pathological_ratio() == pytest.approx(ratio, abs=0.04)


def test_uniform_pathology_is_spread_out():
    record = synthesize_ecg(EcgConfig(
        duration_s=60.0, pathological_ratio=0.2, uniform_pathology=True))
    abnormal = [i for i, beat in enumerate(record.annotations)
                if beat.is_pathological]
    gaps = np.diff(abnormal)
    assert len(abnormal) > 5
    # Uniform placement: roughly every 5th beat, never adjacent runs.
    assert gaps.min() >= 3
    assert gaps.max() <= 8


def test_pvc_beats_have_wider_taller_complexes():
    record = synthesize_ecg(EcgConfig(
        duration_s=60.0, pathological_ratio=0.2,
        noise=NoiseProfile(baseline_wander=0.0, powerline=0.0,
                           muscle=0.0)))
    lead = record.leads[0].astype(np.int64)
    normal_amp, pvc_amp = [], []
    for beat in record.annotations:
        lo = max(0, beat.sample - 25)
        hi = min(len(lead), beat.sample + 25)
        amplitude = np.abs(lead[lo:hi]).max()
        if beat.label is BeatLabel.PVC:
            pvc_amp.append(amplitude)
        else:
            normal_amp.append(amplitude)
    assert np.mean(pvc_amp) > 1.15 * np.mean(normal_amp)


def test_samples_fit_int16():
    record = synthesize_ecg(EcgConfig(duration_s=10.0))
    for lead in record.leads:
        assert lead.dtype == np.int16


def test_annotations_sorted_and_in_range():
    record = rp_class_record(duration_s=30.0, pathological_ratio=0.3)
    samples = [beat.sample for beat in record.annotations]
    assert samples == sorted(samples)
    assert all(0 <= s < record.num_samples for s in samples)


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        synthesize_ecg(EcgConfig(pathological_ratio=1.5))
    with pytest.raises(ValueError):
        synthesize_ecg(EcgConfig(num_leads=0))


def test_baseline_wander_is_present():
    """The raw signal must contain drift for the MF stage to remove."""
    record = cse_like_record(duration_s=30.0, num_leads=1)
    lead = record.leads[0].astype(float)
    # Mean over 2-second blocks drifts when wander is present.
    blocks = lead[:28 * 250].reshape(14, -1).mean(axis=1)
    assert blocks.std() > 30  # ADC counts
