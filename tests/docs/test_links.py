"""Documentation checks: relative links resolve, pages exist.

The CI docs job runs ``tools/check_links.py`` standalone; this test
keeps the same gate in tier 1 so broken links fail locally too.
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "tools"))

import check_links  # noqa: E402  (path set up above)


def test_docs_tree_exists():
    for page in ("architecture.md", "cli.md", "artifacts.md"):
        assert (REPO / "docs" / page).is_file(), f"docs/{page} missing"


def test_readme_and_docs_links_resolve():
    files = check_links.iter_markdown(
        [str(REPO / "README.md"), str(REPO / "docs")])
    assert len(files) >= 4
    problems = []
    for path in files:
        problems.extend(check_links.check_file(path))
    assert problems == []


def test_checker_flags_broken_links(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("see [missing](./nope.md) and [ok](page.md) "
                    "and [web](https://example.com)\n")
    problems = check_links.check_file(page)
    assert len(problems) == 1
    assert "nope.md" in problems[0]
    assert check_links.main([str(tmp_path)]) == 1
    page.write_text("only [ok](page.md) and [anchor](#x)\n")
    assert check_links.main([str(tmp_path)]) == 0


def test_checker_handles_spaces_and_titles(tmp_path):
    spaced = tmp_path / "my page.md"
    spaced.write_text("hello\n")
    page = tmp_path / "page.md"
    page.write_text('[a](my page.md) and [b](page.md "a title")\n')
    assert check_links.check_file(page) == []
    page.write_text('[a](my missing.md) and [b](gone.md "title")\n')
    problems = check_links.check_file(page)
    assert len(problems) == 2
