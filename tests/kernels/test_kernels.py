"""Tests for the characterisation kernels (cycle-level ground truth)."""

import pytest

from repro.kernels import (
    characterize_barrier_pipeline,
    characterize_mac,
    characterize_window_min,
    mac_kernel,
    window_min_kernel,
)


def test_window_min_functional_output_matches_python():
    """The assembly window minimum equals a Python reference."""
    report = characterize_window_min(cores=3, window=8, outputs=32)

    def signed16(value):
        return value - 0x10000 if value & 0x8000 else value

    def reference(core):
        x = (10 * core + 3) & 0xFFFF  # LCG seed used by the kernel
        values = []
        for _ in range(32 + 8):
            x = (x * 25173 + 13849) & 0xFFFF
            values.append(x)
        # final output: signed minimum over the last window (bge is a
        # signed comparison on the 16-bit core)
        return min(values[31:31 + 8], key=signed16)

    assert report.results == tuple(reference(c) for c in range(3))


def test_window_min_sync_and_nosync_agree_functionally():
    with_sync = characterize_window_min(cores=3, window=8, outputs=24,
                                        with_sync=True)
    without = characterize_window_min(cores=3, window=8, outputs=24,
                                      with_sync=False)
    assert with_sync.results == without.results


def test_window_min_alignment_is_high_with_recovery():
    """Lock-step recovery keeps replicas broadcasting."""
    report = characterize_window_min(cores=3, window=16, outputs=48)
    assert report.alignment > 0.5
    assert report.im_broadcast_fraction > 0.3


def test_window_min_sync_overhead_shrinks_with_window():
    """Coarser regions -> lower runtime overhead (paper: ~1.65 %)."""
    fine = characterize_window_min(cores=3, window=8, outputs=32)
    coarse = characterize_window_min(cores=3, window=32, outputs=32)
    assert coarse.sync_runtime_overhead < fine.sync_runtime_overhead
    assert coarse.sync_runtime_overhead < 0.03


def test_window_min_single_core_has_no_broadcast():
    report = characterize_window_min(cores=1, window=8, outputs=16)
    assert report.im_broadcast_fraction == 0.0


def test_window_min_parameter_validation():
    with pytest.raises(ValueError):
        window_min_kernel(cores=0)
    with pytest.raises(ValueError):
        window_min_kernel(window=1)


def test_mac_kernel_functional_and_timed():
    report = characterize_mac(taps=48)
    assert report.result == report.expected
    assert 5.0 < report.cycles_per_mac < 25.0


def test_mac_kernel_validation():
    with pytest.raises(ValueError):
        mac_kernel(taps=0)


def test_barrier_pipeline_multi_round_correctness():
    report = characterize_barrier_pipeline(producers=3, rounds=6)
    assert report.consumer_sum == report.expected_sum
    # Two barriers per round, every core sleeps at most once per barrier.
    assert report.point_fires == 2 * 6
    assert report.sleeps <= 2 * 6 * 4


def test_barrier_pipeline_scales_with_producers():
    small = characterize_barrier_pipeline(producers=2, rounds=4)
    large = characterize_barrier_pipeline(producers=5, rounds=4)
    assert small.consumer_sum == small.expected_sum
    assert large.consumer_sum == large.expected_sum


def test_barrier_pipeline_validation():
    import repro.kernels.sources as sources
    with pytest.raises(ValueError):
        sources.barrier_pipeline_kernel(producers=0)
