"""Tests for beat detection and MMD delineation on synthetic ECG."""

import numpy as np
import pytest

from repro.dsp.beatdet import detect_r_peaks, detection_f1
from repro.dsp.mmd import (
    MmdDelineator,
    combine_leads,
    delineation_sensitivity,
    mmd_transform,
)
from repro.dsp.morphology import MorphologicalFilter
from repro.signals import EcgConfig, synthesize_ecg

FS = 250.0


def _conditioned_record(duration=30.0, ratio=0.0, seed=9, leads=3):
    record = synthesize_ecg(EcgConfig(duration_s=duration, num_leads=leads,
                                      pathological_ratio=ratio, seed=seed))
    mf = MorphologicalFilter(fs=FS)
    filtered = [mf.process(lead) for lead in record.leads]
    return record, filtered


# ---------------------------------------------------------------------------
# Beat detection
# ---------------------------------------------------------------------------

def test_detector_finds_nearly_all_beats():
    record, filtered = _conditioned_record()
    peaks = detect_r_peaks(filtered[0], FS)
    truth = [beat.sample for beat in record.annotations]
    assert detection_f1(peaks, truth, FS) > 0.95


def test_detector_works_with_pathological_beats():
    record, filtered = _conditioned_record(ratio=0.3, seed=11)
    peaks = detect_r_peaks(filtered[0], FS)
    truth = [beat.sample for beat in record.annotations]
    assert detection_f1(peaks, truth, FS) > 0.90


def test_detector_respects_refractory_period():
    _, filtered = _conditioned_record(duration=20.0)
    peaks = detect_r_peaks(filtered[0], FS)
    assert np.all(np.diff(peaks) >= int(0.25 * FS))


def test_detector_on_empty_and_flat_signals():
    assert detect_r_peaks(np.array([], dtype=np.int32), FS) == []
    assert detect_r_peaks(np.zeros(1000, dtype=np.int32), FS) == []


def test_detection_f1_edge_cases():
    assert detection_f1([], [], FS) == 1.0
    assert detection_f1([100], [], FS) == 0.0
    assert detection_f1([], [100], FS) == 0.0
    assert detection_f1([100], [105], FS) == 1.0


# ---------------------------------------------------------------------------
# MMD delineation
# ---------------------------------------------------------------------------

def test_combine_leads_rms():
    a = np.array([3, 0, -3], dtype=np.int32)
    b = np.array([4, 0, 4], dtype=np.int32)
    combined = combine_leads([a, b])
    assert combined[0] == pytest.approx(np.sqrt((9 + 16) / 2), abs=1)
    assert combined[1] == 0


def test_combine_leads_rejects_empty():
    with pytest.raises(ValueError):
        combine_leads([])


def test_mmd_transform_flags_corners():
    # A triangular bump: the MMD response must peak near the apex
    # (edges excluded: replication padding creates boundary artefacts).
    signal = np.concatenate([np.arange(0, 50, 5), np.arange(50, -5, -5),
                             np.zeros(20)]).astype(np.int32)
    response = np.abs(mmd_transform(signal, 5))
    interior = response[4:-4]
    apex = int(np.argmax(signal))
    assert abs(int(np.argmax(interior)) + 4 - apex) <= 3


def test_mmd_transform_is_zero_on_straight_lines():
    ramp = np.arange(0, 200, 2, dtype=np.int32)
    response = mmd_transform(ramp, 7)
    assert np.all(response[4:-4] == 0)


def test_delineation_finds_all_beats():
    record, filtered = _conditioned_record()
    combined = combine_leads(filtered)
    beats = MmdDelineator(FS).delineate(combined)
    truth = [beat.sample for beat in record.annotations]
    assert delineation_sensitivity(beats, truth, FS) > 0.95


def test_fiducial_ordering_invariant():
    """Onset < R < offset, P before onset, T after offset."""
    record, filtered = _conditioned_record(duration=20.0)
    combined = combine_leads(filtered)
    beats = MmdDelineator(FS).delineate(combined)
    assert beats
    for beat in beats:
        assert beat.qrs_onset <= beat.r_peak <= beat.qrs_offset
        if beat.p_peak is not None:
            assert beat.p_peak < beat.r_peak
        if beat.t_peak is not None:
            assert beat.t_peak > beat.r_peak


def test_qrs_width_is_physiological():
    _, filtered = _conditioned_record(duration=20.0)
    combined = combine_leads(filtered)
    beats = MmdDelineator(FS).delineate(combined)
    widths = [(b.qrs_offset - b.qrs_onset) / FS for b in beats]
    # Sane QRS widths: 20-200 ms on the synthetic morphology.
    assert all(0.02 <= width <= 0.2 for width in widths)


def test_t_wave_found_for_normal_beats():
    _, filtered = _conditioned_record(duration=20.0)
    combined = combine_leads(filtered)
    beats = MmdDelineator(FS).delineate(combined)
    with_t = sum(1 for beat in beats if beat.t_peak is not None)
    assert with_t / len(beats) > 0.9


def test_delineator_accepts_precomputed_peaks():
    record, filtered = _conditioned_record(duration=10.0)
    combined = combine_leads(filtered)
    truth = [beat.sample for beat in record.annotations
             if 100 < beat.sample < len(combined) - 120]
    beats = MmdDelineator(FS).delineate(combined, r_peaks=truth)
    assert [beat.r_peak for beat in beats] == truth
