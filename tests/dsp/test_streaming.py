"""Tests for streaming (chunked) morphological filtering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.morphology import MfParams, MorphologicalFilter
from repro.dsp.streaming import StreamingMorphologicalFilter
from repro.signals import cse_like_record

FS = 250.0


def _stream_in_chunks(signal, chunk_sizes):
    stream = StreamingMorphologicalFilter(fs=FS)
    outputs = []
    position = 0
    for size in chunk_sizes:
        outputs.append(stream.push(signal[position:position + size]))
        position += size
    if position < len(signal):
        outputs.append(stream.push(signal[position:]))
    outputs.append(stream.finish())
    return np.concatenate(outputs)


def test_chunked_equals_batch_on_ecg():
    record = cse_like_record(duration_s=8.0, num_leads=1)
    lead = record.leads[0]
    batch = MorphologicalFilter(fs=FS).process(lead)
    chunked = _stream_in_chunks(lead, [250] * 8)
    assert np.array_equal(batch, chunked)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=400),
                min_size=1, max_size=10),
       st.integers(min_value=0, max_value=1_000_000))
def test_chunked_equals_batch_for_any_split(chunk_sizes, seed):
    """Exactness for arbitrary block boundaries (property test)."""
    rng = np.random.default_rng(seed)
    total = sum(chunk_sizes)
    signal = rng.integers(-5000, 5000, size=total, dtype=np.int32)
    batch = MorphologicalFilter(fs=FS).process(signal)
    chunked = _stream_in_chunks(signal, chunk_sizes)
    assert np.array_equal(batch, chunked)


def test_memory_stays_bounded():
    stream = StreamingMorphologicalFilter(fs=FS)
    rng = np.random.default_rng(1)
    for _ in range(40):
        stream.push(rng.integers(-100, 100, size=100, dtype=np.int32))
        assert stream.memory_words <= 2 * stream.reach + 100
    assert stream.pending_samples <= stream.reach


def test_small_pushes_emit_nothing_until_reach():
    stream = StreamingMorphologicalFilter(fs=FS)
    out = stream.push(np.arange(10, dtype=np.int32))
    assert len(out) == 0
    assert stream.pending_samples == 10


def test_finish_flushes_everything():
    signal = np.arange(100, dtype=np.int32)
    stream = StreamingMorphologicalFilter(fs=FS)
    head = stream.push(signal)
    tail = stream.finish()
    assert len(head) + len(tail) == len(signal)


def test_push_after_finish_rejected():
    stream = StreamingMorphologicalFilter(fs=FS)
    stream.finish()
    with pytest.raises(RuntimeError):
        stream.push(np.zeros(4, dtype=np.int32))


def test_custom_params_respected():
    params = MfParams(baseline_open_s=0.1, baseline_close_s=0.15,
                      noise_element=3)
    stream = StreamingMorphologicalFilter(fs=FS, params=params)
    batch = MorphologicalFilter(fs=FS, params=params)
    signal = np.arange(600, dtype=np.int32) % 97
    out = np.concatenate([stream.push(signal), stream.finish()])
    assert np.array_equal(out, batch.process(signal))
