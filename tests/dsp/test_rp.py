"""Tests for the random-projection heartbeat classifier."""

import numpy as np
import pytest

from repro.dsp.beatdet import detect_r_peaks
from repro.dsp.morphology import MorphologicalFilter
from repro.dsp.rp import (
    RandomProjectionClassifier,
    RpParams,
    classification_accuracy,
)
from repro.signals import BeatLabel, EcgConfig, synthesize_ecg

FS = 250.0


def _labelled_beats(seed, ratio=0.3, duration=60.0):
    record = synthesize_ecg(EcgConfig(duration_s=duration, num_leads=1,
                                      pathological_ratio=ratio, seed=seed,
                                      uniform_pathology=False))
    lead = MorphologicalFilter(fs=FS).process(record.leads[0])
    peaks = [beat.sample for beat in record.annotations]
    labels = [beat.label for beat in record.annotations]
    return lead, peaks, labels


def test_training_stores_prototypes():
    lead, peaks, labels = _labelled_beats(seed=21)
    classifier = RandomProjectionClassifier(FS)
    stored = classifier.fit(lead, peaks, labels)
    assert stored == classifier.prototype_count
    assert stored > 10


def test_classifier_separates_normal_from_pvc():
    train_lead, train_peaks, train_labels = _labelled_beats(seed=21)
    classifier = RandomProjectionClassifier(FS)
    classifier.fit(train_lead, train_peaks, train_labels)

    test_lead, test_peaks, test_labels = _labelled_beats(seed=22)
    predicted, truth = [], []
    for peak, label in zip(test_peaks, test_labels):
        result = classifier.classify_beat(test_lead, peak)
        if result is not None:
            predicted.append(result)
            truth.append(label)
    assert classification_accuracy(predicted, truth) > 0.9


def test_classifier_on_detected_peaks():
    """End-to-end: filter -> detect -> classify on unseen data."""
    train_lead, train_peaks, train_labels = _labelled_beats(seed=31)
    classifier = RandomProjectionClassifier(FS)
    classifier.fit(train_lead, train_peaks, train_labels)

    record = synthesize_ecg(EcgConfig(duration_s=40.0, num_leads=1,
                                      pathological_ratio=0.25, seed=33))
    lead = MorphologicalFilter(fs=FS).process(record.leads[0])
    detected = detect_r_peaks(lead, FS)
    flagged = sum(
        1 for peak in detected
        if classifier.classify_beat(lead, peak) is BeatLabel.PVC)
    true_abnormal = sum(1 for beat in record.annotations
                        if beat.is_pathological)
    # Flagged count within 30 % of the truth.
    assert flagged == pytest.approx(true_abnormal, rel=0.3)


def test_prototype_budget_is_enforced():
    lead, peaks, labels = _labelled_beats(seed=21, duration=120.0)
    params = RpParams(max_prototypes_per_class=8)
    classifier = RandomProjectionClassifier(FS, params)
    classifier.fit(lead, peaks, labels)
    assert classifier.prototype_count <= 16


def test_projection_matrix_is_pm_one_and_deterministic():
    a = RandomProjectionClassifier(FS)
    b = RandomProjectionClassifier(FS)
    assert np.array_equal(a.projection, b.projection)
    assert set(np.unique(a.projection)) == {-1, 1}


def test_projection_preserves_relative_distances():
    """Johnson-Lindenstrauss sanity: far windows stay far."""
    classifier = RandomProjectionClassifier(FS)
    rng = np.random.default_rng(3)
    base = rng.standard_normal(classifier.window_len)
    near = base + 0.05 * rng.standard_normal(classifier.window_len)
    far = rng.standard_normal(classifier.window_len)
    d_near = np.linalg.norm(classifier.project(base)
                            - classifier.project(near))
    d_far = np.linalg.norm(classifier.project(base)
                           - classifier.project(far))
    assert d_near < d_far


def test_window_extraction_edges():
    classifier = RandomProjectionClassifier(FS)
    lead = np.zeros(200, dtype=np.int32)
    assert classifier.extract_window(lead, 2) is None
    assert classifier.extract_window(lead, 199) is None


def test_classify_before_fit_raises():
    classifier = RandomProjectionClassifier(FS)
    with pytest.raises(RuntimeError):
        classifier.classify_window(np.zeros(classifier.window_len))


def test_wrong_window_length_rejected():
    classifier = RandomProjectionClassifier(FS)
    with pytest.raises(ValueError):
        classifier.project(np.zeros(3))


def test_dm_words_accounts_matrix_and_prototypes():
    lead, peaks, labels = _labelled_beats(seed=21)
    classifier = RandomProjectionClassifier(FS)
    classifier.fit(lead, peaks, labels)
    expected = (classifier.projection.size
                + classifier.prototype_count * 16)
    assert classifier.dm_words() == expected


def test_accuracy_helper_validates_lengths():
    with pytest.raises(ValueError):
        classification_accuracy([BeatLabel.NORMAL], [])
    assert classification_accuracy([], []) == 1.0
