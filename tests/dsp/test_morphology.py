"""Tests for morphological operators and the 3L-MF conditioning filter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.dsp.morphology import (
    MfParams,
    MorphologicalFilter,
    closing,
    dilate,
    erode,
    opening,
)
from repro.signals import EcgConfig, NoiseProfile, synthesize_ecg

_SIGNALS = hnp.arrays(np.int16, st.integers(min_value=8, max_value=80),
                      elements=st.integers(-1000, 1000))
_SIZES = st.integers(min_value=0, max_value=4).map(lambda k: 2 * k + 1)


@given(_SIGNALS, _SIZES)
def test_erosion_below_dilation(signal, size):
    assert np.all(erode(signal, size) <= dilate(signal, size))


@given(_SIGNALS, _SIZES)
def test_erosion_dilation_bound_signal(signal, size):
    assert np.all(erode(signal, size) <= signal)
    assert np.all(dilate(signal, size) >= signal)


@given(_SIGNALS, _SIZES)
def test_opening_antiextensive_closing_extensive(signal, size):
    assert np.all(opening(signal, size) <= signal)
    assert np.all(closing(signal, size) >= signal)


@given(_SIGNALS, _SIZES)
@settings(max_examples=40)
def test_opening_closing_idempotent(signal, size):
    """Opening and closing are idempotent (textbook property)."""
    opened = opening(signal, size)
    assert np.array_equal(opening(opened, size), opened)
    closed = closing(signal, size)
    assert np.array_equal(closing(closed, size), closed)


@given(_SIGNALS)
def test_size_one_is_identity(signal):
    assert np.array_equal(erode(signal, 1), signal)
    assert np.array_equal(dilate(signal, 1), signal)


@given(_SIGNALS, _SIZES)
def test_duality_under_negation(signal, size):
    """Erosion of -x equals -dilation of x (with symmetric padding)."""
    negated = (-signal.astype(np.int32))
    assert np.array_equal(erode(negated, size), -dilate(signal, size))


def test_erode_constant_signal():
    flat = np.full(20, 7, dtype=np.int16)
    assert np.array_equal(erode(flat, 5), flat)
    assert np.array_equal(dilate(flat, 5), flat)


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        erode(np.zeros(4, dtype=np.int16), 0)
    with pytest.raises(ValueError, match="odd"):
        erode(np.zeros(4, dtype=np.int16), 4)


# ---------------------------------------------------------------------------
# Conditioning filter on ECG
# ---------------------------------------------------------------------------

def _clean_and_noisy(duration=20.0, seed=5):
    clean_cfg = EcgConfig(duration_s=duration, num_leads=1, seed=seed,
                          noise=NoiseProfile(baseline_wander=0.0,
                                             powerline=0.0, muscle=0.0))
    noisy_cfg = EcgConfig(duration_s=duration, num_leads=1, seed=seed)
    return (synthesize_ecg(clean_cfg).leads[0],
            synthesize_ecg(noisy_cfg).leads[0])


def test_filter_removes_baseline_wander():
    clean, noisy = _clean_and_noisy()
    mf = MorphologicalFilter(fs=250.0)
    filtered = mf.process(noisy)
    # Block means measure residual drift.
    def drift(x):
        return x[:4500].reshape(9, -1).mean(axis=1).std()
    assert drift(filtered.astype(float)) < 0.25 * drift(
        noisy.astype(float))


def test_filter_preserves_qrs_amplitude():
    clean, noisy = _clean_and_noisy()
    mf = MorphologicalFilter(fs=250.0)
    filtered = mf.process(noisy)
    # R peaks survive within 30 % of the clean amplitude.
    clean_peak = np.abs(clean.astype(int)).max()
    filtered_peak = np.abs(filtered).max()
    assert filtered_peak > 0.7 * clean_peak
    assert filtered_peak < 1.3 * clean_peak


def test_filter_output_is_integer_typed():
    _, noisy = _clean_and_noisy(duration=4.0)
    filtered = MorphologicalFilter(fs=250.0).process(noisy)
    assert np.issubdtype(filtered.dtype, np.integer)


def test_structuring_elements_scale_with_fs():
    mf250 = MorphologicalFilter(fs=250.0)
    mf500 = MorphologicalFilter(fs=500.0)
    assert abs(mf500.open_size - 2 * mf250.open_size) <= 2
    assert abs(mf500.close_size - 2 * mf250.close_size) <= 2
    assert mf500.open_size % 2 == 1
    assert mf500.close_size % 2 == 1


def test_ops_per_sample_model():
    mf = MorphologicalFilter(fs=250.0)
    ops = mf.ops_per_sample()
    # Dominated by the 51- and 75-wide baseline passes (odd-rounded).
    expected = (2 * (2 * mf.open_size - 1) + 2 * (2 * mf.close_size - 1)
                + 4 * (2 * mf.noise_size - 1) + 4)
    assert ops == expected
    assert ops > 500


def test_bad_noise_element_rejected():
    with pytest.raises(ValueError):
        MorphologicalFilter(fs=250.0, params=MfParams(noise_element=0))
