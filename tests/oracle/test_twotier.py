"""Two-tier oracle: keep policies, validation, screen statistics,
and the headline regression — the two-tier search must land on the
same best mapping as the exact search on the built-in benchmarks.
"""

import numpy as np
import pytest

from repro.apps import rp_class, three_lead_mf, three_lead_mmd
from repro.gen.explorer import repair_app
from repro.oracle import (
    TWO_TIER_SCREEN_BUDGET,
    TWO_TIER_TOP_K,
    TwoTierOracle,
    get_two_tier,
    keep_top_k,
    sample_candidates,
)
from repro.search.anneal import search_mapping
from repro.search.cost import get_oracle
from repro.search.space import plan_from_candidate


def test_keep_top_k_ranks_best_first():
    costs = np.array([5.0, 1.0, 3.0, 2.0])
    assert keep_top_k(costs, 2) == [1, 3]
    assert keep_top_k(costs, 10) == [1, 3, 2, 0]


def test_keep_top_k_breaks_ties_by_position():
    costs = np.array([2.0, 1.0, 1.0, 1.0])
    assert keep_top_k(costs, 2) == [1, 2]


def test_validation_rejects_bad_knobs():
    with pytest.raises(ValueError, match="top-k must be >= 1"):
        get_two_tier(top_k=0)
    with pytest.raises(ValueError, match="screen budget must be >="):
        get_two_tier(top_k=5, screen_budget=4)
    with pytest.raises(ValueError, match="unknown keep policy"):
        get_two_tier(keep="nope")
    with pytest.raises(ValueError):
        get_two_tier(cost="nope")


def test_delegates_kind_and_duration_to_exact_tier():
    oracle = get_two_tier("clock", duration_s=1.5)
    assert oracle.kind == "clock"
    assert oracle.duration_s == 1.5
    assert oracle.screens is True


def test_evaluate_is_exact_passthrough():
    app, _ = repair_app(three_lead_mf(), 8)
    candidate = sample_candidates(app, samples=1, seed=0)[0]
    plan = plan_from_candidate(app, candidate)
    two_tier = get_two_tier("power", duration_s=1.0)
    exact = get_oracle("power", 1.0)
    assert two_tier.evaluate(app, plan, 8) == exact.evaluate(app, plan, 8)


def test_model_for_caches_per_app_and_width():
    app, _ = repair_app(three_lead_mf(), 8)
    oracle = get_two_tier(duration_s=1.0)
    assert oracle.model_for(app, 8) is oracle.model_for(app, 8)
    other, _ = repair_app(three_lead_mmd(), 8)
    assert oracle.model_for(other, 8) is not oracle.model_for(app, 8)


def test_evaluate_population_verifies_only_survivors():
    app, _ = repair_app(three_lead_mmd(), 8)
    candidates = sample_candidates(app, samples=8, seed=2)
    oracle = get_two_tier("power", duration_s=1.0, top_k=3,
                          screen_budget=8)
    result = oracle.evaluate_population(app, candidates)
    assert len(result.kept) == 3
    assert set(result.exact) == set(result.kept)
    assert result.best_index in result.kept
    # The winner really is the exact minimum among the survivors.
    best_cost = result.exact[result.best_index][0]
    assert best_cost == min(cost for cost, _ in result.exact.values())
    assert result.stats.screened == len(candidates)
    assert result.stats.simulated == 3
    assert oracle.stats == [result.stats]


def test_record_appends_stats():
    oracle = get_two_tier(duration_s=1.0)
    stats = oracle.record(screened=10, simulated=2, agreement=True)
    assert stats.screened == 10
    assert stats.simulated == 2
    assert stats.agreement is True
    assert oracle.stats == [stats]


def test_custom_keep_policy_plugs_in():
    app, _ = repair_app(three_lead_mf(), 8)
    candidates = sample_candidates(app, samples=4, seed=1)

    def keep_worst(costs, top_k):
        order = np.argsort(costs, kind="stable")
        return [int(index) for index in order[::-1][:top_k]]

    oracle = TwoTierOracle(exact=get_oracle("power", 1.0), top_k=1,
                           screen_budget=4, keep=keep_worst)
    result = oracle.evaluate_population(app, candidates)
    worst = int(np.argsort(result.scores.cost, kind="stable")[-1])
    assert result.kept == (worst,)


@pytest.mark.parametrize("algorithm", ("anneal", "greedy"))
@pytest.mark.parametrize(
    "make_app", (three_lead_mf, three_lead_mmd, rp_class),
    ids=("3l-mf", "3l-mmd", "rp-class"))
def test_two_tier_search_matches_exact_best(make_app, algorithm):
    """The ISSUE acceptance gate: same seed, same best mapping.

    The two-tier walk screens the identical proposal chain with the
    analytic model and exact-verifies only the top-k, so on the
    built-in benchmark apps it must land on the exact walk's best
    candidate at a fraction of the simulations.
    """
    app, _ = repair_app(make_app(), 8)
    exact = search_mapping(app, algorithm=algorithm, seed=7,
                           iterations=24, duration_s=1.0)
    oracle = get_two_tier("power", duration_s=1.0, top_k=4,
                          screen_budget=24)
    fast = search_mapping(app, algorithm=algorithm, seed=7,
                          iterations=24, oracle=oracle)
    assert fast.best_candidate == exact.best_candidate
    assert fast.best_cost == pytest.approx(exact.best_cost)
    assert fast.oracle == "two-tier"
    assert exact.oracle == "exact"
    # The whole point: far fewer simulations than the exact walk.
    assert fast.evaluations < exact.evaluations
    assert fast.screened > 0
    assert fast.top_k == 4


def test_defaults_are_sane():
    assert TWO_TIER_TOP_K >= 1
    assert TWO_TIER_SCREEN_BUDGET >= TWO_TIER_TOP_K
