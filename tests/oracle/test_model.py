"""The vectorised analytic model against the exact cost oracle.

The model claims to be a closed-form reduction of the multicore tick
loop, exact up to float associativity — so every test here compares
populations scored in one batched call against per-candidate
``simulate()`` and demands agreement at float-noise level (1e-9
relative, orders of magnitude above the observed ~1e-15).
"""

import pytest

from repro.apps import rp_class, three_lead_mf, three_lead_mmd
from repro.gen.explorer import repair_app
from repro.gen.generator import app_from_token
from repro.oracle import AnalyticModel, score_population
from repro.search.cost import ORACLE_KINDS, get_oracle
from repro.search.space import plan_from_candidate
from repro.oracle import sample_candidates

#: Built-in benchmarks plus generated shapes (the fork-join and
#: RP-CLASS entries exercise lock-step replicas and triggered
#: phases — the two terms that are not a plain per-slot sum).
_APPS = (
    three_lead_mf(),
    three_lead_mmd(),
    rp_class(),
    app_from_token("pipeline:2014:0"),
    app_from_token("fork-join:2014:1"),
    app_from_token("fan-in:2014:2"),
    app_from_token("independent:2014:3"),
)


def _repaired(app):
    repaired, _ = repair_app(app, 8)
    return repaired


@pytest.mark.parametrize("kind", ORACLE_KINDS)
@pytest.mark.parametrize(
    "app", _APPS, ids=[app.name for app in _APPS])
def test_population_scores_match_exact_oracle(app, kind):
    app = _repaired(app)
    candidates = sample_candidates(app, samples=6, seed=3)
    assert candidates
    scores = score_population(app, candidates, kind=kind,
                              duration_s=1.0)
    oracle = get_oracle(kind, 1.0)
    for index, candidate in enumerate(candidates):
        plan = plan_from_candidate(app, candidate)
        exact_cost, exact_metrics = oracle.evaluate(app, plan, 8)
        assert float(scores.cost[index]) == \
            pytest.approx(exact_cost, rel=1e-9)
        analytic = scores.metrics(index)
        assert set(analytic) == set(exact_metrics)
        for key, value in exact_metrics.items():
            assert analytic[key] == pytest.approx(value, rel=1e-9), key


def test_metrics_integer_fields_are_python_ints():
    app = _repaired(three_lead_mf())
    candidates = sample_candidates(app, samples=2, seed=0)
    metrics = score_population(app, candidates,
                               duration_s=1.0).metrics(0)
    assert isinstance(metrics["active_cores"], int)
    assert isinstance(metrics["im_banks"], int)


def test_scoring_is_deterministic_across_calls():
    app = _repaired(three_lead_mmd())
    candidates = sample_candidates(app, samples=8, seed=5)
    first = score_population(app, candidates, duration_s=1.0)
    second = score_population(app, candidates, duration_s=1.0)
    assert first.cost.tolist() == second.cost.tolist()
    assert first.power_uw.tolist() == second.power_uw.tolist()


def test_batched_equals_singleton_scoring():
    """One 8-wide call == eight 1-wide calls, bit for bit."""
    app = _repaired(rp_class())
    candidates = sample_candidates(app, samples=8, seed=5)
    model = AnalyticModel(app, kind="power", duration_s=1.0)
    batched = model.score(candidates)
    for index, candidate in enumerate(candidates):
        assert model.score_one(candidate) == batched.cost[index]


def test_model_validates_inputs():
    app = _repaired(three_lead_mf())
    with pytest.raises(ValueError):
        AnalyticModel(app, kind="nope")
    with pytest.raises(ValueError):
        AnalyticModel(app, duration_s=0.0)
    model = AnalyticModel(app, duration_s=1.0)
    with pytest.raises(ValueError):
        model.score([])


def test_model_rejects_foreign_candidates():
    """Candidates of one app cannot score under another's model."""
    mf = _repaired(three_lead_mf())
    mmd = _repaired(three_lead_mmd())
    foreign = sample_candidates(mmd, samples=1, seed=0)
    model = AnalyticModel(mf, duration_s=1.0)
    with pytest.raises(ValueError):
        model.score(foreign)
