"""Calibration gate: the analytic model must track simulate()."""

import pytest

from repro.apps import rp_class, three_lead_mf, three_lead_mmd
from repro.gen.explorer import repair_app
from repro.gen.generator import app_from_token, suite_tokens
from repro.oracle import (
    CALIBRATE_TOLERANCE,
    CalibrationReport,
    calibrate,
    calibration_payload,
    sample_candidates,
)
from repro.search.cost import ORACLE_KINDS

_BUILTIN = (three_lead_mf, three_lead_mmd, rp_class)


@pytest.mark.parametrize("kind", ORACLE_KINDS)
def test_builtin_apps_calibrate_within_tolerance(kind):
    apps = [factory() for factory in _BUILTIN]
    report = calibrate(apps, kind=kind, duration_s=1.0, samples=4)
    assert report.apps == len(apps)
    assert report.samples > 0
    assert report.within()
    assert report.errors["max"] <= CALIBRATE_TOLERANCE


def test_generated_apps_calibrate_within_tolerance():
    """Triggered phases and replica groups included: still exact."""
    apps = [app_from_token(token)
            for token in suite_tokens(seed=2014, count=4)]
    report = calibrate(apps, kind="power", duration_s=1.0, samples=3)
    assert report.apps == len(apps)
    assert report.within()


def test_calibrate_is_deterministic():
    apps = [three_lead_mf()]
    first = calibrate(apps, duration_s=1.0, samples=4, seed=3)
    second = calibrate([three_lead_mf()], duration_s=1.0, samples=4,
                       seed=3)
    assert first == second


def test_sample_candidates_deterministic_and_distinct():
    app, _ = repair_app(three_lead_mmd(), 8)
    first = sample_candidates(app, samples=6, seed=9)
    second = sample_candidates(app, samples=6, seed=9)
    assert first == second
    assert len(set(first)) == len(first)
    assert len(first) <= 6


def test_empty_report_fails_the_gate():
    report = CalibrationReport(kind="power", duration_s=1.0,
                               num_cores=8, apps=0, samples=0,
                               errors={})
    assert not report.within()


def test_calibration_payload_shape():
    report = calibrate([three_lead_mf()], duration_s=1.0, samples=2)
    payload = calibration_payload(report)
    assert set(payload) == {"kind", "duration_s", "num_cores", "apps",
                            "samples", "errors"}
    assert payload["kind"] == "power"
    assert payload["samples"] == report.samples
    for key in ("p50", "p90", "max", "count"):
        assert key in payload["errors"]
