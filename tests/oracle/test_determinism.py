"""Cross-process determinism of the vectorised analytic model.

Mirrors ``tests/search/test_determinism.py``: fresh interpreters with
*different* ``PYTHONHASHSEED`` values must score the same population
to the same bytes, and a whole two-tier search campaign must emit a
byte-identical ``repro-search/2`` payload — the numpy reduction and
the screen/verify bookkeeping must draw nothing from hash
randomisation or per-process state.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.eval.searchexp import run_search, search_payload

#: Score a sampled population and print every array bit-exactly.
_MODEL_DUMP_SCRIPT = """
import json
from repro.apps import three_lead_mmd
from repro.gen.explorer import repair_app
from repro.oracle import sample_candidates, score_population
app, _ = repair_app(three_lead_mmd(), 8)
candidates = sample_candidates(app, samples=8, seed=5)
scores = score_population(app, candidates, duration_s=1.0)
print(json.dumps({
    "cost": [value.hex() for value in scores.cost.tolist()],
    "power_uw": [value.hex() for value in scores.power_uw.tolist()],
    "clock_mhz": [value.hex() for value in scores.clock_mhz.tolist()],
    "voltage": [value.hex() for value in scores.voltage.tolist()],
}, sort_keys=True, separators=(",", ":")))
"""

#: Run a tiny two-tier campaign and print its canonical payload.
_SEARCH_DUMP_SCRIPT = """
import json
from repro.eval.searchexp import run_search, search_payload
report = run_search(seed=13, count=3, iterations=8, duration_s=1.0,
                    oracle="two-tier", top_k=2, screen_budget=12)
print(json.dumps(search_payload(report), sort_keys=True,
                 separators=(",", ":")))
"""

_SRC_ROOT = str(Path(repro.__file__).resolve().parent.parent)


def _dump_with_hashseed(script: str, hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = _SRC_ROOT + os.pathsep + \
        env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", script],
        env=env, capture_output=True, text=True, check=True)
    return result.stdout


def test_population_scores_identical_across_hashseeds():
    dumps = [_dump_with_hashseed(_MODEL_DUMP_SCRIPT, seed)
             for seed in ("0", "1", "4242")]
    assert dumps[0] == dumps[1] == dumps[2]


def test_two_tier_campaign_identical_across_hashseeds():
    dumps = [_dump_with_hashseed(_SEARCH_DUMP_SCRIPT, seed)
             for seed in ("0", "1", "4242")]
    assert dumps[0] == dumps[1] == dumps[2]
    # And the subprocess output matches this very process too.
    local = json.dumps(
        search_payload(run_search(seed=13, count=3, iterations=8,
                                  duration_s=1.0, oracle="two-tier",
                                  top_k=2, screen_budget=12)),
        sort_keys=True, separators=(",", ":")) + "\n"
    assert dumps[0] == local
