"""Tests for the coverage-driven fuzz loop."""

import pytest

from repro import obs
from repro.cover import fuzz_campaign, random_campaign
from repro.cover.fuzz import _shape_for, _structural_targets
from repro.gen.generator import parse_app_token

import random


#: Small shared budget: keeps the fuzz-vs-random comparison fast
#: while leaving targeting enough room to pull ahead.
BUDGET = 32
DURATION = 0.5


@pytest.fixture(scope="module")
def fuzz():
    return fuzz_campaign(budget=BUDGET, saturation=BUDGET,
                         duration_s=DURATION)


@pytest.fixture(scope="module")
def blind():
    return random_campaign(budget=BUDGET, saturation=BUDGET,
                           duration_s=DURATION)


def test_fuzz_is_deterministic(fuzz):
    again = fuzz_campaign(budget=BUDGET, saturation=BUDGET,
                          duration_s=DURATION)
    assert [a.token for a in again.attempts] == \
        [a.token for a in fuzz.attempts]
    assert again.coverage.covered() == fuzz.coverage.covered()
    assert again.status_counts == fuzz.status_counts


def test_fuzz_reaches_adversarial_coverpoints(fuzz):
    hits = fuzz.coverage.adversarial_hits()
    for name in ("deep-chain", "wide-fan-in", "diamond-shared",
                 "triggered-subgraph"):
        assert hits[name] > 0, name
        assert fuzz.coverage.adversarial_first(name)


def test_fuzz_beats_random_by_at_least_25_percent(fuzz, blind):
    """The acceptance bar: >= 25 % more bins at equal budget."""
    fuzzed = len(fuzz.coverage.covered())
    blinded = len(blind.coverage.covered())
    assert blinded > 0
    assert fuzzed >= blinded * 1.25, (fuzzed, blinded)


def test_random_mode_never_uses_shape_knobs(blind):
    for attempt in blind.attempts:
        assert attempt.target == ""
        _, _, _, shape = parse_app_token(attempt.token)
        assert not shape


def test_fuzz_attempts_log_targets_and_tokens(fuzz):
    assert len(fuzz.attempts) <= BUDGET
    covered = sum(a.new_bins for a in fuzz.attempts)
    assert covered == len(fuzz.coverage.covered())
    for attempt in fuzz.attempts:
        parse_app_token(attempt.token)  # every token regenerates


def test_saturation_stops_the_loop():
    report = fuzz_campaign(budget=64, saturation=1, duration_s=DURATION)
    assert report.saturated
    assert len(report.attempts) < 64
    assert report.attempts[-1].new_bins == 0


def test_campaign_rejects_bad_parameters():
    with pytest.raises(ValueError, match="budget"):
        fuzz_campaign(budget=0)
    with pytest.raises(ValueError, match="saturation"):
        fuzz_campaign(saturation=0)
    with pytest.raises(ValueError, match="policy"):
        fuzz_campaign(policies=("nonsense",), budget=1)


def test_structural_targets_collapse_outcome_axis():
    uncovered = [
        "pipeline/d2-4/f1/private/ok/r1",
        "pipeline/d2-4/f1/private/rejected/r1",
        "random-dag/d9+/f1/private/ok/r1",
    ]
    assert _structural_targets(uncovered) == [
        "pipeline/d2-4/f1/private/r1",
        "random-dag/d9+/f1/private/r1",
    ]


def test_shape_for_steers_toward_target_bands():
    rng = random.Random(0)
    family, shape = _shape_for(
        rng, "random-dag/d9+/f5+/shared/r5+", force_triggered=True)
    assert family == "random-dag"
    assert shape.depth >= 9
    assert shape.fan_in >= 5
    assert shape.diamond and shape.triggered
    assert shape.replicas >= 5
    family, shape = _shape_for(
        rng, "pipeline/d2-4/f1/private/r1", force_triggered=False)
    assert family == "pipeline" and shape is None


def test_fuzz_hot_path_reports_obs_counters():
    with obs.collecting() as registry:
        fuzz_campaign(budget=4, saturation=4, duration_s=DURATION)
    counters = registry.snapshot()["counters"]
    assert counters["cover.attempts"] == 4
    assert counters["cover.new_bins"] > 0
