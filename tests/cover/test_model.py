"""Tests for the declarative coverage model."""

import pytest

from repro.cover.model import (
    ADVERSARIAL_POINTS,
    DIMENSIONS,
    EXCLUDED_COMBOS,
    FAMILY_SPACE,
    CoverageMap,
    all_bins,
    app_depth,
    app_max_fan_in,
    app_max_replicas,
    app_shares_sections,
    bin_key,
    classify,
    parse_bin,
)
from repro.gen.explorer import evaluate_token
from repro.gen.generator import app_from_token, suite_tokens
from repro.gen.topology import FAMILY_ORDER


def _pair(token, policy="paper", status=None):
    app = app_from_token(token)
    record = evaluate_token(token, policy, duration_s=0.5)
    return app, record


def test_dimensions_are_declared_in_bin_key_order():
    assert [d.name for d in DIMENSIONS] == [
        "family", "depth", "fan_in", "sharing", "outcome", "replicas"]
    assert DIMENSIONS[0].labels == FAMILY_ORDER


def test_family_space_covers_every_family():
    assert set(FAMILY_SPACE) == set(FAMILY_ORDER)
    for family, space in FAMILY_SPACE.items():
        for axis, labels in space.items():
            dimension = next(d for d in DIMENSIONS if d.name == axis)
            assert set(labels) <= set(dimension.labels), (family, axis)


def test_all_bins_deterministic_and_valid():
    bins = all_bins()
    assert bins == all_bins()
    assert len(bins) == len(set(bins))
    for key in bins:
        parse_bin(key)  # no exception
    # the pruned space is dramatically smaller than the raw product
    raw = 1
    for dimension in DIMENSIONS:
        raw *= len(dimension.labels)
    assert len(bins) < raw / 5


def test_excluded_combos_absent_from_space():
    for family, depth, fan_in in EXCLUDED_COMBOS:
        for key in all_bins():
            labels = key.split("/")
            assert not (labels[0] == family and labels[1] == depth
                        and labels[2] == fan_in), key


def test_parse_bin_rejects_malformed_keys():
    with pytest.raises(ValueError, match="labels"):
        parse_bin("pipeline/d2-4")
    with pytest.raises(ValueError, match="depth"):
        parse_bin("pipeline/bogus/f1/private/ok/r1")
    with pytest.raises(ValueError, match="outcome"):
        parse_bin("pipeline/d2-4/f1/private/maybe/r1")


def test_classify_every_generated_family_lands_in_space():
    space = set(all_bins())
    for token in suite_tokens(31, 15):
        app, record = _pair(token)
        key = bin_key(classify(app, record))
        assert key in space, key


def test_classify_structural_helpers():
    app = app_from_token("random-dag:7:0:depth=10+fanin=6+diamond=1")
    assert app_depth(app) == len(app.phases) > 8
    assert app_max_fan_in(app) == 6
    assert app_shares_sections(app)
    assert app_max_replicas(app) >= 1


def test_adversarial_coverpoints_fire_on_shaped_apps():
    cases = {
        "deep-chain": "random-dag:7:0:depth=10",
        "wide-fan-in": "random-dag:7:0:fanin=6",
        "diamond-shared": "random-dag:7:0:diamond=1",
        "triggered-subgraph": "random-dag:7:0:trig=1",
    }
    for name, token in cases.items():
        app = app_from_token(token)
        assert ADVERSARIAL_POINTS[name](app), name
    plain = app_from_token("pipeline:7:0")
    for name, predicate in ADVERSARIAL_POINTS.items():
        assert not predicate(plain), name


def test_coverage_map_records_hits_and_first_tokens():
    cover = CoverageMap()
    token = "pipeline:7:0"
    app, record = _pair(token)
    key, fresh = cover.record(app, record, token=token)
    assert fresh
    assert cover.hits(key) == 1
    assert cover.first_token(key) == token
    key2, fresh2 = cover.record(app, record, token="pipeline:7:0")
    assert key2 == key and not fresh2
    assert cover.hits(key) == 2
    assert cover.covered() == [key]
    assert key not in cover.uncovered()
    assert len(cover.uncovered()) == len(cover.space) - 1
    assert cover.unexpected() == []
