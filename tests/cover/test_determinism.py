"""Byte-determinism of the repro-cover/1 artifact."""

import json
import os
import subprocess
import sys

from repro.cover import fuzz_campaign
from repro.eval.coverexp import cover_payload, write_cover_json


def _dumps(report):
    return json.dumps(cover_payload(report), indent=2, sort_keys=True)


def test_payload_is_byte_identical_across_runs(tmp_path):
    a = fuzz_campaign(budget=12, saturation=12, duration_s=0.5)
    b = fuzz_campaign(budget=12, saturation=12, duration_s=0.5)
    assert _dumps(a) == _dumps(b)
    path = write_cover_json(a, tmp_path / "cover.json")
    assert path.read_text(encoding="utf-8") == _dumps(a) + "\n"


def test_payload_schema_invariants():
    report = fuzz_campaign(budget=12, saturation=12, duration_s=0.5)
    payload = cover_payload(report)
    assert payload["schema"] == "repro-cover/1"
    assert payload["covered"] == len(payload["bins"])
    assert payload["covered"] + len(payload["uncovered"]) == \
        payload["total_bins"]
    assert sum(payload["status_counts"].values()) == sum(
        entry["hits"] for entry in payload["bins"].values()) + sum(
        entry["hits"] for entry in payload["unexpected"].values())
    assert set(payload["adversarial"]) == {
        "deep-chain", "wide-fan-in", "diamond-shared",
        "triggered-subgraph"}


def test_artifact_survives_pythonhashseed(tmp_path):
    """Two cold interpreters, adversarial hash seeds, identical bytes."""
    import repro
    src = os.path.dirname(os.path.dirname(repro.__file__))
    outputs = []
    for hashseed, name in (("1", "a.json"), ("42", "b.json")):
        path = tmp_path / name
        env = dict(os.environ, PYTHONHASHSEED=hashseed,
                   PYTHONPATH=src)
        subprocess.run(
            [sys.executable, "-m", "repro.eval", "cover",
             "--budget", "10", "--saturation", "10",
             "--duration", "0.5", "--json", str(path)],
            check=True, env=env, capture_output=True)
        outputs.append(path.read_bytes())
    assert outputs[0] == outputs[1]
