"""Coverage-model and fuzz-loop tests."""
