"""Cross-process determinism of the workload generator.

The guarantee under test: identical seed => byte-identical generated
``AppSpec``, independent of hash randomisation, set iteration order
or any other per-process state.  Fresh interpreters are launched with
*different* ``PYTHONHASHSEED`` values and must serialise the same
suite to the same bytes.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.eval.__main__ import main
from repro.gen import app_fingerprint, app_to_mapping, generate_suite

#: Serialise a small all-family suite canonically and print it.
_DUMP_SCRIPT = """
import json
from repro.gen import generate_suite, app_to_mapping
suite = generate_suite(11, 10)
print(json.dumps([app_to_mapping(app) for app in suite],
                 sort_keys=True, separators=(",", ":")))
"""

_SRC_ROOT = str(Path(repro.__file__).resolve().parent.parent)


def _dump_with_hashseed(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = _SRC_ROOT + os.pathsep + \
        env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _DUMP_SCRIPT],
        env=env, capture_output=True, text=True, check=True)
    return result.stdout


def test_generation_is_identical_across_hashseeds():
    dumps = [_dump_with_hashseed(seed) for seed in ("0", "1", "4242")]
    assert dumps[0] == dumps[1] == dumps[2]
    # And the subprocess output matches this very process too.
    local = json.dumps(
        [app_to_mapping(app) for app in generate_suite(11, 10)],
        sort_keys=True, separators=(",", ":")) + "\n"
    assert dumps[0] == local


def test_in_process_fingerprints_are_stable():
    first = [app_fingerprint(app) for app in generate_suite(11, 5)]
    second = [app_fingerprint(app) for app in generate_suite(11, 5)]
    assert first == second


def test_gen_cli_artifacts_are_byte_identical(tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    argv = ["gen", "--seed", "7", "--count", "4", "--duration", "1",
            "--json"]
    assert main(argv + [str(a)]) == 0
    assert main(argv + [str(b)]) == 0
    capsys.readouterr()
    assert a.read_bytes() == b.read_bytes()
