"""Consistency regression tests for ``explorer.policy_rates``.

The per-policy reject/repair/screened fractions are the standing
metric the gen experiment and its artifact report; they must tie out
exactly against the record population they summarise — for every
built-in family and every built-in mapping policy, including the
screened status that only :func:`screen_tokens` produces.
"""

from collections import Counter

import pytest

from repro.gen.explorer import (
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_REPAIRED,
    STATUS_SCREENED,
    explore,
    policy_rates,
    screen_tokens,
)
from repro.gen.generator import parse_app_token
from repro.gen.policies import POLICIES
from repro.gen.topology import FAMILY_ORDER

ALL_STATUSES = (STATUS_OK, STATUS_REPAIRED, STATUS_REJECTED,
                STATUS_SCREENED)

#: Every built-in family (via the suite) plus shaped adversarial
#: tokens that force the repair and reject paths.
TOKENS = [f"{family}:11:{i}" for i, family in enumerate(FAMILY_ORDER)] + [
    "random-dag:2014:4:depth=9+fanin=5+diamond=1+trig=1+reps=6",
    "random-dag:7:0:depth=12+reps=10",
    "random-dag:0:0:reps=12",
]


@pytest.fixture(scope="module")
def records():
    evaluated = explore(TOKENS, policies=tuple(sorted(POLICIES)),
                        duration_s=0.5)
    screened = screen_tokens(
        TOKENS, policies=("paper", "balanced", "single-core"),
        duration_s=0.5, top_k=1)
    return evaluated + screened


def test_population_exercises_every_family_and_status(records):
    assert {parse_app_token(r.token)[0] for r in records} == \
        set(FAMILY_ORDER)
    assert {r.policy for r in records} == set(POLICIES)
    assert {r.status for r in records} == set(ALL_STATUSES)


def test_rates_tie_out_against_record_statuses(records):
    rates = policy_rates(records)
    assert set(rates) == {r.policy for r in records}
    for policy, entry in rates.items():
        mine = [r for r in records if r.policy == policy]
        counts = Counter(r.status for r in mine)
        assert entry["points"] == len(mine)
        for status in ALL_STATUSES:
            assert entry[status] == counts[status], (policy, status)
        assert sum(entry[s] for s in ALL_STATUSES) == entry["points"]
        assert entry["replicas_trimmed"] == \
            sum(r.repairs for r in mine)
        assert entry["repair_rate"] == \
            entry[STATUS_REPAIRED] / entry["points"]
        assert entry["reject_rate"] == \
            entry[STATUS_REJECTED] / entry["points"]


def test_rates_per_policy_sum_to_total_population(records):
    rates = policy_rates(records)
    assert sum(e["points"] for e in rates.values()) == len(records)
    for status in ALL_STATUSES:
        assert sum(e[status] for e in rates.values()) == \
            sum(1 for r in records if r.status == status)


def test_rates_of_empty_population_is_empty():
    assert policy_rates([]) == {}
