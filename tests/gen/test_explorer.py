"""Tests for the mapping-policy explorer."""

import pytest

from repro.apps.phases import AppSpec, PhaseSpec, SectionSpec
from repro.gen import (
    evaluate_app,
    evaluate_token,
    explore,
    generate_app,
    repair_app,
    suite_tokens,
)
from repro.gen.explorer import (
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_REPAIRED,
    ExplorationRecord,
    policy_rates,
)


def _wide_app(replicas):
    app = AppSpec(
        name="WIDE",
        fs=250.0,
        phases=[PhaseSpec(
            name="w",
            cycles_per_sample=1000.0,
            dm_access_rate=0.3,
            sections=(SectionSpec("w0", 1000),),
            replicas=replicas,
            lockstep_alignment=0.5,
        )],
    )
    app.validate()
    return app


def test_repair_trims_widest_group_first():
    app = _wide_app(12)
    repaired, trimmed = repair_app(app, num_cores=8)
    assert trimmed == 4
    assert repaired.phases[0].replicas == 8
    # Fitting apps pass through untouched (same object).
    untouched, zero = repair_app(_wide_app(4), num_cores=8)
    assert zero == 0
    assert untouched.phases[0].replicas == 4


def test_repair_stops_at_minimal_groups():
    app = AppSpec(
        name="MANY", fs=250.0,
        phases=[PhaseSpec(
            name=f"p{i}", cycles_per_sample=100.0, dm_access_rate=0.3,
            sections=(SectionSpec(f"s{i}", 500),))
            for i in range(10)])
    app.validate()
    repaired, trimmed = repair_app(app, num_cores=8)
    assert trimmed == 0  # nothing to trim: all groups are width 1


def test_evaluate_reports_repaired_status():
    record = evaluate_app(_wide_app(12), "paper", num_cores=8,
                          duration_s=1.0)
    assert record.status == STATUS_REPAIRED
    assert record.repairs == 4
    assert record.active_cores == 8
    assert record.power_uw > 0
    assert record.simulated_s == 1.0


def test_evaluate_reports_ok_with_figures_of_merit():
    app = generate_app("fork-join", seed=3, index=1)
    record = evaluate_app(app, "balanced", duration_s=1.0)
    assert record.status == STATUS_OK
    assert record.clock_mhz >= 1.0  # platform floor
    assert 0.4 <= record.voltage <= 1.2
    assert 0 < record.duty_cycle <= 1.0
    assert record.power_uw > 0
    assert record.sync_overhead >= 0
    assert record.im_banks >= 1


def test_evaluate_rejects_unmappable_and_keeps_error():
    app = AppSpec(
        name="FAT", fs=250.0,
        phases=[PhaseSpec(
            name=f"p{i}", cycles_per_sample=100.0, dm_access_rate=0.3,
            sections=(SectionSpec(f"s{i}", 4000),))
            for i in range(8)])
    app.validate()
    record = evaluate_app(app, "balanced", duration_s=1.0)
    assert record.status == STATUS_REJECTED
    assert record.error
    assert record.power_uw == 0.0
    assert record.simulated_s == 0.0


def test_single_core_policy_runs_baseline_mode():
    app = generate_app("independent", seed=3, index=0)
    record = evaluate_app(app, "single-core", duration_s=1.0)
    assert record.status == STATUS_OK
    assert record.active_cores == 1
    assert record.sync_overhead == 0.0
    assert record.duty_cycle > 0.9  # baseline core sized to the load


def test_evaluate_token_matches_evaluate_app():
    token = suite_tokens(5, 1)[0]
    by_token = evaluate_token(token, "balanced", duration_s=1.0)
    app = generate_app("pipeline", 5, 0)
    direct = evaluate_app(app, "balanced", duration_s=1.0,
                          token=token, family="pipeline")
    assert by_token == direct


def test_policy_rates_standing_metric():
    """Reject/repair rates aggregate per policy over any record set."""
    def record(policy, status, repairs=0):
        return ExplorationRecord(
            app="A", token="", family="", policy=policy, num_cores=8,
            status=status, repairs=repairs)

    rates = policy_rates([
        record("paper", STATUS_OK),
        record("paper", STATUS_REJECTED),
        record("paper", STATUS_REPAIRED, repairs=2),
        record("balanced", STATUS_OK),
    ])
    assert list(rates) == ["paper", "balanced"]  # first-seen order
    paper = rates["paper"]
    assert paper["points"] == 3
    assert paper["rejected"] == 1 and paper["repaired"] == 1
    assert paper["replicas_trimmed"] == 2
    assert paper["reject_rate"] == pytest.approx(1 / 3)
    assert paper["repair_rate"] == pytest.approx(1 / 3)
    balanced = rates["balanced"]
    assert balanced["reject_rate"] == 0.0
    assert balanced["repair_rate"] == 0.0
    assert policy_rates([]) == {}


def test_policy_rates_cover_real_explorations():
    tokens = suite_tokens(5, 2)
    records = explore(tokens, policies=("paper", "balanced"),
                      duration_s=1.0)
    rates = policy_rates(records)
    assert set(rates) == {"paper", "balanced"}
    for entry in rates.values():
        assert entry["points"] == 2
        assert entry["ok"] + entry["repaired"] + entry["rejected"] == 2
        assert 0.0 <= entry["reject_rate"] <= 1.0


def test_explore_is_app_major_and_validates_policies():
    tokens = suite_tokens(5, 2)
    records = explore(tokens, policies=("paper", "balanced"),
                      duration_s=1.0)
    assert [(r.token, r.policy) for r in records] == [
        (tokens[0], "paper"), (tokens[0], "balanced"),
        (tokens[1], "paper"), (tokens[1], "balanced"),
    ]
    with pytest.raises(ValueError):
        explore(tokens, policies=("nope",), duration_s=1.0)


def test_screen_policies_simulates_only_the_kept():
    from repro.gen.explorer import STATUS_SCREENED, screen_tokens

    tokens = suite_tokens(5, 2)
    records = screen_tokens(tokens, policies=("paper", "balanced"),
                            duration_s=1.0, top_k=1)
    assert [(r.token, r.policy) for r in records] == [
        (tokens[0], "paper"), (tokens[0], "balanced"),
        (tokens[1], "paper"), (tokens[1], "balanced"),
    ]
    for token in tokens:
        per_app = [r for r in records if r.token == token]
        placed = [r for r in per_app if r.status != STATUS_REJECTED]
        screened = [r for r in placed if r.status == STATUS_SCREENED]
        simulated = [r for r in placed if r.status != STATUS_SCREENED]
        # top_k=1: at most one feasible candidate pays a simulation.
        assert len(simulated) <= 1
        for record in screened:
            assert record.simulated_s == 0.0
            assert record.power_uw > 0.0
        for record in simulated:
            assert record.simulated_s == 1.0


def test_screened_records_match_exact_within_float_noise():
    from repro.gen.explorer import STATUS_SCREENED, screen_policies

    app = generate_app("pipeline", seed=5, index=0)
    records = screen_policies(app, policies=("paper", "balanced"),
                              duration_s=1.0, top_k=1)
    for record in records:
        if record.status != STATUS_SCREENED:
            continue
        exact = evaluate_app(app, record.policy, duration_s=1.0)
        assert record.power_uw == pytest.approx(exact.power_uw,
                                                rel=1e-9)
        assert record.clock_mhz == pytest.approx(exact.clock_mhz,
                                                 rel=1e-9)
        assert record.voltage == exact.voltage
        assert record.active_cores == exact.active_cores
        assert record.im_banks == exact.im_banks


def test_screen_policies_validates_top_k():
    from repro.gen.explorer import screen_policies, screen_tokens

    app = generate_app("pipeline", seed=5, index=0)
    with pytest.raises(ValueError, match="top-k must be >= 1"):
        screen_policies(app, top_k=0)
    with pytest.raises(ValueError):
        screen_tokens(suite_tokens(5, 1), policies=("nope",))


def test_screen_policies_falls_back_for_single_core():
    from repro.gen.explorer import screen_policies

    app = generate_app("pipeline", seed=5, index=0)
    records = screen_policies(
        app, policies=("single-core", "paper"), duration_s=1.0,
        top_k=1)
    single = records[0]
    assert single.policy == "single-core"
    # Single-core points cannot be screened analytically: they pay
    # the exact simulation regardless of the keep budget.
    assert single.status != "screened"
    if single.status != STATUS_REJECTED:
        assert single.simulated_s == 1.0


def test_policy_rates_count_screened_records():
    from repro.gen.explorer import STATUS_SCREENED, screen_tokens

    records = screen_tokens(suite_tokens(5, 2),
                            policies=("paper", "balanced"),
                            duration_s=1.0, top_k=1)
    rates = policy_rates(records)
    screened = sum(entry[STATUS_SCREENED] for entry in rates.values())
    assert screened == sum(
        1 for r in records if r.status == STATUS_SCREENED)
    for entry in rates.values():
        assert entry["points"] == 2
        assert (entry["ok"] + entry["repaired"] + entry["rejected"]
                + entry[STATUS_SCREENED]) == 2
