"""Tests for the mapping-policy explorer."""

import pytest

from repro.apps.phases import AppSpec, PhaseSpec, SectionSpec
from repro.gen import (
    evaluate_app,
    evaluate_token,
    explore,
    generate_app,
    repair_app,
    suite_tokens,
)
from repro.gen.explorer import (
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_REPAIRED,
    ExplorationRecord,
    policy_rates,
)


def _wide_app(replicas):
    app = AppSpec(
        name="WIDE",
        fs=250.0,
        phases=[PhaseSpec(
            name="w",
            cycles_per_sample=1000.0,
            dm_access_rate=0.3,
            sections=(SectionSpec("w0", 1000),),
            replicas=replicas,
            lockstep_alignment=0.5,
        )],
    )
    app.validate()
    return app


def test_repair_trims_widest_group_first():
    app = _wide_app(12)
    repaired, trimmed = repair_app(app, num_cores=8)
    assert trimmed == 4
    assert repaired.phases[0].replicas == 8
    # Fitting apps pass through untouched (same object).
    untouched, zero = repair_app(_wide_app(4), num_cores=8)
    assert zero == 0
    assert untouched.phases[0].replicas == 4


def test_repair_stops_at_minimal_groups():
    app = AppSpec(
        name="MANY", fs=250.0,
        phases=[PhaseSpec(
            name=f"p{i}", cycles_per_sample=100.0, dm_access_rate=0.3,
            sections=(SectionSpec(f"s{i}", 500),))
            for i in range(10)])
    app.validate()
    repaired, trimmed = repair_app(app, num_cores=8)
    assert trimmed == 0  # nothing to trim: all groups are width 1


def test_evaluate_reports_repaired_status():
    record = evaluate_app(_wide_app(12), "paper", num_cores=8,
                          duration_s=1.0)
    assert record.status == STATUS_REPAIRED
    assert record.repairs == 4
    assert record.active_cores == 8
    assert record.power_uw > 0
    assert record.simulated_s == 1.0


def test_evaluate_reports_ok_with_figures_of_merit():
    app = generate_app("fork-join", seed=3, index=1)
    record = evaluate_app(app, "balanced", duration_s=1.0)
    assert record.status == STATUS_OK
    assert record.clock_mhz >= 1.0  # platform floor
    assert 0.4 <= record.voltage <= 1.2
    assert 0 < record.duty_cycle <= 1.0
    assert record.power_uw > 0
    assert record.sync_overhead >= 0
    assert record.im_banks >= 1


def test_evaluate_rejects_unmappable_and_keeps_error():
    app = AppSpec(
        name="FAT", fs=250.0,
        phases=[PhaseSpec(
            name=f"p{i}", cycles_per_sample=100.0, dm_access_rate=0.3,
            sections=(SectionSpec(f"s{i}", 4000),))
            for i in range(8)])
    app.validate()
    record = evaluate_app(app, "balanced", duration_s=1.0)
    assert record.status == STATUS_REJECTED
    assert record.error
    assert record.power_uw == 0.0
    assert record.simulated_s == 0.0


def test_single_core_policy_runs_baseline_mode():
    app = generate_app("independent", seed=3, index=0)
    record = evaluate_app(app, "single-core", duration_s=1.0)
    assert record.status == STATUS_OK
    assert record.active_cores == 1
    assert record.sync_overhead == 0.0
    assert record.duty_cycle > 0.9  # baseline core sized to the load


def test_evaluate_token_matches_evaluate_app():
    token = suite_tokens(5, 1)[0]
    by_token = evaluate_token(token, "balanced", duration_s=1.0)
    app = generate_app("pipeline", 5, 0)
    direct = evaluate_app(app, "balanced", duration_s=1.0,
                          token=token, family="pipeline")
    assert by_token == direct


def test_policy_rates_standing_metric():
    """Reject/repair rates aggregate per policy over any record set."""
    def record(policy, status, repairs=0):
        return ExplorationRecord(
            app="A", token="", family="", policy=policy, num_cores=8,
            status=status, repairs=repairs)

    rates = policy_rates([
        record("paper", STATUS_OK),
        record("paper", STATUS_REJECTED),
        record("paper", STATUS_REPAIRED, repairs=2),
        record("balanced", STATUS_OK),
    ])
    assert list(rates) == ["paper", "balanced"]  # first-seen order
    paper = rates["paper"]
    assert paper["points"] == 3
    assert paper["rejected"] == 1 and paper["repaired"] == 1
    assert paper["replicas_trimmed"] == 2
    assert paper["reject_rate"] == pytest.approx(1 / 3)
    assert paper["repair_rate"] == pytest.approx(1 / 3)
    balanced = rates["balanced"]
    assert balanced["reject_rate"] == 0.0
    assert balanced["repair_rate"] == 0.0
    assert policy_rates([]) == {}


def test_policy_rates_cover_real_explorations():
    tokens = suite_tokens(5, 2)
    records = explore(tokens, policies=("paper", "balanced"),
                      duration_s=1.0)
    rates = policy_rates(records)
    assert set(rates) == {"paper", "balanced"}
    for entry in rates.values():
        assert entry["points"] == 2
        assert entry["ok"] + entry["repaired"] + entry["rejected"] == 2
        assert 0.0 <= entry["reject_rate"] <= 1.0


def test_explore_is_app_major_and_validates_policies():
    tokens = suite_tokens(5, 2)
    records = explore(tokens, policies=("paper", "balanced"),
                      duration_s=1.0)
    assert [(r.token, r.policy) for r in records] == [
        (tokens[0], "paper"), (tokens[0], "balanced"),
        (tokens[1], "paper"), (tokens[1], "balanced"),
    ]
    with pytest.raises(ValueError):
        explore(tokens, policies=("nope",), duration_s=1.0)
