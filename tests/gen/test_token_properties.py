"""Property-based round-trip tests for generated-app tokens.

Every canonical token must survive ``token -> parse -> token``
byte-identically: the tokens are the durable identity that sweep
caches, artifacts and regression baselines key on, so any drift in
the serialisation is silent cache poisoning.  Malformed tokens must
raise :class:`ValueError` naming the offending field.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.gen.generator import app_token, parse_app_token
from repro.gen.topology import (
    FAMILY_ORDER,
    MAX_SHAPE_DEPTH,
    MAX_SHAPE_FAN_IN,
    MAX_SHAPE_REPLICAS,
    SHAPE_KNOB_ORDER,
    Shape,
    parse_shape,
    shape_fragment,
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)
indices = st.integers(min_value=0, max_value=10_000)

#: Any legal shape, including the all-default (falsy) one.
shapes = st.builds(
    Shape,
    depth=st.none() | st.integers(2, MAX_SHAPE_DEPTH),
    fan_in=st.none() | st.integers(2, MAX_SHAPE_FAN_IN),
    diamond=st.booleans(),
    triggered=st.booleans(),
    replicas=st.none() | st.integers(1, MAX_SHAPE_REPLICAS),
)


@settings(deadline=None)
@given(family=st.sampled_from(FAMILY_ORDER), seed=seeds, index=indices)
def test_plain_token_round_trips(family, seed, index):
    token = app_token(family, seed, index)
    assert token.count(":") == 2
    parsed = parse_app_token(token)
    assert parsed == (family, seed, index, Shape())
    assert app_token(*parsed[:3], shape=parsed[3]) == token


@settings(deadline=None)
@given(seed=seeds, index=indices, shape=shapes)
def test_shaped_token_round_trips(seed, index, shape):
    token = app_token("random-dag", seed, index, shape=shape)
    family, seed2, index2, shape2 = parse_app_token(token)
    assert (family, seed2, index2) == ("random-dag", seed, index)
    assert shape2 == shape
    assert app_token(family, seed2, index2, shape=shape2) == token


@settings(deadline=None)
@given(shape=shapes)
def test_shape_fragment_round_trips(shape):
    fragment = shape_fragment(shape)
    if not shape:
        assert fragment == ""
    else:
        assert parse_shape(fragment) == shape
        assert shape_fragment(parse_shape(fragment)) == fragment


@settings(deadline=None)
@given(shape=shapes)
def test_shape_fragment_lists_knobs_in_canonical_order(shape):
    fragment = shape_fragment(shape)
    knobs = [part.split("=")[0] for part in fragment.split("+") if part]
    order = {knob: i for i, knob in enumerate(SHAPE_KNOB_ORDER)}
    assert knobs == sorted(knobs, key=order.__getitem__)


@settings(deadline=None)
@given(
    seed=seeds,
    index=indices,
    knob=st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8
    ).filter(lambda s: s not in SHAPE_KNOB_ORDER),
)
def test_unknown_knob_raises_naming_the_knob(seed, index, knob):
    with pytest.raises(ValueError) as err:
        parse_app_token(f"random-dag:{seed}:{index}:{knob}=3")
    assert knob in str(err.value)


@settings(deadline=None)
@given(seed=seeds, index=indices, knob=st.sampled_from(("depth", "fanin")))
def test_non_integer_knob_value_raises_naming_the_knob(seed, index, knob):
    with pytest.raises(ValueError) as err:
        parse_app_token(f"random-dag:{seed}:{index}:{knob}=wide")
    assert knob in str(err.value)


@settings(deadline=None)
@given(seed=seeds, index=indices, shape=shapes.filter(bool))
def test_shaped_tokens_rejected_outside_random_dag(seed, index, shape):
    token = f"pipeline:{seed}:{index}:{shape_fragment(shape)}"
    with pytest.raises(ValueError, match="random-dag"):
        parse_app_token(token)
