"""Tests for the mapping policies of the explorer."""

import pytest

from repro.apps import three_lead_mf, three_lead_mmd
from repro.apps.mapping import MappingError, map_multicore
from repro.apps.phases import (
    AppSpec,
    ChannelSpec,
    PhaseSpec,
    SectionSpec,
)
from repro.gen import (
    POLICIES,
    critical_path_weights,
    generate_app,
    get_policy,
    map_balanced,
    map_critical_path,
)
from repro.isa.layout import ImGeometry


def _phase(name, cycles, sections, replicas=1):
    return PhaseSpec(
        name=name,
        cycles_per_sample=cycles,
        dm_access_rate=0.3,
        sections=tuple(SectionSpec(*section) for section in sections),
        replicas=replicas,
    )


def _chain_app():
    """a -> b -> c with c the heaviest tail."""
    app = AppSpec(
        name="CHAIN",
        fs=250.0,
        phases=[
            _phase("a", 1000.0, [("a0", 1000)]),
            _phase("b", 500.0, [("b0", 1000)]),
            _phase("c", 3000.0, [("c0", 1000)]),
        ],
        channels=[
            ChannelSpec(producers=("a",), consumer="b"),
            ChannelSpec(producers=("b",), consumer="c"),
        ],
    )
    app.validate()
    return app


def test_registry_has_all_policies():
    assert list(POLICIES) == [
        "paper", "single-core", "balanced", "critical-path",
        "search-greedy", "search-anneal",
    ]
    assert POLICIES["single-core"].multicore is False
    assert POLICIES["search-anneal"].multicore is True
    with pytest.raises(ValueError):
        get_policy("nope")


def test_policies_agree_with_paper_on_table1_apps():
    """On the paper's own benchmarks all multi-core policies place."""
    for app in (three_lead_mf(), three_lead_mmd()):
        paper = map_multicore(app)
        for name in ("balanced", "critical-path"):
            plan = get_policy(name).map(app)
            assert plan.multicore
            assert plan.active_cores == paper.active_cores
            assert plan.sync_points_used == paper.sync_points_used
            assert set(plan.section_banks) == set(paper.section_banks)


def test_critical_path_weights_follow_downstream_chain():
    weights = critical_path_weights(_chain_app())
    assert weights["c"] == 3000.0
    assert weights["b"] == 3500.0
    assert weights["a"] == 4500.0


def test_critical_path_orders_heaviest_chain_first():
    plan = map_critical_path(_chain_app())
    # 'a' heads the heaviest chain: core 0 and the runtime's bank 0.
    assert plan.assignments[0].phase == "a"
    assert plan.section_banks["a0"] == 0


def test_balanced_places_section_heavy_apps_paper_rejects():
    # Nine distinct non-head sections: the paper policy runs out of
    # dedicated banks, the packing heuristics do not.
    phases = [_phase("head", 500.0, [("head0", 800)])]
    for index in range(3):
        phases.append(_phase(
            f"p{index}", 500.0,
            [(f"p{index}_s{j}", 900) for j in range(3)]))
    app = AppSpec(name="WIDE", fs=250.0, phases=phases)
    app.validate()
    with pytest.raises(MappingError):
        map_multicore(app)
    for mapper in (map_balanced, map_critical_path):
        plan = mapper(app)
        assert set(plan.section_banks) == \
            {s.name for phase in app.phases for s in phase.sections}
        geom = ImGeometry()
        fills = [0] * geom.banks
        fills[0] = app.runtime_words
        for phase in app.phases:
            for section in phase.sections:
                fills[plan.section_banks[section.name]] += section.words
        assert max(fills) <= geom.words_per_bank


def test_balanced_levels_bank_fill():
    app = _chain_app()
    plan = map_balanced(app)
    # Three 1000-word sections over 8 banks: load-levelling puts each
    # in its own (least-filled) bank rather than stacking them.
    banks = [plan.section_banks[name] for name in ("a0", "b0", "c0")]
    assert len(set(banks)) == 3


def test_policies_reject_genuinely_oversized_apps():
    huge = AppSpec(
        name="HUGE", fs=250.0,
        phases=[_phase(f"p{i}", 100.0, [(f"s{i}", 4000)])
                for i in range(10)])
    huge.validate()
    for name in ("paper", "balanced", "critical-path"):
        with pytest.raises(MappingError):
            get_policy(name).map(huge)


def test_policies_are_deterministic_on_generated_apps():
    app = generate_app("random-dag", seed=31, index=4)
    for name in ("balanced", "critical-path"):
        first = get_policy(name).map(app)
        second = get_policy(name).map(app)
        assert first.section_banks == second.section_banks
        assert first.assignments == second.assignments
