"""Tests for the synthetic workload generator."""

import pytest

from repro.apps.phases import Trigger
from repro.gen import (
    FAMILY_ORDER,
    app_fingerprint,
    app_from_mapping,
    app_from_token,
    app_to_mapping,
    app_token,
    generate_app,
    generate_suite,
    parse_app_token,
    suite_tokens,
)
from repro.gen.topology import Shape
from repro.gen.distributions import (
    APP_CYCLES_RANGE,
    DM_RATE_RANGE,
    SYNC_RATE_RANGE,
)


@pytest.mark.parametrize("family", FAMILY_ORDER)
def test_every_family_generates_valid_apps(family):
    for index in range(8):
        app = generate_app(family, seed=123, index=index)
        app.validate()  # no exception
        assert app.phases
        assert app.fs == 250.0
        # Stage 0 streams, so the app has a real-time requirement.
        assert app.phases[0].trigger is Trigger.STREAMING
        assert app.streaming_cycles_per_sample > 0


@pytest.mark.parametrize("family", FAMILY_ORDER)
def test_workloads_stay_in_characterised_bands(family):
    for index in range(6):
        app = generate_app(family, seed=9, index=index)
        low, high = APP_CYCLES_RANGE
        assert low * 0.99 <= app.streaming_cycles_per_sample <= high * 1.01
        for phase in app.phases:
            assert DM_RATE_RANGE[0] <= phase.dm_access_rate \
                <= DM_RATE_RANGE[1]
            if phase.cycles_per_sample > 0:
                rate = phase.sync_ops_per_sample / phase.cycles_per_sample
                assert rate <= SYNC_RATE_RANGE[1] * 1.05
            if phase.replicas > 1:
                assert 0 < phase.lockstep_alignment <= 1


def test_channels_reference_existing_phases():
    for index in range(10):
        app = generate_app("random-dag", seed=77, index=index)
        names = {phase.name for phase in app.phases}
        for channel in app.channels:
            assert channel.consumer in names
            assert set(channel.producers) <= names


def test_same_identity_is_equal_and_same_fingerprint():
    a = generate_app("pipeline", seed=5, index=3)
    b = generate_app("pipeline", seed=5, index=3)
    assert a == b
    assert app_fingerprint(a) == app_fingerprint(b)


def test_different_identities_differ():
    base = app_fingerprint(generate_app("pipeline", seed=5, index=3))
    assert app_fingerprint(generate_app("pipeline", seed=5, index=4)) \
        != base
    assert app_fingerprint(generate_app("pipeline", seed=6, index=3)) \
        != base
    assert app_fingerprint(generate_app("fork-join", seed=5, index=3)) \
        != base


def test_token_round_trip():
    token = app_token("fan-in", 99, 4)
    assert token == "fan-in:99:4"
    assert parse_app_token(token) == ("fan-in", 99, 4, Shape())
    app = app_from_token(token)
    assert app == generate_app("fan-in", 99, 4)


def test_shaped_token_round_trip():
    shape = Shape(depth=10, fan_in=6, diamond=True, triggered=True,
                  replicas=5)
    token = app_token("random-dag", 7, 0, shape=shape)
    assert token == \
        "random-dag:7:0:depth=10+fanin=6+diamond=1+trig=1+reps=5"
    assert parse_app_token(token) == ("random-dag", 7, 0, shape)
    assert app_from_token(token) == \
        generate_app("random-dag", 7, 0, shape=shape)


def test_default_shape_keeps_plain_identity():
    assert app_token("random-dag", 7, 0, shape=Shape()) == \
        "random-dag:7:0"
    assert generate_app("random-dag", 7, 0, shape=Shape()) == \
        generate_app("random-dag", 7, 0)


@pytest.mark.parametrize("bad", [
    "nope:1:2", "pipeline:1", "pipeline:x:2", "pipeline:1:y",
    "random-dag:1:2:", "random-dag:1:2:bogus=3",
    "random-dag:1:2:depth", "random-dag:1:2:depth=x",
    "random-dag:1:2:depth=1", "random-dag:1:2:depth=3+depth=4",
    "random-dag:1:2:diamond=2", "pipeline:1:2:depth=3",
])
def test_malformed_tokens_raise(bad):
    with pytest.raises(ValueError):
        parse_app_token(bad)


def test_shape_knobs_rejected_outside_random_dag():
    with pytest.raises(ValueError, match="random-dag"):
        generate_app("pipeline", 1, 0, shape=Shape(depth=3))


@pytest.mark.parametrize("shape,needle", [
    (dict(depth=1), "depth"),
    (dict(depth=99), "depth"),
    (dict(fan_in=1), "fanin"),
    (dict(fan_in=99), "fanin"),
    (dict(replicas=0), "reps"),
    (dict(replicas=99), "reps"),
])
def test_shape_bounds_name_the_knob(shape, needle):
    with pytest.raises(ValueError, match=needle):
        Shape(**shape)


def test_suite_cycles_families_round_robin():
    tokens = suite_tokens(3, 7)
    families = [parse_app_token(token)[0] for token in tokens]
    expected = [FAMILY_ORDER[i % len(FAMILY_ORDER)] for i in range(7)]
    assert families == expected
    custom = suite_tokens(3, 4, families=("pipeline", "fan-in"))
    assert [parse_app_token(t)[0] for t in custom] == \
        ["pipeline", "fan-in", "pipeline", "fan-in"]


def test_suite_rejects_bad_inputs():
    with pytest.raises(ValueError):
        suite_tokens(1, 0)
    with pytest.raises(ValueError):
        suite_tokens(1, 2, families=("nope",))


def test_mapping_round_trip_preserves_app():
    app = generate_app("fork-join", seed=11, index=2)
    rebuilt = app_from_mapping(app_to_mapping(app))
    assert rebuilt == app
    assert app_fingerprint(rebuilt) == app_fingerprint(app)


def test_generate_suite_matches_tokens():
    apps = generate_suite(21, 5)
    tokens = suite_tokens(21, 5)
    assert [app.name for app in apps] == \
        [f"G{i:02d}-{parse_app_token(t)[0]}"
         for i, t in enumerate(tokens)]
