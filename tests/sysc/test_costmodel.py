"""Tests for the bottom-up cost cross-validation."""

import pytest

from repro.sysc.costmodel import (
    DEFAULT_CYCLES_PER_ELEMENT,
    derive_filter_cost,
)


def test_derived_and_calibrated_costs_agree():
    """Bottom-up DSP cost within 2x of the Table-I-anchored budget."""
    consistency = derive_filter_cost()
    assert 0.5 <= consistency.ratio <= 2.0


def test_measured_cost_agrees_too():
    """Same check with the per-element cost measured on the platform."""
    consistency = derive_filter_cost(measure=True)
    assert consistency.cycles_per_element == pytest.approx(
        DEFAULT_CYCLES_PER_ELEMENT, rel=0.25)
    assert 0.5 <= consistency.ratio <= 2.0


def test_derived_cost_scales_with_sampling_rate():
    low = derive_filter_cost(fs=250.0)
    high = derive_filter_cost(fs=500.0)
    assert high.derived_cycles_per_sample > \
        1.8 * low.derived_cycles_per_sample


def test_explicit_cycles_per_element():
    consistency = derive_filter_cost(cycles_per_element=10.0)
    assert consistency.cycles_per_element == 10.0
    assert consistency.derived_cycles_per_sample == pytest.approx(
        10.0 * (2 * 51 + 2 * 75 + 4 * 5))
