"""Tests for the system-level behavioural simulator."""

import pytest

from repro.apps import rp_class, three_lead_mf, three_lead_mmd
from repro.sysc import (
    Mode,
    schedule_from_record,
    simulate,
    uniform_schedule,
)
from repro.signals import rp_class_record

FS = 250.0


def _run(app, mode, ratio=0.0, duration=60.0):
    schedule = uniform_schedule(duration, FS, abnormal_ratio=ratio)
    return simulate(app, mode, schedule, duration_s=duration)


# ---------------------------------------------------------------------------
# Schedules
# ---------------------------------------------------------------------------

def test_uniform_schedule_ratio_and_spread():
    schedule = uniform_schedule(60.0, FS, abnormal_ratio=0.25)
    abnormal = [e for e in schedule if e.abnormal]
    assert len(abnormal) == pytest.approx(len(schedule) * 0.25, abs=1)
    gaps = [b.sample - a.sample for a, b in zip(abnormal, abnormal[1:])]
    assert max(gaps) - min(gaps) <= max(1, int(0.35 * FS * 60 / 72))


def test_uniform_schedule_extremes():
    assert all(not e.abnormal
               for e in uniform_schedule(30.0, FS, abnormal_ratio=0.0))
    assert all(e.abnormal
               for e in uniform_schedule(30.0, FS, abnormal_ratio=1.0))
    assert uniform_schedule(0.0, FS) == []


def test_schedule_from_record_matches_annotations():
    record = rp_class_record(duration_s=30.0, pathological_ratio=0.3)
    schedule = schedule_from_record(record)
    assert len(schedule) == len(record.annotations)
    abnormal = sum(1 for e in schedule if e.abnormal)
    assert abnormal == sum(1 for b in record.annotations
                           if b.is_pathological)


# ---------------------------------------------------------------------------
# Sizing (VFS) behaviour
# ---------------------------------------------------------------------------

def test_single_core_clocks_match_table1():
    assert _run(three_lead_mf(), Mode.SINGLE_CORE).required_mhz == \
        pytest.approx(2.3, abs=0.02)
    assert _run(three_lead_mmd(), Mode.SINGLE_CORE).required_mhz == \
        pytest.approx(3.4, abs=0.02)
    result = _run(rp_class(0.2), Mode.SINGLE_CORE, ratio=0.2)
    assert result.required_mhz == pytest.approx(3.3, abs=0.1)


def test_multicore_runs_at_platform_floor():
    for app, ratio in ((three_lead_mf(), 0.0), (three_lead_mmd(), 0.0),
                       (rp_class(0.2), 0.2)):
        result = _run(app, Mode.MULTI_CORE, ratio=ratio)
        assert result.operating_point.frequency_mhz == 1.0
        assert result.operating_point.voltage == 0.5


def test_single_core_voltage_is_06():
    for app, ratio in ((three_lead_mf(), 0.0), (three_lead_mmd(), 0.0),
                       (rp_class(0.2), 0.2)):
        result = _run(app, Mode.SINGLE_CORE, ratio=ratio)
        assert result.operating_point.voltage == 0.6


# ---------------------------------------------------------------------------
# Activity accounting
# ---------------------------------------------------------------------------

def test_multicore_cores_are_gated_when_idle():
    result = _run(three_lead_mf(), Mode.MULTI_CORE)
    activity = result.activity
    # 3 cores at ~78 % duty: active cycles well below 3x wall cycles.
    assert activity.core_active_cycles < 3 * activity.cycles * 0.9
    assert activity.core_active_cycles > 3 * activity.cycles * 0.6


def test_no_sync_mode_spins_instead_of_gating():
    gated = _run(three_lead_mf(), Mode.MULTI_CORE)
    spinning = _run(three_lead_mf(), Mode.MULTI_CORE_NO_SYNC)
    assert spinning.activity.core_active_cycles == \
        pytest.approx(3 * spinning.activity.cycles, rel=0.01)
    assert spinning.activity.core_active_cycles > \
        gated.activity.core_active_cycles
    assert spinning.activity.sync_ops == 0
    assert spinning.im_broadcast_fraction == 0.0


def test_broadcast_only_in_synchronized_multicore():
    assert _run(three_lead_mf(), Mode.SINGLE_CORE) \
        .im_broadcast_fraction == 0.0
    assert _run(three_lead_mf(), Mode.MULTI_CORE) \
        .im_broadcast_fraction > 0.3


def test_triggered_phases_consume_nothing_without_abnormal_beats():
    idle = _run(rp_class(0.0), Mode.MULTI_CORE, ratio=0.0)
    busy = _run(rp_class(0.5), Mode.MULTI_CORE, ratio=0.5)
    assert busy.activity.core_active_cycles > \
        idle.activity.core_active_cycles * 1.1


def test_runtime_overhead_in_paper_band():
    mf = _run(three_lead_mf(), Mode.MULTI_CORE)
    mmd = _run(three_lead_mmd(), Mode.MULTI_CORE)
    rp = _run(rp_class(0.2), Mode.MULTI_CORE, ratio=0.2)
    assert 0.005 < rp.runtime_overhead < mmd.runtime_overhead \
        < mf.runtime_overhead < 0.02


def test_streaming_latency_is_bounded():
    """Real-time check: streaming work never piles up."""
    for app, ratio in ((three_lead_mf(), 0.0), (three_lead_mmd(), 0.0)):
        result = _run(app, Mode.MULTI_CORE, ratio=ratio)
        assert result.max_latency_s < 0.01


def test_triggered_burst_latency_within_two_beats():
    """The on-demand chain drains within its relaxed deadline."""
    result = _run(rp_class(0.2), Mode.MULTI_CORE, ratio=0.2)
    assert result.max_latency_s < 2 * 60.0 / 72.0


def test_power_decomposition_is_consistent():
    result = _run(three_lead_mmd(), Mode.MULTI_CORE)
    assert result.power.total_uw == pytest.approx(
        sum(result.power.categories.values()))
    assert all(value >= 0 for value in result.power.categories.values())


def test_shorter_simulation_gives_same_average_power():
    """Average power is duration-invariant for stationary workloads."""
    long = _run(three_lead_mf(), Mode.MULTI_CORE, duration=60.0)
    short = _run(three_lead_mf(), Mode.MULTI_CORE, duration=10.0)
    assert short.power.total_uw == pytest.approx(long.power.total_uw,
                                                 rel=0.02)


def test_single_core_instruction_memory_dominates():
    """Fetch energy is the biggest SC component - the broadcast lever."""
    result = _run(three_lead_mf(), Mode.SINGLE_CORE)
    categories = result.power.categories
    assert categories["instr_mem"] == max(categories.values())
