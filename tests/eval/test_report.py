"""Golden-output tests for the report renderers.

``render_sweep``, ``render_net`` and ``render_gen`` feed CI logs and
the README examples; these tests pin their column sets and formatting
byte-for-byte on hand-built, fully deterministic inputs, so layout
drift is a deliberate diff, never an accident.
"""

from dataclasses import replace
from textwrap import dedent

from repro.eval.genexp import GenReport
from repro.eval.netexp import NetReport
from repro.eval.report import (
    render_gen,
    render_net,
    render_search,
    render_sweep,
)
from repro.eval.searchexp import SearchReport
from repro.gen.explorer import ExplorationRecord
from repro.search import SearchOutcome
from repro.net.fleet import FleetResult
from repro.net.stats import FleetSummary, GroupStats, SyncError
from repro.sweep.engine import PointResult, SweepResult
from repro.sweep.spec import SweepSpec


def _sweep_fixture() -> SweepResult:
    spec = SweepSpec(
        name="golden",
        runner="app",
        description="golden fixture",
        axes=(
            ("app", ("3L-MF",)),
            ("mode", ("single-core", "multi-core")),
        ),
        base=(("duration_s", 1.0),),
    )
    points = (
        {"duration_s": 1.0, "app": "3L-MF", "mode": "single-core"},
        {"duration_s": 1.0, "app": "3L-MF", "mode": "multi-core"},
    )
    metrics = (
        {"simulated_s": 1.0, "power_uw": 82.51234, "clock_mhz": 2.3,
         "voltage": 0.6, "runtime_overhead": 0.0},
        {"simulated_s": 1.0, "power_uw": 60.25, "clock_mhz": 1.0,
         "voltage": 0.5, "runtime_overhead": 0.0163},
    )
    results = tuple(
        PointResult(index=index, point=point, key=f"k{index}",
                    metrics=metric, wall_s=0.25, cached=index == 1)
        for index, (point, metric) in enumerate(zip(points, metrics))
    )
    return SweepResult(
        spec=spec, results=results, elapsed_s=0.5, cache_hits=1,
        cache_misses=1, workers=1, shards=1, mode="serial",
        fingerprint="deadbeef", cache_stores=1)


def test_render_sweep_golden():
    expected = dedent("""\
        Sweep 'golden' (app runner): 2 point(s), 1 worker(s), serial
          golden fixture
            app         mode  power_uw  clock_mhz  voltage  runtime_overhead  wall_s  cached
          ----------------------------------------------------------------------------------
          3L-MF  single-core     82.51        2.3      0.6                 0   0.250     run
          3L-MF   multi-core     60.25          1      0.5            0.0163   0.250     hit
          cache: 1 hit(s), 1 miss(es), 1 store(s) [deadbeef]
          throughput: 4.0 simulated-s/s (2 sim-s in 0.50 s)""")
    assert render_sweep(_sweep_fixture()) == expected


def _net_fixture() -> NetReport:
    error = SyncError(count=100, mean_abs_s=0.004, rms_s=0.005,
                      max_abs_s=0.009)
    steady = SyncError(count=50, mean_abs_s=0.002, rms_s=0.0025,
                       max_abs_s=0.004)
    free = SyncError(count=100, mean_abs_s=0.040, rms_s=0.050,
                     max_abs_s=0.090)
    steady_free = SyncError(count=50, mean_abs_s=0.030, rms_s=0.035,
                            max_abs_s=0.060)
    summary = FleetSummary(
        scenario="dense-ward", protocol="ftsp", n_nodes=4,
        duration_s=5.0, total_power_uw=400.0, mean_power_uw=100.0,
        mean_radio_uw=2.5, sync=error, steady_sync=steady,
        unsync=free, steady_unsync=steady_free, beacons_sent=10,
        beacons_heard=30, power_loss_resets=1)
    result = FleetResult(
        summary=summary, nodes=(), elapsed_s=2.0,
        nodes_per_second=2.0, workers=1, shards=1, mode="serial")
    return NetReport(scenario="dense-ward", result=result)


def test_render_net_golden():
    expected = dedent("""\
        Network: dense-ward (4 nodes, 5 s, 1 worker(s), serial)
          Metric                       no sync        ftsp
          ----------------------------------------------
          Mean node power (uW)           100.0       100.0
          Radio power (uW)                2.50        2.50
          Beacons sent                      10          10
          Beacons heard                     30          30
          Power-loss resets                  1           1
          Sync err mean (ms)             40.00        4.00
          Sync err RMS (ms)              50.00        5.00
          Steady err mean (ms)           30.00        2.00
          Steady err max (ms)            60.00        4.00
          steady-state error reduced 15.0x by ftsp
          throughput: 2.0 nodes/s (2.00 s)""")
    assert render_net(_net_fixture()) == expected


def _heterogeneous_net_fixture() -> NetReport:
    base = _net_fixture()
    steady = SyncError(count=25, mean_abs_s=0.0021, rms_s=0.003,
                       max_abs_s=0.004)
    summary = FleetSummary(
        scenario="gen:dense-ward:7:12:balanced",
        protocol=base.result.summary.protocol,
        n_nodes=4, duration_s=5.0, total_power_uw=400.0,
        mean_power_uw=100.0, mean_radio_uw=2.5,
        sync=base.result.summary.sync,
        steady_sync=base.result.summary.steady_sync,
        unsync=base.result.summary.unsync,
        steady_unsync=base.result.summary.steady_unsync,
        beacons_sent=10, beacons_heard=30, power_loss_resets=1,
        source="generated-suite",
        families=(
            GroupStats(name="fork-join", nodes=3, mean_power_uw=82.25,
                       mean_floor_mhz=1.52, repairs=2,
                       steady_sync=steady),
            GroupStats(name="pipeline", nodes=1, mean_power_uw=66.0,
                       mean_floor_mhz=0.98, repairs=0,
                       steady_sync=SyncError()),
        ),
        policies=(
            GroupStats(name="balanced", nodes=4, mean_power_uw=78.2,
                       mean_floor_mhz=1.38, repairs=2,
                       steady_sync=steady),
        ))
    result = FleetResult(
        summary=summary, nodes=(), elapsed_s=2.0,
        nodes_per_second=2.0, workers=1, shards=1, mode="serial")
    return NetReport(scenario=summary.scenario, result=result)


def test_render_net_heterogeneous_breakdown_golden():
    """Suite-backed fleets append the per-family/per-policy blocks."""
    expected = dedent("""\
        Network: gen:dense-ward:7:12:balanced (4 nodes, 5 s, 1 worker(s), serial)
          Metric                       no sync        ftsp
          ----------------------------------------------
          Mean node power (uW)           100.0       100.0
          Radio power (uW)                2.50        2.50
          Beacons sent                      10          10
          Beacons heard                     30          30
          Power-loss resets                  1           1
          Sync err mean (ms)             40.00        4.00
          Sync err RMS (ms)              50.00        5.00
          Steady err mean (ms)           30.00        2.00
          Steady err max (ms)            60.00        4.00
          steady-state error reduced 15.0x by ftsp
          per-family breakdown (nodes, floor MHz, power uW, steady err ms):
            fork-join        3    1.52    82.2    2.10
            pipeline         1    0.98    66.0    0.00
          per-policy breakdown (nodes, floor MHz, power uW, steady err ms):
            balanced         4    1.38    78.2    2.10
          throughput: 2.0 nodes/s (2.00 s)""")
    assert render_net(_heterogeneous_net_fixture()) == expected


def _gen_fixture() -> GenReport:
    ok = ExplorationRecord(
        app="G00-pipeline", token="pipeline:7:0", family="pipeline",
        policy="paper", num_cores=8, status="ok", required_mhz=0.9,
        clock_mhz=1.0, voltage=0.5, power_uw=41.3456, duty_cycle=0.8,
        sync_overhead=0.0048, code_overhead=0.012, active_cores=3,
        im_banks=2, simulated_s=1.0)
    repaired = ExplorationRecord(
        app="G01-random-dag", token="random-dag:7:1",
        family="random-dag", policy="balanced", num_cores=8,
        status="repaired", repairs=2, required_mhz=1.2,
        clock_mhz=1.2, voltage=0.55, power_uw=55.0, duty_cycle=0.61,
        sync_overhead=0.0152, code_overhead=0.02, active_cores=8,
        im_banks=5, simulated_s=1.0)
    rejected = ExplorationRecord(
        app="G02-fan-in", token="fan-in:7:2", family="fan-in",
        policy="paper", num_cores=8, status="rejected",
        error="G02-fan-in: out of IM banks at 'fuse_s2'")
    return GenReport(
        seed=7, count=3, families=("pipeline", "random-dag", "fan-in"),
        policies=("paper", "balanced"), num_cores=8, duration_s=1.0,
        records=(ok, repaired, rejected))


def test_render_gen_golden():
    expected = dedent("""\
        Generated workloads: seed 7, 3 app(s) x 2 policy(ies), 8 cores, 1 s
          app               family      policy        status     clock     V  duty   power  sync% banks
          ---------------------------------------------------------------------------------------------
          G00-pipeline      pipeline    paper         ok          1.00  0.50  0.80    41.3   0.48     2
          G01-random-dag    random-dag  balanced      repaired    1.20  0.55  0.61    55.0   1.52     5
          G02-fan-in        fan-in      paper         rejected       -     -     -       -      -     -
          placements: 1 ok, 1 repaired, 1 rejected
          power across placed points: 41.3-55.0 uW
          per-policy placements and power (uW):
            paper            1 placed  reject  50.0%  repair   0.0%   p50 41.3  p90 41.3  max 41.3
            balanced         1 placed  reject   0.0%  repair 100.0%   p50 55.0  p90 55.0  max 55.0""")
    assert render_gen(_gen_fixture()) == expected


def test_render_gen_elides_population_scale_tables():
    """Hundreds of records stay readable: rows elide, summary stays."""
    base = _gen_fixture()
    ok = base.records[0]
    many = GenReport(
        seed=base.seed, count=100, families=base.families,
        policies=("paper",), num_cores=8, duration_s=1.0,
        records=tuple(
            ExplorationRecord(
                app=f"G{index:02d}-pipeline",
                token=f"pipeline:7:{index}", family="pipeline",
                policy="paper", num_cores=8, status="ok",
                required_mhz=ok.required_mhz, clock_mhz=ok.clock_mhz,
                voltage=ok.voltage, power_uw=40.0 + index,
                duty_cycle=ok.duty_cycle,
                sync_overhead=ok.sync_overhead,
                code_overhead=ok.code_overhead,
                active_cores=ok.active_cores, im_banks=ok.im_banks,
                simulated_s=1.0)
            for index in range(100)))
    text = render_gen(many, max_rows=10)
    assert "... 90 more record(s) elided" in text
    assert text.count("G0") <= 11  # only the first rows render
    # the percentile summary still covers every record
    assert "p50 89.5  p90 129.1  max 139.0" in text


def _search_fixture() -> SearchReport:
    ok = SearchOutcome(
        app="G00-pipeline", token="pipeline:7:0", family="pipeline",
        algorithm="anneal", cost_kind="power", seed=11, iterations=40,
        num_cores=8, duration_s=2.0, status="ok", start_policy="paper",
        paper_feasible=True, paper_cost=72.694, start_cost=72.694,
        best_cost=72.081, gap=0.00843, evaluations=15, accepted=28,
        infeasible=0,
        best_metrics={"im_banks": 2, "active_cores": 3,
                      "power_uw": 72.081})
    repaired = SearchOutcome(
        app="G01-fork-join", token="fork-join:7:1", family="fork-join",
        algorithm="anneal", cost_kind="power", seed=12, iterations=40,
        num_cores=8, duration_s=2.0, status="repaired", repairs=2,
        start_policy="balanced", paper_feasible=False, paper_cost=0.0,
        start_cost=50.0, best_cost=47.5, gap=0.05, evaluations=20,
        accepted=18, infeasible=3,
        best_metrics={"im_banks": 4, "active_cores": 6,
                      "power_uw": 47.5})
    rejected = SearchOutcome(
        app="G02-fan-in", token="fan-in:7:2", family="fan-in",
        algorithm="anneal", cost_kind="power", seed=13, iterations=40,
        num_cores=8, duration_s=2.0, status="rejected",
        error="G02-fan-in: section 'fuse_s2' does not fit IM")
    return SearchReport(
        seed=7, count=3, families=("pipeline", "fork-join", "fan-in"),
        algorithm="anneal", cost="power", iterations=40, num_cores=8,
        duration_s=2.0, outcomes=(ok, repaired, rejected))


def test_render_search_golden():
    expected = dedent("""\
        Placement search: seed 7, 3 app(s), anneal/power, 40 iteration(s), 8 cores, 2 s/eval
          app               family      status   start             paper     best   gap%  evals banks cores
          -------------------------------------------------------------------------------------------------
          G00-pipeline      pipeline    ok       paper             72.69    72.08   0.84     15     2     3
          G01-fork-join     fork-join   repaired balanced              -    47.50   5.00     20     4     6
          G02-fan-in        fan-in      rejected                       -        -      -      -     -     -
          placements: 1 ok, 1 repaired, 1 rejected
          gap over 2 placed app(s): p50 2.92 %, p90 4.58 %, max 5.00 %""")
    assert render_search(_search_fixture()) == expected


def _two_tier_fixture() -> SearchReport:
    base = _search_fixture()
    ok, repaired, rejected = base.outcomes
    return replace(
        base,
        oracle="two-tier",
        top_k=3,
        screen_budget=24,
        calibration={
            "kind": "power", "duration_s": 2.0, "num_cores": 8,
            "apps": 2, "samples": 12,
            "errors": {"count": 12, "min": 0.0, "p50": 1.5e-16,
                       "p90": 9.8e-16, "max": 9.8e-16,
                       "mean": 3.1e-16},
        },
        outcomes=(
            replace(ok, oracle="two-tier", screened=24, top_k=3,
                    screen_agreement=True),
            replace(repaired, oracle="two-tier", screened=24, top_k=3,
                    screen_agreement=False),
            rejected,
        ))


def test_render_search_two_tier_screen_block_golden():
    """The screen-stats block is pinned byte-for-byte."""
    expected = dedent("""\
        Placement search: seed 7, 3 app(s), anneal/power, 40 iteration(s), 8 cores, 2 s/eval
          app               family      status   start             paper     best   gap%  evals banks cores
          -------------------------------------------------------------------------------------------------
          G00-pipeline      pipeline    ok       paper             72.69    72.08   0.84     15     2     3
          G01-fork-join     fork-join   repaired balanced              -    47.50   5.00     20     4     6
          G02-fan-in        fan-in      rejected                       -        -      -      -     -     -
          placements: 1 ok, 1 repaired, 1 rejected
          gap over 2 placed app(s): p50 2.92 %, p90 4.58 %, max 5.00 %
          oracle: two-tier, 24 analytic proposal(s)/walk, top-3 exact-verified
          screening: 48 candidate(s) screened, 35 simulated, agreement 1/2
          calibration over 12 sample(s): rel err p50 1.5e-16, p90 9.8e-16, max 9.8e-16""")
    assert render_search(_two_tier_fixture()) == expected


def test_render_search_elides_population_scale_tables():
    base = _search_fixture()
    ok = base.outcomes[0]
    many = SearchReport(
        seed=7, count=60, families=base.families, algorithm="anneal",
        cost="power", iterations=40, num_cores=8, duration_s=2.0,
        outcomes=tuple(
            SearchOutcome(
                app=f"G{index:02d}-pipeline",
                token=f"pipeline:7:{index}", family="pipeline",
                algorithm="anneal", cost_kind="power", seed=index,
                iterations=40, num_cores=8, duration_s=2.0,
                status="ok", start_policy="paper", paper_feasible=True,
                paper_cost=100.0, start_cost=100.0,
                best_cost=100.0 - index * 0.5, gap=index * 0.005,
                evaluations=10, accepted=5, infeasible=0,
                best_metrics=dict(ok.best_metrics))
            for index in range(60)))
    text = render_search(many, max_rows=8)
    assert "... 52 more outcome(s) elided" in text
    assert "gap over 60 placed app(s)" in text


def _hierarchy_fixture():
    from repro.net.hierarchy import parse_hierarchy
    from repro.net.stats import TierSummary
    from repro.net.streaming import HierarchyResult

    error = SyncError(count=120, mean_abs_s=0.004, rms_s=0.005,
                      max_abs_s=0.009)
    steady = SyncError(count=60, mean_abs_s=0.002, rms_s=0.0025,
                       max_abs_s=0.004)
    free = SyncError(count=120, mean_abs_s=0.040, rms_s=0.050,
                     max_abs_s=0.090)
    steady_free = SyncError(count=60, mean_abs_s=0.030, rms_s=0.035,
                            max_abs_s=0.060)
    token = "tiers:ftsp@10x2/rbs@2x3:dense-ward"
    summary = FleetSummary(
        scenario=token, protocol="ftsp/rbs", n_nodes=9, duration_s=4.0,
        total_power_uw=900.0, mean_power_uw=100.0, mean_radio_uw=2.5,
        sync=error, steady_sync=steady, unsync=free,
        steady_unsync=steady_free, beacons_sent=14, beacons_heard=40,
        power_loss_resets=1)
    tiers = (
        TierSummary(
            name="backbone", protocol="ftsp", beacon_period_s=10.0,
            fan_out=2, nodes=2, mean_power_uw=110.0, mean_radio_uw=3.0,
            repairs=0, beacons_sent=2, beacons_heard=4,
            power_loss_resets=0, hop_sync=steady,
            steady_hop_sync=SyncError(count=20, mean_abs_s=0.0005,
                                      rms_s=0.0006, max_abs_s=0.001),
            sync=error,
            steady_sync=SyncError(count=20, mean_abs_s=0.0005,
                                  rms_s=0.0006, max_abs_s=0.001),
            unsync=free, steady_unsync=steady_free),
        TierSummary(
            name="ward", protocol="rbs", beacon_period_s=2.0,
            fan_out=3, nodes=6, mean_power_uw=95.0, mean_radio_uw=2.2,
            repairs=1, beacons_sent=12, beacons_heard=36,
            power_loss_resets=1, hop_sync=steady,
            steady_hop_sync=SyncError(count=40, mean_abs_s=0.0012,
                                      rms_s=0.0015, max_abs_s=0.003),
            sync=error,
            steady_sync=SyncError(count=40, mean_abs_s=0.0021,
                                  rms_s=0.0024, max_abs_s=0.004),
            unsync=free, steady_unsync=steady_free),
    )
    return HierarchyResult(
        spec=parse_hierarchy(token), token=token, seed=7,
        duration_s=4.0, wave_size=2, subtrees=2, subtrees_done=2,
        resumed_subtrees=0, waves=1, waves_run=1, completed=True,
        checkpoint="", summary=summary, tiers=tiers, elapsed_s=0.5,
        nodes_per_second=16.0, workers=1, mode="streaming",
        peak_rss_mb=42.0)


def test_render_hierarchy_golden():
    """The per-tier breakdown block is pinned byte-for-byte."""
    from repro.eval.report import render_hierarchy

    expected = dedent("""\
        Hierarchy: tiers:ftsp@10x2/rbs@2x3:dense-ward (9 nodes, 2 tier(s), 4 s, 1 worker(s), streaming)
          Metric                       no sync      tiered
          ----------------------------------------------
          Mean node power (uW)           100.0       100.0
          Radio power (uW)                2.50        2.50
          Beacons sent                      14          14
          Beacons heard                     40          40
          Power-loss resets                  1           1
          Sync err mean (ms)             40.00        4.00
          Sync err RMS (ms)              50.00        5.00
          Steady err mean (ms)           30.00        2.00
          Steady err max (ms)            60.00        4.00
          steady-state error reduced 15.0x across 2 hop(s)
          per-tier breakdown (nodes, proto, period s, hop err ms, eff err ms):
            backbone           2  ftsp    10.0    0.50    0.50
            ward               6  rbs      2.0    1.20    2.10
          waves: 1/1 wave(s) x 2 subtree(s)
          throughput: 16.0 nodes/s (0.50 s, peak rss 42 MB)""")
    assert render_hierarchy(_hierarchy_fixture()) == expected


def test_render_hierarchy_partial_run_golden():
    """Interrupted runs surface resume and partial-fold lines."""
    from repro.eval.report import render_hierarchy

    partial = replace(
        _hierarchy_fixture(), subtrees_done=1, resumed_subtrees=1,
        completed=False, waves_run=0, checkpoint="ck/stream-abc.json")
    text = render_hierarchy(partial)
    assert "resumed 1 subtree(s) from checkpoint" in text
    assert ("partial: 1/2 subtree(s) folded - rerun with the same "
            "checkpoint dir to finish") in text
    assert "waves: 0/1 wave(s) x 2 subtree(s)" in text
