"""Tests for the experiment command line (python -m repro.eval)."""

import json

import pytest

from repro.eval.__main__ import main


def test_cli_table1(capsys):
    assert main(["table1", "--duration", "5"]) == 0
    out = capsys.readouterr().out
    assert "Avg. Power" in out
    assert "3L-MMD" in out


def test_cli_fig7(capsys):
    assert main(["fig7", "--duration", "5"]) == 0
    out = capsys.readouterr().out
    assert "reduction" in out
    assert "100 %" in out


def test_cli_net(capsys):
    assert main(["net", "--scenario", "drifting-wearables",
                 "--nodes", "8", "--duration", "6", "--workers", "2",
                 "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "Network: drifting-wearables" in out
    assert "no sync" in out and "ftsp" in out
    assert "steady-state error reduced" in out
    assert "nodes/s" in out


def test_cli_net_suite_flags_build_heterogeneous_fleet(capsys):
    assert main(["net", "--suite-seed", "7", "--suite-count", "12",
                 "--policy", "balanced", "--nodes", "8",
                 "--duration", "4"]) == 0
    out = capsys.readouterr().out
    assert "Network: gen:drifting-wearables:7:12:balanced" in out
    assert "per-family breakdown" in out
    assert "per-policy breakdown" in out
    assert "balanced" in out


def test_cli_net_suite_artifacts_are_byte_identical(tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    argv = ["net", "--suite-seed", "7", "--suite-count", "12",
            "--policy", "balanced", "--nodes", "8", "--duration", "4",
            "--json"]
    assert main(argv + [str(a)]) == 0
    assert main(argv + [str(b), "--workers", "2"]) == 0
    capsys.readouterr()
    assert a.read_bytes() == b.read_bytes()
    payload = json.loads(a.read_text())
    assert payload["schema"] == "repro-net/2"
    assert len(payload["nodes"]) == 8
    assert all(node["token"] for node in payload["nodes"])


def test_cli_net_benchmark_artifact_keeps_v1_schema(tmp_path, capsys):
    path = tmp_path / "net.json"
    assert main(["net", "--scenario", "dense-ward", "--nodes", "4",
                 "--duration", "4", "--json", str(path)]) == 0
    capsys.readouterr()
    payload = json.loads(path.read_text())
    assert payload["schema"] == "repro-net/1"
    assert "families" not in payload


def test_cli_net_protocol_override(capsys):
    assert main(["net", "--scenario", "dense-ward", "--nodes", "4",
                 "--duration", "4", "--protocol", "ftsp"]) == 0
    assert "ftsp" in capsys.readouterr().out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_cli_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["net", "--scenario", "mars-rover"])


def test_cli_sweep_list(capsys):
    assert main(["sweep", "--list"]) == 0
    out = capsys.readouterr().out
    assert "demo" in out and "fleet" in out


def test_cli_sweep_spec_file_with_artifacts(capsys, tmp_path):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps({
        "name": "cli-tiny",
        "runner": "app",
        "base": {"duration_s": 1.0},
        "axes": {"app": ["3L-MF"],
                 "mode": ["single-core", "multi-core"]},
    }))
    json_path = tmp_path / "BENCH_cli.json"
    csv_path = tmp_path / "cli.csv"
    assert main(["sweep", "--spec-file", str(spec_path),
                 "--cache-dir", str(tmp_path / "cache"),
                 "--json", str(json_path),
                 "--csv", str(csv_path)]) == 0
    out = capsys.readouterr().out
    assert "Sweep 'cli-tiny'" in out
    assert "cache: 0 hit(s), 2 miss(es)" in out
    payload = json.loads(json_path.read_text())
    assert payload["points"] == 2
    assert csv_path.exists()
    # warm re-run through the same cache directory hits every point
    assert main(["sweep", "--spec-file", str(spec_path),
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    assert "cache: 2 hit(s), 0 miss(es)" in capsys.readouterr().out


def test_cli_sweep_builtin_demo_is_24_points():
    from repro.sweep import SPECS, expand

    assert len(expand(SPECS["demo"])) >= 24
    assert len(SPECS["demo"].axes) == 3


def test_cli_sweep_rejects_unknown_spec():
    with pytest.raises(SystemExit):
        main(["sweep", "--spec", "nonsense"])


def test_cli_gen_runs_suite_through_policies(capsys, tmp_path):
    json_path = tmp_path / "gen.json"
    assert main(["gen", "--seed", "7", "--count", "5",
                 "--duration", "1", "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "Generated workloads: seed 7, 5 app(s) x 3 policy(ies)" in out
    assert "placements:" in out
    payload = json.loads(json_path.read_text())
    assert payload["schema"] == "repro-gen/1"
    assert payload["count"] == 5
    assert len(payload["records"]) == 15  # 5 apps x 3 policies
    assert len(payload["apps"]) == 5
    statuses = {record["status"] for record in payload["records"]}
    assert statuses <= {"ok", "repaired", "rejected"}


def test_cli_gen_policy_and_family_selection(capsys):
    assert main(["gen", "--seed", "3", "--count", "2", "--duration", "1",
                 "--families", "pipeline", "--policies", "paper",
                 "single-core"]) == 0
    out = capsys.readouterr().out
    assert "2 app(s) x 2 policy(ies)" in out
    assert "single-core" in out


def test_cli_gen_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        main(["gen", "--policies", "nonsense"])


def test_cli_sweep_gen_spec_listed(capsys):
    assert main(["sweep", "--list"]) == 0
    out = capsys.readouterr().out
    assert "gen" in out and "search" in out


def test_cli_search_reports_gap_and_is_byte_identical(capsys, tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    argv = ["search", "--seed", "7", "--count", "3", "--iterations",
            "8", "--duration", "1", "--json"]
    assert main(argv + [str(a)]) == 0
    out = capsys.readouterr().out
    assert "Placement search: seed 7, 3 app(s)" in out
    assert "paper" in out and "gap%" in out
    assert main(argv + [str(b)]) == 0
    capsys.readouterr()
    assert a.read_bytes() == b.read_bytes()
    payload = json.loads(a.read_text())
    assert payload["schema"] == "repro-search/1"
    assert payload["count"] == 3
    assert len(payload["outcomes"]) == 3
    for outcome in payload["outcomes"]:
        if outcome["status"] != "rejected":
            assert outcome["gap"] >= 0.0
            assert outcome["best_cost"] <= \
                outcome["start_cost"] + 1e-9


def test_cli_search_algorithm_and_cost_selection(capsys):
    assert main(["search", "--seed", "3", "--count", "2",
                 "--iterations", "5", "--duration", "1",
                 "--families", "pipeline", "--algorithm", "greedy",
                 "--cost", "clock"]) == 0
    out = capsys.readouterr().out
    assert "greedy/clock" in out


def test_cli_search_rejects_unknown_algorithm():
    with pytest.raises(SystemExit):
        main(["search", "--algorithm", "nonsense"])


def test_cli_search_two_tier_is_byte_identical(capsys, tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    argv = ["search", "--seed", "7", "--count", "3", "--duration", "1",
            "--oracle", "two-tier", "--screen-budget", "12",
            "--top-k", "2", "--json"]
    assert main(argv + [str(a)]) == 0
    out = capsys.readouterr().out
    assert "oracle: two-tier, 12 analytic proposal(s)/walk" in out
    assert "screening:" in out
    assert "calibration over" in out
    assert main(argv + [str(b)]) == 0
    capsys.readouterr()
    assert a.read_bytes() == b.read_bytes()
    payload = json.loads(a.read_text())
    assert payload["schema"] == "repro-search/2"
    assert payload["oracle"] == "two-tier"
    assert payload["top_k"] == 2
    assert payload["screen_budget"] == 12
    assert payload["screen_summary"]["screened"] > 0
    assert payload["calibration"]["errors"]["max"] <= 1e-6
    for outcome in payload["outcomes"]:
        if outcome["status"] != "rejected":
            assert outcome["oracle"] == "two-tier"
            assert outcome["screened"] > 0
            assert outcome["top_k"] == 2


def test_cli_search_exact_oracle_keeps_v1_schema(capsys, tmp_path):
    path = tmp_path / "search.json"
    assert main(["search", "--seed", "7", "--count", "2",
                 "--iterations", "8", "--duration", "1",
                 "--oracle", "exact", "--json", str(path)]) == 0
    capsys.readouterr()
    payload = json.loads(path.read_text())
    assert payload["schema"] == "repro-search/1"
    assert "screen_summary" not in payload
    assert "calibration" not in payload
    for outcome in payload["outcomes"]:
        assert "screened" not in outcome


def test_cli_search_rejects_unknown_oracle():
    with pytest.raises(SystemExit):
        main(["search", "--oracle", "nonsense"])


def test_cli_search_rejects_bad_top_k(capsys):
    assert main(["search", "--seed", "3", "--count", "1", "--duration",
                 "1", "--oracle", "two-tier", "--top-k", "0"]) == 2
    err = capsys.readouterr().err
    assert err == ("python -m repro.eval: error: "
                   "top-k must be >= 1, got 0\n")


def test_cli_search_rejects_budget_below_top_k(capsys):
    assert main(["search", "--seed", "3", "--count", "1", "--duration",
                 "1", "--oracle", "two-tier", "--top-k", "5",
                 "--screen-budget", "4"]) == 2
    err = capsys.readouterr().err
    assert err == ("python -m repro.eval: error: "
                   "screen budget must be >= top-k, got 4 < 5\n")


def test_cli_net_tiers_renders_hierarchy(capsys):
    assert main(["net", "--tiers", "tiers:ftsp@5x2/rbs@1x3:dense-ward",
                 "--duration", "2"]) == 0
    out = capsys.readouterr().out
    assert "Hierarchy: tiers:ftsp@5x2/rbs@1x3:dense-ward" in out
    assert "per-tier breakdown" in out
    assert "backbone" in out and "cluster" in out
    assert "waves: 1/1" in out


def test_cli_net_tiers_artifacts_are_byte_identical(tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    argv = ["net", "--tiers", "tiers:ftsp@5x2/rbs@1x3:dense-ward",
            "--duration", "2", "--json"]
    assert main(argv + [str(a)]) == 0
    assert main(argv + [str(b), "--workers", "2", "--wave", "1"]) == 0
    capsys.readouterr()
    assert a.read_bytes() == b.read_bytes()
    payload = json.loads(a.read_text())
    assert payload["schema"] == "repro-net/3"
    assert payload["n_nodes"] == 9
    assert len(payload["tiers"]) == 2
    assert "nodes" not in payload  # mega-fleets never hold per-node


def test_cli_net_tiers_interrupted_run_resumes(tmp_path, capsys):
    out_json = tmp_path / "net.json"
    argv = ["net", "--tiers", "tiers:rbs@1x3:dense-ward", "--duration",
            "2", "--wave", "1", "--checkpoint-dir",
            str(tmp_path / "ckpt"), "--json", str(out_json)]
    assert main(argv + ["--max-waves", "1"]) == 0
    out = capsys.readouterr().out
    assert "partial: 1/3 subtree(s) folded" in out
    assert not out_json.exists()  # incomplete runs write no artifact
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "resumed 1 subtree(s) from checkpoint" in out
    assert out_json.exists()
    # ... and the resumed artifact matches an uninterrupted one.
    cold = tmp_path / "cold.json"
    assert main(["net", "--tiers", "tiers:rbs@1x3:dense-ward",
                 "--duration", "2", "--json", str(cold)]) == 0
    capsys.readouterr()
    assert out_json.read_bytes() == cold.read_bytes()


def test_cli_net_tiers_conflicts_with_flat_flags():
    with pytest.raises(SystemExit):
        main(["net", "--tiers", "ward-campus", "--nodes", "4"])
    with pytest.raises(SystemExit):
        main(["net", "--tiers", "ward-campus", "--protocol", "ftsp"])
    with pytest.raises(SystemExit):
        main(["net", "--stream"])  # streaming flags need --tiers


def test_cli_net_tiers_rejects_unknown_preset(capsys):
    assert main(["net", "--tiers", "mars-campus"]) == 2
    err = capsys.readouterr().err
    assert err.startswith(
        "python -m repro.eval: error: unknown hierarchy 'mars-campus'")
    assert err.count("\n") == 1  # one line, no traceback


def test_cli_sweep_missing_spec_file_exits_2(capsys):
    assert main(["sweep", "--spec-file", "/no/such/spec.json"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("python -m repro.eval: error: ")
    assert "/no/such/spec.json" in err
    assert err.count("\n") == 1


def test_cli_usage_errors_exit_2_with_metrics_active(capsys):
    # The --metrics wrapper must not turn usage errors back into
    # tracebacks (the collector is torn down on the error path).
    assert main(["net", "--tiers", "mars-campus", "--metrics"]) == 2
    err = capsys.readouterr().err
    assert err.startswith(
        "python -m repro.eval: error: unknown hierarchy")
    from repro import obs
    assert obs.active() is None


def test_cli_cover_renders_coverage(capsys):
    assert main(["cover", "--budget", "12", "--saturation", "12",
                 "--duration", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "Coverage fuzz: seed 7, 12/12 attempt(s)" in out
    assert "bins:" in out and "covered" in out
    assert "adversarial deep-chain:" in out
    assert "outcomes:" in out


def test_cli_cover_artifact_is_byte_identical(tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    argv = ["cover", "--budget", "16", "--saturation", "16",
            "--duration", "0.5", "--json"]
    assert main(argv + [str(a)]) == 0
    assert main(argv + [str(b)]) == 0
    capsys.readouterr()
    assert a.read_bytes() == b.read_bytes()
    payload = json.loads(a.read_text())
    assert payload["schema"] == "repro-cover/1"
    assert payload["covered"] == len(payload["bins"])
    assert payload["covered"] + len(payload["uncovered"]) == \
        payload["total_bins"]
    for entry in payload["bins"].values():
        assert entry["hits"] >= 1
        assert entry["first_token"]


def test_cli_cover_random_mode(capsys):
    assert main(["cover", "--random", "--budget", "8", "--saturation",
                 "8", "--duration", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "Coverage random: seed 7, 8/8 attempt(s)" in out
