"""Tests for the experiment command line (python -m repro.eval)."""

import pytest

from repro.eval.__main__ import main


def test_cli_table1(capsys):
    assert main(["table1", "--duration", "5"]) == 0
    out = capsys.readouterr().out
    assert "Avg. Power" in out
    assert "3L-MMD" in out


def test_cli_fig7(capsys):
    assert main(["fig7", "--duration", "5"]) == 0
    out = capsys.readouterr().out
    assert "reduction" in out
    assert "100 %" in out


def test_cli_net(capsys):
    assert main(["net", "--scenario", "drifting-wearables",
                 "--nodes", "8", "--duration", "6", "--workers", "2",
                 "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "Network: drifting-wearables" in out
    assert "no sync" in out and "ftsp" in out
    assert "steady-state error reduced" in out
    assert "nodes/s" in out


def test_cli_net_protocol_override(capsys):
    assert main(["net", "--scenario", "dense-ward", "--nodes", "4",
                 "--duration", "4", "--protocol", "ftsp"]) == 0
    assert "ftsp" in capsys.readouterr().out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_cli_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["net", "--scenario", "mars-rover"])
