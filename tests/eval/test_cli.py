"""Tests for the experiment command line (python -m repro.eval)."""

import pytest

from repro.eval.__main__ import main


def test_cli_table1(capsys):
    assert main(["table1", "--duration", "5"]) == 0
    out = capsys.readouterr().out
    assert "Avg. Power" in out
    assert "3L-MMD" in out


def test_cli_fig7(capsys):
    assert main(["fig7", "--duration", "5"]) == 0
    out = capsys.readouterr().out
    assert "reduction" in out
    assert "100 %" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["nonsense"])
