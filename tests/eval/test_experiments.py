"""Integration tests asserting the paper-level claims (DESIGN.md Sec. 4).

These are the acceptance tests of the reproduction: each checks a fact
the paper reports in Table I, Fig. 6 or Fig. 7.  Shorter simulated
durations are used where the metric is stationary (power and ratios
converge within a few seconds of simulated time).
"""

import pytest

from repro.eval import (
    PAPER_TABLE1,
    render_ablations,
    render_fig6,
    render_fig7,
    render_table1,
    run_all_ablations,
    run_fig6,
    run_fig7,
    run_table1,
)

DURATION = 20.0  # stationary metrics converge quickly


@pytest.fixture(scope="module")
def table1():
    return run_table1(duration_s=DURATION)


@pytest.fixture(scope="module")
def fig6():
    return run_fig6(duration_s=DURATION)


@pytest.fixture(scope="module")
def fig7():
    return run_fig7(duration_s=DURATION)


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------

def test_benchmarks_in_paper_order(table1):
    assert [column.benchmark for column in table1] == \
        ["3L-MF", "3L-MMD", "RP-CLASS"]


def test_multicore_always_wins(table1):
    for column in table1:
        assert column.saving > 0.25


def test_savings_ordering_and_band(table1):
    savings = {column.benchmark: column.saving for column in table1}
    assert savings["3L-MF"] > savings["3L-MMD"] > savings["RP-CLASS"]
    for benchmark, value in savings.items():
        paper = PAPER_TABLE1[benchmark]["saving"]
        assert value == pytest.approx(paper, abs=0.05), benchmark


def test_operating_points_match_paper(table1):
    for column in table1:
        paper = PAPER_TABLE1[column.benchmark]
        values = column.as_dict()
        assert values["mc_clock"] == paper["mc_clock"]
        assert values["mc_voltage"] == paper["mc_voltage"]
        assert values["sc_voltage"] == paper["sc_voltage"]
        # 0.15 MHz slack: at short simulated durations the uniform
        # abnormal-beat placement quantises the RP-CLASS average load.
        assert values["sc_clock"] == pytest.approx(paper["sc_clock"],
                                                   abs=0.15)


def test_bank_and_core_counts_match_paper(table1):
    for column in table1:
        paper = PAPER_TABLE1[column.benchmark]
        values = column.as_dict()
        for key in ("active_cores", "sc_im_banks", "mc_im_banks",
                    "sc_dm_banks", "mc_dm_banks"):
            assert values[key] == paper[key], \
                f"{column.benchmark}: {key}"


def test_broadcast_fractions_match_paper(table1):
    for column in table1:
        paper = PAPER_TABLE1[column.benchmark]
        values = column.as_dict()
        assert values["im_broadcast"] == pytest.approx(
            paper["im_broadcast"], abs=0.02), column.benchmark
        assert values["dm_broadcast"] == pytest.approx(
            paper["dm_broadcast"], abs=0.012), column.benchmark


def test_im_broadcast_ordering(table1):
    fractions = [column.as_dict()["im_broadcast"] for column in table1]
    assert fractions[0] > fractions[1] > fractions[2]


def test_overheads_below_three_percent(table1):
    for column in table1:
        values = column.as_dict()
        assert 0 < values["code_overhead"] < 0.03
        assert 0 < values["runtime_overhead"] < 0.02


def test_powers_match_paper_within_five_percent(table1):
    for column in table1:
        paper = PAPER_TABLE1[column.benchmark]
        values = column.as_dict()
        assert values["sc_power"] == pytest.approx(paper["sc_power"],
                                                   rel=0.05)
        assert values["mc_power"] == pytest.approx(paper["mc_power"],
                                                   rel=0.05)


def test_render_table1_contains_all_rows(table1):
    text = render_table1(table1)
    for label in ("Active Cores", "IM Broadcast", "Min. Clock",
                  "Avg. Power", "Saving"):
        assert label in text


# ---------------------------------------------------------------------------
# Figure 6
# ---------------------------------------------------------------------------

def test_fig6_lower_comparable_higher(fig6):
    """The paper's Sec. V-B finding about MC without synchronization."""
    by_name = {group.benchmark: group for group in fig6}
    assert by_name["3L-MF"].no_sync_vs_single < -0.02
    assert abs(by_name["3L-MMD"].no_sync_vs_single) < 0.05
    assert by_name["RP-CLASS"].no_sync_vs_single > 0.02


def test_fig6_synchronized_multicore_wins_everywhere(fig6):
    for group in fig6:
        assert group.multi_sync.total_uw < group.single.total_uw
        assert group.multi_sync.total_uw < group.multi_no_sync.total_uw


def test_fig6_multicore_overhead_band(fig6):
    """MC-only components are a sizeable share (paper: up to 34 %)."""
    fractions = [group.multicore_overhead_fraction for group in fig6]
    assert max(fractions) > 0.15
    assert all(fraction < 0.45 for fraction in fractions)


def test_fig6_broadcast_shrinks_instruction_memory_power(fig6):
    for group in fig6:
        assert group.multi_sync.categories["instr_mem"] < \
            group.multi_no_sync.categories["instr_mem"]


def test_render_fig6(fig6):
    text = render_fig6(fig6)
    assert "3L-MF" in text and "instr_mem" in text


# ---------------------------------------------------------------------------
# Figure 7
# ---------------------------------------------------------------------------

def test_fig7_multicore_wins_at_every_ratio(fig7):
    for point in fig7:
        assert point.reduction > 0.15


def test_fig7_single_core_power_rises_with_ratio(fig7):
    powers = [point.sc_power_uw for point in fig7]
    assert all(a < b for a, b in zip(powers, powers[1:]))


def test_fig7_multicore_power_rises_slower(fig7):
    sc_growth = fig7[-1].sc_power_uw / fig7[0].sc_power_uw
    mc_growth = fig7[-1].mc_power_uw / fig7[0].mc_power_uw
    assert mc_growth < sc_growth


def test_fig7_best_case_reduction_near_paper(fig7):
    best = max(point.reduction for point in fig7)
    assert 0.35 <= best <= 0.50  # paper: "up to 38 %"


def test_fig7_reduction_grows_once_chain_activates(fig7):
    """High-pathology inputs benefit more than the healthy input."""
    assert fig7[-1].reduction > fig7[0].reduction + 0.05


def test_fig7_voltage_kink_appears_in_single_core(fig7):
    voltages = [point.single.operating_point.voltage for point in fig7]
    assert voltages[0] == 0.6
    assert voltages[-1] > 0.6


def test_render_fig7(fig7):
    text = render_fig7(fig7)
    assert "reduction" in text


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------

def test_ablations_all_mechanisms_matter():
    results = run_all_ablations(duration_s=10.0)
    assert len(results) == 6
    for result in results:
        assert result.penalty_fraction > 0.05, result.name
    text = render_ablations(results)
    assert "ABL-1" in text
