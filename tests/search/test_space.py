"""Tests for the placement search space: candidates, repair, moves."""

import random

import pytest

from repro.apps.mapping import map_multicore, plan_required_mhz
from repro.apps.phases import AppSpec, PhaseSpec, SectionSpec
from repro.gen import generate_app
from repro.isa.layout import ImGeometry
from repro.search import (
    candidate_from_plan,
    candidate_required_mhz,
    candidate_to_mapping,
    make_candidate,
    normalize_cores,
    plan_from_candidate,
    propose,
    repair,
    slot_phases,
    violations,
)
from repro.sysc import Mode, simulate, uniform_schedule


def _app():
    return generate_app("random-dag", seed=21, index=3)


def _two_phase_app():
    phases = [
        PhaseSpec(name="a", cycles_per_sample=1000.0,
                  dm_access_rate=0.3,
                  sections=(SectionSpec("a0", 500),)),
        PhaseSpec(name="b", cycles_per_sample=600.0,
                  dm_access_rate=0.3,
                  sections=(SectionSpec("b0", 500),)),
    ]
    app = AppSpec(name="TWO", fs=250.0, phases=phases)
    app.validate()
    return app


def test_candidate_round_trips_through_plan():
    app = _app()
    plan = map_multicore(app)
    candidate = candidate_from_plan(plan)
    assert violations(app, candidate) == []
    back = plan_from_candidate(app, candidate)
    assert back.section_banks == plan.section_banks
    assert back.active_cores == plan.active_cores
    assert candidate_from_plan(back) == candidate


def test_normalize_relabels_in_first_use_order():
    assert normalize_cores((5, 2, 5, 7)) == (0, 1, 0, 2)
    # permuted core ids collapse onto one canonical candidate
    app = _two_phase_app()
    first = make_candidate({"a0": 0, "b0": 1}, [3, 6])
    second = make_candidate({"a0": 0, "b0": 1}, [0, 1])
    assert first == second
    assert slot_phases(app) == ["a", "b"]


def test_violations_catch_every_constraint():
    app = _two_phase_app()
    good = make_candidate({"a0": 0, "b0": 1}, [0, 1])
    assert violations(app, good) == []
    # core out of range
    bad = make_candidate({"a0": 0, "b0": 1}, [0, 1])
    bad = bad.__class__(section_banks=bad.section_banks, cores=(0, 9))
    assert violations(app, bad, num_cores=8)
    # bank out of range
    assert violations(app, make_candidate({"a0": 99, "b0": 1}, [0, 1]))
    # missing section
    assert violations(app, make_candidate({"a0": 0}, [0, 1]))
    # bank overflow (tiny geometry)
    tiny = ImGeometry(banks=2, words_per_bank=600)
    packed = make_candidate({"a0": 0, "b0": 0}, [0, 1])
    assert any("bank 0" in problem
               for problem in violations(app, packed, geometry=tiny))


def test_replica_collisions_are_detected_and_repaired():
    phases = [PhaseSpec(name="p", cycles_per_sample=100.0,
                        dm_access_rate=0.3,
                        sections=(SectionSpec("p0", 100),),
                        replicas=3)]
    app = AppSpec(name="REPL", fs=250.0, phases=phases)
    app.validate()
    colliding = make_candidate({"p0": 1}, [0, 0, 1])
    assert any("two replicas" in problem
               for problem in violations(app, colliding))
    fixed = repair(app, colliding)
    assert fixed is not None
    assert violations(app, fixed) == []
    assert len(set(fixed.cores)) == 3


def test_repair_sheds_im_overflow_deterministically():
    app = _two_phase_app()
    tiny = ImGeometry(banks=3, words_per_bank=900)
    # both 500-word sections on bank 0 next to the 300-word runtime
    broken = make_candidate({"a0": 0, "b0": 0}, [0, 1])
    fixed = repair(app, broken, geometry=tiny)
    assert fixed is not None
    assert violations(app, fixed, geometry=tiny) == []
    assert repair(app, broken, geometry=tiny) == fixed
    # a genuinely oversized app is irreparable
    impossible = ImGeometry(banks=1, words_per_bank=900)
    assert repair(app, broken, geometry=impossible) is None


def test_propose_only_yields_feasible_candidates():
    app = _app()
    candidate = candidate_from_plan(map_multicore(app))
    rng = random.Random(99)
    for _ in range(60):
        neighbour = propose(app, candidate, rng)
        if neighbour is None:
            continue
        assert violations(app, neighbour) == []
        candidate = neighbour


def test_propose_is_deterministic_per_seed():
    app = _app()
    start = candidate_from_plan(map_multicore(app))
    walks = []
    for _ in range(2):
        rng = random.Random(7)
        current = start
        walk = []
        for _ in range(20):
            current = propose(app, current, rng) or current
            walk.append(current.key())
        walks.append(walk)
    assert walks[0] == walks[1]


def test_coalesced_cores_pay_their_summed_clock():
    app = _two_phase_app()
    spread = plan_from_candidate(
        app, make_candidate({"a0": 0, "b0": 1}, [0, 1]))
    coalesced = plan_from_candidate(
        app, make_candidate({"a0": 0, "b0": 1}, [0, 0]))
    spread_mhz = plan_required_mhz(spread)
    coalesced_mhz = plan_required_mhz(coalesced)
    assert spread_mhz == pytest.approx(1000.0 * 250.0 / 1e6)
    assert coalesced_mhz == pytest.approx(1600.0 * 250.0 / 1e6)
    # the analytic bound matches the simulator's sizing exactly
    candidate = candidate_from_plan(coalesced)
    assert candidate_required_mhz(app, candidate) == \
        pytest.approx(coalesced_mhz)
    schedule = uniform_schedule(2.0, app.fs)
    result = simulate(app, Mode.MULTI_CORE, schedule, duration_s=2.0,
                      mapping=coalesced)
    assert result.required_mhz == pytest.approx(coalesced_mhz)


def test_candidate_to_mapping_is_json_ready():
    app = _app()
    candidate = candidate_from_plan(map_multicore(app))
    data = candidate_to_mapping(candidate)
    assert set(data) == {"section_banks", "cores"}
    assert all(isinstance(bank, int)
               for bank in data["section_banks"].values())
    assert data["cores"] == list(candidate.cores)
