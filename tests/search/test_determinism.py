"""Cross-process determinism of the placement search.

Mirrors ``tests/gen/test_determinism.py``: fresh interpreters with
*different* ``PYTHONHASHSEED`` values must serialise the same search
campaign to the same bytes — the walk must draw nothing from hash
randomisation, set iteration order or any other per-process state.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.eval.searchexp import run_search, search_payload

#: Run a tiny campaign and print its canonical payload.
_DUMP_SCRIPT = """
import json
from repro.eval.searchexp import run_search, search_payload
report = run_search(seed=13, count=3, iterations=8, duration_s=1.0)
print(json.dumps(search_payload(report), sort_keys=True,
                 separators=(",", ":")))
"""

_SRC_ROOT = str(Path(repro.__file__).resolve().parent.parent)


def _dump_with_hashseed(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = _SRC_ROOT + os.pathsep + \
        env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _DUMP_SCRIPT],
        env=env, capture_output=True, text=True, check=True)
    return result.stdout


def test_search_is_identical_across_hashseeds():
    dumps = [_dump_with_hashseed(seed) for seed in ("0", "1", "4242")]
    assert dumps[0] == dumps[1] == dumps[2]
    # And the subprocess output matches this very process too.
    local = json.dumps(
        search_payload(run_search(seed=13, count=3, iterations=8,
                                  duration_s=1.0)),
        sort_keys=True, separators=(",", ":")) + "\n"
    assert dumps[0] == local


def test_best_mapping_is_byte_stable_for_one_seed():
    """Same seed => byte-identical best mapping, run after run."""
    first = run_search(seed=13, count=2, iterations=8, duration_s=1.0)
    second = run_search(seed=13, count=2, iterations=8, duration_s=1.0)
    for a, b in zip(first.outcomes, second.outcomes):
        assert a.best_candidate == b.best_candidate
        assert a.best_cost == b.best_cost
