"""Tests for the stochastic search drivers and their wiring."""

import pytest

from repro.apps.phases import AppSpec, PhaseSpec, SectionSpec
from repro.gen import generate_app, get_policy
from repro.isa.layout import ImGeometry
from repro.search import (
    get_oracle,
    outcome_to_mapping,
    search_mapping,
    search_token,
)


def test_gap_is_nonnegative_and_best_bounded_by_paper():
    for token in ("pipeline:7:0", "fan-in:7:2", "random-dag:7:4"):
        outcome = search_token(token, iterations=20, seed=3)
        assert outcome.status == "ok"
        assert outcome.paper_feasible
        assert outcome.gap >= 0.0
        assert outcome.best_cost <= outcome.paper_cost + 1e-9
        assert outcome.best_metrics["power_uw"] > 0


def test_greedy_never_worsens_the_start():
    outcome = search_token("fork-join:7:1", algorithm="greedy",
                           iterations=25, seed=5)
    assert outcome.best_cost <= outcome.start_cost + 1e-12
    assert outcome.gap >= 0.0


def test_search_is_deterministic_in_process():
    first = outcome_to_mapping(
        search_token("random-dag:7:4", iterations=20, seed=11))
    second = outcome_to_mapping(
        search_token("random-dag:7:4", iterations=20, seed=11))
    assert first == second


def test_memoisation_caps_simulation_count():
    outcome = search_token("pipeline:7:0", iterations=30, seed=2)
    # start + paper share one evaluation; every other simulation is a
    # distinct candidate, never re-paid
    assert outcome.evaluations <= outcome.iterations + 2


def test_rejected_when_nothing_fits():
    app = generate_app("pipeline", seed=7, index=0)
    outcome = search_mapping(
        app, geometry=ImGeometry(banks=1, words_per_bank=64),
        iterations=5, seed=0)
    assert outcome.status == "rejected"
    assert outcome.error
    assert outcome.best_plan is None
    assert outcome.evaluations == 0


def test_repair_path_trims_wide_apps():
    phases = [PhaseSpec(name="wide", cycles_per_sample=200.0,
                        dm_access_rate=0.3,
                        sections=(SectionSpec("w0", 200),),
                        replicas=12)]
    app = AppSpec(name="WIDE", fs=250.0, phases=phases)
    app.validate()
    outcome = search_mapping(app, num_cores=8, iterations=10, seed=4)
    assert outcome.status == "repaired"
    assert outcome.repairs == 4  # 12 replicas trimmed onto 8 cores
    assert outcome.best_plan is not None
    assert outcome.best_plan.active_cores <= 8


def test_infeasible_proposals_never_simulate():
    # one huge section per phase: most mutations overflow and the
    # pre-filter must discard them without an oracle call
    phases = [
        PhaseSpec(name=f"p{index}", cycles_per_sample=100.0,
                  dm_access_rate=0.3,
                  sections=(SectionSpec(f"s{index}", 3500),))
        for index in range(4)
    ]
    app = AppSpec(name="TIGHT", fs=250.0, phases=phases,
                  runtime_words=500)
    app.validate()
    outcome = search_mapping(app, iterations=40, seed=6)
    assert outcome.status == "ok"
    assert outcome.evaluations + outcome.infeasible <= \
        outcome.iterations + 2
    assert outcome.gap >= 0.0


def test_parameter_validation():
    with pytest.raises(ValueError):
        search_token("pipeline:7:0", algorithm="nope")
    with pytest.raises(ValueError):
        search_token("pipeline:7:0", cost="nope")
    with pytest.raises(ValueError):
        search_token("pipeline:7:0", iterations=-1)
    with pytest.raises(ValueError):
        search_token("nope:7:0")
    with pytest.raises(ValueError):
        get_oracle("power", duration_s=0.0)


def test_oracle_kinds_score_differently():
    app = generate_app("pipeline", seed=7, index=0)
    plan = get_policy("paper").map(app)
    power = get_oracle("power", 1.0).evaluate(app, plan)
    clock = get_oracle("clock", 1.0).evaluate(app, plan)
    composite = get_oracle("composite", 1.0).evaluate(app, plan)
    assert power[0] == pytest.approx(power[1]["power_uw"])
    assert clock[0] == pytest.approx(clock[1]["clock_mhz"])
    assert composite[0] > power[0]  # power plus the clock term


def test_search_policy_family_is_deterministic():
    app = generate_app("fan-in", seed=9, index=2)
    policy = get_policy("search-anneal")
    first = policy.map(app)
    second = policy.map(app)
    assert first.multicore
    assert first.section_banks == second.section_banks
    assert first.assignments == second.assignments
    # the searched placement never uses more IM banks than the paper's
    paper = get_policy("paper").map(app)
    assert len(first.im_banks_used) <= len(paper.im_banks_used)
