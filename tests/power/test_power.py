"""Tests for the process, VFS and energy-accounting models."""

import pytest
from hypothesis import given, strategies as st

from repro.power import (
    ActivityVector,
    DEFAULT_PROCESS,
    OperatingPoint,
    PowerReport,
    ProcessModel,
    compute_power,
    plan_operating_point,
)


# ---------------------------------------------------------------------------
# Process model
# ---------------------------------------------------------------------------

def test_paper_operating_points_are_on_the_curve():
    # Multi-core rows of Table I: 1.0 MHz at 0.5 V.
    assert DEFAULT_PROCESS.min_voltage(1.0) == 0.5
    # Single-core rows: 2.3 / 3.3 / 3.4 MHz all need 0.6 V.
    for frequency in (2.3, 3.3, 3.4):
        assert DEFAULT_PROCESS.min_voltage(frequency) == 0.6


def test_fmax_monotonic_and_grid_lookup():
    assert DEFAULT_PROCESS.fmax(0.5) == 1.0
    assert DEFAULT_PROCESS.fmax(0.6) > DEFAULT_PROCESS.fmax(0.5)
    with pytest.raises(ValueError):
        DEFAULT_PROCESS.fmax(0.52)


def test_min_voltage_out_of_reach():
    with pytest.raises(ValueError):
        DEFAULT_PROCESS.min_voltage(1e6)


def test_dynamic_and_leakage_scales_are_unity_at_reference():
    assert DEFAULT_PROCESS.dynamic_scale(0.6) == pytest.approx(1.0)
    assert DEFAULT_PROCESS.leakage_scale(0.6) == pytest.approx(1.0)


def test_scaling_decreases_with_voltage():
    assert DEFAULT_PROCESS.dynamic_scale(0.5) < 1.0
    assert DEFAULT_PROCESS.leakage_scale(0.5) < 1.0
    # Leakage shrinks faster than dynamic in this model.
    assert (DEFAULT_PROCESS.leakage_scale(0.5)
            < DEFAULT_PROCESS.dynamic_scale(0.5))


def test_bad_fmax_table_rejected():
    with pytest.raises(ValueError):
        ProcessModel(fmax_table=((0.5, 1.0), (0.5, 2.0)))
    with pytest.raises(ValueError):
        ProcessModel(fmax_table=((0.5, 2.0), (0.6, 1.0)))


# ---------------------------------------------------------------------------
# VFS planner
# ---------------------------------------------------------------------------

def test_planner_applies_system_clock_floor():
    point = plan_operating_point(0.77)
    assert point.frequency_mhz == 1.0
    assert point.voltage == 0.5


def test_planner_keeps_exact_requirement_above_floor():
    point = plan_operating_point(2.3, single_core=True)
    assert point.frequency_mhz == 2.3
    assert point.voltage == 0.6


def test_single_core_boost_can_lower_voltage():
    # 2.25 MHz: plain fmax(0.55) = 2.2 is short, but the decoder boost
    # (x1.04 -> 2.288) reaches it.
    assert plan_operating_point(2.25, single_core=False).voltage == 0.6
    assert plan_operating_point(2.25, single_core=True).voltage == 0.55


def test_planner_rejects_negative_requirement():
    with pytest.raises(ValueError):
        plan_operating_point(-1.0)


# ---------------------------------------------------------------------------
# Energy accounting
# ---------------------------------------------------------------------------

def _sc_activity(mhz: float, seconds: float, im_banks: int, dm_banks: int,
                 dm_rate: float = 0.25) -> ActivityVector:
    """Activity of a fully loaded single core at ``mhz``."""
    cycles = mhz * 1e6 * seconds
    return ActivityVector(
        cycles=cycles,
        core_active_cycles=cycles,
        im_accesses=cycles,
        dm_accesses=cycles * dm_rate,
        interconnect_grants=cycles * (1 + dm_rate),
        sync_ops=0,
        cores_on=1,
        im_banks_on=im_banks,
        dm_banks_on=dm_banks,
        platform_cores=1,
    )


def test_single_core_calibration_matches_table1_3lmf():
    """The SC fit must land near the paper's 53.6 uW for 3L-MF."""
    activity = _sc_activity(2.3, 60.0, im_banks=1, dm_banks=3)
    report = compute_power(activity, OperatingPoint(2.3, 0.6),
                           multicore=False)
    assert report.total_uw == pytest.approx(53.6, rel=0.03)


def test_single_core_calibration_matches_table1_3lmmd():
    activity = _sc_activity(3.4, 60.0, im_banks=3, dm_banks=3)
    report = compute_power(activity, OperatingPoint(3.4, 0.6),
                           multicore=False)
    assert report.total_uw == pytest.approx(79.7, rel=0.03)


def test_single_core_calibration_matches_table1_rpclass():
    activity = _sc_activity(3.3, 60.0, im_banks=4, dm_banks=11)
    report = compute_power(activity, OperatingPoint(3.3, 0.6),
                           multicore=False)
    assert report.total_uw == pytest.approx(80.4, rel=0.03)


def test_instruction_memory_dominates_dynamic_power():
    """The calibration puts IM fetch first - the broadcast lever."""
    activity = _sc_activity(2.3, 60.0, im_banks=1, dm_banks=3)
    report = compute_power(activity, OperatingPoint(2.3, 0.6),
                           multicore=False)
    assert report.categories["instr_mem"] == max(
        report.categories[name] for name in report.categories
        if name != "instr_mem") or \
        report.categories["instr_mem"] > report.categories["cores_logic"]


def test_lower_voltage_reduces_power_for_same_work():
    activity = _sc_activity(1.0, 60.0, im_banks=1, dm_banks=3)
    high = compute_power(activity, OperatingPoint(1.0, 0.6),
                         multicore=False)
    low = compute_power(activity, OperatingPoint(1.0, 0.5),
                        multicore=False)
    assert low.total_uw < high.total_uw


def test_multicore_charges_interconnect_and_synchronizer():
    activity = ActivityVector(
        cycles=1e6, core_active_cycles=2e6, im_accesses=1.5e6,
        dm_accesses=0.5e6, interconnect_grants=2.5e6, sync_ops=1000,
        cores_on=3, im_banks_on=2, dm_banks_on=16, platform_cores=8)
    multi = compute_power(activity, OperatingPoint(1.0, 0.5),
                          multicore=True)
    single = compute_power(activity, OperatingPoint(1.0, 0.5),
                           multicore=False)
    assert multi.categories["interconnect"] > \
        single.categories["interconnect"]
    assert multi.categories["synchronizer"] > \
        single.categories["synchronizer"]
    assert multi.categories["leakage"] > single.categories["leakage"]


def test_broadcast_saves_instruction_memory_power():
    base = _sc_activity(1.0, 60.0, im_banks=1, dm_banks=16)
    merged = ActivityVector(
        cycles=base.cycles, core_active_cycles=base.core_active_cycles,
        im_accesses=base.im_accesses * 0.6,  # 40 % broadcast
        dm_accesses=base.dm_accesses,
        interconnect_grants=base.interconnect_grants,
        sync_ops=0, cores_on=1, im_banks_on=1, dm_banks_on=16,
        platform_cores=8)
    point = OperatingPoint(1.0, 0.5)
    without = compute_power(base, point, multicore=True)
    with_bcast = compute_power(merged, point, multicore=True)
    saved = (without.categories["instr_mem"]
             - with_bcast.categories["instr_mem"])
    assert saved == pytest.approx(
        0.4 * without.categories["instr_mem"], rel=1e-6)


def test_power_report_saving_and_str():
    activity = _sc_activity(2.3, 60.0, im_banks=1, dm_banks=3)
    baseline = compute_power(activity, OperatingPoint(2.3, 0.6),
                             multicore=False)
    improved = PowerReport(
        operating_point=OperatingPoint(1.0, 0.5), duration_s=60.0,
        categories={"cores_logic": baseline.total_uw / 2})
    assert improved.saving_vs(baseline) == pytest.approx(0.5)


def test_zero_cycle_activity_rejected():
    activity = _sc_activity(1.0, 60.0, im_banks=1, dm_banks=1)
    bad = ActivityVector(
        cycles=0, core_active_cycles=0, im_accesses=0, dm_accesses=0,
        interconnect_grants=0, sync_ops=0, cores_on=1, im_banks_on=1,
        dm_banks_on=1, platform_cores=1)
    with pytest.raises(ValueError):
        compute_power(bad, OperatingPoint(1.0, 0.5), multicore=False)
    # sanity: the good one works
    compute_power(activity, OperatingPoint(1.0, 0.5), multicore=False)


@given(st.floats(min_value=0.4, max_value=1.2),
       st.floats(min_value=0.4, max_value=1.2))
def test_power_is_monotonic_in_voltage(v_low, v_high):
    """Same activity at higher voltage never consumes less power."""
    if v_low > v_high:
        v_low, v_high = v_high, v_low
    activity = _sc_activity(1.0, 1.0, im_banks=1, dm_banks=1)
    low = compute_power(activity, OperatingPoint(1.0, v_low),
                        multicore=True)
    high = compute_power(activity, OperatingPoint(1.0, v_high),
                         multicore=True)
    assert low.total_uw <= high.total_uw + 1e-9


def test_activity_vector_from_system_adapter():
    from repro.hw.system import System
    from repro.isa import assemble

    system = System.multicore(num_cores=8)
    system.load(assemble("""
        .entry 0, main
        .entry 1, main
        main:
            sinc 0
            sdec 0
            sleep
            halt
    """))
    system.run(1000)
    vector = ActivityVector.from_system(system.activity(), platform_cores=8)
    assert vector.cores_on == 2
    assert vector.sync_ops >= 4
    assert vector.dm_banks_on == 16
    assert vector.platform_cores == 8
    report = compute_power(vector, OperatingPoint(1.0, 0.5), multicore=True)
    assert report.total_uw > 0
