"""Tests for the shared shard-and-merge multiprocessing helpers."""

import pytest

from repro.parallel import even_shard_size, pool_map, shard


def _square(value):
    return value * value


def test_shard_and_even_shard_size():
    assert shard([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
    assert even_shard_size(10, 3) == 4
    assert even_shard_size(0, 3) == 1
    with pytest.raises(ValueError):
        shard([1], 0)


def test_pool_map_short_circuits_empty_payloads():
    # No pool is spawned: an unpicklable function is fine even with
    # many workers because the empty list returns before any fork.
    assert pool_map(lambda x: x, [], workers=8) == []


def test_pool_map_single_worker_runs_inline():
    # The inline path never pickles: closures over local state work,
    # and side effects land in *this* process.
    seen = []

    def record(value):
        seen.append(value)
        return value + 1

    assert pool_map(record, [1, 2, 3], workers=1) == [2, 3, 4]
    assert seen == [1, 2, 3]


def test_pool_map_parallel_matches_inline():
    payloads = list(range(7))
    assert pool_map(_square, payloads, workers=2) == \
        pool_map(_square, payloads, workers=1)


def test_pool_map_rejects_zero_workers():
    with pytest.raises(ValueError):
        pool_map(_square, [1], workers=0)
