"""Tests for the shared shard-and-merge multiprocessing helpers."""

import pytest

from repro import obs
from repro.parallel import even_shard_size, pool_map, shard


def _square(value):
    return value * value


class BeatLost(RuntimeError):
    """Domain-flavoured worker failure with a payload-carrying arg."""


def _explode(value):
    raise BeatLost(f"beat {value} lost")


def _explode_observed(value):
    obs.add("exploded.before", 1)
    raise BeatLost(f"beat {value} lost")


def test_shard_and_even_shard_size():
    assert shard([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
    assert even_shard_size(10, 3) == 4
    assert even_shard_size(0, 3) == 1
    with pytest.raises(ValueError):
        shard([1], 0)


def test_pool_map_short_circuits_empty_payloads():
    # No pool is spawned: an unpicklable function is fine even with
    # many workers because the empty list returns before any fork.
    assert pool_map(lambda x: x, [], workers=8) == []


def test_pool_map_single_worker_runs_inline():
    # The inline path never pickles: closures over local state work,
    # and side effects land in *this* process.
    seen = []

    def record(value):
        seen.append(value)
        return value + 1

    assert pool_map(record, [1, 2, 3], workers=1) == [2, 3, 4]
    assert seen == [1, 2, 3]


def test_pool_map_parallel_matches_inline():
    payloads = list(range(7))
    assert pool_map(_square, payloads, workers=2) == \
        pool_map(_square, payloads, workers=1)


def test_pool_map_rejects_zero_workers():
    with pytest.raises(ValueError):
        pool_map(_square, [1], workers=0)


def test_pool_map_worker_raise_propagates_original_exception():
    # The pool re-raises the worker's own exception class in the
    # parent — not a pickling wrapper — with its message intact.
    with pytest.raises(BeatLost, match=r"beat \d lost"):
        pool_map(_explode, [1, 2, 3], workers=2)


def test_pool_map_inline_raise_propagates_original_exception():
    with pytest.raises(BeatLost, match="beat 1 lost"):
        pool_map(_explode, [1], workers=1)


def test_pool_map_worker_raise_leaves_no_orphaned_registry():
    # A failing pooled run must not leak worker-local registries into
    # the parent: the caller's registry stays active through the
    # failure and deactivates normally with the context.
    with obs.collecting() as registry:
        with pytest.raises(BeatLost):
            pool_map(_explode_observed, [1, 2], workers=2)
        assert obs.active() is registry
        # the registry still works: a follow-up run merges cleanly
        pool_map(_square, [1, 2, 3], workers=2)
    assert obs.active() is None


def test_pool_map_inline_raise_leaves_no_orphaned_registry():
    with obs.collecting() as registry:
        with pytest.raises(BeatLost):
            pool_map(_explode_observed, [7], workers=1)
        assert obs.active() is registry
        # the inline path recorded straight into the caller's
        # registry before raising
        counters = registry.snapshot()["counters"]
        assert counters["exploded.before"] == 1
    assert obs.active() is None


def test_pool_map_raise_without_collection_leaves_obs_inactive():
    assert obs.active() is None
    with pytest.raises(BeatLost):
        pool_map(_explode, [1, 2], workers=2)
    assert obs.active() is None
