"""Tests for the benchmark definitions and functional pipelines."""

import pytest

from repro.apps import (
    rp_class,
    run_rp_class,
    run_three_lead_mf,
    run_three_lead_mmd,
    three_lead_mf,
    three_lead_mmd,
)
from repro.dsp.morphology import MorphologicalFilter
from repro.dsp.rp import RandomProjectionClassifier
from repro.signals import (
    BeatLabel,
    EcgConfig,
    cse_like_record,
    rp_class_record,
    synthesize_ecg,
)

FS = 250.0


def test_workload_calibration_anchors_single_core_clocks():
    """The calibrated budgets reproduce Table I's SC minimum clocks."""
    mf = three_lead_mf()
    assert mf.streaming_cycles_per_sample * FS / 1e6 == \
        pytest.approx(2.3, abs=0.02)
    mmd = three_lead_mmd()
    assert mmd.streaming_cycles_per_sample * FS / 1e6 == \
        pytest.approx(3.4, abs=0.02)
    rp = rp_class(0.20)
    streaming = rp.streaming_cycles_per_sample * FS
    triggered = 0.20 * (72 / 60) * rp.triggered_cycles_per_beat
    assert (streaming + triggered) / 1e6 == pytest.approx(3.3, abs=0.1)


def test_multicore_streaming_loads_fit_one_mhz():
    """Every streaming phase fits the 1 MHz multi-core clock."""
    for app in (three_lead_mf(), three_lead_mmd(), rp_class()):
        for phase in app.phases:
            if phase.trigger.value != "streaming":
                continue
            load = (phase.cycles_per_sample
                    + phase.sync_ops_per_sample) * FS / 1e6
            assert load <= 1.0, f"{app.name}/{phase.name}: {load}"


def test_specs_validate():
    for app in (three_lead_mf(), three_lead_mmd(), rp_class(0.3)):
        app.validate()


def test_rp_class_ratio_knob():
    assert rp_class(0.5).pathological_ratio == 0.5


# ---------------------------------------------------------------------------
# Functional pipelines
# ---------------------------------------------------------------------------

def test_run_three_lead_mf_functional():
    record = cse_like_record(duration_s=10.0)
    output = run_three_lead_mf(record)
    assert len(output.filtered_leads) == 3
    assert all(len(lead) == record.num_samples
               for lead in output.filtered_leads)


def test_run_three_lead_mmd_functional():
    record = cse_like_record(duration_s=20.0)
    output = run_three_lead_mmd(record)
    truth = len(record.annotations)
    assert truth * 0.9 <= len(output.beats) <= truth * 1.1
    for beat in output.beats:
        assert beat.qrs_onset <= beat.r_peak <= beat.qrs_offset


def _fitted_classifier(seed=41):
    train = synthesize_ecg(EcgConfig(
        duration_s=60.0, num_leads=1, pathological_ratio=0.3, seed=seed,
        uniform_pathology=False))
    lead = MorphologicalFilter(fs=FS).process(train.leads[0])
    classifier = RandomProjectionClassifier(FS)
    classifier.fit(lead,
                   [beat.sample for beat in train.annotations],
                   [beat.label for beat in train.annotations])
    return classifier


def test_run_rp_class_functional_end_to_end():
    classifier = _fitted_classifier()
    record = rp_class_record(duration_s=40.0, pathological_ratio=0.2,
                             seed=55)
    output = run_rp_class(record, classifier)
    truth_abnormal = sum(1 for beat in record.annotations
                         if beat.is_pathological)
    flagged = sum(1 for label in output.labels
                  if label is BeatLabel.PVC)
    # Sensible detection and classification volumes.
    assert len(output.detected_peaks) >= 0.9 * len(record.annotations)
    assert flagged == pytest.approx(truth_abnormal, abs=4)
    # The chain delineates exactly the flagged beats.
    assert len(output.delineated) == flagged


def test_run_rp_class_without_abnormalities_skips_chain():
    classifier = _fitted_classifier()
    record = rp_class_record(duration_s=30.0, pathological_ratio=0.0,
                             seed=56)
    output = run_rp_class(record, classifier)
    flagged = sum(1 for label in output.labels
                  if label is BeatLabel.PVC)
    # The on-demand chain activates rarely (ideally never).
    assert flagged <= 2
    assert len(output.delineated) == flagged
