"""Tests for the partition / insert / map methodology (Sec. III-B)."""

import pytest

from repro.apps import (
    MappingError,
    map_multicore,
    map_singlecore,
    rp_class,
    three_lead_mf,
    three_lead_mmd,
)
from repro.apps.phases import AppSpec, PhaseSpec, SectionSpec


def test_3lmf_multicore_mapping_matches_table1():
    plan = map_multicore(three_lead_mf())
    assert plan.active_cores == 3
    assert len(plan.im_banks_used) == 1
    assert plan.dm_banks_active == 16


def test_3lmmd_multicore_mapping_matches_table1():
    plan = map_multicore(three_lead_mmd())
    assert plan.active_cores == 5
    assert len(plan.im_banks_used) == 4
    assert plan.dm_banks_active == 16


def test_rpclass_multicore_mapping_matches_table1():
    plan = map_multicore(rp_class())
    assert plan.active_cores == 6
    assert len(plan.im_banks_used) == 6
    assert plan.dm_banks_active == 16


def test_singlecore_im_banks_match_table1():
    assert len(map_singlecore(three_lead_mf()).im_banks_used) == 1
    assert len(map_singlecore(three_lead_mmd()).im_banks_used) == 3
    assert len(map_singlecore(rp_class()).im_banks_used) == 4


def test_singlecore_dm_banks_match_table1():
    assert map_singlecore(three_lead_mf()).dm_banks_active == 3
    assert map_singlecore(three_lead_mmd()).dm_banks_active == 3
    assert map_singlecore(rp_class()).dm_banks_active == 11


def test_multicore_phases_get_distinct_banks():
    """Different phases never share an IM bank (conflict avoidance)."""
    plan = map_multicore(three_lead_mmd())
    app = plan.app
    phase_banks = {}
    for phase in app.phases:
        banks = {plan.section_banks[s.name] for s in phase.sections}
        phase_banks[phase.name] = banks
    assert phase_banks["filter"].isdisjoint(phase_banks["combine"])
    assert phase_banks["combine"].isdisjoint(phase_banks["delineate"])


def test_rp_class_filters_share_code_bank():
    """RP-CLASS's on-demand filters fetch the same mf code/bank."""
    plan = map_multicore(rp_class())
    assert plan.app.phase("filter").sections[0].name == "mf"
    assert plan.app.phase("filter_chain").sections[0].name == "mf"
    assert plan.section_banks["mf"] == 0


def test_replicas_on_distinct_cores():
    plan = map_multicore(three_lead_mf())
    cores = plan.cores_of_phase("filter")
    assert len(cores) == 3
    assert len(set(cores)) == 3


def test_code_overhead_in_paper_band():
    """Code overhead below 3 % in the worst case (Sec. V-A)."""
    overheads = {
        "3L-MF": map_multicore(three_lead_mf()).code_overhead,
        "3L-MMD": map_multicore(three_lead_mmd()).code_overhead,
        "RP-CLASS": map_multicore(rp_class()).code_overhead,
    }
    assert all(0 < value < 0.03 for value in overheads.values())
    # Ordering of Table I: 3L-MF > 3L-MMD > RP-CLASS.
    assert overheads["3L-MF"] > overheads["3L-MMD"] > overheads["RP-CLASS"]


def test_singlecore_has_no_code_overhead():
    assert map_singlecore(three_lead_mf()).code_overhead == 0.0


def test_sync_points_allocated_per_group_and_channel():
    assert map_multicore(three_lead_mf()).sync_points_used == 1
    assert map_multicore(three_lead_mmd()).sync_points_used == 3
    # RP-CLASS: classify group + chain filter group + 2 channels.
    assert map_multicore(rp_class()).sync_points_used == 4


def test_too_many_replicas_rejected():
    app = AppSpec(name="big", fs=250.0, phases=[
        PhaseSpec(name="p", cycles_per_sample=10, dm_access_rate=0.1,
                  sections=(SectionSpec("p", 100),), replicas=9)])
    with pytest.raises(MappingError, match="more than"):
        map_multicore(app, num_cores=8)


def test_oversized_section_rejected():
    app = AppSpec(name="huge", fs=250.0, phases=[
        PhaseSpec(name="p", cycles_per_sample=10, dm_access_rate=0.1,
                  sections=(SectionSpec("p", 5000),))])
    with pytest.raises(MappingError, match="overflows"):
        map_multicore(app)


def test_conflicting_shared_section_sizes_rejected():
    app = AppSpec(name="clash", fs=250.0, phases=[
        PhaseSpec(name="a", cycles_per_sample=10, dm_access_rate=0.1,
                  sections=(SectionSpec("s", 100),)),
        PhaseSpec(name="b", cycles_per_sample=10, dm_access_rate=0.1,
                  sections=(SectionSpec("s", 200),)),
    ])
    with pytest.raises(MappingError, match="two sizes"):
        map_singlecore(app)


def test_app_validation_catches_duplicates():
    app = AppSpec(name="dup", fs=250.0, phases=[
        PhaseSpec(name="p", cycles_per_sample=1, dm_access_rate=0.1,
                  sections=(SectionSpec("x", 10),)),
        PhaseSpec(name="p", cycles_per_sample=1, dm_access_rate=0.1,
                  sections=(SectionSpec("y", 10),)),
    ])
    with pytest.raises(ValueError, match="duplicate"):
        app.validate()
