"""Tests for the assembler command-line front end."""

import pytest

from repro.isa.__main__ import main


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text("""
        .equ SP, 3
        main:
            sinc SP
            sdec SP
            halt
    """)
    return path


def test_cli_prints_listing(source_file, capsys):
    assert main([str(source_file)]) == 0
    out = capsys.readouterr().out
    assert "sinc 3" in out
    assert "sdec 3" in out
    assert "halt" in out
    assert "2 sync instructions" in out
    assert "entry points: core 0" in out


def test_cli_symbols_flag(source_file, capsys):
    assert main([str(source_file), "--symbols"]) == 0
    out = capsys.readouterr().out
    assert "main" in out
    assert "SP" in out
