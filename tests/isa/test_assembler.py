"""Tests for the assembler / builder (bank placement, symbols, pseudos)."""

import pytest

from repro.isa import (
    Assembler,
    AssemblerError,
    LinkError,
    Op,
    assemble,
    assemble_many,
    decode,
)


def _ops(image):
    """Decoded opcodes of the image in address order."""
    return [decode(image.im[a]).op for a in sorted(image.im)]


def test_simple_program_assembles():
    image = assemble("""
        main:
            addi r1, zero, 5
            addi r2, zero, 7
            add  r3, r1, r2
            halt
    """)
    assert _ops(image) == [Op.ADDI, Op.ADDI, Op.ADD, Op.HALT]
    assert image.entries == {0: image.symbols["main"]}


def test_labels_and_branches_resolve_relative_to_next_pc():
    image = assemble("""
        main:
            addi r1, zero, 3
        loop:
            addi r1, r1, -1
            bnez r1, loop
            halt
    """)
    words = [image.im[a] for a in sorted(image.im)]
    branch = decode(words[2])
    assert branch.op == Op.BNE
    # branch sits at offset 2, target at offset 1 -> imm = 1 - (2+1) = -2
    assert branch.imm == -2


def test_forward_references_resolve():
    image = assemble("""
        main:
            j end
            nop
        end:
            halt
    """)
    jump = decode(image.im[min(image.im)])
    assert jump.op == Op.JAL
    assert jump.imm == image.symbols["end"]


def test_li_expands_to_lui_ori():
    image = assemble("""
        main:
            li r1, 0x1234
            halt
    """)
    words = [decode(image.im[a]) for a in sorted(image.im)]
    assert words[0].op == Op.LUI
    assert words[0].imm == 0x12
    assert words[1].op == Op.ORI
    assert words[1].imm == 0x34


def test_memory_operands():
    image = assemble("""
        main:
            lw r1, 4(r2)
            sw r1, -2(r3)
            halt
    """)
    load, store = (decode(image.im[a]) for a in sorted(image.im)[:2])
    assert (load.op, load.rd, load.ra, load.imm) == (Op.LW, 1, 2, 4)
    assert (store.op, store.rb, store.ra, store.imm) == (Op.SW, 1, 3, -2)


def test_equ_and_expressions():
    image = assemble("""
        .equ BASE, 0x100
        .equ COUNT, 4*2+1
        main:
            addi r1, zero, BASE >> 4
            addi r2, zero, COUNT
            halt
    """)
    words = [decode(image.im[a]) for a in sorted(image.im)]
    assert words[0].imm == 0x10
    assert words[1].imm == 9


def test_section_bank_placement():
    image = assemble("""
        .section phase_a, bank=2
        a:  nop
            halt
        .section phase_b, bank=5
        b:  nop
            halt
    """)
    banks = {section.name: section.bank for section in image.sections}
    assert banks == {"phase_a": 2, "phase_b": 5}
    assert image.symbols["a"] == 2 * 4096
    assert image.symbols["b"] == 5 * 4096
    assert image.banks_used() == {2, 5}


def test_two_sections_in_same_bank_are_packed():
    image = assemble("""
        .section one, bank=1
            nop
            nop
        .section two, bank=1
        second:
            halt
    """)
    assert image.symbols["second"] == 1 * 4096 + 2


def test_org_absolute_placement():
    image = assemble("""
        .section boot, org=0x20
        main:
            halt
    """)
    assert image.symbols["main"] == 0x20


def test_entry_directive_sets_core_entries():
    image = assemble("""
        .entry 0, first
        .entry 3, second
        first:  halt
        second: halt
    """)
    assert image.entries[0] == image.symbols["first"]
    assert image.entries[3] == image.symbols["second"]


def test_dm_directive_initialises_data_memory():
    image = assemble("""
        .equ TABLE, 0x900
        .dm TABLE, 1, 2, 3
        main: halt
    """)
    assert image.dm_init == {0x900: 1, 0x901: 2, 0x902: 3}


def test_sync_instructions_assemble_and_are_counted():
    image = assemble("""
        main:
            sinc 3
            sdec 3
            snop 4
            sleep
            halt
    """)
    assert image.sync_instruction_count() == 4
    assert image.code_overhead() == pytest.approx(4 / 5)


def test_sync_literal_from_equ():
    image = assemble("""
        .equ SP_DATA, 7
        main:
            sinc SP_DATA
            halt
    """)
    instr = decode(image.im[min(image.im)])
    assert instr.op == Op.SINC
    assert instr.imm == 7


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError, match="duplicate symbol"):
        assemble("dup: nop\ndup: nop")


def test_unknown_mnemonic_reports_line():
    with pytest.raises(AssemblerError, match="3"):
        assemble("main:\n    nop\n    frobnicate r1\n")


def test_undefined_symbol_rejected():
    with pytest.raises(AssemblerError, match="undefined symbol"):
        assemble("main: j nowhere")


def test_bank_overflow_rejected():
    source = ".section big, bank=0\n" + "nop\n" * 4097
    with pytest.raises(LinkError, match="does not fit"):
        assemble(source)


def test_overlapping_org_sections_rejected():
    with pytest.raises(LinkError, match="overlap"):
        assemble("""
            .section a, org=0x10
                nop
                nop
            .section b, org=0x11
                nop
        """)


def test_bad_bank_rejected():
    with pytest.raises(LinkError, match="banks"):
        assemble(".section a, bank=9\nnop")


def test_assemble_many_links_multiple_sources():
    image = assemble_many({
        "a.s": ".entry 0, main\nmain: call helper\nhalt_loop: j halt_loop",
        "b.s": "helper: ret",
    })
    assert "helper" in image.symbols
    assert image.entries[0] == image.symbols["main"]


def test_pseudo_branches():
    image = assemble("""
        main:
            bgt r1, r2, over    ; blt r2, r1
            ble r1, r2, over    ; bge r2, r1
        over:
            halt
    """)
    first, second = (decode(image.im[a]) for a in sorted(image.im)[:2])
    assert (first.op, first.ra, first.rb) == (Op.BLT, 2, 1)
    assert (second.op, second.ra, second.rb) == (Op.BGE, 2, 1)


def test_align_pads_with_nops():
    image = assemble("""
        main:
            nop
        .align 4
        target:
            halt
    """)
    assert image.symbols["target"] % 4 == 0


def test_chained_assembler_api():
    assembler = Assembler()
    image = (assembler
             .add_source("main: call f\nloop: j loop", "main.s")
             .add_source("f: ret", "lib.s")
             .build())
    assert image.symbols["f"] > 0


def test_word_directive_emits_raw_words():
    image = assemble("""
        table:
            .word 0x123456, 7
        main:
            halt
    """)
    base = image.symbols["table"]
    assert image.im[base] == 0x123456
    assert image.im[base + 1] == 7


def test_default_entry_is_main_if_present():
    image = assemble("start: nop\nmain: halt")
    assert image.entries[0] == image.symbols["main"]


def test_hi_lo_operators():
    image = assemble("""
        .equ VALUE, 0xABCD
        main:
            lui r1, %hi(VALUE)
            ori r1, r1, %lo(VALUE)
            halt
    """)
    hi, lo = (decode(image.im[a]) for a in sorted(image.im)[:2])
    assert hi.imm == 0xAB
    assert lo.imm == 0xCD
