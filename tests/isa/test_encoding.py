"""Unit and property tests for instruction encoding/decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import Instruction, decode, encode
from repro.isa.errors import EncodingError
from repro.isa.spec import (
    IMM_BITS,
    INSTR_MASK,
    JUMP_ADDR_BITS,
    OP_TABLE,
    SYNC_LIT_BITS,
    Format,
    Op,
)

_REG = st.integers(min_value=0, max_value=7)
_IMM12 = st.integers(min_value=-(1 << (IMM_BITS - 1)),
                     max_value=(1 << (IMM_BITS - 1)) - 1)
_ADDR15 = st.integers(min_value=0, max_value=(1 << JUMP_ADDR_BITS) - 1)
_IMM8 = st.integers(min_value=0, max_value=255)
_LIT16 = st.integers(min_value=0, max_value=(1 << SYNC_LIT_BITS) - 1)

_OPS_BY_FMT = {
    fmt: [op for op, info in OP_TABLE.items() if info.fmt is fmt]
    for fmt in Format
}


@st.composite
def instructions(draw) -> Instruction:
    """Random well-formed instructions across all formats."""
    fmt = draw(st.sampled_from(list(Format)))
    op = draw(st.sampled_from(_OPS_BY_FMT[fmt]))
    if fmt is Format.R:
        return Instruction(op, rd=draw(_REG), ra=draw(_REG), rb=draw(_REG))
    if fmt is Format.I:
        return Instruction(op, rd=draw(_REG), ra=draw(_REG),
                           imm=draw(_IMM12))
    if fmt is Format.S:
        return Instruction(op, rb=draw(_REG), ra=draw(_REG),
                           imm=draw(_IMM12))
    if fmt is Format.B:
        return Instruction(op, ra=draw(_REG), rb=draw(_REG),
                           imm=draw(_IMM12))
    if fmt is Format.J:
        return Instruction(op, rd=draw(_REG), imm=draw(_ADDR15))
    if fmt is Format.U:
        return Instruction(op, rd=draw(_REG), imm=draw(_IMM8))
    if fmt is Format.Y:
        return Instruction(op, imm=draw(_LIT16))
    return Instruction(op)


@given(instructions())
def test_encode_decode_round_trip(instr):
    word = encode(instr)
    assert 0 <= word <= INSTR_MASK
    assert decode(word) == instr


@given(instructions())
def test_encoding_is_24_bit(instr):
    assert encode(instr) <= 0xFFFFFF


def test_sync_instructions_have_expected_opcodes():
    assert encode(Instruction(Op.SINC, imm=5)) >> 18 == 0x30
    assert encode(Instruction(Op.SDEC, imm=5)) >> 18 == 0x31
    assert encode(Instruction(Op.SNOP, imm=5)) >> 18 == 0x32
    assert encode(Instruction(Op.SLEEP)) >> 18 == 0x33


def test_immediate_overflow_rejected():
    with pytest.raises(EncodingError):
        encode(Instruction(Op.ADDI, rd=1, ra=1, imm=1 << 11))
    with pytest.raises(EncodingError):
        encode(Instruction(Op.ADDI, rd=1, ra=1, imm=-(1 << 11) - 1))


def test_register_range_rejected():
    with pytest.raises(EncodingError):
        encode(Instruction(Op.ADD, rd=8, ra=0, rb=0))


def test_jump_target_overflow_rejected():
    with pytest.raises(EncodingError):
        encode(Instruction(Op.JAL, rd=0, imm=1 << 15))


def test_sync_literal_overflow_rejected():
    with pytest.raises(EncodingError):
        encode(Instruction(Op.SINC, imm=1 << 16))


def test_illegal_opcode_rejected():
    # opcode 0x3E is unassigned
    with pytest.raises(EncodingError):
        decode(0x3E << 18)


def test_decode_rejects_oversized_words():
    with pytest.raises(EncodingError):
        decode(1 << 24)


def test_negative_immediate_round_trip():
    instr = Instruction(Op.ADDI, rd=3, ra=2, imm=-1)
    assert decode(encode(instr)).imm == -1


def test_store_format_keeps_source_and_base_apart():
    instr = Instruction(Op.SW, rb=3, ra=5, imm=-7)
    decoded = decode(encode(instr))
    assert decoded.rb == 3
    assert decoded.ra == 5
    assert decoded.imm == -7
