"""Disassembler tests, including an assemble/disassemble round trip."""

from hypothesis import given, strategies as st

from repro.isa import assemble, decode, disassemble_image, disassemble_word
from repro.isa.disassembler import format_instruction
from repro.isa.encoding import Instruction, encode
from repro.isa.spec import OP_TABLE, REG_NAMES, Format, Op

_REG = st.integers(min_value=0, max_value=7)
_IMM12 = st.integers(min_value=-2048, max_value=2047)


def test_format_examples():
    assert format_instruction(Instruction(Op.ADD, rd=1, ra=2, rb=3)) == \
        "add r1, r2, r3"
    assert format_instruction(Instruction(Op.LW, rd=1, ra=2, imm=-4)) == \
        "lw r1, -4(r2)"
    assert format_instruction(Instruction(Op.SW, rb=5, ra=6, imm=7)) == \
        "sw r5, 7(r6)"
    assert format_instruction(Instruction(Op.SINC, imm=9)) == "sinc 9"
    assert format_instruction(Instruction(Op.SLEEP)) == "sleep"


def test_disassemble_word_round_trip():
    word = encode(Instruction(Op.ADDI, rd=3, ra=3, imm=-1))
    assert disassemble_word(word) == "addi r3, r3, -1"


def test_disassemble_image_handles_raw_data():
    lines = disassemble_image({0: encode(Instruction(Op.NOP)),
                               1: 0x3E0000 | 123})  # illegal opcode
    assert lines[0].endswith("nop")
    assert ".word" in lines[1]


def _reassemble_line(instr: Instruction, at: int = 0) -> str:
    """Build an assembler line equivalent to a decoded instruction."""
    info = OP_TABLE[instr.op]
    mn = info.mnemonic
    if info.fmt is Format.B:
        # the disassembler prints a relative offset; the assembler
        # wants an absolute target expression
        target = at + 1 + instr.imm
        return f"{mn} {REG_NAMES[instr.ra]}, {REG_NAMES[instr.rb]}, " \
               f"{target}"
    if info.fmt is Format.J:
        return f"jal {REG_NAMES[instr.rd]}, {instr.imm}"
    if info.fmt is Format.I and mn == "jalr":
        return f"jalr {REG_NAMES[instr.rd]}, {REG_NAMES[instr.ra]}, " \
               f"{instr.imm}"
    return format_instruction(instr)


@st.composite
def printable_instructions(draw) -> Instruction:
    op = draw(st.sampled_from(sorted(OP_TABLE, key=int)))
    fmt = OP_TABLE[op].fmt
    if fmt is Format.R:
        return Instruction(op, rd=draw(_REG), ra=draw(_REG),
                           rb=draw(_REG))
    if fmt is Format.I:
        return Instruction(op, rd=draw(_REG), ra=draw(_REG),
                           imm=draw(_IMM12))
    if fmt is Format.S:
        return Instruction(op, rb=draw(_REG), ra=draw(_REG),
                           imm=draw(_IMM12))
    if fmt is Format.B:
        return Instruction(op, ra=draw(_REG), rb=draw(_REG),
                           imm=draw(_IMM12))
    if fmt is Format.J:
        return Instruction(op, rd=draw(_REG),
                           imm=draw(st.integers(0, 32767)))
    if fmt is Format.U:
        return Instruction(op, rd=draw(_REG),
                           imm=draw(st.integers(0, 255)))
    if fmt is Format.Y:
        return Instruction(op, imm=draw(st.integers(0, 65535)))
    return Instruction(op)


@given(printable_instructions())
def test_disassemble_reassemble_round_trip(instr):
    """Every decoded instruction re-assembles to the same word.

    Branches with negative reach at address 0 are re-targeted via the
    absolute expression, which the encoder folds back to the same
    offset.
    """
    if OP_TABLE[instr.op].fmt is Format.B and instr.imm < -1:
        # a branch at address 0 cannot target a negative address;
        # clamp -(-2048) to the signed 12-bit maximum
        instr = Instruction(instr.op, ra=instr.ra, rb=instr.rb,
                            imm=min(-instr.imm, 2047))
    line = _reassemble_line(instr)
    image = assemble(f"main: {line}\n halt")
    word = image.im[image.symbols["main"]]
    assert decode(word) == instr
