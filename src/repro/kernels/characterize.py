"""Characterisation runs on the cycle-level simulator.

Mirrors the paper's RTL-characterisation step (Sec. IV-C): small
kernels execute on the cycle-accurate platform and yield the per-op
costs and lock-step behaviour the system-level model is annotated
with.  The headline outputs are:

* cycles per window element of the morphological inner loop (used to
  sanity-check the calibrated ``MF_CYCLES`` budget);
* cycles per multiply-accumulate (the RP projection cost);
* the **measured instruction-broadcast fraction** of replicated cores
  with and without the SINC/SDEC lock-step recovery — the empirical
  basis of the ``lockstep_alignment`` constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.system import System
from ..isa import assemble
from .sources import (
    RESULT_BASE,
    barrier_pipeline_kernel,
    mac_kernel,
    window_min_kernel,
)

#: Safety bound for kernel runs (they halt long before this).
_MAX_CYCLES = 2_000_000


@dataclass(frozen=True)
class WindowMinReport:
    """Characterisation of the window-minimum kernel.

    Attributes:
        cores: replicas that ran.
        window: structuring-element width.
        outputs: output samples per replica.
        cycles: total platform cycles until completion.
        cycles_per_element: core cycles per processed window element.
        im_broadcast_fraction: merged fraction of instruction fetches.
        alignment: broadcast normalised to the perfect-lock-step bound
            ``(cores - 1) / cores`` — directly comparable to the
            ``lockstep_alignment`` constants of the benchmarks.
        sync_runtime_overhead: sync instructions / executed
            instructions.
        results: final per-core window minima (functional output).
    """

    cores: int
    window: int
    outputs: int
    cycles: int
    cycles_per_element: float
    im_broadcast_fraction: float
    alignment: float
    sync_runtime_overhead: float
    results: tuple[int, ...]


def characterize_window_min(cores: int = 3, window: int = 8,
                            outputs: int = 64,
                            with_sync: bool = True) -> WindowMinReport:
    """Run the window-minimum kernel and extract its characterisation."""
    source = window_min_kernel(cores=cores, window=window,
                               outputs=outputs, with_sync=with_sync)
    system = System.multicore(num_cores=8)
    system.load(assemble(source))
    system.run(_MAX_CYCLES)
    if not system.all_halted:
        raise RuntimeError("window-min kernel did not halt")
    activity = system.activity()
    elements = cores * outputs * (window - 1)
    busy = sum(core.stats.instructions for core in system.cores)
    merged = activity.im_broadcast_fraction
    bound = (cores - 1) / cores if cores > 1 else 1.0
    return WindowMinReport(
        cores=cores, window=window, outputs=outputs,
        cycles=system.cycle,
        cycles_per_element=busy / elements,
        im_broadcast_fraction=merged,
        alignment=merged / bound if bound else 0.0,
        sync_runtime_overhead=activity.sync_instructions
        / activity.instructions,
        results=tuple(system.dm_peek(RESULT_BASE + core)
                      for core in range(cores)),
    )


@dataclass(frozen=True)
class MacReport:
    """Characterisation of the MAC kernel.

    Attributes:
        taps: dot-product length.
        cycles_per_mac: core cycles per multiply-accumulate.
        result: functional dot-product output (low 16 bits).
        expected: reference value computed in Python.
    """

    taps: int
    cycles_per_mac: float
    result: int
    expected: int


def characterize_mac(taps: int = 64) -> MacReport:
    """Run the MAC kernel and extract cycles-per-MAC."""
    system = System.singlecore()
    system.load(assemble(mac_kernel(taps=taps)))
    system.run(_MAX_CYCLES)
    if not system.all_halted:
        raise RuntimeError("MAC kernel did not halt")
    expected = sum((i + 1) * (2 * i + 1) for i in range(taps)) & 0xFFFF
    # Subtract the init loop (~9 instructions per tap) from the core's
    # active cycles to isolate the MAC loop cost.
    active = system.cores[0].stats.active_cycles
    init_cost = 11 * taps
    return MacReport(
        taps=taps,
        cycles_per_mac=max(0.0, active - init_cost) / taps,
        result=system.dm_peek(RESULT_BASE),
        expected=expected,
    )


@dataclass(frozen=True)
class BarrierPipelineReport:
    """Outcome of the multi-round producer-consumer pipeline.

    Attributes:
        producers: producing cores.
        rounds: pipeline rounds executed.
        cycles: total platform cycles.
        consumer_sum: accumulated consumer output.
        expected_sum: reference value.
        sleeps: SLEEP instructions executed (gating really happened).
        point_fires: synchronization events generated.
    """

    producers: int
    rounds: int
    cycles: int
    consumer_sum: int
    expected_sum: int
    sleeps: int
    point_fires: int


def characterize_barrier_pipeline(producers: int = 3, rounds: int = 8
                                  ) -> BarrierPipelineReport:
    """Run the barrier pipeline kernel and check its functional output."""
    system = System.multicore(num_cores=8)
    system.load(assemble(barrier_pipeline_kernel(producers=producers,
                                                 rounds=rounds)))
    system.run(_MAX_CYCLES)
    if not system.all_halted:
        raise RuntimeError("barrier pipeline did not halt")
    expected = sum(4 * core + r
                   for r in range(1, rounds + 1)
                   for core in range(producers)) & 0xFFFF
    stats = system.synchronizer.stats
    return BarrierPipelineReport(
        producers=producers, rounds=rounds, cycles=system.cycle,
        consumer_sum=system.dm_peek(RESULT_BASE),
        expected_sum=expected,
        sleeps=stats.op_counts["sleep"],
        point_fires=stats.point_fires,
    )
