"""Assembly kernels + cycle-level characterisation (system S20)."""

from .characterize import (
    BarrierPipelineReport,
    MacReport,
    WindowMinReport,
    characterize_barrier_pipeline,
    characterize_mac,
    characterize_window_min,
)
from .sources import (
    RESULT_BASE,
    barrier_pipeline_kernel,
    mac_kernel,
    window_min_kernel,
)

__all__ = [
    "BarrierPipelineReport",
    "MacReport",
    "RESULT_BASE",
    "WindowMinReport",
    "barrier_pipeline_kernel",
    "characterize_barrier_pipeline",
    "characterize_mac",
    "characterize_window_min",
    "mac_kernel",
    "window_min_kernel",
]
