"""Assembly kernels for cycle-level characterization (system S20).

The paper characterises architectural elements by running "small code
sections" under post-layout RTL simulation (Sec. IV-C).  These kernels
play that role on the cycle-level simulator: they are real machine-code
programs, built with the project assembler, whose measured behaviour
grounds the constants used by the system-level model:

* :func:`window_min_kernel` — the erosion/dilation inner loop of the
  morphological filter: a sliding-window minimum whose compare-update
  is a *data-dependent branch*.  Run on several cores over different
  data with SINC/SDEC regions, it measures how much instruction
  broadcast the lock-step recovery sustains (the ``lockstep_alignment``
  constants of :mod:`repro.apps.benchmarks`).
* :func:`mac_kernel` — the multiply-accumulate loop of the random
  projection, for cycles-per-MAC.
* :func:`barrier_pipeline_kernel` — a full producer-consumer round
  pipeline built from the paper's primitives only (two alternating
  sync points as a reusable barrier), validating multi-round operation
  of the protocol on real hardware semantics.

All kernels derive per-core data from the ``REG_CORE_ID`` register and
a small LCG, so replicated cores run identical code on distinct
streams — exactly the paper's SIMD-style setting.
"""

from __future__ import annotations

from ..isa.layout import REG_CORE_ID

#: Shared-memory base where kernels deposit per-core results.
RESULT_BASE = 0x900


def window_min_kernel(cores: int = 3, window: int = 8, outputs: int = 64,
                      with_sync: bool = True) -> str:
    """Sliding-window-minimum kernel (erosion inner loop).

    Args:
        cores: replicas running the kernel in parallel (<= 8).
        window: structuring-element width (>= 2).
        outputs: output samples each replica computes.
        with_sync: wrap each window in a SINC/SDEC lock-step region
            (the paper's recovery); without it, cores drift after the
            first data-dependent branch.

    Each core fills a private buffer from an LCG seeded with its core
    id, slides a ``window``-wide minimum over it, and stores the final
    minimum to ``RESULT_BASE + core_id``.
    """
    if not 1 <= cores <= 8:
        raise ValueError("cores must be in [1, 8]")
    if window < 2:
        raise ValueError("window must be >= 2")
    entries = "\n".join(f".entry {core}, main" for core in range(cores))
    region_enter = "sinc SP" if with_sync else "nop"
    region_leave = "sdec SP\n    sleep" if with_sync else "nop\n    nop"
    return f"""
; window-minimum characterisation kernel ({cores} cores, W={window})
.equ SP, 0
.equ PRIV, 0
.equ RESULT, {RESULT_BASE:#x}
.equ N, {outputs}
.equ W, {window}
{entries}

main:
    li   r5, {REG_CORE_ID:#x}
    lw   r6, 0(r5)          ; r6 = core id
    ; ---- fill private buffer with LCG(seed = 10*id + 3) ----
    slli r1, r6, 3
    add  r1, r1, r6
    add  r1, r1, r6
    addi r1, r1, 3          ; r1 = 10*id + 3
    li   r3, N + W
    addi r4, zero, PRIV
fill:
    li   r2, 25173
    mul  r1, r1, r2
    li   r2, 13849
    add  r1, r1, r2
    sw   r1, 0(r4)
    addi r4, r4, 1
    addi r3, r3, -1
    bnez r3, fill
    ; ---- sliding-window minimum ----
    addi r3, zero, 0        ; output index
outer:
    {region_enter}          ; enter data-dependent region
    addi r4, zero, PRIV
    add  r4, r4, r3
    lw   r1, 0(r4)          ; running minimum
    li   r2, W - 1
inner:
    addi r4, r4, 1
    lw   r5, 0(r4)
    bge  r5, r1, no_update  ; data-dependent branch
    mv   r1, r5             ; update running minimum...
    mv   r7, r4             ; ...and remember its position (argmin),
    xor  r5, r5, r5         ; as the real filter does - the update
                            ; path is longer than the skip path, so
                            ; cores genuinely drift apart here
no_update:
    addi r2, r2, -1
    bnez r2, inner
    {region_leave}          ; leave region; resume in lock-step
    addi r3, r3, 1
    li   r2, N
    blt  r3, r2, outer
    ; ---- publish final minimum ----
    li   r4, RESULT
    add  r4, r4, r6
    sw   r1, 0(r4)
    halt
"""


def mac_kernel(taps: int = 64) -> str:
    """Multiply-accumulate kernel (random-projection inner loop).

    One core computes a ``taps``-long dot product of two private
    vectors and stores the low word at ``RESULT_BASE``.
    """
    if taps < 1:
        raise ValueError("taps must be positive")
    return f"""
; MAC characterisation kernel ({taps} taps)
.equ A, 0
.equ B, {taps}
.equ RESULT, {RESULT_BASE:#x}
.equ N, {taps}
.dmfootprint RESULT

main:
    ; fill a[i] = i + 1, b[i] = 2*i + 1
    addi r1, zero, 0
initloop:
    addi r2, r1, 1
    addi r4, zero, A
    add  r4, r4, r1
    sw   r2, 0(r4)
    slli r2, r1, 1
    addi r2, r2, 1
    addi r4, zero, B
    add  r4, r4, r1
    sw   r2, 0(r4)
    addi r1, r1, 1
    li   r2, N
    blt  r1, r2, initloop
    ; dot product
    addi r1, zero, 0        ; index
    addi r3, zero, 0        ; accumulator
macloop:
    addi r4, zero, A
    add  r4, r4, r1
    lw   r2, 0(r4)
    addi r4, zero, B
    add  r4, r4, r1
    lw   r5, 0(r4)
    mul  r2, r2, r5
    add  r3, r3, r2
    addi r1, r1, 1
    li   r2, N
    blt  r1, r2, macloop
    li   r4, RESULT
    sw   r3, 0(r4)
    halt
"""


def barrier_pipeline_kernel(producers: int = 3, rounds: int = 8) -> str:
    """Multi-round producer-consumer pipeline with ISE-only barriers.

    ``producers`` cores each produce one value per round into a shared
    slot; core ``producers`` (the consumer) sums them.  Rounds are
    separated by a reusable two-point sense barrier built exclusively
    from the paper's SINC/SDEC/SLEEP instructions: every core
    pre-registers on the next epoch's point (``SINC``) before waiting
    on the current one (``SDEC`` + ``SLEEP``).

    The consumer's accumulated sum lands at ``RESULT_BASE``.
    """
    if not 1 <= producers <= 7:
        raise ValueError("producers must be in [1, 7]")
    total = producers + 1
    entries = "\n".join(f".entry {core}, main" for core in range(total))
    return f"""
; producer-consumer pipeline with sense barriers
.equ BAR0, 0
.equ BAR1, 1
.equ SLOTS, 0x940
.equ RESULT, {RESULT_BASE:#x}
.equ NPROD, {producers}
.equ ROUNDS, {rounds}
{entries}

main:
    li   r5, {REG_CORE_ID:#x}
    lw   r6, 0(r5)          ; core id
    addi r3, zero, ROUNDS   ; rounds left
    addi r2, zero, 0        ; r2 = epoch parity (0 -> BAR0 current)
    sinc BAR0               ; prime the first barrier epoch
    addi r1, zero, 0        ; consumer accumulator / producer value
round:
    li   r5, NPROD
    blt  r6, r5, produce
    ; ---------------- consumer ----------------
    ; wait for producers at barrier A
    call barrier
    ; sum the slots
    addi r1, zero, 0
    li   r4, SLOTS
    li   r5, NPROD
sumloop:
    lw   r7, 0(r4)
    add  r1, r1, r7
    addi r4, r4, 1
    addi r5, r5, -1
    bnez r5, sumloop
    li   r4, RESULT
    lw   r7, 0(r4)
    add  r7, r7, r1
    sw   r7, 0(r4)
    ; release producers at barrier B
    call barrier
    j    next
produce:
    ; ---------------- producer ----------------
    slli r1, r6, 2
    add  r1, r1, r3         ; value = 4*id + rounds_left
    li   r4, SLOTS
    add  r4, r4, r6
    sw   r1, 0(r4)
    call barrier            ; barrier A: data published
    call barrier            ; barrier B: consumer done reading
next:
    addi r3, r3, -1
    bnez r3, round
    halt

; ---- sense barrier: r2 holds the epoch parity (clobbers r5) ----
barrier:
    bnez r2, odd_epoch
    sinc BAR1               ; pre-register on the next epoch
    sdec BAR0               ; arrive at the current epoch
    sleep
    addi r2, zero, 1
    ret
odd_epoch:
    sinc BAR0
    sdec BAR1
    sleep
    addi r2, zero, 0
    ret
"""
