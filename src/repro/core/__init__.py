"""The paper's primary contribution: HW/SW code synchronization.

This package implements systems S1-S3 of DESIGN.md:

* :mod:`repro.core.syncpoint` — synchronization point words (per-core
  identification flags + up/down counter) and the same-cycle merge
  reduction;
* :mod:`repro.core.events` — event latches and interrupt
  subscription/forwarding;
* :mod:`repro.core.synchronizer` — the synchronizer unit that merges
  requests, watches counters, clock-gates and resumes cores;
* :mod:`repro.core.primitives` — protocol recipes (producer-consumer,
  lock-step regions, reusable barriers) expressed purely in terms of
  the paper's ``SINC``/``SDEC``/``SNOP``/``SLEEP`` instructions.
"""

from .events import EventLatch, InterruptController
from .primitives import (
    LockstepRegion,
    ProducerConsumerChannel,
    SenseBarrier,
    StepResult,
    SyncDomain,
)
from .syncpoint import (
    FireResult,
    MergedUpdate,
    SyncOp,
    SyncPoint,
    SyncPointLayout,
    SyncProtocolError,
    SyncRequest,
    apply_update,
    merge_requests,
)
from .synchronizer import DictStorage, Synchronizer, SynchronizerStats

__all__ = [
    "DictStorage",
    "EventLatch",
    "FireResult",
    "InterruptController",
    "LockstepRegion",
    "MergedUpdate",
    "ProducerConsumerChannel",
    "SenseBarrier",
    "StepResult",
    "SyncDomain",
    "SyncOp",
    "SyncPoint",
    "SyncPointLayout",
    "SyncProtocolError",
    "SyncRequest",
    "Synchronizer",
    "SynchronizerStats",
    "apply_update",
    "merge_requests",
]
