"""Synchronization points: the paper's flag/counter words.

A synchronization point is one word of shared data memory (Sec. III-B,
Fig. 3): the most significant bits hold 1-bit *identification flags*,
one per core, and the least significant bits form an *up/down counter*.

The three synchronization instructions modify a point as follows:

* ``SNOP(#lit)``  - set the issuing core's flag, leave the counter;
* ``SINC(#lit)``  - set the issuing core's flag and increment the counter;
* ``SDEC(#lit)``  - decrement the counter, leave the flags.

When several cores issue synchronization instructions to the *same*
point in the same cycle, the synchronizer merges them "to perform a
single and consistent memory modification": the flag updates are OR-ed
and the counter deltas are summed, and the memory location is written
once.  :func:`merge_requests` implements exactly that reduction; it is
commutative and associative by construction (property-tested).

A point *fires* when, after applying a batch, its counter is zero while
at least one flag is set.  Firing wakes every flagged core and clears
the flags (the counter is already zero).  This single rule covers both
protocols of the paper:

* **producer-consumer** (Fig. 3-a): producers ``SINC`` when they begin
  producing and ``SDEC`` when their data is ready; consumers ``SNOP`` +
  ``SLEEP``.  The last ``SDEC`` zeroes the counter and wakes everybody
  registered in the flags.
* **lock-step recovery** (Fig. 3-b): cores entering a data-dependent
  branch ``SINC``; at the join they ``SDEC`` + ``SLEEP``.  When the last
  participant leaves, the counter reaches zero and all flagged cores
  resume together, in lock-step.

A registration that leaves the counter at zero (e.g. a consumer that
``SNOP``-s before any producer has registered) fires immediately: the
point is already satisfied, so the core's next ``SLEEP`` falls through
(see :class:`repro.core.events.EventLatch`).  This removes the
register-then-sleep race without requiring atomicity beyond the
synchronizer's own merge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SyncProtocolError(Exception):
    """A synchronization point was driven outside its legal envelope."""


class SyncOp(enum.Enum):
    """The three point-modifying synchronization operations."""

    SINC = "sinc"
    SDEC = "sdec"
    SNOP = "snop"


@dataclass(frozen=True)
class SyncRequest:
    """One synchronization instruction issued by one core.

    Attributes:
        core: issuing core identifier.
        op: which of SINC/SDEC/SNOP was issued.
        point: synchronization point index (the ``#lit`` literal).
    """

    core: int
    op: SyncOp
    point: int


@dataclass(frozen=True)
class MergedUpdate:
    """The single consistent modification for one point and one cycle.

    Attributes:
        flag_mask: OR of the identification flags to set.
        counter_delta: net counter change (#SINC - #SDEC).
        requests: how many individual requests were merged.
    """

    flag_mask: int
    counter_delta: int
    requests: int

    @property
    def merged_away(self) -> int:
        """Memory modifications avoided thanks to merging."""
        return max(0, self.requests - 1)


class SyncPointLayout:
    """Bit layout of a synchronization point word.

    With ``num_cores`` cores and ``word_bits``-bit words, the top
    ``num_cores`` bits are flags (bit ``word_bits - 1 - c`` is core
    ``c``'s flag, so core 0 owns the MSB as in Fig. 3) and the low
    ``word_bits - num_cores`` bits are the counter.
    """

    def __init__(self, num_cores: int = 8, word_bits: int = 16) -> None:
        if num_cores < 1:
            raise ValueError("need at least one core")
        if num_cores >= word_bits:
            raise ValueError(
                f"{num_cores} flag bits leave no counter in a "
                f"{word_bits}-bit word")
        self.num_cores = num_cores
        self.word_bits = word_bits
        self.counter_bits = word_bits - num_cores
        self.counter_mask = (1 << self.counter_bits) - 1
        self.max_counter = self.counter_mask

    def flag_bit(self, core: int) -> int:
        """Mask with only ``core``'s identification flag set."""
        if not 0 <= core < self.num_cores:
            raise ValueError(
                f"core {core} out of range [0, {self.num_cores})")
        return 1 << (self.word_bits - 1 - core)

    def flags_field_mask(self) -> int:
        """Mask covering the whole flags field."""
        mask = 0
        for core in range(self.num_cores):
            mask |= self.flag_bit(core)
        return mask

    def encode(self, flags: int, counter: int) -> int:
        """Pack a (flags, counter) pair into a memory word."""
        if counter < 0 or counter > self.max_counter:
            raise SyncProtocolError(
                f"counter {counter} outside [0, {self.max_counter}]")
        if flags & ~self.flags_field_mask():
            raise ValueError("flag bits outside the flags field")
        return flags | counter

    def decode(self, word: int) -> tuple[int, int]:
        """Unpack a memory word into (flags, counter)."""
        return word & self.flags_field_mask(), word & self.counter_mask

    def cores_of(self, flags: int) -> tuple[int, ...]:
        """Core ids whose identification flags are set in ``flags``."""
        return tuple(core for core in range(self.num_cores)
                     if flags & self.flag_bit(core))


def merge_requests(layout: SyncPointLayout,
                   requests: list[SyncRequest]) -> MergedUpdate:
    """Reduce same-cycle requests for one point into a single update.

    The reduction is order-independent: OR for flags, sum for counter
    deltas.  All requests must target the same point.
    """
    if not requests:
        return MergedUpdate(flag_mask=0, counter_delta=0, requests=0)
    point = requests[0].point
    flag_mask = 0
    delta = 0
    for request in requests:
        if request.point != point:
            raise ValueError("merge_requests needs a single-point batch")
        if request.op is SyncOp.SINC:
            flag_mask |= layout.flag_bit(request.core)
            delta += 1
        elif request.op is SyncOp.SNOP:
            flag_mask |= layout.flag_bit(request.core)
        else:  # SDEC leaves the flags untouched
            delta -= 1
    return MergedUpdate(flag_mask=flag_mask, counter_delta=delta,
                        requests=len(requests))


@dataclass(frozen=True)
class FireResult:
    """Outcome of applying one merged update to a point.

    Attributes:
        fired: whether a synchronization event was generated.
        woken_cores: cores whose flags were set when the point fired.
        word: the point's word value after the update (post-clear).
    """

    fired: bool
    woken_cores: tuple[int, ...]
    word: int


class SyncPoint:
    """Mutable state of one synchronization point.

    This is a convenience wrapper for protocol-level code and tests;
    the cycle-level platform stores points directly in shared data
    memory and uses :func:`apply_update` on raw words.
    """

    def __init__(self, layout: SyncPointLayout, strict: bool = True) -> None:
        self.layout = layout
        self.strict = strict
        self.flags = 0
        self.counter = 0

    @property
    def word(self) -> int:
        """Current memory-word value of the point."""
        return self.layout.encode(self.flags, self.counter)

    def load(self, word: int) -> None:
        """Overwrite the point from a raw memory word."""
        self.flags, self.counter = self.layout.decode(word)

    def apply(self, update: MergedUpdate) -> FireResult:
        """Apply a merged update; fire and clear flags if satisfied."""
        word, result = apply_update(self.layout, self.word, update,
                                    strict=self.strict)
        self.load(word)
        return result

    def registered_cores(self) -> tuple[int, ...]:
        """Cores currently registered (flagged) at this point."""
        return self.layout.cores_of(self.flags)


def apply_update(layout: SyncPointLayout, word: int, update: MergedUpdate,
                 strict: bool = True) -> tuple[int, FireResult]:
    """Apply a merged update to a raw point word.

    Returns the new word and the :class:`FireResult`.  In ``strict``
    mode, counter underflow/overflow raises
    :class:`SyncProtocolError`; otherwise the counter saturates, which
    mirrors a hardware implementation that simply clamps.
    """
    flags, counter = layout.decode(word)
    flags |= update.flag_mask
    counter += update.counter_delta
    if counter < 0:
        if strict:
            raise SyncProtocolError(
                "sync point counter underflow (more SDECs than SINCs)")
        counter = 0
    if counter > layout.max_counter:
        if strict:
            raise SyncProtocolError(
                f"sync point counter overflow (> {layout.max_counter})")
        counter = layout.max_counter

    fired = counter == 0 and flags != 0 and update.requests > 0
    woken: tuple[int, ...] = ()
    if fired:
        woken = layout.cores_of(flags)
        flags = 0
    new_word = layout.encode(flags, counter)
    return new_word, FireResult(fired=fired, woken_cores=woken,
                                word=new_word)
