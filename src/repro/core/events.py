"""Synchronization events, wake latches and interrupt lines.

The paper's ``SLEEP`` instruction "requests the synchronizer to
clock-gate the issuing core until the next synchronization event
happens".  Two kinds of events exist:

* a synchronization point the core is registered at fires, or
* an interrupt arrives from a source the core subscribed to through the
  memory-mapped subscription register (Sec. III-B: ADC data-ready).

Each core owns a one-slot :class:`EventLatch`.  An event sets the
latch; ``SLEEP`` *consumes* a pending latch instead of gating the core.
The latch closes the classic race in which the last core of a lock-step
region issues ``SDEC`` (zeroing the counter and firing the event toward
itself) and only then executes ``SLEEP``: without the latch that core
would sleep forever, with it the ``SLEEP`` falls through immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class EventLatch:
    """One-slot wake-event latch, as held per core by the synchronizer."""

    def __init__(self) -> None:
        self._pending = False

    @property
    def pending(self) -> bool:
        """True if an event arrived and has not been consumed yet."""
        return self._pending

    def set(self) -> None:
        """Record a synchronization event (idempotent)."""
        self._pending = True

    def consume(self) -> bool:
        """Clear the latch; returns True if an event was pending."""
        was_pending = self._pending
        self._pending = False
        return was_pending

    def reset(self) -> None:
        """Clear the latch without reporting (power-on reset)."""
        self._pending = False


@dataclass
class InterruptController:
    """Interrupt subscriptions and pending-line bookkeeping.

    The synchronizer forwards peripheral interrupts (e.g. ADC
    data-ready) to subscribed cores.  Subscription is a per-core
    bitmask written through the memory-mapped ``REG_INT_SUBSCRIBE``
    register; it is sticky, so a streaming consumer is woken for every
    new sample until it unsubscribes.

    Attributes:
        num_cores: number of cores with a subscription mask.
        num_lines: number of interrupt lines.
    """

    num_cores: int
    num_lines: int = 16
    _subscriptions: list[int] = field(default_factory=list)
    _pending_lines: int = 0
    raised_count: int = 0
    delivered_count: int = 0

    def __post_init__(self) -> None:
        self._subscriptions = [0] * self.num_cores

    def subscribe(self, core: int, mask: int) -> None:
        """Set ``core``'s subscription bitmask (overwrites)."""
        self._check_core(core)
        self._subscriptions[core] = mask & ((1 << self.num_lines) - 1)

    def subscription(self, core: int) -> int:
        """Current subscription bitmask of ``core``."""
        self._check_core(core)
        return self._subscriptions[core]

    @property
    def pending_lines(self) -> int:
        """Bitmask of lines raised since the last :meth:`collect`."""
        return self._pending_lines

    def raise_line(self, line: int) -> None:
        """Signal interrupt ``line`` (level is latched until collected)."""
        if not 0 <= line < self.num_lines:
            raise ValueError(f"interrupt line {line} out of range")
        self._pending_lines |= 1 << line
        self.raised_count += 1

    def collect(self) -> tuple[int, ...]:
        """Return cores to wake for pending lines and clear the lines.

        Called by the synchronizer at the end of each cycle; a core is
        woken if any pending line intersects its subscription mask.
        """
        if not self._pending_lines:
            return ()
        lines = self._pending_lines
        self._pending_lines = 0
        woken = tuple(core for core in range(self.num_cores)
                      if self._subscriptions[core] & lines)
        self.delivered_count += len(woken)
        return woken

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} out of range")
