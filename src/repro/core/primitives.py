"""Protocol recipes built from the paper's synchronization primitives.

The paper inserts raw ``SINC``/``SDEC``/``SNOP``/``SLEEP`` instructions
by hand (Sec. III-B, step 2).  This module captures the three resulting
protocols as small reusable objects, so that the system-level simulator
and application code express intent (*produce*, *consume*, *enter a
lock-step region*, *barrier*) while still issuing exactly the paper's
instruction sequences underneath:

* :class:`ProducerConsumerChannel` — Fig. 3-a: producers ``SINC`` when
  they begin producing and ``SDEC`` when data is ready; consumers
  ``SNOP`` + ``SLEEP`` until the counter returns to zero.
* :class:`LockstepRegion` — Fig. 3-b: cores entering a data-dependent
  branch ``SINC`` in the same cycle; each issues ``SDEC`` + ``SLEEP``
  at the join and all resume together.
* :class:`SenseBarrier` — a reusable rendezvous composed only of the
  paper's instructions, using two alternating points (each core
  pre-registers on the next epoch's point with ``SINC`` before waiting
  on the current one with ``SDEC`` + ``SLEEP``).

All recipes operate on a :class:`SyncDomain`, a behavioural wrapper
around :class:`~repro.core.synchronizer.Synchronizer` in which every
call is its own cycle (requests submitted together via
:meth:`SyncDomain.step` are merged, as in hardware).
"""

from __future__ import annotations

from dataclasses import dataclass

from .syncpoint import SyncOp
from .synchronizer import Synchronizer


@dataclass(frozen=True)
class StepResult:
    """Outcome of one behavioural cycle.

    Attributes:
        woken: cores resumed from clock-gating during this cycle.
        gated: cores that entered clock-gating during this cycle.
    """

    woken: tuple[int, ...]
    gated: tuple[int, ...]


class SyncDomain:
    """Behavioral clock domain around a :class:`Synchronizer`.

    Each high-level call (``sinc``, ``sdec``, ``snop``, ``sleep``)
    executes in its own cycle.  To model same-cycle merging, pass
    several operations to :meth:`step` at once.
    """

    def __init__(self, num_cores: int, num_points: int = 64,
                 strict: bool = True) -> None:
        self.synchronizer = Synchronizer(
            num_cores=num_cores, num_points=num_points, strict=strict)
        self.num_cores = num_cores

    def step(self, ops: list[tuple[int, SyncOp | None, int]]) -> StepResult:
        """Execute one cycle containing the given operations.

        Each element is ``(core, op, point)``; ``op`` may be ``None``
        to express ``SLEEP`` (``point`` is then ignored).
        """
        gated: list[int] = []
        for core, op, point in ops:
            if op is None:
                if self.synchronizer.sleep(core):
                    gated.append(core)
            else:
                self.synchronizer.submit(core, op, point)
        woken = self.synchronizer.end_cycle()
        return StepResult(woken=woken, gated=tuple(gated))

    def sinc(self, core: int, point: int) -> StepResult:
        """One cycle containing a single ``SINC``."""
        return self.step([(core, SyncOp.SINC, point)])

    def sdec(self, core: int, point: int) -> StepResult:
        """One cycle containing a single ``SDEC``."""
        return self.step([(core, SyncOp.SDEC, point)])

    def snop(self, core: int, point: int) -> StepResult:
        """One cycle containing a single ``SNOP``."""
        return self.step([(core, SyncOp.SNOP, point)])

    def sleep(self, core: int) -> bool:
        """One cycle containing a single ``SLEEP``; True if gated."""
        return self.step([(core, None, 0)]).gated == (core,)

    def is_gated(self, core: int) -> bool:
        """True if ``core`` is clock-gated."""
        return self.synchronizer.is_gated(core)


class ProducerConsumerChannel:
    """Fig. 3-a protocol: N producers feeding registered consumers.

    Producers call :meth:`begin_production` when they start computing a
    datum and :meth:`complete_production` when it is ready.  Consumers
    call :meth:`register` (``SNOP``) and then :meth:`wait` (``SLEEP``);
    they resume when every registered producer has completed.
    """

    def __init__(self, domain: SyncDomain, point: int) -> None:
        self.domain = domain
        self.point = point

    def begin_production(self, core: int) -> StepResult:
        """Producer registers and raises the outstanding-data counter."""
        return self.domain.sinc(core, self.point)

    def complete_production(self, core: int) -> StepResult:
        """Producer signals its datum is ready."""
        return self.domain.sdec(core, self.point)

    def register(self, core: int) -> StepResult:
        """Consumer registers its identification flag."""
        return self.domain.snop(core, self.point)

    def wait(self, core: int) -> bool:
        """Consumer sleeps; returns True if it actually gated."""
        return self.domain.sleep(core)


class LockstepRegion:
    """Fig. 3-b protocol: lock-step recovery across data-dependent code.

    All participating cores *enter* in the same cycle (they run in
    lock-step up to the branch, so their ``SINC`` requests coincide and
    are merged by the synchronizer).  Each core *leaves* independently
    with ``SDEC`` + ``SLEEP``; when the last one leaves, the counter
    returns to zero and every participant resumes in lock-step.
    """

    def __init__(self, domain: SyncDomain, point: int) -> None:
        self.domain = domain
        self.point = point

    def enter(self, cores: list[int]) -> StepResult:
        """All cores issue ``SINC`` in one (merged) cycle."""
        return self.domain.step(
            [(core, SyncOp.SINC, self.point) for core in cores])

    def leave(self, core: int) -> tuple[StepResult, bool]:
        """``SDEC`` then ``SLEEP``; returns (sdec result, gated?)."""
        result = self.domain.sdec(core, self.point)
        gated = self.domain.sleep(core)
        return result, gated


class SenseBarrier:
    """Reusable all-core rendezvous built from the paper's primitives.

    Uses two synchronization points in alternation.  Every participant
    must call :meth:`prime` once before the first epoch; afterwards, a
    call to :meth:`arrive` (a) pre-registers the core on the *next*
    epoch's point with ``SINC`` and (b) waits on the current point with
    ``SDEC`` + ``SLEEP``.  The last arriving core zeroes the counter
    and wakes everyone.
    """

    def __init__(self, domain: SyncDomain, point_even: int,
                 point_odd: int, parties: list[int]) -> None:
        if point_even == point_odd:
            raise ValueError("a sense barrier needs two distinct points")
        self.domain = domain
        self.points = (point_even, point_odd)
        self.parties = list(parties)
        self._epoch: dict[int, int] = {core: 0 for core in parties}

    def prime(self) -> None:
        """Initial registration of every participant on point 0."""
        self.domain.step([
            (core, SyncOp.SINC, self.points[0]) for core in self.parties])

    def arrive(self, core: int) -> bool:
        """One barrier arrival; returns True if the core had to sleep."""
        if core not in self._epoch:
            raise ValueError(f"core {core} is not a barrier party")
        epoch = self._epoch[core]
        current = self.points[epoch % 2]
        upcoming = self.points[(epoch + 1) % 2]
        self._epoch[core] = epoch + 1
        self.domain.sinc(core, upcoming)
        self.domain.sdec(core, current)
        return self.domain.sleep(core)

    def everyone_released(self) -> bool:
        """True if no participant is currently gated."""
        return not any(self.domain.is_gated(core) for core in self.parties)
