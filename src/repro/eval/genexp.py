"""EXP-GEN: generated-workload x mapping-policy exploration.

The property-style counterpart of the paper's fixed Table I: a seeded
suite of synthetic applications (:mod:`repro.gen`) is pushed through
several mapping policies, and every point reports the methodology's
figures of merit (clock floor, duty cycle, power, sync overhead) or
the placement failure that rejected it.

The JSON artifact (:func:`gen_payload`) contains *only* deterministic
fields — identities, canonical app forms, metrics — never wall-clock
timing, so two runs of the same configuration produce byte-identical
files (the CLI acceptance check, and the contract that makes
artifacts diffable across machines).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from ..gen.explorer import (
    EXPLORE_DURATION_S,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_REPAIRED,
    ExplorationRecord,
    explore,
    policy_rates,
)
from ..gen.generator import (
    GEN_SCHEMA,
    app_from_token,
    app_to_mapping,
    suite_tokens,
)
from ..gen.policies import POLICIES
from ..gen.topology import FAMILY_ORDER

#: Default policies of the experiment (>= 2, per the acceptance bar:
#: the paper's placement plus both new heuristics).
GEN_POLICIES: tuple[str, ...] = ("paper", "balanced", "critical-path")

#: Default suite seed and size of ``python -m repro.eval gen``.
GEN_SEED = 7
GEN_COUNT = 20

#: Default simulated seconds per point (re-exported from the explorer).
GEN_DURATION_S = EXPLORE_DURATION_S


@dataclass(frozen=True)
class GenReport:
    """Outcome of one generated-workload exploration.

    Attributes:
        seed: suite seed.
        count: generated applications.
        families: family cycle of the suite.
        policies: mapping policies applied, in order.
        num_cores: provisioned platform width.
        duration_s: simulated seconds per point.
        records: per-(app, policy) records, app-major order.
    """

    seed: int
    count: int
    families: tuple[str, ...]
    policies: tuple[str, ...]
    num_cores: int
    duration_s: float
    records: tuple[ExplorationRecord, ...]

    def counts(self) -> dict[str, int]:
        """How many records landed in each placement status."""
        counts = {STATUS_OK: 0, STATUS_REPAIRED: 0, STATUS_REJECTED: 0}
        for record in self.records:
            counts[record.status] += 1
        return counts

    def policy_rates(self) -> dict[str, dict[str, float | int]]:
        """Per-policy reject/repair rates (the standing metric)."""
        return policy_rates(list(self.records))


def run_gen(seed: int = GEN_SEED, count: int = GEN_COUNT,
            families: tuple[str, ...] | None = None,
            policies: tuple[str, ...] = GEN_POLICIES,
            num_cores: int = 8,
            duration_s: float = GEN_DURATION_S) -> GenReport:
    """Generate a suite and explore it under every policy.

    Raises:
        ValueError: unknown family/policy or non-positive count.
    """
    tokens = suite_tokens(seed, count, families)
    records = explore(tokens, policies=tuple(policies),
                      num_cores=num_cores, duration_s=duration_s)
    return GenReport(
        seed=seed,
        count=count,
        families=tuple(families) if families else FAMILY_ORDER,
        policies=tuple(policies),
        num_cores=num_cores,
        duration_s=duration_s,
        records=tuple(records),
    )


def gen_payload(report: GenReport) -> dict:
    """The deterministic JSON document of one exploration."""
    apps = {}
    for record in report.records:
        if record.token and record.token not in apps:
            apps[record.token] = app_to_mapping(
                app_from_token(record.token))
    return {
        "schema": GEN_SCHEMA,
        "seed": report.seed,
        "count": report.count,
        "families": list(report.families),
        "policies": list(report.policies),
        "num_cores": report.num_cores,
        "duration_s": report.duration_s,
        "status_counts": report.counts(),
        "policy_rates": report.policy_rates(),
        "apps": apps,
        "records": [asdict(record) for record in report.records],
    }


def write_gen_json(report: GenReport, path: str | Path) -> Path:
    """Write the exploration artifact; returns its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(gen_payload(report), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


__all__ = [
    "GEN_COUNT",
    "GEN_DURATION_S",
    "GEN_POLICIES",
    "GEN_SEED",
    "GenReport",
    "POLICIES",
    "gen_payload",
    "run_gen",
    "write_gen_json",
]
