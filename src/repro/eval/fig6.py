"""EXP-F6: reproduce Figure 6 — power decomposition per configuration.

For each benchmark, three bars: the single-core baseline (SC), the
multi-core system *without* the proposed synchronization (active
waiting, no broadcast — "(2) MC (no synch)"), and the multi-core system
with it.  Each bar decomposes into the component categories of the
power model (clock tree, leakage, interconnect, synchronizer,
cores & logic, data memory, instruction memory).

The paper's qualitative finding (Sec. V-B) is asserted by tests: the
no-synchronization multi-core is *lower / comparable / higher* than the
single-core baseline for 3L-MF / 3L-MMD / RP-CLASS respectively, while
the synchronized multi-core wins everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..power.energy import PowerReport
from ..sysc.engine import Mode, simulate
from .runconfig import BenchmarkCase, DURATION_S, benchmark_cases


@dataclass
class Fig6Group:
    """The three bars of one benchmark in Figure 6."""

    benchmark: str
    single: PowerReport
    multi_no_sync: PowerReport
    multi_sync: PowerReport

    @property
    def no_sync_vs_single(self) -> float:
        """(MC-no-sync - SC) / SC; sign gives Fig. 6's lower/higher."""
        return (self.multi_no_sync.total_uw - self.single.total_uw) \
            / self.single.total_uw

    @property
    def multicore_overhead_fraction(self) -> float:
        """Share of MC-sync power spent on multi-core-only components.

        Crossbars, synchronizer and the larger clock tree — the paper
        quotes "up to 34 % of the total energy in 3L-MF".
        """
        total = self.multi_sync.total_uw
        if total == 0:
            return 0.0
        overhead = (self.multi_sync.categories["interconnect"]
                    + self.multi_sync.categories["synchronizer"]
                    + self.multi_sync.categories["clock_tree"])
        return overhead / total


def run_group(case: BenchmarkCase,
              duration_s: float = DURATION_S) -> Fig6Group:
    """Simulate the three Fig. 6 configurations of one benchmark."""
    single = simulate(case.app, Mode.SINGLE_CORE, case.schedule,
                      duration_s=duration_s)
    no_sync = simulate(case.app, Mode.MULTI_CORE_NO_SYNC, case.schedule,
                       duration_s=duration_s)
    with_sync = simulate(case.app, Mode.MULTI_CORE, case.schedule,
                         duration_s=duration_s)
    return Fig6Group(
        benchmark=case.app.name,
        single=single.power,
        multi_no_sync=no_sync.power,
        multi_sync=with_sync.power,
    )


def run_fig6(duration_s: float = DURATION_S) -> list[Fig6Group]:
    """Run the full Figure 6 (three benchmarks x three bars)."""
    return [run_group(case, duration_s)
            for case in benchmark_cases(duration_s)]
