"""EXP-COVER: the coverage-driven fuzz campaign and its artifact.

``python -m repro.eval cover`` runs the seeded fuzz loop of
:mod:`repro.cover.fuzz` and emits the ``repro-cover/1`` artifact:
the declared dimensions, every covered bin with its hit count and
first-hitting token, the uncovered remainder, the adversarial
coverpoints, and the attempt log.  Like every experiment artifact,
the payload carries *only* deterministic fields — bin keys, tokens,
integer counts — so two runs of the same campaign are byte-identical
across processes, worker counts and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from ..cover.fuzz import (
    COVER_BUDGET,
    COVER_CORES,
    COVER_DURATION_S,
    COVER_POLICIES,
    COVER_SATURATION,
    COVER_SEED,
    FuzzReport,
    fuzz_campaign,
    random_campaign,
)
from ..cover.model import ADVERSARIAL_POINTS, COVER_SCHEMA, DIMENSIONS


def run_cover(seed: int = COVER_SEED, budget: int = COVER_BUDGET,
              saturation: int = COVER_SATURATION,
              policies: tuple[str, ...] = COVER_POLICIES,
              num_cores: int = COVER_CORES,
              duration_s: float = COVER_DURATION_S,
              targeted: bool = True) -> FuzzReport:
    """Run one coverage campaign (see :func:`fuzz_campaign`)."""
    if targeted:
        return fuzz_campaign(seed=seed, budget=budget,
                             saturation=saturation, policies=policies,
                             num_cores=num_cores, duration_s=duration_s)
    return random_campaign(seed=seed, budget=budget,
                           saturation=saturation, policies=policies,
                           num_cores=num_cores, duration_s=duration_s)


def cover_payload(report: FuzzReport) -> dict:
    """The deterministic ``repro-cover/1`` JSON document."""
    coverage = report.coverage
    covered = coverage.covered()
    return {
        "schema": COVER_SCHEMA,
        "mode": report.mode,
        "seed": report.seed,
        "budget": report.budget,
        "saturation": report.saturation,
        "policies": list(report.policies),
        "num_cores": report.num_cores,
        "duration_s": report.duration_s,
        "attempts": [asdict(attempt) for attempt in report.attempts],
        "dimensions": [
            {"name": dimension.name, "labels": list(dimension.labels)}
            for dimension in DIMENSIONS
        ],
        "total_bins": len(coverage.space),
        "covered": len(covered),
        "bins": {
            key: {"hits": coverage.hits(key),
                  "first_token": coverage.first_token(key)}
            for key in covered
        },
        "uncovered": coverage.uncovered(),
        "unexpected": {
            key: {"hits": coverage.hits(key),
                  "first_token": coverage.first_token(key)}
            for key in coverage.unexpected()
        },
        "adversarial": {
            name: {"hits": coverage.adversarial_hits()[name],
                   "first_token": coverage.adversarial_first(name)}
            for name in ADVERSARIAL_POINTS
        },
        "status_counts": {
            status: report.status_counts[status]
            for status in sorted(report.status_counts)
        },
        "saturated": report.saturated,
    }


def write_cover_json(report: FuzzReport, path: str | Path) -> Path:
    """Write the coverage artifact; returns its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(cover_payload(report), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return path


__all__ = [
    "COVER_BUDGET",
    "COVER_CORES",
    "COVER_DURATION_S",
    "COVER_POLICIES",
    "COVER_SATURATION",
    "COVER_SEED",
    "cover_payload",
    "run_cover",
    "write_cover_json",
]
