"""Text rendering of the reproduced tables and figures.

Every experiment driver returns structured results; this module turns
them into the same rows/series the paper reports, with the paper's
numbers alongside for comparison.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..net.appsource import BENCHMARK_KIND
from ..net.stats import FleetSummary, SyncError
from ..net.streaming import HierarchyResult
from ..power.energy import CATEGORIES
from .ablations import AblationResult
from .aggregates import summary_stats
from ..cover.fuzz import FuzzReport
from ..cover.model import ADVERSARIAL_POINTS, DIMENSIONS
from .fig6 import Fig6Group
from .fig7 import Fig7Point
from .genexp import GenReport
from .netexp import NetReport, hierarchy_improvement
from .searchexp import SearchReport
from .table1 import PAPER_TABLE1, Table1Column

if TYPE_CHECKING:  # imported lazily inside render_sweep (no cycle)
    from ..sweep.engine import SweepResult

__all__ = [
    "FleetSummary",
    "SyncError",
    "render_ablations",
    "render_cover",
    "render_fig6",
    "render_fig7",
    "render_gen",
    "render_hierarchy",
    "render_net",
    "render_search",
    "render_sweep",
    "render_table1",
]

_TABLE1_ROWS: tuple[tuple[str, str, str], ...] = (
    # (row label, dict key or pair, format)
    ("Active Cores", "active_cores", "int"),
    ("Active IM banks", "sc_im_banks/mc_im_banks", "int"),
    ("Active DM banks", "sc_dm_banks/mc_dm_banks", "int"),
    ("IM Broadcast (%)", "im_broadcast", "pct"),
    ("DM Broadcast (%)", "dm_broadcast", "pct"),
    ("Min. Clock (MHz)", "sc_clock/mc_clock", "f1"),
    ("Min. Voltage (V)", "sc_voltage/mc_voltage", "f2"),
    ("Code Overhead (%)", "code_overhead", "pct"),
    ("Run-time Overhead (%)", "runtime_overhead", "pct"),
    ("Avg. Power (uW)", "sc_power/mc_power", "f1"),
    ("Saving (%)", "saving", "pct"),
)


def _fmt(value: float, kind: str) -> str:
    if kind == "int":
        return f"{int(round(value))}"
    if kind == "pct":
        return f"{value * 100:.2f}"
    if kind == "f1":
        return f"{value:.1f}"
    return f"{value:.2f}"


def render_table1(columns: list[Table1Column],
                  include_paper: bool = True) -> str:
    """Render Table I in the paper's layout (SC and MC per benchmark)."""
    header = ["Metric".ljust(24)]
    for column in columns:
        header.append(f"{column.benchmark} SC".rjust(12))
        header.append(f"{column.benchmark} MC".rjust(12))
    lines = ["  ".join(header), "-" * len("  ".join(header))]
    data = {column.benchmark: column.as_dict() for column in columns}
    for label, key, kind in _TABLE1_ROWS:
        row = [label.ljust(24)]
        for column in columns:
            values = data[column.benchmark]
            if "/" in key:
                sc_key, mc_key = key.split("/")
                row.append(_fmt(values[sc_key], kind).rjust(12))
                row.append(_fmt(values[mc_key], kind).rjust(12))
            else:
                shared = ("-", _fmt(values[key], kind))
                if key == "active_cores":
                    shared = ("1", _fmt(values[key], kind))
                row.append(shared[0].rjust(12))
                row.append(shared[1].rjust(12))
        lines.append("  ".join(row))
    if include_paper:
        lines.append("")
        lines.append("Paper Table I (MC power / saving): " + ", ".join(
            f"{name}: {vals['mc_power']:.1f} uW / "
            f"{vals['saving'] * 100:.1f}%"
            for name, vals in PAPER_TABLE1.items()))
    return "\n".join(lines)


def render_fig6(groups: list[Fig6Group]) -> str:
    """Render Figure 6 as stacked numeric columns per configuration."""
    lines = ["Figure 6: power decomposition (uW)"]
    for group in groups:
        lines.append(f"\n== {group.benchmark}")
        lines.append(
            "  component       " + "SC".rjust(9)
            + "MC(no sync)".rjust(13) + "MC(sync)".rjust(10))
        for name in CATEGORIES:
            lines.append(
                f"  {name:<15}"
                + f"{group.single.categories.get(name, 0.0):9.2f}"
                + f"{group.multi_no_sync.categories.get(name, 0.0):13.2f}"
                + f"{group.multi_sync.categories.get(name, 0.0):10.2f}")
        lines.append(
            "  total          "
            + f"{group.single.total_uw:9.2f}"
            + f"{group.multi_no_sync.total_uw:13.2f}"
            + f"{group.multi_sync.total_uw:10.2f}")
        sign = group.no_sync_vs_single
        verdict = "lower" if sign < -0.02 else \
            "higher" if sign > 0.02 else "comparable"
        lines.append(f"  MC without sync is {verdict} than SC "
                     f"({sign * 100:+.1f} %)")
    return "\n".join(lines)


def render_fig7(points: list[Fig7Point]) -> str:
    """Render Figure 7 as a table of the two curves + reduction."""
    lines = [
        "Figure 7: RP-CLASS power vs. proportion of abnormal heartbeats",
        "  ratio    SC (uW)   SC f/V         MC (uW)   reduction",
    ]
    for point in points:
        sc_op = point.single.operating_point
        lines.append(
            f"  {point.ratio * 100:4.0f} %"
            f"{point.sc_power_uw:10.1f}"
            f"   {sc_op.frequency_mhz:4.2f} MHz/{sc_op.voltage:.2f} V"
            f"{point.mc_power_uw:10.1f}"
            f"{point.reduction * 100:10.1f} %")
    lines.append("Paper: 17 % reduction at 0 %, growing to ~38 % "
                 "in the best case.")
    return "\n".join(lines)


_NET_ROWS: tuple[tuple[str, str, str, str], ...] = (
    # (row label, "no sync" attribute path, protocol attribute path,
    # format) — same row-driven layout as Table I, so both reports
    # format through :func:`_fmt`.  Power and radio rows repeat the
    # same value: the fleets are identical, only the estimator
    # differs.
    ("Mean node power (uW)", "mean_power_uw", "mean_power_uw", "f1"),
    ("Radio power (uW)", "mean_radio_uw", "mean_radio_uw", "f2"),
    ("Beacons sent", "beacons_sent", "beacons_sent", "int"),
    ("Beacons heard", "beacons_heard", "beacons_heard", "int"),
    ("Power-loss resets", "power_loss_resets", "power_loss_resets",
     "int"),
    ("Sync err mean (ms)", "unsync.mean_abs_s", "sync.mean_abs_s", "ms"),
    ("Sync err RMS (ms)", "unsync.rms_s", "sync.rms_s", "ms"),
    ("Steady err mean (ms)", "steady_unsync.mean_abs_s",
     "steady_sync.mean_abs_s", "ms"),
    ("Steady err max (ms)", "steady_unsync.max_abs_s",
     "steady_sync.max_abs_s", "ms"),
)


def _summary_value(summary: FleetSummary, path: str) -> float:
    value = summary
    for attr in path.split("."):
        value = getattr(value, attr)
    return value


def _breakdown_block(title: str, groups) -> list[str]:
    """One per-group table of a heterogeneous fleet summary."""
    lines = [f"  {title} (nodes, floor MHz, power uW, steady err ms):"]
    for group in groups:
        lines.append(
            f"    {group.name:<14}"
            f"{group.nodes:4d}"
            f"{group.mean_floor_mhz:8.2f}"
            f"{group.mean_power_uw:8.1f}"
            f"{group.steady_sync.mean_abs_s * 1e3:8.2f}")
    return lines


def render_net(report: NetReport) -> str:
    """Render the network experiment as a two-column comparison.

    Benchmark fleets keep the historical byte-exact layout;
    heterogeneous fleets (generated-suite or mixed app sources)
    additionally get per-family and per-policy breakdown blocks.
    """
    summary = report.result.summary
    lines = [
        f"Network: {report.scenario} "
        f"({summary.n_nodes} nodes, {summary.duration_s:g} s, "
        f"{report.result.workers} worker(s), {report.result.mode})",
        "  " + "Metric".ljust(24)
        + "no sync".rjust(12) + summary.protocol.rjust(12),
    ]
    lines.append("  " + "-" * 46)
    for label, unsync_path, sync_path, kind in _NET_ROWS:
        scale = 1e3 if kind == "ms" else 1.0
        fmt = "f2" if kind == "ms" else kind
        lines.append(
            "  " + label.ljust(24)
            + _fmt(_summary_value(summary, unsync_path) * scale,
                   fmt).rjust(12)
            + _fmt(_summary_value(summary, sync_path) * scale,
                   fmt).rjust(12))
    lines.append(f"  steady-state error reduced {report.improvement:.1f}x "
                 f"by {summary.protocol}")
    if summary.source != BENCHMARK_KIND:
        lines.extend(_breakdown_block("per-family breakdown",
                                      summary.families))
        lines.extend(_breakdown_block("per-policy breakdown",
                                      summary.policies))
    if report.result.compute is not None:
        lines.append(_compute_line(report.result.compute))
    lines.append(
        f"  throughput: {report.result.nodes_per_second:.1f} nodes/s "
        f"({report.result.elapsed_s:.2f} s)")
    return "\n".join(lines)


def _compute_line(compute) -> str:
    """One-line account of the fleet's compute resolution."""
    line = (f"  compute: {compute.mode} - {compute.requests} request(s) "
            f"over {compute.distinct_keys} distinct unit(s), "
            f"{compute.screened} screened / {compute.exact} exact")
    calibration = compute.calibration
    if calibration is not None:
        verdict = "ok" if calibration["within"] else "FAILED"
        line += (f"; calibration {verdict} "
                 f"(max err {calibration['max_error']:.2e} over "
                 f"{calibration['samples']} sample(s))")
    return line


def render_hierarchy(result: HierarchyResult) -> str:
    """Render a hierarchical streaming run with per-tier breakdown.

    Reuses the network experiment's row layout (the fleet-wide
    summary *is* a :class:`FleetSummary`), then adds the per-tier
    block — each tier's single-hop error next to its effective error
    against the backbone — and the streaming bookkeeping (waves,
    resume state, peak RSS).
    """
    summary = result.summary
    lines = [
        f"Hierarchy: {result.token} "
        f"({summary.n_nodes} nodes, {len(result.tiers)} tier(s), "
        f"{summary.duration_s:g} s, {result.workers} worker(s), "
        f"{result.mode})",
        "  " + "Metric".ljust(24)
        + "no sync".rjust(12) + "tiered".rjust(12),
    ]
    lines.append("  " + "-" * 46)
    for label, unsync_path, sync_path, kind in _NET_ROWS:
        scale = 1e3 if kind == "ms" else 1.0
        fmt = "f2" if kind == "ms" else kind
        lines.append(
            "  " + label.ljust(24)
            + _fmt(_summary_value(summary, unsync_path) * scale,
                   fmt).rjust(12)
            + _fmt(_summary_value(summary, sync_path) * scale,
                   fmt).rjust(12))
    lines.append(
        f"  steady-state error reduced {hierarchy_improvement(result):.1f}x "
        f"across {len(result.tiers)} hop(s)")
    lines.append("  per-tier breakdown (nodes, proto, period s, "
                 "hop err ms, eff err ms):")
    for tier in result.tiers:
        lines.append(
            f"    {tier.name:<12}"
            f"{tier.nodes:8d}  "
            f"{tier.protocol:<6}"
            f"{tier.beacon_period_s:6.1f}"
            f"{tier.steady_hop_sync.mean_abs_s * 1e3:8.2f}"
            f"{tier.steady_sync.mean_abs_s * 1e3:8.2f}")
    if result.resumed_subtrees:
        lines.append(
            f"  resumed {result.resumed_subtrees} subtree(s) from "
            f"checkpoint")
    if not result.completed:
        lines.append(
            f"  partial: {result.subtrees_done}/{result.subtrees} "
            f"subtree(s) folded - rerun with the same checkpoint dir "
            f"to finish")
    lines.append(
        f"  waves: {result.waves_run}/{result.waves} wave(s) x "
        f"{result.wave_size} subtree(s)")
    if result.compute is not None:
        lines.append(_compute_line(result.compute))
    lines.append(
        f"  throughput: {result.nodes_per_second:.1f} nodes/s "
        f"({result.elapsed_s:.2f} s, peak rss {result.peak_rss_mb:.0f} MB)")
    return "\n".join(lines)


def _sweep_cell(value) -> str:
    """Format one sweep-table cell compactly."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_sweep(result: "SweepResult", max_rows: int = 48) -> str:
    """Render a sweep as a compact table: axes, headline metrics, cache.

    Columns are the spec's axes plus the run family's headline
    metrics (see :data:`repro.sweep.runners.HEADLINE_METRICS`) plus
    per-point wall time and cache status.  Long sweeps are elided
    after ``max_rows`` rows.
    """
    from ..sweep.runners import HEADLINE_METRICS

    spec = result.spec
    axes = list(spec.axis_names)
    metrics = [
        key
        for key in HEADLINE_METRICS.get(spec.runner, ())
        if any(key in point.metrics for point in result.results)
    ]
    header = axes + metrics + ["wall_s", "cached"]
    table: list[list[str]] = [header]
    for point in result.results[:max_rows]:
        row = [_sweep_cell(point.point.get(axis, "")) for axis in axes]
        row.extend(
            _sweep_cell(point.metrics.get(key, "")) for key in metrics
        )
        row.append(f"{point.wall_s:.3f}")
        row.append("hit" if point.cached else "run")
        table.append(row)
    widths = [
        max(len(row[col]) for row in table)
        for col in range(len(header))
    ]
    lines = [
        f"Sweep {spec.name!r} ({spec.runner} runner): "
        f"{result.n_points} point(s), {result.workers} worker(s), "
        f"{result.mode}"
    ]
    if spec.description:
        lines.append(f"  {spec.description}")
    lines.append(
        "  "
        + "  ".join(
            cell.rjust(width) for cell, width in zip(header, widths)
        )
    )
    lines.append("  " + "-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in table[1:]:
        lines.append(
            "  "
            + "  ".join(
                cell.rjust(width) for cell, width in zip(row, widths)
            )
        )
    elided = result.n_points - (len(table) - 1)
    if elided > 0:
        lines.append(f"  ... {elided} more point(s) elided")
    lines.append(
        f"  cache: {result.cache_hits} hit(s), "
        f"{result.cache_misses} miss(es), "
        f"{result.cache_stores} store(s)"
        + (f" [{result.fingerprint}]" if result.fingerprint else
           " (disabled)")
    )
    lines.append(
        f"  throughput: {result.sim_s_per_s:.1f} simulated-s/s "
        f"({result.simulated_s:g} sim-s in {result.elapsed_s:.2f} s)"
    )
    return "\n".join(lines)


#: Fixed column layout of the generated-workload table: (header,
#: width, record attribute, format kind for :func:`_fmt`).  Golden
#: tests pin this set; extend deliberately.
_GEN_COLUMNS: tuple[tuple[str, int, str, str], ...] = (
    ("app", 18, "app", "str"),
    ("family", 12, "family", "str"),
    ("policy", 14, "policy", "str"),
    ("status", 9, "status", "str"),
    ("clock", 7, "clock_mhz", "f2"),
    ("V", 6, "voltage", "f2"),
    ("duty", 6, "duty_cycle", "f2"),
    ("power", 8, "power_uw", "f1"),
    ("sync%", 7, "sync_overhead", "pct"),
    ("banks", 6, "im_banks", "int"),
)


def _policy_power_summary(report: GenReport) -> list[str]:
    """Per-policy placement rates and power percentiles.

    The reject/repair rates are the standing per-policy metric the
    adversarial-graph-shapes follow-up tracks
    (:func:`repro.gen.explorer.policy_rates`); the power percentiles
    cover the placed points.
    """
    rates = report.policy_rates()
    lines = ["  per-policy placements and power (uW):"]
    for policy in report.policies:
        rows = [record for record in report.records
                if record.policy == policy]
        placed = [record.power_uw for record in rows
                  if record.status != "rejected"]
        rate = rates[policy]
        label = (f"    {policy:<15}{len(placed):3d} placed  "
                 f"reject {rate['reject_rate'] * 100:5.1f}%  "
                 f"repair {rate['repair_rate'] * 100:5.1f}%")
        if placed:
            stats = summary_stats(placed)
            lines.append(
                f"{label}   p50 {stats['p50']:.1f}  "
                f"p90 {stats['p90']:.1f}  max {stats['max']:.1f}")
        else:
            lines.append(f"{label}   (no placed points)")
    return lines


def render_gen(report: GenReport, max_rows: int = 48) -> str:
    """Render a generated-workload exploration as a fixed table.

    Args:
        report: the exploration to render.
        max_rows: per-record rows shown before eliding (population
            sweeps run to hundreds of apps; the per-policy percentile
            summary below the table always covers every record).
    """
    lines = [
        f"Generated workloads: seed {report.seed}, "
        f"{report.count} app(s) x {len(report.policies)} policy(ies), "
        f"{report.num_cores} cores, {report.duration_s:g} s"
    ]
    header = "  " + "".join(
        title.ljust(width) if kind == "str" else title.rjust(width)
        for title, width, _, kind in _GEN_COLUMNS)
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for record in report.records[:max_rows]:
        cells = []
        for _, width, attr, kind in _GEN_COLUMNS:
            value = getattr(record, attr)
            if kind == "str":
                cells.append(str(value).ljust(width))
            elif record.status == "rejected":
                cells.append("-".rjust(width))
            else:
                cells.append(_fmt(value, kind).rjust(width))
        lines.append("  " + "".join(cells).rstrip())
    elided = len(report.records) - max_rows
    if elided > 0:
        lines.append(f"  ... {elided} more record(s) elided")
    counts = report.counts()
    lines.append(
        f"  placements: {counts['ok']} ok, "
        f"{counts['repaired']} repaired, {counts['rejected']} rejected")
    powered = [record.power_uw for record in report.records
               if record.status != "rejected"]
    if powered:
        lines.append(
            f"  power across placed points: {min(powered):.1f}-"
            f"{max(powered):.1f} uW")
    if report.records:
        lines.extend(_policy_power_summary(report))
    return "\n".join(lines)


def render_cover(report: FuzzReport) -> str:
    """Render a coverage campaign: marginals, coverpoints, outcomes.

    The layout is fixed (golden tests pin it): the headline, the
    cross-bin count, one marginal row per dimension with its missing
    labels, one line per adversarial coverpoint, and the outcome
    tallies.
    """
    coverage = report.coverage
    covered = coverage.covered()
    lines = [
        f"Coverage {report.mode}: seed {report.seed}, "
        f"{len(report.attempts)}/{report.budget} attempt(s), "
        f"{len(report.policies)} policy(ies), "
        f"{report.num_cores} cores, {report.duration_s:g} s"
    ]
    bins_line = f"  bins: {len(covered)}/{len(coverage.space)} covered"
    if report.saturated:
        bins_line += " (saturated)"
    unexpected = coverage.unexpected()
    if unexpected:
        bins_line += f", {len(unexpected)} outside the model"
    lines.append(bins_line)
    lines.append(f"  {'dimension':<10} {'hit':>5}  missing")
    lines.append("  " + "-" * 38)
    hit_labels: list[set[str]] = [set() for _ in DIMENSIONS]
    for key in covered:
        for axis, label in enumerate(key.split("/")):
            hit_labels[axis].add(label)
    for dimension, hit in zip(DIMENSIONS, hit_labels):
        missing = " ".join(label for label in dimension.labels
                           if label not in hit)
        row = f"  {dimension.name:<10} " \
              f"{f'{len(hit)}/{len(dimension.labels)}':>5}"
        lines.append(f"{row}  {missing}".rstrip())
    adversarial = coverage.adversarial_hits()
    for name in ADVERSARIAL_POINTS:
        hits = adversarial[name]
        if hits:
            lines.append(
                f"  adversarial {name}: {hits} hit(s), first "
                f"{coverage.adversarial_first(name)}")
        else:
            lines.append(f"  adversarial {name}: not hit")
    outcomes = ", ".join(
        f"{report.status_counts.get(status, 0)} {status}"
        for status in ("ok", "repaired", "rejected", "screened"))
    lines.append(f"  outcomes: {outcomes}")
    return "\n".join(lines)


#: Fixed column layout of the placement-search table: (header, width,
#: value picker kind, format kind).  Golden tests pin this set.
_SEARCH_COLUMNS: tuple[tuple[str, int, str, str], ...] = (
    ("app", 18, "app", "str"),
    ("family", 12, "family", "str"),
    ("status", 9, "status", "str"),
    ("start", 14, "start_policy", "str"),
    ("paper", 9, "paper_cost", "f2"),
    ("best", 9, "best_cost", "f2"),
    ("gap%", 7, "gap", "pct"),
    ("evals", 7, "evaluations", "int"),
    ("banks", 6, "im_banks", "int"),
    ("cores", 6, "active_cores", "int"),
)


def render_search(report: SearchReport, max_rows: int = 48) -> str:
    """Render a placement-search campaign as a fixed table.

    One row per application: the paper-policy cost, the best-found
    cost and the gap between them, plus the search effort (oracle
    evaluations actually paid) and the footprint of the best
    placement.  A gap percentile summary covers every outcome even
    when rows are elided.
    """
    lines = [
        f"Placement search: seed {report.seed}, "
        f"{report.count} app(s), {report.algorithm}/{report.cost}, "
        f"{report.iterations} iteration(s), {report.num_cores} cores, "
        f"{report.duration_s:g} s/eval"
    ]
    header = "  " + "".join(
        title.ljust(width) if kind == "str" else title.rjust(width)
        for title, width, _, kind in _SEARCH_COLUMNS)
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for outcome in report.outcomes[:max_rows]:
        cells = []
        for _, width, attr, kind in _SEARCH_COLUMNS:
            if attr in ("im_banks", "active_cores"):
                value = outcome.best_metrics.get(attr, 0)
            else:
                value = getattr(outcome, attr)
            rejected = outcome.status == "rejected"
            no_paper = attr == "paper_cost" and not outcome.paper_feasible
            if kind == "str":
                cells.append(str(value).ljust(width))
            elif rejected or no_paper:
                cells.append("-".rjust(width))
            else:
                cells.append(_fmt(value, kind).rjust(width))
        lines.append("  " + "".join(cells).rstrip())
    elided = len(report.outcomes) - max_rows
    if elided > 0:
        lines.append(f"  ... {elided} more outcome(s) elided")
    counts = report.counts()
    lines.append(
        f"  placements: {counts['ok']} ok, "
        f"{counts['repaired']} repaired, {counts['rejected']} rejected")
    gaps = report.gap_summary()
    if gaps["count"]:
        lines.append(
            f"  gap over {gaps['count']} placed app(s): "
            f"p50 {gaps['p50'] * 100:.2f} %, "
            f"p90 {gaps['p90'] * 100:.2f} %, "
            f"max {gaps['max'] * 100:.2f} %")
    if report.oracle == "two-tier":
        screen = report.screen_summary()
        lines.append(
            f"  oracle: two-tier, {report.screen_budget} analytic "
            f"proposal(s)/walk, top-{report.top_k} exact-verified")
        lines.append(
            f"  screening: {screen['screened']} candidate(s) screened, "
            f"{screen['simulated']} simulated, agreement "
            f"{screen['agreed']}/{screen['placed']}")
        errors = (report.calibration or {}).get("errors", {})
        if errors.get("count"):
            lines.append(
                f"  calibration over {errors['count']} sample(s): "
                f"rel err p50 {errors['p50']:.1e}, "
                f"p90 {errors['p90']:.1e}, max {errors['max']:.1e}")
    return "\n".join(lines)


def render_ablations(results: list[AblationResult]) -> str:
    """Render the ablation outcomes."""
    lines = ["Ablations: power with / without each mechanism (uW)"]
    for result in results:
        lines.append(
            f"  {result.name}  {result.description:<52} "
            f"{result.with_feature_uw:7.1f} /{result.without_feature_uw:7.1f}"
            f"   (+{result.penalty_fraction * 100:.1f} % without)")
    return "\n".join(lines)
