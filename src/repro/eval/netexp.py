"""EXP-NET: fleet-level network experiment.

The network analogue of the paper's Table I comparison: one scenario
is simulated once, and every node records *two* error streams from
the same replay — its sync protocol's residual error and the
free-running counterfactual (raw local clock).  Comparing the two
steady-state figures costs a single fleet run; the expensive per-node
ECG/power simulation is never duplicated.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.fleet import (
    DEFAULT_DURATION_S,
    DEFAULT_SEED,
    FleetResult,
    run_fleet,
)
from ..net.stats import SyncError, improvement_ratio

#: Default simulated seconds of the network experiment (the fleet
#: runner's own default; re-exported under the experiment's name).
NET_DURATION_S = DEFAULT_DURATION_S


@dataclass(frozen=True)
class NetReport:
    """Synced-vs-free-running comparison of one scenario.

    Attributes:
        scenario: scenario name.
        result: the fleet run (its summary carries both the synced
            and the free-running error statistics).
    """

    scenario: str
    result: FleetResult

    @property
    def synced(self) -> SyncError:
        """Steady-state error under the scenario's sync protocol."""
        return self.result.summary.steady_sync

    @property
    def unsynced(self) -> SyncError:
        """Steady-state error of the free-running counterfactual."""
        return self.result.summary.steady_unsync

    @property
    def improvement(self) -> float:
        """Steady-state mean |error| ratio, unsynced / synced."""
        return improvement_ratio(self.unsynced.mean_abs_s,
                                 self.synced.mean_abs_s)


def run_net(scenario: str = "drifting-wearables",
            n_nodes: int | None = None,
            duration_s: float = NET_DURATION_S,
            protocol: str | None = None,
            workers: int = 1,
            seed: int = DEFAULT_SEED) -> NetReport:
    """Run one scenario and report synced vs. free-running error.

    Args:
        scenario: preset name (see :data:`repro.net.scenarios.SCENARIOS`).
        n_nodes: fleet size; defaults to the preset's size.
        duration_s: simulated seconds of ECG per node.
        protocol: override the preset's sync protocol.
        workers: worker processes of the fleet runner.
        seed: fleet seed.
    """
    result = run_fleet(scenario, n_nodes=n_nodes, duration_s=duration_s,
                       seed=seed, protocol=protocol, workers=workers)
    return NetReport(scenario=result.summary.scenario, result=result)
