"""EXP-NET: fleet-level network experiment.

The network analogue of the paper's Table I comparison: one scenario
is simulated once, and every node records *two* error streams from
the same replay — its sync protocol's residual error and the
free-running counterfactual (raw local clock).  Comparing the two
steady-state figures costs a single fleet run; the expensive per-node
ECG/power simulation is never duplicated.

Fleets are no longer limited to the three fixed benchmarks: passing
suite parameters (``suite_seed`` / ``suite_count`` / ``families`` /
``policy``) derives a heterogeneous scenario whose nodes draw
generated applications (:mod:`repro.net.appsource`), and the report
gains per-family / per-policy breakdowns.

The JSON artifact (:func:`net_payload`) is versioned: benchmark-backed
fleets emit ``repro-net/1`` documents, heterogeneous fleets emit
``repro-net/2`` documents that additionally carry per-node app
tokens, mapping policies, clock floors and the group breakdowns.
Both contain *only* deterministic fields — never wall-clock timing —
so two runs of the same configuration produce byte-identical files.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from ..net.appsource import BENCHMARK_KIND
from ..net.fleet import (
    DEFAULT_DURATION_S,
    DEFAULT_SEED,
    FleetResult,
    run_fleet,
)
from ..net.node import NodeResult
from ..net.scenarios import generated_scenario
from ..net.stats import SyncError, TierSummary, improvement_ratio
from ..net.streaming import HierarchyResult

#: Default simulated seconds of the network experiment (the fleet
#: runner's own default; re-exported under the experiment's name).
NET_DURATION_S = DEFAULT_DURATION_S

#: Artifact schema tags (v1: benchmark fleets, v2: heterogeneous
#: fleets with per-node app tokens and group breakdowns, v3:
#: hierarchical fleets with per-tier breakdowns and no per-node
#: records — mega-fleets never hold them).
NET_SCHEMA_V1 = "repro-net/1"
NET_SCHEMA_V2 = "repro-net/2"
NET_SCHEMA_V3 = "repro-net/3"

#: Suite defaults of the heterogeneous network experiment.
NET_SUITE_SEED = 7
NET_SUITE_COUNT = 12
NET_SUITE_POLICY = "balanced"


@dataclass(frozen=True)
class NetReport:
    """Synced-vs-free-running comparison of one scenario.

    Attributes:
        scenario: scenario name (or scenario token).
        result: the fleet run (its summary carries both the synced
            and the free-running error statistics).
        seed: fleet seed the run used (recorded for the artifact).
    """

    scenario: str
    result: FleetResult
    seed: int = DEFAULT_SEED

    @property
    def synced(self) -> SyncError:
        """Steady-state error under the scenario's sync protocol."""
        return self.result.summary.steady_sync

    @property
    def unsynced(self) -> SyncError:
        """Steady-state error of the free-running counterfactual."""
        return self.result.summary.steady_unsync

    @property
    def improvement(self) -> float:
        """Steady-state mean |error| ratio, unsynced / synced."""
        return improvement_ratio(self.unsynced.mean_abs_s,
                                 self.synced.mean_abs_s)


def run_net(scenario: str = "drifting-wearables",
            n_nodes: int | None = None,
            duration_s: float = NET_DURATION_S,
            protocol: str | None = None,
            workers: int = 1,
            seed: int = DEFAULT_SEED,
            suite_seed: int | None = None,
            suite_count: int | None = None,
            families: tuple[str, ...] | None = None,
            policy: str | None = None,
            compute: str | None = None,
            compute_cache: str | None = None) -> NetReport:
    """Run one scenario and report synced vs. free-running error.

    Args:
        scenario: preset name or scenario token (see
            :func:`repro.net.scenarios.parse_scenario`).
        n_nodes: fleet size; defaults to the preset's size.
        duration_s: simulated seconds of ECG per node.
        protocol: override the preset's sync protocol.
        workers: worker processes of the fleet runner.
        seed: fleet seed.
        suite_seed: when any suite parameter is given, the scenario
            becomes heterogeneous: nodes draw generated apps from
            this suite instead of the preset's benchmark mix.
        suite_count: generated-suite size (default 12).
        families: topology-family cycle of the suite (default: all).
        policy: mapping policy placing every generated app
            (default ``balanced``).
        compute: app-compute resolution mode (``"exact"`` /
            ``"analytic"``; None = legacy inline simulation — the
            exact resolver is byte-identical to it).
        compute_cache: on-disk compute-cache root (optional).
    """
    heterogeneous = any(value is not None for value in
                        (suite_seed, suite_count, families, policy))
    if heterogeneous:
        scenario = generated_scenario(
            base=scenario,
            seed=NET_SUITE_SEED if suite_seed is None else suite_seed,
            count=NET_SUITE_COUNT if suite_count is None
            else suite_count,
            policy=NET_SUITE_POLICY if policy is None else policy,
            families=families)
    result = run_fleet(scenario, n_nodes=n_nodes, duration_s=duration_s,
                       seed=seed, protocol=protocol, workers=workers,
                       compute=compute, compute_cache=compute_cache)
    return NetReport(scenario=result.summary.scenario, result=result,
                     seed=seed)


def _json_safe(value: float) -> float | str:
    """JSON has no inf/nan; encode them as strings."""
    if isinstance(value, float) and (
            value != value or value in (float("inf"), float("-inf"))):
        return repr(value)
    return value


def _node_entry(node: NodeResult, heterogeneous: bool) -> dict:
    """The artifact record of one node."""
    entry = {
        "node_id": node.node_id,
        "app": node.app_name,
        "protocol": node.protocol,
        "drift_ppm": node.drift_ppm,
        "bpm": node.bpm,
        "resets": node.resets,
        "beacons_heard": node.beacons_heard,
        "radio_uw": node.radio_uw,
        "power_uw": node.power.total_uw,
        "power": dict(node.power.categories),
        "sync": asdict(node.sync),
        "steady_sync": asdict(node.steady_sync),
        "unsync": asdict(node.unsync),
        "steady_unsync": asdict(node.steady_unsync),
    }
    if heterogeneous:
        entry.update(
            token=node.token,
            family=node.family,
            policy=node.policy,
            floor_mhz=node.floor_mhz,
            repairs=node.repairs,
        )
    return entry


def net_payload(report: NetReport) -> dict:
    """The deterministic JSON document of one network experiment.

    Benchmark fleets keep the ``repro-net/1`` shape; heterogeneous
    fleets (any non-benchmark app source) emit ``repro-net/2`` with
    per-node app identities and the per-family / per-policy blocks.
    """
    summary = report.result.summary
    heterogeneous = summary.source != BENCHMARK_KIND
    payload = {
        "schema": NET_SCHEMA_V2 if heterogeneous else NET_SCHEMA_V1,
        "scenario": summary.scenario,
        "protocol": summary.protocol,
        "seed": report.seed,
        "n_nodes": summary.n_nodes,
        "duration_s": summary.duration_s,
        "total_power_uw": summary.total_power_uw,
        "mean_power_uw": summary.mean_power_uw,
        "mean_radio_uw": summary.mean_radio_uw,
        "beacons_sent": summary.beacons_sent,
        "beacons_heard": summary.beacons_heard,
        "power_loss_resets": summary.power_loss_resets,
        "sync": asdict(summary.sync),
        "steady_sync": asdict(summary.steady_sync),
        "unsync": asdict(summary.unsync),
        "steady_unsync": asdict(summary.steady_unsync),
        "improvement": _json_safe(report.improvement),
        "nodes": [_node_entry(node, heterogeneous)
                  for node in report.result.nodes],
    }
    if heterogeneous:
        payload["source"] = summary.source
        payload["families"] = [asdict(group)
                               for group in summary.families]
        payload["policies"] = [asdict(group)
                               for group in summary.policies]
    compute = report.result.compute
    if compute is not None and compute.mode == "analytic":
        # Exact-mode artifacts stay byte-identical to the legacy
        # inline path; only analytic runs disclose their screening.
        payload["compute_summary"] = compute.to_mapping()
    return payload


def hierarchy_improvement(result: HierarchyResult) -> float:
    """Steady-state mean |error| ratio of a hierarchical run."""
    summary = result.summary
    return improvement_ratio(summary.steady_unsync.mean_abs_s,
                             summary.steady_sync.mean_abs_s)


def _tier_entry(tier: TierSummary) -> dict:
    """The artifact record of one tier (plus its improvement)."""
    entry = asdict(tier)
    entry["improvement"] = _json_safe(improvement_ratio(
        tier.steady_unsync.mean_abs_s, tier.steady_sync.mean_abs_s))
    return entry


def hierarchy_payload(result: HierarchyResult) -> dict:
    """The deterministic ``repro-net/3`` document of one streaming run.

    A pure function of (spec, seed, duration): wall-clock timing,
    worker counts, wave sizes and resume bookkeeping are all
    excluded, so interrupted-then-resumed runs and any worker count
    emit byte-identical artifacts.  Per-node records are absent by
    design — hierarchical fleets are sized where holding them is the
    exact failure mode the streaming executor removes.
    """
    summary = result.summary
    payload = {
        "schema": NET_SCHEMA_V3,
        "scenario": result.token,
        "protocol": summary.protocol,
        "seed": result.seed,
        "n_nodes": summary.n_nodes,
        "duration_s": summary.duration_s,
        "subtrees": result.subtrees,
        "total_power_uw": summary.total_power_uw,
        "mean_power_uw": summary.mean_power_uw,
        "mean_radio_uw": summary.mean_radio_uw,
        "beacons_sent": summary.beacons_sent,
        "beacons_heard": summary.beacons_heard,
        "power_loss_resets": summary.power_loss_resets,
        "source": summary.source,
        "sync": asdict(summary.sync),
        "steady_sync": asdict(summary.steady_sync),
        "unsync": asdict(summary.unsync),
        "steady_unsync": asdict(summary.steady_unsync),
        "improvement": _json_safe(hierarchy_improvement(result)),
        "tiers": [_tier_entry(tier) for tier in result.tiers],
    }
    if result.compute is not None and result.compute.mode == "analytic":
        payload["compute_summary"] = result.compute.to_mapping()
    return payload


def write_hierarchy_json(result: HierarchyResult,
                         path: str | Path) -> Path:
    """Write the hierarchical-fleet artifact; returns its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(hierarchy_payload(result), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return path


def write_net_json(report: NetReport, path: str | Path) -> Path:
    """Write the network-experiment artifact; returns its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(net_payload(report), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


__all__ = [
    "NET_DURATION_S",
    "NET_SCHEMA_V1",
    "NET_SCHEMA_V2",
    "NET_SCHEMA_V3",
    "NET_SUITE_COUNT",
    "NET_SUITE_POLICY",
    "NET_SUITE_SEED",
    "NetReport",
    "hierarchy_improvement",
    "hierarchy_payload",
    "net_payload",
    "run_net",
    "write_hierarchy_json",
    "write_net_json",
]
