"""Experiment drivers (system S21): Table I, Fig. 6, Fig. 7,
ablations, the network report, the generated-workload exploration and
the placement-search campaign."""

from .ablations import (
    AblationResult,
    ablate_broadcast,
    ablate_lockstep_recovery,
    ablate_sleep,
    ablate_vfs,
    run_all_ablations,
)
from .aggregates import percentile, summary_stats
from .fig6 import Fig6Group, run_fig6, run_group
from .fig7 import Fig7Point, run_fig7
from .netexp import NET_DURATION_S, NetReport, run_net
from .report import (
    FleetSummary,
    SyncError,
    render_ablations,
    render_fig6,
    render_fig7,
    render_gen,
    render_net,
    render_search,
    render_sweep,
    render_table1,
)
from .searchexp import (
    SEARCH_SCHEMA,
    SearchReport,
    run_search,
    search_payload,
    write_search_json,
)
from .runconfig import (
    BenchmarkCase,
    DURATION_S,
    FIG7_RATIOS,
    TABLE1_PATHOLOGICAL_RATIO,
    benchmark_cases,
    rp_case,
)
from .table1 import PAPER_TABLE1, Table1Column, run_case, run_table1

__all__ = [
    "AblationResult",
    "BenchmarkCase",
    "DURATION_S",
    "FIG7_RATIOS",
    "Fig6Group",
    "Fig7Point",
    "FleetSummary",
    "NET_DURATION_S",
    "NetReport",
    "PAPER_TABLE1",
    "SEARCH_SCHEMA",
    "SearchReport",
    "SyncError",
    "TABLE1_PATHOLOGICAL_RATIO",
    "Table1Column",
    "ablate_broadcast",
    "ablate_lockstep_recovery",
    "ablate_sleep",
    "ablate_vfs",
    "benchmark_cases",
    "percentile",
    "render_ablations",
    "render_fig6",
    "render_fig7",
    "render_gen",
    "render_net",
    "render_search",
    "render_sweep",
    "render_table1",
    "rp_case",
    "run_all_ablations",
    "run_case",
    "run_fig6",
    "run_fig7",
    "run_group",
    "run_net",
    "run_search",
    "run_table1",
    "search_payload",
    "summary_stats",
    "write_search_json",
]
