"""Deterministic aggregate statistics for population-scale reports.

Generated-app campaigns grow into the hundreds of points; per-point
tables stop scaling, so the renderers summarise populations with the
helpers here.  Everything is plain float arithmetic over sorted
copies — no NumPy, no RNG — so summaries are byte-deterministic and
safe inside the byte-identical artifact guarantee.
"""

from __future__ import annotations

__all__ = ["percentile", "summary_stats"]


def percentile(values: list[float], q: float) -> float:
    """The ``q``-th percentile with linear interpolation.

    Args:
        values: sample (any order; not mutated).
        q: percentile in ``[0, 100]``.

    Raises:
        ValueError: empty sample or ``q`` outside ``[0, 100]``.
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def summary_stats(values: list[float]) -> dict[str, float]:
    """Five-point summary of a sample: count/min/p50/p90/max/mean.

    Returns:
        ``{"count", "min", "p50", "p90", "max", "mean"}`` — all zeros
        when the sample is empty (artifact-friendly: the shape never
        changes).
    """
    if not values:
        return {"count": 0, "min": 0.0, "p50": 0.0, "p90": 0.0,
                "max": 0.0, "mean": 0.0}
    return {
        "count": len(values),
        "min": float(min(values)),
        "p50": percentile(values, 50.0),
        "p90": percentile(values, 90.0),
        "max": float(max(values)),
        "mean": sum(values) / len(values),
    }
