"""EXP-T1: reproduce Table I of the paper.

For each benchmark (3L-MF, 3L-MMD, RP-CLASS) the single-core baseline
and the multi-core system with the proposed synchronization are
simulated over 60 s of input; every row of the paper's Table I is
produced: active cores / IM banks / DM banks, IM and DM broadcast
percentages, minimum clock and voltage, code and run-time overheads,
average power and the resulting saving.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sysc.engine import Mode, SimulationResult, simulate
from .runconfig import BenchmarkCase, DURATION_S, benchmark_cases

#: Paper values for EXPERIMENTS.md comparisons, keyed by benchmark.
PAPER_TABLE1 = {
    "3L-MF": {"sc_power": 53.6, "mc_power": 31.8, "saving": 0.407,
              "im_broadcast": 0.4036, "dm_broadcast": 0.0374,
              "sc_clock": 2.3, "mc_clock": 1.0,
              "sc_voltage": 0.6, "mc_voltage": 0.5,
              "code_overhead": 0.0257, "runtime_overhead": 0.0165,
              "active_cores": 3, "sc_im_banks": 1, "mc_im_banks": 1,
              "sc_dm_banks": 3, "mc_dm_banks": 16},
    "3L-MMD": {"sc_power": 79.7, "mc_power": 50.3, "saving": 0.369,
               "im_broadcast": 0.2344, "dm_broadcast": 0.0282,
               "sc_clock": 3.4, "mc_clock": 1.0,
               "sc_voltage": 0.6, "mc_voltage": 0.5,
               "code_overhead": 0.0092, "runtime_overhead": 0.0096,
               "active_cores": 5, "sc_im_banks": 3, "mc_im_banks": 4,
               "sc_dm_banks": 3, "mc_dm_banks": 16},
    "RP-CLASS": {"sc_power": 80.4, "mc_power": 56.9, "saving": 0.292,
                 "im_broadcast": 0.1030, "dm_broadcast": 0.0107,
                 "sc_clock": 3.3, "mc_clock": 1.0,
                 "sc_voltage": 0.6, "mc_voltage": 0.5,
                 "code_overhead": 0.0069, "runtime_overhead": 0.0060,
                 "active_cores": 6, "sc_im_banks": 4, "mc_im_banks": 6,
                 "sc_dm_banks": 11, "mc_dm_banks": 16},
}


@dataclass
class Table1Column:
    """One benchmark's column pair (SC and MC) of Table I."""

    benchmark: str
    single: SimulationResult
    multi: SimulationResult

    @property
    def saving(self) -> float:
        """Fractional power saving of MC over SC (Table I bottom row)."""
        return self.multi.power.saving_vs(self.single.power)

    def as_dict(self) -> dict[str, float]:
        """Rows of Table I as a flat mapping (fractions, MHz, V, µW)."""
        return {
            "active_cores": self.multi.mapping.active_cores,
            "sc_im_banks": len(self.single.mapping.im_banks_used),
            "mc_im_banks": len(self.multi.mapping.im_banks_used),
            "sc_dm_banks": self.single.mapping.dm_banks_active,
            "mc_dm_banks": self.multi.mapping.dm_banks_active,
            "im_broadcast": self.multi.im_broadcast_fraction,
            "dm_broadcast": self.multi.dm_broadcast_fraction,
            "sc_clock": self.single.operating_point.frequency_mhz,
            "mc_clock": self.multi.operating_point.frequency_mhz,
            "sc_voltage": self.single.operating_point.voltage,
            "mc_voltage": self.multi.operating_point.voltage,
            "code_overhead": self.multi.code_overhead,
            "runtime_overhead": self.multi.runtime_overhead,
            "sc_power": self.single.power.total_uw,
            "mc_power": self.multi.power.total_uw,
            "saving": self.saving,
        }


def run_case(case: BenchmarkCase,
             duration_s: float = DURATION_S) -> Table1Column:
    """Simulate one benchmark in both configurations."""
    single = simulate(case.app, Mode.SINGLE_CORE, case.schedule,
                      duration_s=duration_s)
    multi = simulate(case.app, Mode.MULTI_CORE, case.schedule,
                     duration_s=duration_s)
    return Table1Column(benchmark=case.app.name, single=single,
                        multi=multi)


def run_table1(duration_s: float = DURATION_S) -> list[Table1Column]:
    """Run all three benchmarks (the full Table I)."""
    return [run_case(case, duration_s) for case in benchmark_cases(
        duration_s)]
