"""EXP-F7: reproduce Figure 7 — RP-CLASS vs. pathological-beat ratio.

"Figure 7 shows the energy consumption of the baseline and the target
architectures and the percentage reduction while executing the
RP-CLASS applications with different inputs, varying the amount of
pathological heartbeats.  For all the tests the abnormal heartbeats
have been distributed uniformly." (Sec. V-C)

Both systems are re-sized per ratio (minimum clock, then minimum
voltage); the single-core baseline's requirement crosses a voltage step
as the on-demand delineation chain activates more often, while the
multi-core system stays at the platform floor (1 MHz / 0.5 V) — the
combination of VFS and chain broadcasting grows the reduction with the
ratio, the paper's "synergies between VFS and broadcasting".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sysc.engine import Mode, SimulationResult, simulate
from .runconfig import DURATION_S, FIG7_RATIOS, rp_case


@dataclass
class Fig7Point:
    """One x-position of Figure 7.

    Attributes:
        ratio: pathological-beat fraction of the input.
        single: single-core simulation.
        multi: multi-core simulation.
    """

    ratio: float
    single: SimulationResult
    multi: SimulationResult

    @property
    def sc_power_uw(self) -> float:
        """Single-core average power (left axis)."""
        return self.single.power.total_uw

    @property
    def mc_power_uw(self) -> float:
        """Multi-core average power (left axis)."""
        return self.multi.power.total_uw

    @property
    def reduction(self) -> float:
        """Fractional reduction (right axis)."""
        return self.multi.power.saving_vs(self.single.power)


def run_fig7(ratios: tuple[float, ...] = FIG7_RATIOS,
             duration_s: float = DURATION_S) -> list[Fig7Point]:
    """Sweep the pathological ratio and simulate both systems."""
    points = []
    for ratio in ratios:
        case = rp_case(ratio, duration_s)
        single = simulate(case.app, Mode.SINGLE_CORE, case.schedule,
                          duration_s=duration_s)
        multi = simulate(case.app, Mode.MULTI_CORE, case.schedule,
                         duration_s=duration_s)
        points.append(Fig7Point(ratio=ratio, single=single, multi=multi))
    return points
