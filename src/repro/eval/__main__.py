"""Command-line entry point for the experiment suite.

Usage::

    python -m repro.eval table1
    python -m repro.eval fig6
    python -m repro.eval fig7
    python -m repro.eval ablations
    python -m repro.eval net [--scenario S] [--nodes N] [--workers W]
    python -m repro.eval all
"""

from __future__ import annotations

import argparse

from ..net.fleet import DEFAULT_SEED
from ..net.scenarios import SCENARIOS
from ..net.timesync import PROTOCOLS
from .ablations import run_all_ablations
from .fig6 import run_fig6
from .fig7 import run_fig7
from .netexp import NET_DURATION_S, run_net
from .report import (
    render_ablations,
    render_fig6,
    render_fig7,
    render_net,
    render_table1,
)
from .runconfig import DURATION_S
from .table1 import run_table1


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0.0:
        raise argparse.ArgumentTypeError("must be > 0")
    return value


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiment and print its report."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Reproduce the paper's tables and figures.")
    parser.add_argument(
        "experiment",
        choices=("table1", "fig6", "fig7", "ablations", "net", "all"),
        help="which artifact to regenerate")
    parser.add_argument(
        "--duration", type=_positive_float, default=None,
        help="simulated seconds (default: the paper's 60 s; "
             f"{NET_DURATION_S:g} s for the network experiment)")
    parser.add_argument(
        "--scenario", choices=sorted(SCENARIOS), default=None,
        help="fleet scenario of the network experiment "
             "(default: drifting-wearables)")
    parser.add_argument(
        "--nodes", type=_nonnegative_int, default=None,
        help="fleet size (default: the scenario preset)")
    parser.add_argument(
        "--protocol", choices=sorted(PROTOCOLS), default=None,
        help="override the scenario's sync protocol")
    parser.add_argument(
        "--workers", type=_positive_int, default=None,
        help="worker processes of the fleet runner (default: 1)")
    parser.add_argument(
        "--seed", type=int, default=None,
        help=f"fleet seed of the network experiment "
             f"(default: {DEFAULT_SEED})")
    args = parser.parse_args(argv)
    duration = DURATION_S if args.duration is None else args.duration
    if args.experiment not in ("net", "all"):
        net_flags = {"--scenario": args.scenario, "--nodes": args.nodes,
                     "--protocol": args.protocol,
                     "--workers": args.workers, "--seed": args.seed}
        misused = [flag for flag, value in net_flags.items()
                   if value is not None]
        if misused:
            parser.error(f"{', '.join(misused)} only apply(ies) to "
                         f"the net experiment")

    sections: list[str] = []
    if args.experiment in ("table1", "all"):
        sections.append(render_table1(run_table1(duration)))
    if args.experiment in ("fig6", "all"):
        sections.append(render_fig6(run_fig6(duration)))
    if args.experiment in ("fig7", "all"):
        sections.append(render_fig7(run_fig7(duration_s=duration)))
    if args.experiment in ("ablations", "all"):
        sections.append(render_ablations(run_all_ablations(duration)))
    if args.experiment in ("net", "all"):
        net_duration = (NET_DURATION_S if args.duration is None
                        else args.duration)
        sections.append(render_net(run_net(
            scenario=args.scenario or "drifting-wearables",
            n_nodes=args.nodes,
            duration_s=net_duration, protocol=args.protocol,
            workers=args.workers or 1,
            seed=DEFAULT_SEED if args.seed is None else args.seed)))
    print("\n\n".join(sections))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
