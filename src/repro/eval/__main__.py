"""Command-line entry point for the experiment suite.

Usage::

    python -m repro.eval table1
    python -m repro.eval fig6
    python -m repro.eval fig7
    python -m repro.eval ablations
    python -m repro.eval all
"""

from __future__ import annotations

import argparse

from .ablations import run_all_ablations
from .fig6 import run_fig6
from .fig7 import run_fig7
from .report import (
    render_ablations,
    render_fig6,
    render_fig7,
    render_table1,
)
from .runconfig import DURATION_S
from .table1 import run_table1


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiment and print its report."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Reproduce the paper's tables and figures.")
    parser.add_argument(
        "experiment",
        choices=("table1", "fig6", "fig7", "ablations", "all"),
        help="which artifact to regenerate")
    parser.add_argument(
        "--duration", type=float, default=DURATION_S,
        help="simulated seconds (default: the paper's 60 s)")
    args = parser.parse_args(argv)

    sections: list[str] = []
    if args.experiment in ("table1", "all"):
        sections.append(render_table1(run_table1(args.duration)))
    if args.experiment in ("fig6", "all"):
        sections.append(render_fig6(run_fig6(args.duration)))
    if args.experiment in ("fig7", "all"):
        sections.append(render_fig7(run_fig7(duration_s=args.duration)))
    if args.experiment in ("ablations", "all"):
        sections.append(render_ablations(run_all_ablations(args.duration)))
    print("\n\n".join(sections))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
