"""Command-line entry point for the experiment suite.

Usage::

    python -m repro.eval table1
    python -m repro.eval fig6
    python -m repro.eval fig7
    python -m repro.eval ablations
    python -m repro.eval net [--scenario S] [--nodes N] [--workers W]
                             [--suite-seed S --suite-count N
                              --policy P --families F ...] [--json F]
    python -m repro.eval net --tiers SPEC [--stream] [--wave N]
                             [--checkpoint-dir D] [--max-waves N]
    python -m repro.eval sweep [--spec NAME | --spec-file F] [--workers W]
    python -m repro.eval gen [--seed S] [--count N] [--policies P ...]
    python -m repro.eval search [--seed S] [--count N] [--algorithm A]
    python -m repro.eval cover [--seed S] [--budget N] [--random]
    python -m repro.eval all

Every experiment is its own subcommand with its own flags; ``sweep``
runs a declarative campaign through :mod:`repro.sweep` (cached,
sharded) and can emit JSON/CSV artifacts.

Usage errors — malformed tokens, unknown presets, conflicting flags,
unreadable spec files — exit 2 with a one-line message on stderr
(the argparse convention), never a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys

from .. import obs
from ..gen.policies import POLICIES
from ..gen.topology import FAMILY_ORDER
from ..net.fleet import DEFAULT_SEED
from ..net.hierarchy import HIERARCHIES
from ..net.scenarios import SCENARIOS
from ..net.streaming import DEFAULT_WAVE_SUBTREES, run_streaming
from ..net.timesync import PROTOCOLS
from ..search import ALGORITHMS, ORACLE_KINDS
from ..sweep import (
    ResultCache,
    SPECS,
    get_spec,
    run_sweep,
    spec_from_mapping,
    write_bench_json,
    write_csv,
)
from .ablations import run_all_ablations
from .coverexp import (
    COVER_BUDGET,
    COVER_CORES,
    COVER_DURATION_S,
    COVER_POLICIES,
    COVER_SATURATION,
    COVER_SEED,
    run_cover,
    write_cover_json,
)
from .fig6 import run_fig6
from .fig7 import run_fig7
from .genexp import (
    GEN_COUNT,
    GEN_DURATION_S,
    GEN_POLICIES,
    GEN_SEED,
    run_gen,
    write_gen_json,
)
from .netexp import (
    NET_DURATION_S,
    NET_SUITE_COUNT,
    NET_SUITE_POLICY,
    NET_SUITE_SEED,
    run_net,
    write_hierarchy_json,
    write_net_json,
)
from .report import (
    render_ablations,
    render_cover,
    render_fig6,
    render_fig7,
    render_gen,
    render_hierarchy,
    render_net,
    render_search,
    render_sweep,
    render_table1,
)
from .searchexp import (
    SEARCH_ALGORITHM,
    SEARCH_CLI_ITERATIONS,
    SEARCH_COST,
    SEARCH_COUNT,
    SEARCH_DURATION_S,
    SEARCH_ORACLES,
    SEARCH_SCREEN_BUDGET,
    SEARCH_SEED,
    SEARCH_TOP_K,
    run_search,
    write_search_json,
)
from .runconfig import DURATION_S
from .table1 import run_table1


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0.0:
        raise argparse.ArgumentTypeError("must be > 0")
    return value


def _add_duration(parser: argparse.ArgumentParser,
                  default_hint: str) -> None:
    parser.add_argument(
        "--duration", type=_positive_float, default=None,
        help=f"simulated seconds (default: {default_hint})")


def _add_metrics(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics", nargs="?", const="", default=None, metavar="PATH",
        help="collect run metrics and print them after the report; "
             "with PATH, also write the repro-metrics/1 artifact "
             "there")


def _add_net_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario", choices=sorted(SCENARIOS), default=None,
        help="fleet scenario (default: drifting-wearables)")
    parser.add_argument(
        "--nodes", type=_nonnegative_int, default=None,
        help="fleet size (default: the scenario preset)")
    parser.add_argument(
        "--protocol", choices=sorted(PROTOCOLS), default=None,
        help="override the scenario's sync protocol")
    parser.add_argument(
        "--workers", type=_positive_int, default=1,
        help="worker processes of the fleet runner (default: 1)")
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help=f"fleet seed (default: {DEFAULT_SEED})")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Reproduce the paper's tables and figures, "
                    "or run declarative sweeps.")
    commands = parser.add_subparsers(dest="experiment", required=True,
                                     metavar="experiment")
    paper_default = f"the paper's {DURATION_S:g} s"
    for name, text in (("table1", "reproduce Table I"),
                       ("fig6", "reproduce Figure 6"),
                       ("fig7", "reproduce Figure 7"),
                       ("ablations", "run the mechanism ablations"),
                       ("all", "run every experiment")):
        sub = commands.add_parser(name, help=text)
        _add_duration(sub, paper_default)
        _add_metrics(sub)
        if name == "all":
            _add_net_flags(sub)
    net = commands.add_parser(
        "net", help="run the fleet network experiment")
    _add_duration(net, f"{NET_DURATION_S:g} s")
    _add_metrics(net)
    _add_net_flags(net)
    net.add_argument(
        "--suite-seed", type=int, default=None, metavar="SEED",
        help="draw each node's app from a generated suite with this "
             f"seed (default when any suite flag is given: "
             f"{NET_SUITE_SEED})")
    net.add_argument(
        "--suite-count", type=_positive_int, default=None, metavar="N",
        help=f"generated-suite size (default: {NET_SUITE_COUNT})")
    net.add_argument(
        "--families", nargs="+", choices=list(FAMILY_ORDER),
        default=None, metavar="FAMILY",
        help="topology families of the generated suite "
             f"(default: all of {', '.join(FAMILY_ORDER)})")
    net.add_argument(
        "--policy", choices=sorted(POLICIES), default=None,
        help="mapping policy placing every generated app "
             f"(default: {NET_SUITE_POLICY})")
    net.add_argument(
        "--compute", choices=("exact", "analytic"), default="exact",
        help="app-compute resolution: 'exact' dedupes identical "
             "per-node work through the content-addressed compute "
             "cache (byte-identical artifacts), 'analytic' "
             "additionally screens uncached work with the calibrated "
             "closed-form model (default: exact)")
    net.add_argument(
        "--compute-cache", default=None, metavar="DIR",
        help="on-disk compute-cache root shared across runs "
             "(default: $REPRO_COMPUTE_CACHE, else in-process only)")
    net.add_argument(
        "--tiers", default=None, metavar="SPEC",
        help="run a hierarchical fleet instead: preset name "
             f"({', '.join(sorted(HIERARCHIES))}) or a "
             "'tiers:<proto@<period>x<fan>[~<scale>]/...>:<base>' "
             "token")
    net.add_argument(
        "--stream", action="store_true",
        help="run the hierarchy through the streaming executor in "
             f"bounded-memory waves (default: "
             f"{DEFAULT_WAVE_SUBTREES} subtrees/wave)")
    net.add_argument(
        "--wave", type=_positive_int, default=None, metavar="N",
        help="tier-0 subtrees per wave (implies --stream)")
    net.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist the partial merge after every wave; a rerun "
             "with the same spec resumes from it (implies --stream)")
    net.add_argument(
        "--max-waves", type=_positive_int, default=None, metavar="N",
        help="stop after N waves - the deterministic kill point the "
             "resume checks use (implies --stream)")
    net.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the deterministic repro-net/1|2 artifact here "
             "(repro-net/3 with --tiers; skipped while a --max-waves "
             "run is incomplete)")

    sweep = commands.add_parser(
        "sweep", help="run a declarative sweep campaign (cached)")
    source = sweep.add_mutually_exclusive_group()
    source.add_argument(
        "--spec", choices=sorted(SPECS), default="demo",
        help="built-in campaign to run (default: demo)")
    source.add_argument(
        "--spec-file", default=None, metavar="FILE",
        help="JSON file holding a sweep spec "
             "(see repro.sweep.spec_from_mapping)")
    sweep.add_argument(
        "--workers", type=_positive_int, default=1,
        help="worker processes for cache misses (default: 1)")
    sweep.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default: $REPRO_SWEEP_CACHE "
             "or ~/.cache/repro-sweep)")
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="disable cache reads and writes")
    sweep.add_argument(
        "--force", action="store_true",
        help="re-execute every point (results refresh the cache)")
    sweep.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the BENCH JSON artifact here")
    sweep.add_argument(
        "--csv", default=None, metavar="PATH",
        help="write the flat CSV table here")
    sweep.add_argument(
        "--list", action="store_true",
        help="list built-in campaigns and exit")
    _add_metrics(sweep)

    gen = commands.add_parser(
        "gen", help="explore generated synthetic workloads")
    gen.add_argument(
        "--seed", type=int, default=GEN_SEED,
        help=f"suite seed (default: {GEN_SEED})")
    gen.add_argument(
        "--count", type=_positive_int, default=GEN_COUNT,
        help=f"generated applications (default: {GEN_COUNT})")
    gen.add_argument(
        "--families", nargs="+", choices=list(FAMILY_ORDER),
        default=None, metavar="FAMILY",
        help="topology families to cycle through "
             f"(default: all of {', '.join(FAMILY_ORDER)})")
    gen.add_argument(
        "--policies", nargs="+", choices=sorted(POLICIES),
        default=list(GEN_POLICIES), metavar="POLICY",
        help="mapping policies to compare "
             f"(default: {' '.join(GEN_POLICIES)})")
    gen.add_argument(
        "--cores", type=_positive_int, default=8,
        help="provisioned platform width (default: 8)")
    _add_duration(gen, f"{GEN_DURATION_S:g} s")
    gen.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the deterministic exploration artifact here")
    _add_metrics(gen)

    cover = commands.add_parser(
        "cover", help="run the coverage-driven workload fuzz loop")
    cover.add_argument(
        "--seed", type=int, default=COVER_SEED,
        help=f"campaign seed (default: {COVER_SEED})")
    cover.add_argument(
        "--budget", type=_positive_int, default=COVER_BUDGET,
        help=f"maximum fuzz attempts (default: {COVER_BUDGET})")
    cover.add_argument(
        "--saturation", type=_positive_int, default=COVER_SATURATION,
        help="stop after this many attempts with no new bin "
             f"(default: {COVER_SATURATION})")
    cover.add_argument(
        "--policies", nargs="+", choices=sorted(POLICIES),
        default=list(COVER_POLICIES), metavar="POLICY",
        help="mapping policies screened per app "
             f"(default: {' '.join(COVER_POLICIES)})")
    cover.add_argument(
        "--cores", type=_positive_int, default=COVER_CORES,
        help=f"provisioned platform width (default: {COVER_CORES})")
    _add_duration(cover, f"{COVER_DURATION_S:g} s per exact point")
    cover.add_argument(
        "--random", action="store_true",
        help="blind baseline: same budget, no coverage targeting")
    cover.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the deterministic repro-cover/1 artifact here")
    _add_metrics(cover)

    search = commands.add_parser(
        "search", help="search generated apps for better placements")
    search.add_argument(
        "--seed", type=int, default=SEARCH_SEED,
        help=f"suite seed (default: {SEARCH_SEED})")
    search.add_argument(
        "--count", type=_positive_int, default=SEARCH_COUNT,
        help=f"generated applications (default: {SEARCH_COUNT})")
    search.add_argument(
        "--families", nargs="+", choices=list(FAMILY_ORDER),
        default=None, metavar="FAMILY",
        help="topology families to cycle through "
             f"(default: all of {', '.join(FAMILY_ORDER)})")
    search.add_argument(
        "--algorithm", choices=list(ALGORITHMS),
        default=SEARCH_ALGORITHM,
        help=f"search algorithm (default: {SEARCH_ALGORITHM})")
    search.add_argument(
        "--cost", choices=list(ORACLE_KINDS), default=SEARCH_COST,
        help=f"cost oracle to minimise (default: {SEARCH_COST})")
    search.add_argument(
        "--iterations", type=_positive_int,
        default=SEARCH_CLI_ITERATIONS,
        help=f"proposals per app (default: {SEARCH_CLI_ITERATIONS})")
    search.add_argument(
        "--cores", type=_positive_int, default=8,
        help="provisioned platform width (default: 8)")
    _add_duration(search, f"{SEARCH_DURATION_S:g} s per oracle call")
    search.add_argument(
        "--oracle", choices=list(SEARCH_ORACLES), default="exact",
        help="evaluation mode: exact simulates every proposal, "
             "two-tier screens analytically and simulates only the "
             "top-k survivors (default: exact)")
    search.add_argument(
        "--top-k", type=int, default=SEARCH_TOP_K, metavar="K",
        help="exact verifications per two-tier walk "
             f"(default: {SEARCH_TOP_K})")
    search.add_argument(
        "--screen-budget", type=int, default=SEARCH_SCREEN_BUDGET,
        metavar="N",
        help="analytic proposals per two-tier walk "
             f"(default: {SEARCH_SCREEN_BUDGET})")
    search.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the deterministic repro-search/1 artifact here "
             "(repro-search/2 with --oracle two-tier)")
    _add_metrics(search)
    return parser


def _run_sweep_command(args: argparse.Namespace) -> str:
    if args.list:
        return "\n".join(
            f"{name:<12} {SPECS[name].description}"
            for name in sorted(SPECS))
    if args.spec_file is not None:
        with open(args.spec_file, encoding="utf-8") as handle:
            spec = spec_from_mapping(json.load(handle))
    else:
        spec = get_spec(args.spec)
    cache = None
    if not args.no_cache and args.cache_dir is not None:
        cache = ResultCache(root=args.cache_dir)
    result = run_sweep(spec, workers=args.workers, cache=cache,
                       use_cache=not args.no_cache, force=args.force)
    if args.json is not None:
        write_bench_json(result, args.json)
    if args.csv is not None:
        write_csv(result, args.csv)
    return render_sweep(result)


def _dispatch(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> int:
    """Run the parsed experiment and print its report."""
    experiment = args.experiment

    if experiment == "sweep":
        print(_run_sweep_command(args))
        return 0

    if experiment == "gen":
        report = run_gen(
            seed=args.seed,
            count=args.count,
            families=tuple(args.families) if args.families else None,
            policies=tuple(args.policies),
            num_cores=args.cores,
            duration_s=args.duration if args.duration is not None
            else GEN_DURATION_S)
        if args.json is not None:
            write_gen_json(report, args.json)
        print(render_gen(report))
        return 0

    if experiment == "cover":
        report = run_cover(
            seed=args.seed,
            budget=args.budget,
            saturation=args.saturation,
            policies=tuple(args.policies),
            num_cores=args.cores,
            duration_s=args.duration if args.duration is not None
            else COVER_DURATION_S,
            targeted=not args.random)
        if args.json is not None:
            write_cover_json(report, args.json)
        print(render_cover(report))
        return 0

    if experiment == "search":
        report = run_search(
            seed=args.seed,
            count=args.count,
            families=tuple(args.families) if args.families else None,
            algorithm=args.algorithm,
            cost=args.cost,
            iterations=args.iterations,
            num_cores=args.cores,
            duration_s=args.duration if args.duration is not None
            else SEARCH_DURATION_S,
            oracle=args.oracle,
            top_k=args.top_k,
            screen_budget=args.screen_budget)
        if args.json is not None:
            write_search_json(report, args.json)
        print(render_search(report))
        return 0

    duration = getattr(args, "duration", None)
    paper_duration = DURATION_S if duration is None else duration
    sections: list[str] = []
    if experiment in ("table1", "all"):
        sections.append(render_table1(run_table1(paper_duration)))
    if experiment in ("fig6", "all"):
        sections.append(render_fig6(run_fig6(paper_duration)))
    if experiment in ("fig7", "all"):
        sections.append(render_fig7(run_fig7(
            duration_s=paper_duration)))
    if experiment in ("ablations", "all"):
        sections.append(render_ablations(run_all_ablations(
            paper_duration)))
    if experiment in ("net", "all"):
        net_duration = NET_DURATION_S if duration is None else duration
        tiers = getattr(args, "tiers", None)
        streaming = getattr(args, "stream", False) or any(
            getattr(args, name, None) is not None
            for name in ("wave", "checkpoint_dir", "max_waves"))
        if tiers is None and streaming:
            parser.error(
                "--stream/--wave/--checkpoint-dir/--max-waves need "
                "--tiers")
        if tiers is not None:
            flat = [flag for flag, value in (
                ("--scenario", args.scenario),
                ("--nodes", args.nodes),
                ("--protocol", args.protocol),
                ("--suite-seed", getattr(args, "suite_seed", None)),
                ("--suite-count", getattr(args, "suite_count", None)),
                ("--families", getattr(args, "families", None)),
                ("--policy", getattr(args, "policy", None)),
            ) if value is not None]
            if flat:
                parser.error(
                    f"--tiers conflicts with {', '.join(flat)}")
            wave = args.wave if args.wave is not None else (
                DEFAULT_WAVE_SUBTREES if streaming else None)
            result = run_streaming(
                tiers, duration_s=net_duration, seed=args.seed,
                workers=args.workers, wave_size=wave,
                checkpoint_dir=args.checkpoint_dir,
                max_waves=args.max_waves,
                compute=getattr(args, "compute", None),
                compute_cache=getattr(args, "compute_cache", None))
            if args.json is not None and result.completed:
                write_hierarchy_json(result, args.json)
            sections.append(render_hierarchy(result))
            print("\n\n".join(sections))
            return 0
        net_families = getattr(args, "families", None)
        report = run_net(
            scenario=args.scenario or "drifting-wearables",
            n_nodes=args.nodes,
            duration_s=net_duration, protocol=args.protocol,
            workers=args.workers,
            seed=args.seed,
            suite_seed=getattr(args, "suite_seed", None),
            suite_count=getattr(args, "suite_count", None),
            families=tuple(net_families) if net_families else None,
            policy=getattr(args, "policy", None),
            compute=getattr(args, "compute", None),
            compute_cache=getattr(args, "compute_cache", None))
        if getattr(args, "json", None) is not None:
            write_net_json(report, args.json)
        sections.append(render_net(report))
    print("\n\n".join(sections))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, run the experiment, optionally emit metrics.

    Without ``--metrics`` no collector is activated, so the run pays
    nothing for instrumentation.  With it, the whole experiment runs
    under one :func:`repro.obs.collecting` registry; the metrics table
    is printed after the report and, when a PATH was given, the
    ``repro-metrics/1`` artifact is written there.
    """
    parser = _build_parser()
    args = parser.parse_args(argv)
    metrics = getattr(args, "metrics", None)
    try:
        if metrics is None:
            return _dispatch(parser, args)
        with obs.collecting() as registry:
            status = _dispatch(parser, args)
    except (ValueError, OSError) as exc:
        # Usage errors — malformed tokens, unknown presets/policies,
        # unreadable artifact paths — are the operator's problem, not
        # a crash: one line on stderr and the argparse exit code.
        message = str(exc).splitlines()[0] if str(exc) else \
            type(exc).__name__
        print(f"{parser.prog}: error: {message}", file=sys.stderr)
        return 2
    print()
    print(obs.render_metrics(registry))
    if metrics:
        obs.write_metrics_json(registry, metrics,
                               experiment=args.experiment)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
