"""Ablation studies (DESIGN.md ABL-1..4).

The paper attributes its gains to specific mechanisms; these ablations
isolate each one:

* **ABL-1 broadcast**: multi-core 3L-MF with and without instruction
  broadcasting (the crossbar modification of Sec. IV-A) — isolates the
  lock-step dividend.
* **ABL-2 VFS**: RP-CLASS at 0 % pathology, multi-core at the scaled
  voltage vs. pinned at the baseline's voltage — isolates the
  "17 % savings ... due to voltage-frequency scaling" of Sec. V-C.
* **ABL-3 sleep**: the Fig. 6 strawman over all benchmarks —
  clock-gating (SLEEP) vs. active waiting.
* **ABL-4 lock-step recovery**: 3L-MF with the alignment the
  SINC/SDEC recovery sustains vs. alignment decayed to zero (no
  recovery after data-dependent branches, as without [8]).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..apps import three_lead_mf
from ..apps.phases import AppSpec
from ..power.energy import compute_power
from ..power.vfs import OperatingPoint
from ..sysc.engine import Mode, simulate
from .runconfig import DURATION_S, benchmark_cases, rp_case


@dataclass(frozen=True)
class AblationResult:
    """Outcome of one ablation.

    Attributes:
        name: ablation identifier (ABL-1..4).
        description: what was toggled.
        with_feature_uw: average power with the mechanism enabled.
        without_feature_uw: average power with it disabled.
    """

    name: str
    description: str
    with_feature_uw: float
    without_feature_uw: float

    @property
    def penalty_fraction(self) -> float:
        """Relative power increase when the mechanism is removed."""
        if self.with_feature_uw == 0:
            return 0.0
        return (self.without_feature_uw - self.with_feature_uw) \
            / self.with_feature_uw


def _without_alignment(app: AppSpec) -> AppSpec:
    """Copy of an application with lock-step alignment zeroed."""
    phases = [dataclasses.replace(phase, lockstep_alignment=0.0)
              for phase in app.phases]
    clone = AppSpec(name=app.name, fs=app.fs, phases=phases,
                    channels=list(app.channels),
                    runtime_words=app.runtime_words,
                    beat_span_samples=app.beat_span_samples,
                    description=app.description)
    return clone


def ablate_broadcast(duration_s: float = DURATION_S) -> AblationResult:
    """ABL-1: instruction broadcast on 3L-MF (on vs. off)."""
    app = three_lead_mf()
    schedule: list = []
    with_bcast = simulate(app, Mode.MULTI_CORE, schedule,
                          duration_s=duration_s)
    without = simulate(_without_alignment(app), Mode.MULTI_CORE, schedule,
                       duration_s=duration_s)
    return AblationResult(
        name="ABL-1",
        description="instruction broadcasting (3L-MF, multi-core)",
        with_feature_uw=with_bcast.power.total_uw,
        without_feature_uw=without.power.total_uw)


def ablate_vfs(duration_s: float = DURATION_S) -> AblationResult:
    """ABL-2: voltage scaling on RP-CLASS at 0 % pathology."""
    case = rp_case(0.0, duration_s)
    scaled = simulate(case.app, Mode.MULTI_CORE, case.schedule,
                      duration_s=duration_s)
    # Re-price the same activity at the baseline's voltage (no VFS).
    pinned_point = OperatingPoint(
        frequency_mhz=scaled.operating_point.frequency_mhz, voltage=0.6)
    pinned = compute_power(scaled.activity, pinned_point, multicore=True)
    return AblationResult(
        name="ABL-2",
        description="voltage scaling (RP-CLASS, 0 % pathology, "
                    "0.5 V vs. 0.6 V)",
        with_feature_uw=scaled.power.total_uw,
        without_feature_uw=pinned.total_uw)


def ablate_sleep(duration_s: float = DURATION_S) -> list[AblationResult]:
    """ABL-3: SLEEP clock-gating vs. active waiting, all benchmarks."""
    results = []
    for case in benchmark_cases(duration_s):
        gated = simulate(case.app, Mode.MULTI_CORE, case.schedule,
                         duration_s=duration_s)
        spinning = simulate(case.app, Mode.MULTI_CORE_NO_SYNC,
                            case.schedule, duration_s=duration_s)
        results.append(AblationResult(
            name="ABL-3",
            description=f"clock-gating vs. active waiting "
                        f"({case.app.name})",
            with_feature_uw=gated.power.total_uw,
            without_feature_uw=spinning.power.total_uw))
    return results


def ablate_lockstep_recovery(duration_s: float = DURATION_S
                             ) -> AblationResult:
    """ABL-4: lock-step recovery after data-dependent branches.

    Without the SINC/SDEC recovery of [8], cores drift apart at the
    first data-dependent branch and stay apart: alignment collapses,
    and with it the broadcast dividend (but clock-gating remains).
    """
    app = three_lead_mf()
    schedule: list = []
    with_recovery = simulate(app, Mode.MULTI_CORE, schedule,
                             duration_s=duration_s)
    drifted = simulate(_without_alignment(app), Mode.MULTI_CORE, schedule,
                       duration_s=duration_s)
    return AblationResult(
        name="ABL-4",
        description="lock-step recovery across data-dependent "
                    "branches (3L-MF)",
        with_feature_uw=with_recovery.power.total_uw,
        without_feature_uw=drifted.power.total_uw)


def run_all_ablations(duration_s: float = DURATION_S
                      ) -> list[AblationResult]:
    """Run ABL-1..4 and return all results."""
    results = [ablate_broadcast(duration_s), ablate_vfs(duration_s)]
    results.extend(ablate_sleep(duration_s))
    results.append(ablate_lockstep_recovery(duration_s))
    return results
