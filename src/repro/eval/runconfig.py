"""Shared experiment configuration (Sec. IV of the paper).

All experiments simulate 60 s of multi-lead ECG at 250 Hz: a healthy
CSE-like subject for 3L-MF and 3L-MMD, and a record with a configurable
fraction of uniformly distributed pathological beats for RP-CLASS
(Table I uses 20 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps import AppSpec, rp_class, three_lead_mf, three_lead_mmd
from ..sysc.engine import BeatEvent, uniform_schedule

#: Simulated time span (Sec. IV-C: "60 seconds for all the experiments").
DURATION_S = 60.0

#: Sampling rate of the synthetic CSE-substitute records.
FS = 250.0

#: Mean heart rate of the synthetic subject.
HEART_RATE_BPM = 72.0

#: Pathological-beat ratio of the Table I RP-CLASS run (Sec. IV-D).
TABLE1_PATHOLOGICAL_RATIO = 0.20

#: Ratios swept by Fig. 7 (Sec. V-C).
FIG7_RATIOS = (0.0, 0.10, 0.20, 0.25, 0.33, 0.50, 1.00)


@dataclass(frozen=True)
class BenchmarkCase:
    """One benchmark application plus its input schedule."""

    app: AppSpec
    schedule: list[BeatEvent]
    pathological_ratio: float


def benchmark_cases(duration_s: float = DURATION_S) -> list[BenchmarkCase]:
    """The three Table I benchmark cases, in paper order."""
    healthy = uniform_schedule(duration_s, FS, bpm=HEART_RATE_BPM,
                               abnormal_ratio=0.0)
    pathological = uniform_schedule(
        duration_s, FS, bpm=HEART_RATE_BPM,
        abnormal_ratio=TABLE1_PATHOLOGICAL_RATIO)
    return [
        BenchmarkCase(app=three_lead_mf(), schedule=list(healthy),
                      pathological_ratio=0.0),
        BenchmarkCase(app=three_lead_mmd(), schedule=list(healthy),
                      pathological_ratio=0.0),
        BenchmarkCase(app=rp_class(TABLE1_PATHOLOGICAL_RATIO),
                      schedule=list(pathological),
                      pathological_ratio=TABLE1_PATHOLOGICAL_RATIO),
    ]


def rp_case(ratio: float, duration_s: float = DURATION_S) -> BenchmarkCase:
    """An RP-CLASS case at an arbitrary pathological ratio (Fig. 7)."""
    return BenchmarkCase(
        app=rp_class(ratio),
        schedule=uniform_schedule(duration_s, FS, bpm=HEART_RATE_BPM,
                                  abnormal_ratio=ratio),
        pathological_ratio=ratio)
