"""EXP-SEARCH: how far from optimal is the paper's placement?

A seeded suite of synthetic applications (:mod:`repro.gen`) runs
through the stochastic placement search (:mod:`repro.search`); every
app reports the paper-policy cost, the best-found cost and the gap
between them (>= 0 by construction — the paper's placement seeds the
walk whenever it is feasible).

The JSON artifact (:func:`search_payload`, schema ``repro-search/1``)
contains *only* deterministic fields — identities, search parameters,
costs, canonical best candidates, aggregate summaries — never
wall-clock timing, so two runs of the same configuration produce
byte-identical files (the CLI acceptance check).

Campaigns can also run on the two-tier oracle
(:mod:`repro.oracle`): proposals are screened by the vectorised
analytic model and only the top-k survivors are simulated.  Those
reports serialise under schema ``repro-search/2``, which extends the
v1 document with screen statistics and the calibration error
percentiles of the analytic model; exact campaigns keep emitting v1
byte-identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..gen.explorer import STATUS_OK, STATUS_REJECTED, STATUS_REPAIRED
from ..gen.generator import app_from_token, derive_seed, suite_tokens
from ..gen.topology import FAMILY_ORDER
from ..search import (
    ORACLE_DURATION_S,
    SearchOutcome,
    outcome_to_mapping,
    search_token,
)
from .aggregates import summary_stats

#: Schema tag of search artifacts (bump on incompatible changes).
SEARCH_SCHEMA = "repro-search/1"

#: Schema tag of two-tier campaigns (v1 + screen stats +
#: calibration error percentiles).
SEARCH_SCHEMA_V2 = "repro-search/2"

#: Evaluation modes ``python -m repro.eval search`` accepts.
SEARCH_ORACLES = ("exact", "two-tier")

#: Defaults of ``python -m repro.eval search`` (the built-in
#: campaign: one balanced suite, annealed on the power oracle).
SEARCH_SEED = 7
SEARCH_COUNT = 6
SEARCH_ALGORITHM = "anneal"
SEARCH_COST = "power"
SEARCH_CLI_ITERATIONS = 40
SEARCH_DURATION_S = ORACLE_DURATION_S

#: Two-tier defaults (mirroring :mod:`repro.oracle`): exact
#: verifications per walk, and the analytic proposal budget that
#: replaces ``iterations`` when screening.
SEARCH_TOP_K = 4
SEARCH_SCREEN_BUDGET = 160


@dataclass(frozen=True)
class SearchReport:
    """Outcome of one placement-search campaign.

    Attributes:
        seed: suite seed (also mixed into every walk seed).
        count: generated applications searched.
        families: family cycle of the suite.
        algorithm: search algorithm applied.
        cost: cost-oracle kind minimised.
        iterations: proposal budget per app.
        num_cores: provisioned platform width.
        duration_s: simulated seconds per oracle call.
        outcomes: per-app search outcomes, suite order.
        oracle: evaluation mode (``exact`` or ``two-tier``).
        top_k: exact verifications per walk (two-tier only, else 0).
        screen_budget: analytic proposal budget per walk (two-tier
            only, else 0).
        calibration: analytic-vs-exact calibration block (see
            :func:`repro.oracle.calibration_payload`; ``None`` for
            exact campaigns).
    """

    seed: int
    count: int
    families: tuple[str, ...]
    algorithm: str
    cost: str
    iterations: int
    num_cores: int
    duration_s: float
    outcomes: tuple[SearchOutcome, ...]
    oracle: str = "exact"
    top_k: int = 0
    screen_budget: int = 0
    calibration: dict | None = None

    def counts(self) -> dict[str, int]:
        """How many searches landed in each placement status."""
        counts = {STATUS_OK: 0, STATUS_REPAIRED: 0, STATUS_REJECTED: 0}
        for outcome in self.outcomes:
            counts[outcome.status] += 1
        return counts

    def gap_summary(self) -> dict[str, float]:
        """Aggregate gap statistics over the placed apps."""
        return summary_stats([outcome.gap for outcome in self.outcomes
                              if outcome.status != STATUS_REJECTED])

    def screen_summary(self) -> dict[str, int]:
        """Campaign-wide screen statistics (two-tier campaigns)."""
        placed = [outcome for outcome in self.outcomes
                  if outcome.status != STATUS_REJECTED]
        return {
            "screened": sum(o.screened for o in placed),
            "simulated": sum(o.evaluations for o in placed),
            "agreed": sum(1 for o in placed if o.screen_agreement),
            "placed": len(placed),
        }


def run_search(seed: int = SEARCH_SEED, count: int = SEARCH_COUNT,
               families: tuple[str, ...] | None = None,
               algorithm: str = SEARCH_ALGORITHM,
               cost: str = SEARCH_COST,
               iterations: int = SEARCH_CLI_ITERATIONS,
               num_cores: int = 8,
               duration_s: float = SEARCH_DURATION_S,
               oracle: str = "exact",
               top_k: int = SEARCH_TOP_K,
               screen_budget: int = SEARCH_SCREEN_BUDGET
               ) -> SearchReport:
    """Generate a suite and search every app's placement space.

    Each app's walk seed derives from ``(suite seed, token,
    algorithm, cost)``, so campaigns reproduce byte-identically while
    apps draw independent walks.  Walk seeds are derived the same way
    for both oracles, so an exact and a two-tier campaign of the same
    configuration are directly comparable.

    Args (beyond the obvious campaign parameters):
        oracle: ``exact`` simulates every proposal; ``two-tier``
            screens ``screen_budget`` proposals per walk analytically
            and simulates only the ``top_k`` survivors (plus the
            start), then appends a calibration block cross-checking
            the analytic model on the suite's own apps.
        top_k: exact verifications per two-tier walk.
        screen_budget: analytic proposal budget per two-tier walk
            (replaces ``iterations`` for the walk itself).

    Raises:
        ValueError: unknown family/algorithm/cost/oracle, bad count,
            ``top_k`` < 1, or ``screen_budget`` < ``top_k``.
    """
    if oracle not in SEARCH_ORACLES:
        raise ValueError(
            f"unknown oracle {oracle!r}; choose from "
            f"{list(SEARCH_ORACLES)}")
    if top_k < 1:
        raise ValueError(f"top-k must be >= 1, got {top_k}")
    if screen_budget < top_k:
        raise ValueError(
            f"screen budget must be >= top-k, got "
            f"{screen_budget} < {top_k}")
    two_tier = oracle == "two-tier"
    backend = None
    walk_iterations = iterations
    if two_tier:
        from ..oracle import get_two_tier
        backend = get_two_tier(cost, duration_s, top_k=top_k,
                               screen_budget=screen_budget)
        walk_iterations = screen_budget
    tokens = suite_tokens(seed, count, families)
    outcomes = tuple(
        search_token(
            token, num_cores=num_cores, algorithm=algorithm, cost=cost,
            iterations=walk_iterations,
            seed=derive_seed(SEARCH_SCHEMA, seed, token, algorithm,
                             cost),
            duration_s=duration_s, oracle=backend)
        for token in tokens)
    calibration = None
    if two_tier:
        from ..oracle import calibrate, calibration_payload
        calibration = calibration_payload(calibrate(
            [app_from_token(token) for token in tokens], kind=cost,
            duration_s=duration_s, num_cores=num_cores, seed=seed))
    return SearchReport(
        seed=seed,
        count=count,
        families=tuple(families) if families else FAMILY_ORDER,
        algorithm=algorithm,
        cost=cost,
        iterations=iterations,
        num_cores=num_cores,
        duration_s=duration_s,
        outcomes=outcomes,
        oracle=oracle,
        top_k=top_k if two_tier else 0,
        screen_budget=screen_budget if two_tier else 0,
        calibration=calibration,
    )


def search_payload(report: SearchReport) -> dict:
    """The deterministic JSON document of one search campaign.

    Exact campaigns serialise under ``repro-search/1`` exactly as
    before; two-tier campaigns under ``repro-search/2`` with the
    extra oracle parameters, per-outcome screen fields, the
    campaign-wide screen summary, and the calibration block.
    """
    two_tier = report.oracle == "two-tier"
    payload = {
        "schema": SEARCH_SCHEMA_V2 if two_tier else SEARCH_SCHEMA,
        "seed": report.seed,
        "count": report.count,
        "families": list(report.families),
        "algorithm": report.algorithm,
        "cost": report.cost,
        "iterations": report.iterations,
        "num_cores": report.num_cores,
        "duration_s": report.duration_s,
        "status_counts": report.counts(),
        "gap_summary": report.gap_summary(),
        "outcomes": [outcome_to_mapping(outcome, screen=two_tier)
                     for outcome in report.outcomes],
    }
    if two_tier:
        payload["oracle"] = report.oracle
        payload["top_k"] = report.top_k
        payload["screen_budget"] = report.screen_budget
        payload["screen_summary"] = report.screen_summary()
        payload["calibration"] = dict(report.calibration or {})
    return payload


def write_search_json(report: SearchReport, path: str | Path) -> Path:
    """Write the search artifact; returns its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(search_payload(report), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return path


__all__ = [
    "SEARCH_ALGORITHM",
    "SEARCH_CLI_ITERATIONS",
    "SEARCH_COST",
    "SEARCH_COUNT",
    "SEARCH_DURATION_S",
    "SEARCH_ORACLES",
    "SEARCH_SCHEMA",
    "SEARCH_SCHEMA_V2",
    "SEARCH_SCREEN_BUDGET",
    "SEARCH_SEED",
    "SEARCH_TOP_K",
    "SearchReport",
    "run_search",
    "search_payload",
    "write_search_json",
]
