"""EXP-SEARCH: how far from optimal is the paper's placement?

A seeded suite of synthetic applications (:mod:`repro.gen`) runs
through the stochastic placement search (:mod:`repro.search`); every
app reports the paper-policy cost, the best-found cost and the gap
between them (>= 0 by construction — the paper's placement seeds the
walk whenever it is feasible).

The JSON artifact (:func:`search_payload`, schema ``repro-search/1``)
contains *only* deterministic fields — identities, search parameters,
costs, canonical best candidates, aggregate summaries — never
wall-clock timing, so two runs of the same configuration produce
byte-identical files (the CLI acceptance check).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..gen.explorer import STATUS_OK, STATUS_REJECTED, STATUS_REPAIRED
from ..gen.generator import derive_seed, suite_tokens
from ..gen.topology import FAMILY_ORDER
from ..search import (
    ORACLE_DURATION_S,
    SearchOutcome,
    outcome_to_mapping,
    search_token,
)
from .aggregates import summary_stats

#: Schema tag of search artifacts (bump on incompatible changes).
SEARCH_SCHEMA = "repro-search/1"

#: Defaults of ``python -m repro.eval search`` (the built-in
#: campaign: one balanced suite, annealed on the power oracle).
SEARCH_SEED = 7
SEARCH_COUNT = 6
SEARCH_ALGORITHM = "anneal"
SEARCH_COST = "power"
SEARCH_CLI_ITERATIONS = 40
SEARCH_DURATION_S = ORACLE_DURATION_S


@dataclass(frozen=True)
class SearchReport:
    """Outcome of one placement-search campaign.

    Attributes:
        seed: suite seed (also mixed into every walk seed).
        count: generated applications searched.
        families: family cycle of the suite.
        algorithm: search algorithm applied.
        cost: cost-oracle kind minimised.
        iterations: proposal budget per app.
        num_cores: provisioned platform width.
        duration_s: simulated seconds per oracle call.
        outcomes: per-app search outcomes, suite order.
    """

    seed: int
    count: int
    families: tuple[str, ...]
    algorithm: str
    cost: str
    iterations: int
    num_cores: int
    duration_s: float
    outcomes: tuple[SearchOutcome, ...]

    def counts(self) -> dict[str, int]:
        """How many searches landed in each placement status."""
        counts = {STATUS_OK: 0, STATUS_REPAIRED: 0, STATUS_REJECTED: 0}
        for outcome in self.outcomes:
            counts[outcome.status] += 1
        return counts

    def gap_summary(self) -> dict[str, float]:
        """Aggregate gap statistics over the placed apps."""
        return summary_stats([outcome.gap for outcome in self.outcomes
                              if outcome.status != STATUS_REJECTED])


def run_search(seed: int = SEARCH_SEED, count: int = SEARCH_COUNT,
               families: tuple[str, ...] | None = None,
               algorithm: str = SEARCH_ALGORITHM,
               cost: str = SEARCH_COST,
               iterations: int = SEARCH_CLI_ITERATIONS,
               num_cores: int = 8,
               duration_s: float = SEARCH_DURATION_S) -> SearchReport:
    """Generate a suite and search every app's placement space.

    Each app's walk seed derives from ``(suite seed, token,
    algorithm, cost)``, so campaigns reproduce byte-identically while
    apps draw independent walks.

    Raises:
        ValueError: unknown family/algorithm/cost or bad count.
    """
    tokens = suite_tokens(seed, count, families)
    outcomes = tuple(
        search_token(
            token, num_cores=num_cores, algorithm=algorithm, cost=cost,
            iterations=iterations,
            seed=derive_seed(SEARCH_SCHEMA, seed, token, algorithm,
                             cost),
            duration_s=duration_s)
        for token in tokens)
    return SearchReport(
        seed=seed,
        count=count,
        families=tuple(families) if families else FAMILY_ORDER,
        algorithm=algorithm,
        cost=cost,
        iterations=iterations,
        num_cores=num_cores,
        duration_s=duration_s,
        outcomes=outcomes,
    )


def search_payload(report: SearchReport) -> dict:
    """The deterministic JSON document of one search campaign."""
    return {
        "schema": SEARCH_SCHEMA,
        "seed": report.seed,
        "count": report.count,
        "families": list(report.families),
        "algorithm": report.algorithm,
        "cost": report.cost,
        "iterations": report.iterations,
        "num_cores": report.num_cores,
        "duration_s": report.duration_s,
        "status_counts": report.counts(),
        "gap_summary": report.gap_summary(),
        "outcomes": [outcome_to_mapping(outcome)
                     for outcome in report.outcomes],
    }


def write_search_json(report: SearchReport, path: str | Path) -> Path:
    """Write the search artifact; returns its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(search_payload(report), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return path


__all__ = [
    "SEARCH_ALGORITHM",
    "SEARCH_CLI_ITERATIONS",
    "SEARCH_COST",
    "SEARCH_COUNT",
    "SEARCH_DURATION_S",
    "SEARCH_SCHEMA",
    "SEARCH_SEED",
    "SearchReport",
    "run_search",
    "search_payload",
    "write_search_json",
]
