"""Pluggable per-node application sources for fleet scenarios.

The paper evaluates its node on three fixed ECG benchmarks; fleet
scenarios originally hard-coded that choice as a weighted
``(benchmark name, weight)`` mix.  This module turns the application
binding into a first-class seam: a :class:`Scenario
<repro.net.scenarios.Scenario>` carries an **AppSource**, and
:func:`repro.net.node.build_node` asks it to *bind* one application
per node from the node's own seeded stream.  Three sources exist:

* :class:`BenchmarkSource` — the original behaviour, byte-compatible:
  one weighted draw from the Table I benchmark registry
  (:data:`APPS`), mapped by the paper's default placement.
* :class:`GeneratedSuiteSource` — each node draws a synthetic
  application from a :func:`repro.gen.generator.suite_tokens` suite
  and places it with a named mapping policy from
  :data:`repro.gen.policies.POLICIES` (including the stochastic
  ``search-greedy`` / ``search-anneal`` family).  Apps the policy
  cannot place after replica repair are skipped deterministically
  (the node advances through the suite until one maps).
* :class:`MixedSource` — a weighted union of other sources, for
  deployments where certified monitors run beside pilot devices.

A binding records everything downstream layers need: the (possibly
repaired) :class:`~repro.apps.phases.AppSpec`, its regeneration
token, topology family, mapping policy, the simulator-ready
:class:`~repro.apps.mapping.MappingPlan` and the per-app clock floor
from :func:`repro.apps.mapping.plan_required_mhz` — so heterogeneous
fleets pay the *correct per-node* power instead of a fleet-wide
average.  Sources are frozen dataclasses: hashable, picklable (they
ride inside :class:`~repro.net.fleet.FleetConfig` to worker
processes) and serialisable through :meth:`to_mapping` /
:func:`source_from_mapping`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Callable, ClassVar

from .. import obs
from ..apps import rp_class, three_lead_mf, three_lead_mmd
from ..apps.mapping import MappingError, MappingPlan, plan_required_mhz
from ..apps.phases import AppSpec

#: Application registry: benchmark names -> AppSpec builders (every
#: builder takes the pathological-beat ratio; the fixed filtering
#: chains ignore it).
APPS: dict[str, Callable[[float], AppSpec]] = {
    "3L-MF": lambda ratio: three_lead_mf(),
    "3L-MMD": lambda ratio: three_lead_mmd(),
    "RP-CLASS": rp_class,
}

#: Source kinds (the value of ``FleetSummary.source``).
BENCHMARK_KIND = "benchmark"
GENERATED_KIND = "generated-suite"
MIXED_KIND = "mixed"


@dataclass(frozen=True)
class AppBinding:
    """One node's bound application, ready to simulate.

    Attributes:
        name: application name (benchmark or generated).
        app: the (possibly replica-repaired) application spec.
        token: regeneration token of a generated app ("" for
            benchmarks, which are code, not data).
        family: topology family of a generated app ("" for
            benchmarks).
        policy: mapping-policy name that produced ``plan`` ("" means
            the paper's default placement, derived inside the
            simulator).
        plan: precomputed mapping plan (None = paper default).
        floor_mhz: the placement's own clock requirement from
            :func:`repro.apps.mapping.plan_required_mhz` (0 when the
            paper default is derived downstream).
        repairs: replicas trimmed to fit the platform.
        skipped: suite entries the policy rejected before this app
            bound (generated sources only).
        num_cores: provisioned platform width the node simulates
            (the paper's 8 for benchmarks; generated sources carry
            their own so narrow/wide platforms pay correct power).
        app_key: precomputed content hash of ``(app, plan,
            num_cores)`` from :func:`repro.net.compute.app_plan_key`
            ("" = derive on demand); lets the compute resolver
            address shared work without re-fingerprinting per node.
    """

    name: str
    app: AppSpec
    token: str = ""
    family: str = ""
    policy: str = ""
    plan: MappingPlan | None = None
    floor_mhz: float = 0.0
    repairs: int = 0
    skipped: int = 0
    num_cores: int = 8
    app_key: str = ""


def binding_app_key(binding: AppBinding) -> str:
    """The binding's content hash (precomputed or derived)."""
    if binding.app_key:
        return binding.app_key
    from .compute import app_plan_key

    return app_plan_key(binding.app, binding.plan, binding.num_cores)


@lru_cache(maxsize=64)
def _benchmark_binding(name: str, abnormal_ratio: float) -> AppBinding:
    """Memoised benchmark binding.

    Bindings and their specs are frozen/read-only downstream, so
    every node drawing the same ``(benchmark, ratio)`` can share one
    instance instead of rebuilding the spec and its content hash.
    """
    from .compute import app_plan_key

    app = APPS[name](abnormal_ratio)
    return AppBinding(
        name=name, app=app, app_key=app_plan_key(app, None, 8)
    )


@dataclass(frozen=True)
class BenchmarkSource:
    """The paper's fixed benchmarks, drawn from a weighted mix.

    Byte-compatible with the original ``app_mix`` behaviour: binding
    consumes exactly one weighted draw from the node's app stream, so
    fleets built from a ``BenchmarkSource`` reproduce the historical
    per-node draws bit-for-bit.
    """

    kind: ClassVar[str] = BENCHMARK_KIND

    mix: tuple[tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.mix:
            raise ValueError("benchmark source needs a non-empty mix")
        for name, weight in self.mix:
            if name not in APPS:
                raise ValueError(
                    f"unknown benchmark {name!r}; choose from "
                    f"{sorted(APPS)}"
                )
            if weight <= 0:
                raise ValueError(f"benchmark {name!r} needs weight > 0")

    def bind(
        self, rng: random.Random, abnormal_ratio: float = 0.0
    ) -> AppBinding:
        """Draw one benchmark from the mix (one ``choices`` call)."""
        names = [name for name, _ in self.mix]
        weights = [weight for _, weight in self.mix]
        name = rng.choices(names, weights=weights)[0]
        return _benchmark_binding(name, abnormal_ratio)

    def universe(
        self, abnormal_ratio: float = 0.0
    ) -> tuple[AppBinding, ...]:
        """Every binding this source can produce (mix order)."""
        names: list[str] = []
        for name, _ in self.mix:
            if name not in names:
                names.append(name)
        return tuple(
            _benchmark_binding(name, abnormal_ratio) for name in names
        )

    def describe(self) -> str:
        """One-line human summary."""
        return "benchmarks " + "+".join(name for name, _ in self.mix)

    def to_mapping(self) -> dict:
        """JSON-ready form (inverse of :func:`source_from_mapping`)."""
        return {
            "kind": self.kind,
            "mix": [[name, weight] for name, weight in self.mix],
        }


@lru_cache(maxsize=512)
def _resolve_generated(
    token: str, policy_name: str, num_cores: int
) -> tuple[AppSpec, MappingPlan, int]:
    """Regenerate, repair and place one generated app (memoised).

    Pure function of its arguments (the search policies seed from the
    app's content fingerprint), so the per-process cache never
    changes results — it only keeps a fleet from re-running the same
    placement for every node that drew the same token.

    Metrics collection is suspended for the body: the memoised
    resolution (which may run a whole placement *search*) executes a
    process-dependent number of times, so only the deterministic
    per-draw counters in :meth:`GeneratedSuiteSource.bind` are
    recorded.

    Raises:
        repro.apps.mapping.MappingError: the policy cannot place the
            app even after replica repair.
        ValueError: malformed token or unknown policy.
    """
    from ..gen.explorer import repair_app
    from ..gen.generator import app_from_token
    from ..gen.policies import get_policy

    with obs.suspended():
        policy = get_policy(policy_name)
        app = app_from_token(token)
        repairs = 0
        if policy.multicore:
            app, repairs = repair_app(app, num_cores)
        plan = policy.map(app, num_cores)
        return app, plan, repairs


@lru_cache(maxsize=512)
def _generated_binding(
    token: str, policy_name: str, num_cores: int
) -> AppBinding:
    """Memoised skip-free binding for one generated draw.

    Pure function of its arguments (like :func:`_resolve_generated`,
    which it wraps); memoising it also stops fleets from re-running
    ``plan_required_mhz`` and the content hash once per node.

    Raises:
        repro.apps.mapping.MappingError: the policy cannot place the
            app even after replica repair.
    """
    from ..gen.generator import parse_app_token
    from .compute import app_plan_key

    app, plan, repairs = _resolve_generated(token, policy_name, num_cores)
    family, _, _, _ = parse_app_token(token)
    floor = plan_required_mhz(plan) if plan.multicore else 0.0
    return AppBinding(
        name=app.name,
        app=app,
        token=token,
        family=family,
        policy=policy_name,
        plan=plan,
        floor_mhz=floor,
        repairs=repairs,
        num_cores=num_cores,
        app_key=app_plan_key(app, plan, num_cores),
    )


@dataclass(frozen=True)
class GeneratedSuiteSource:
    """Nodes draw generated applications from one seeded suite.

    Attributes:
        seed: suite seed of :func:`repro.gen.generator.suite_tokens`.
        count: suite size (>= 1).
        families: family cycle; () means every family in
            :data:`repro.gen.topology.FAMILY_ORDER`.
        policy: mapping-policy name applied to every draw.
        num_cores: provisioned platform width of each node.
    """

    kind: ClassVar[str] = GENERATED_KIND

    seed: int
    count: int
    families: tuple[str, ...] = ()
    policy: str = "balanced"
    num_cores: int = 8

    def __post_init__(self) -> None:
        from ..gen.policies import get_policy
        from ..gen.topology import require_family

        if self.count < 1:
            raise ValueError("generated suite needs at least one app")
        get_policy(self.policy)
        for family in self.families:
            require_family(family)

    def tokens(self) -> list[str]:
        """The suite's regeneration tokens."""
        from ..gen.generator import suite_tokens

        return suite_tokens(self.seed, self.count, self.families or None)

    def bind(
        self, rng: random.Random, abnormal_ratio: float = 0.0
    ) -> AppBinding:
        """Draw one placeable app (one ``randrange`` call).

        The node draws a suite index, then advances deterministically
        through the suite past any app the policy rejects, so every
        node runs *something* and the skip count is reported.

        Raises:
            repro.apps.mapping.MappingError: no app in the suite is
                placeable under the policy.
        """
        tokens = self.tokens()
        start = rng.randrange(self.count)
        errors: list[str] = []
        for offset in range(self.count):
            token = tokens[(start + offset) % self.count]
            try:
                binding = _generated_binding(
                    token, self.policy, self.num_cores
                )
            except MappingError as exc:
                errors.append(str(exc))
                continue
            obs.add("net.apps.resolved")
            if offset:
                obs.add("net.apps.skipped", offset)
                binding = replace(binding, skipped=offset)
            return binding
        raise MappingError(
            f"policy {self.policy!r} places no app of suite "
            f"(seed {self.seed}, count {self.count}): "
            + "; ".join(errors)
        )

    def universe(
        self, abnormal_ratio: float = 0.0
    ) -> tuple[AppBinding, ...]:
        """Every placeable binding of the suite, in suite order.

        Enumerable without any node draws — the compute resolver
        pre-resolves this closed set once per run instead of
        discovering bindings node by node.
        """
        bindings: list[AppBinding] = []
        for token in self.tokens():
            try:
                bindings.append(
                    _generated_binding(
                        token, self.policy, self.num_cores
                    )
                )
            except MappingError:
                continue
        return tuple(bindings)

    def describe(self) -> str:
        """One-line human summary."""
        families = "+".join(self.families) if self.families else "all"
        return (
            f"generated suite seed {self.seed} x{self.count} "
            f"({families}) via {self.policy}"
        )

    def to_mapping(self) -> dict:
        """JSON-ready form (inverse of :func:`source_from_mapping`)."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "count": self.count,
            "families": list(self.families),
            "policy": self.policy,
            "num_cores": self.num_cores,
        }


@dataclass(frozen=True)
class MixedSource:
    """A weighted union of other sources.

    Binding consumes one weighted part draw, then delegates to the
    chosen part — so a mixed fleet's benchmark nodes and generated
    nodes each keep their own deterministic draw discipline.
    """

    kind: ClassVar[str] = MIXED_KIND

    parts: tuple[tuple["AppSource", float], ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError("mixed source needs at least one part")
        for source, weight in self.parts:
            if not hasattr(source, "bind"):
                raise ValueError(
                    f"mixed-source part {source!r} is not an AppSource"
                )
            if weight <= 0:
                raise ValueError("mixed-source parts need weight > 0")

    def bind(
        self, rng: random.Random, abnormal_ratio: float = 0.0
    ) -> AppBinding:
        """Draw a part, then delegate the app draw to it."""
        sources = [source for source, _ in self.parts]
        weights = [weight for _, weight in self.parts]
        chosen = rng.choices(sources, weights=weights)[0]
        return chosen.bind(rng, abnormal_ratio)

    def universe(
        self, abnormal_ratio: float = 0.0
    ) -> tuple[AppBinding, ...]:
        """Union of the parts' universes (duplicates are fine — the
        compute resolver dedupes by content key)."""
        bindings: list[AppBinding] = []
        for source, _ in self.parts:
            bindings.extend(source.universe(abnormal_ratio))
        return tuple(bindings)

    def describe(self) -> str:
        """One-line human summary."""
        return " | ".join(source.describe() for source, _ in self.parts)

    def to_mapping(self) -> dict:
        """JSON-ready form (inverse of :func:`source_from_mapping`)."""
        return {
            "kind": self.kind,
            "parts": [
                [source.to_mapping(), weight]
                for source, weight in self.parts
            ],
        }


#: Union type of every source implementation.
AppSource = BenchmarkSource | GeneratedSuiteSource | MixedSource


def source_from_mapping(data: dict) -> AppSource:
    """Rebuild an app source from its :meth:`to_mapping` form.

    Raises:
        ValueError: unknown kind or malformed mapping.
    """
    kind = data.get("kind")
    if kind == BENCHMARK_KIND:
        return BenchmarkSource(
            mix=tuple(
                (str(name), float(weight)) for name, weight in data["mix"]
            )
        )
    if kind == GENERATED_KIND:
        return GeneratedSuiteSource(
            seed=int(data["seed"]),
            count=int(data["count"]),
            families=tuple(data.get("families", ())),
            policy=str(data.get("policy", "balanced")),
            num_cores=int(data.get("num_cores", 8)),
        )
    if kind == MIXED_KIND:
        return MixedSource(
            parts=tuple(
                (source_from_mapping(part), float(weight))
                for part, weight in data["parts"]
            )
        )
    raise ValueError(
        f"unknown app-source kind {kind!r}; choose from "
        f"{[BENCHMARK_KIND, GENERATED_KIND, MIXED_KIND]}"
    )


__all__ = [
    "APPS",
    "AppBinding",
    "AppSource",
    "BENCHMARK_KIND",
    "BenchmarkSource",
    "GENERATED_KIND",
    "GeneratedSuiteSource",
    "MIXED_KIND",
    "MixedSource",
    "binding_app_key",
    "source_from_mapping",
]
