"""Checkpointed bounded-memory execution of hierarchical fleets.

:class:`~repro.net.fleet.FleetRunner` holds one ``NodeResult`` per
node — fine at fleet sizes in the hundreds, fatal at the 10k–1M nodes
hierarchies are sized for.  :class:`StreamingRunner` never does: the
unit of work is one *tier-0 subtree* (a gateway and everything under
it), each subtree folds down to a few :class:`~repro.net.stats
.SyncError` aggregates per tier inside the worker, and subtrees are
dispatched in bounded *waves* whose results merge into the running
per-tier state in subtree-index order.  Peak memory is therefore a
function of the wave size, never of the fleet size.

**Determinism.**  Every node's draws come from its hierarchy *path*
(:func:`repro.net.hierarchy._stream`), and partial states fold
per subtree in index order, so the final summary is bit-identical
across worker counts, wave sizes and interruptions.

**Checkpointing.**  With a checkpoint directory configured, the
runner persists its partial merge after every completed wave to a
content-addressed state file (the file name hashes the run identity:
schema, spec token, seed, duration).  A later run with the same
identity resumes from the recorded subtree index and — because the
fold sequence is the same one a cold run performs — produces a
byte-identical artifact.  Stale or corrupt state files are ignored,
never trusted.

When metrics collection is active (:mod:`repro.obs`), the checkpoint
additionally persists the *counter delta* this run accumulated past
the per-run preamble (root build, schedule precompute), so a resumed
``--metrics`` run merges the killed run's counters back in and its
deterministic sections come out byte-identical to a cold run's.
Checkpoint write/load bookkeeping itself is recorded as timings only
(cold and resumed runs necessarily differ there).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from dataclasses import asdict, dataclass, field
from pathlib import Path

from .. import obs
from ..parallel import pool_map
from .compute import (
    ComputeResolver,
    ComputeSettings,
    ComputeSummary,
    compute_settings,
    record_compute_counters,
)
from .fleet import DEFAULT_DURATION_S, DEFAULT_SEED
from .hierarchy import (
    HierarchySpec,
    ROOT_PATH,
    _stream,
    binding_power_uw,
    build_member,
    compose_errors,
    hierarchy_token,
    hop_error_samples,
    parse_hierarchy,
    profile_table,
)
from .node import ERROR_SAMPLE_HZ
from .radio import RadioEnergy, beacon_schedule, receive_beacons
from .stats import FleetSummary, SyncError, TierSummary

__all__ = [
    "CHECKPOINT_SCHEMA",
    "DEFAULT_WAVE_SUBTREES",
    "HierarchyResult",
    "StreamingConfig",
    "StreamingRunner",
    "run_streaming",
]

#: Schema tag of the on-disk checkpoint state file.
CHECKPOINT_SCHEMA = "repro-net-checkpoint/1"

#: Default wave size (tier-0 subtrees per wave) of streaming runs.
DEFAULT_WAVE_SUBTREES = 32

#: Names of the :class:`_TierState` fields holding error aggregates.
_ERROR_FIELDS = (
    "hop_sync",
    "steady_hop_sync",
    "sync",
    "steady_sync",
    "unsync",
    "steady_unsync",
)


@dataclass
class _TierState:
    """Running partial merge of one tier (the checkpointed unit).

    Scalars add; error aggregates recombine exactly through
    :meth:`SyncError.merged`.  All floats survive the JSON checkpoint
    round-trip bit-exactly (shortest-repr serialisation), which is
    what makes resumed runs byte-identical to cold ones.
    """

    nodes: int = 0
    power_sum_uw: float = 0.0
    radio_sum_uw: float = 0.0
    floor_sum_mhz: float = 0.0
    repairs: int = 0
    resets: int = 0
    beacons_sent: int = 0
    beacons_heard: int = 0
    hop_sync: SyncError = field(default_factory=SyncError)
    steady_hop_sync: SyncError = field(default_factory=SyncError)
    sync: SyncError = field(default_factory=SyncError)
    steady_sync: SyncError = field(default_factory=SyncError)
    unsync: SyncError = field(default_factory=SyncError)
    steady_unsync: SyncError = field(default_factory=SyncError)

    def fold(self, other: "_TierState") -> None:
        """Merge another partial state into this one, in place."""
        self.nodes += other.nodes
        self.power_sum_uw += other.power_sum_uw
        self.radio_sum_uw += other.radio_sum_uw
        self.floor_sum_mhz += other.floor_sum_mhz
        self.repairs += other.repairs
        self.resets += other.resets
        self.beacons_sent += other.beacons_sent
        self.beacons_heard += other.beacons_heard
        for name in _ERROR_FIELDS:
            merged = SyncError.merged(
                [getattr(self, name), getattr(other, name)]
            )
            setattr(self, name, merged)

    def add_node(
        self,
        hop: list[float],
        base_hop: list[float],
        eff: list[float],
        base_eff: list[float],
        steady_index: int,
    ) -> None:
        """Fold one member's signed error series into the state."""
        series = {
            "hop_sync": hop,
            "steady_hop_sync": hop[steady_index:],
            "sync": eff,
            "steady_sync": eff[steady_index:],
            "unsync": base_eff,
            "steady_unsync": base_eff[steady_index:],
        }
        for name in _ERROR_FIELDS:
            merged = SyncError.merged(
                [getattr(self, name), SyncError.from_samples(series[name])]
            )
            setattr(self, name, merged)

    @classmethod
    def from_mapping(cls, data: dict) -> "_TierState":
        """Rebuild a state from its checkpoint mapping."""
        errors = {
            name: SyncError(**data[name]) for name in _ERROR_FIELDS
        }
        return cls(
            nodes=int(data["nodes"]),
            power_sum_uw=float(data["power_sum_uw"]),
            radio_sum_uw=float(data["radio_sum_uw"]),
            floor_sum_mhz=float(data["floor_sum_mhz"]),
            repairs=int(data["repairs"]),
            resets=int(data["resets"]),
            beacons_sent=int(data["beacons_sent"]),
            beacons_heard=int(data["beacons_heard"]),
            **errors,
        )


@dataclass(frozen=True)
class StreamingConfig:
    """Everything one streaming run needs.

    Attributes:
        spec: the hierarchy to simulate.
        duration_s: simulated seconds.
        seed: fleet seed feeding every node's named streams.
        wave_size: tier-0 subtrees simulated per wave (``None`` runs
            the whole fleet as one wave — still memory-bounded, but
            checkpointed only at the end).
        checkpoint_dir: directory of the content-addressed state
            file; ``None`` disables checkpointing.
        compute: app-compute resolution settings; when set, the
            source's profile universe is resolved once in the main
            process and waves ship the resulting lookup table (None
            = per-worker memoised simulation, the legacy path).
    """

    spec: HierarchySpec
    duration_s: float = DEFAULT_DURATION_S
    seed: int = DEFAULT_SEED
    wave_size: int | None = None
    checkpoint_dir: str | Path | None = None
    compute: ComputeSettings | None = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0.0:
            raise ValueError("duration must be positive")
        if self.wave_size is not None and self.wave_size < 1:
            raise ValueError("wave size must be >= 1")


@dataclass(frozen=True)
class HierarchyResult:
    """One streaming run's outcome.

    The deterministic portion (``summary`` and ``tiers``) is a pure
    function of (spec, seed, duration) — wall-clock figures, worker
    counts and resume bookkeeping live alongside it and never enter
    artifacts.

    Attributes:
        spec: the hierarchy that ran.
        token: round-trip token of the spec (its name when the spec
            has no token form).
        seed: fleet seed.
        duration_s: simulated seconds.
        wave_size: effective subtrees per wave.
        subtrees: total tier-0 subtrees of the spec.
        subtrees_done: subtrees folded into the state so far.
        resumed_subtrees: subtrees restored from a checkpoint instead
            of simulated by this run.
        waves: total waves a complete run needs.
        waves_run: waves this run executed.
        completed: whether the whole fleet is folded in.
        checkpoint: path of the state file ("" when disabled).
        summary: fleet-wide aggregate (partial if not completed).
        tiers: per-tier aggregates, backbone-adjacent first.
        elapsed_s: wall-clock seconds of this run.
        nodes_per_second: simulated nodes per wall-clock second of
            this run (resumed subtrees excluded).
        workers: worker processes used.
        mode: always ``"streaming"``.
        peak_rss_mb: peak resident set of this process, MiB (0 where
            :mod:`resource` is unavailable).
        compute: compute-resolution account over the profile
            universe (None = legacy per-worker memoisation).
    """

    spec: HierarchySpec
    token: str
    seed: int
    duration_s: float
    wave_size: int
    subtrees: int
    subtrees_done: int
    resumed_subtrees: int
    waves: int
    waves_run: int
    completed: bool
    checkpoint: str
    summary: FleetSummary
    tiers: tuple[TierSummary, ...]
    elapsed_s: float
    nodes_per_second: float
    workers: int
    mode: str
    peak_rss_mb: float
    compute: ComputeSummary | None = None


def _peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes there
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def _walk(
    spec: HierarchySpec,
    tier_index: int,
    path: str,
    seed: int,
    duration_s: float,
    beacons: list,
    parent_readings: list[float],
    parent_eff: list[float] | None,
    parent_base: list[float] | None,
    sample_times: list[float],
    steady_index: int,
    parts: list[_TierState],
    profiles: dict[tuple, float] | None = None,
) -> None:
    """Simulate one member and, depth-first, everything under it."""
    tier = spec.tiers[tier_index]
    binding, clock = build_member(spec, tier_index, path, seed, duration_s)
    receptions = receive_beacons(
        beacons, clock, spec.base.radio, _stream(seed, path, "radio")
    )
    hop, base_hop = hop_error_samples(
        tier.protocol, receptions, clock, sample_times, parent_readings
    )
    eff = compose_errors(hop, parent_eff)
    base_eff = compose_errors(base_hop, parent_base)

    energy = RadioEnergy()
    energy.rx_messages = len(receptions)
    last = tier_index == len(spec.tiers) - 1
    schedule: list = []
    if not last:
        child = spec.tiers[tier_index + 1]
        schedule = beacon_schedule(child.beacon_period_s, duration_s, clock)
        energy.tx_messages = len(schedule)
    radio_uw = energy.average_uw(spec.base.radio, duration_s)

    part = parts[tier_index]
    part.nodes += 1
    part.power_sum_uw += binding_power_uw(
        binding, spec.base, duration_s, profiles
    )
    part.power_sum_uw += radio_uw
    part.radio_sum_uw += radio_uw
    part.floor_sum_mhz += binding.floor_mhz
    part.repairs += binding.repairs
    part.resets += clock.resets_before(duration_s)
    part.beacons_heard += len(receptions)
    part.add_node(hop, base_hop, eff, base_eff, steady_index)

    if not last:
        parts[tier_index + 1].beacons_sent += len(schedule)
        readings = [clock.read(t) for t in sample_times]
        for child_index in range(spec.tiers[tier_index + 1].fan_out):
            _walk(
                spec,
                tier_index + 1,
                f"{path}.{child_index}",
                seed,
                duration_s,
                schedule,
                readings,
                eff,
                base_eff,
                sample_times,
                steady_index,
                parts,
                profiles,
            )


def _simulate_subtree(payload: tuple) -> list[_TierState]:
    """Fold one tier-0 subtree down to per-tier partial states.

    Top-level so worker processes can unpickle it; pure function of
    the payload, so inline and pooled execution are bit-identical.
    """
    (
        spec,
        seed,
        duration_s,
        index,
        beacons,
        sample_times,
        root_readings,
        steady_index,
        profiles,
    ) = payload
    parts = [_TierState() for _ in spec.tiers]
    _walk(
        spec,
        0,
        str(index),
        seed,
        duration_s,
        beacons,
        root_readings,
        None,
        None,
        sample_times,
        steady_index,
        parts,
        profiles,
    )
    return parts


class StreamingRunner:
    """Wave-by-wave executor of one hierarchical fleet."""

    def __init__(self, config: StreamingConfig) -> None:
        self.config = config

    def _identity(self, token: str) -> dict:
        """The run identity a checkpoint must match to be trusted."""
        return {
            "schema": CHECKPOINT_SCHEMA,
            "spec": token,
            "seed": self.config.seed,
            "duration_s": self.config.duration_s,
        }

    def _checkpoint_path(self, token: str) -> Path:
        """Content-addressed state-file path under the directory."""
        blob = json.dumps(self._identity(token), sort_keys=True)
        digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
        return Path(self.config.checkpoint_dir) / f"stream-{digest}.json"

    def _load(
        self, path: Path, token: str
    ) -> tuple[list[_TierState], int, dict | None] | None:
        """Restore a partial merge; ``None`` when absent or stale.

        The third element is the killed run's deterministic metrics
        delta (``None`` for checkpoints written without collection —
        the optional ``obs`` key keeps old state files loadable).
        """
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            if doc["identity"] != self._identity(token):
                return None
            tiers = doc["tiers"]
            if len(tiers) != len(self.config.spec.tiers):
                return None
            state = [_TierState.from_mapping(data) for data in tiers]
            done = int(doc["subtrees_done"])
            saved_obs = doc.get("obs")
            if saved_obs is not None and not isinstance(saved_obs, dict):
                return None
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if not 0 <= done <= self.config.spec.subtrees:
            return None
        return state, done, saved_obs

    def _write(
        self,
        path: Path,
        token: str,
        done: int,
        state: list[_TierState],
        obs_delta: dict | None = None,
    ) -> None:
        """Atomically persist the partial merge (tmp + rename)."""
        doc = {
            "identity": self._identity(token),
            "subtrees_done": done,
            "tiers": [asdict(part) for part in state],
        }
        if obs_delta is not None:
            doc["obs"] = obs_delta
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        tmp = path.with_suffix(".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)

    def run(
        self, workers: int = 1, max_waves: int | None = None
    ) -> HierarchyResult:
        """Execute (or resume) the fleet.

        Args:
            workers: worker processes per wave (1 = inline).
            max_waves: stop after this many waves even if subtrees
                remain — the knob CI's kill-and-resume check uses to
                interrupt a run at a deterministic point.
        """
        config = self.config
        spec = config.spec
        seed = config.seed
        duration_s = config.duration_s

        try:
            token = hierarchy_token(spec)
        except ValueError:
            if config.checkpoint_dir is not None:
                raise ValueError(
                    "checkpointing needs a token-serialisable "
                    "hierarchy (preset or tiers:/gen: bases)"
                ) from None
            token = spec.name

        root_binding, root_clock = build_member(
            spec, -1, ROOT_PATH, seed, duration_s
        )
        beacons: list = []
        if spec.tiers:
            beacons = beacon_schedule(
                spec.tiers[0].beacon_period_s, duration_s, root_clock
            )
        n_samples = int(duration_s * ERROR_SAMPLE_HZ)
        sample_times = [(i + 1) / ERROR_SAMPLE_HZ for i in range(n_samples)]
        root_readings = [root_clock.read(t) for t in sample_times]
        steady_from = duration_s / 2.0
        steady_index = next(
            (i for i, t in enumerate(sample_times) if t >= steady_from),
            n_samples,
        )

        profiles = None
        profile_summary = None
        if config.compute is not None:
            # Resolved once, in the main process, from the source's
            # closed binding universe — workers only ever look up.
            with obs.span("net.compute.resolve"):
                profiles, profile_summary = profile_table(
                    spec.base, duration_s, ComputeResolver(config.compute)
                )

        subtrees = spec.subtrees
        wave_size = config.wave_size or max(subtrees, 1)
        waves = -(-subtrees // wave_size) if subtrees else 0

        state = [_TierState() for _ in spec.tiers]
        done = 0
        resumed = 0
        checkpoint = None
        registry = obs.active()
        # Counter baseline for the checkpointed delta: the preamble
        # above (root build, schedule precompute) re-runs identically
        # in every run — cold or resumed — so only counters recorded
        # past this point belong to the persisted delta.
        base = registry.deterministic() if registry is not None else None
        if config.checkpoint_dir is not None:
            checkpoint = self._checkpoint_path(token)
            with obs.span("net.stream.checkpoint.load"):
                loaded = self._load(checkpoint, token)
            if loaded is not None:
                state, done, saved_obs = loaded
                resumed = done
                if registry is not None and saved_obs is not None:
                    registry.merge(saved_obs)

        run_span = obs.span("net.stream.run").start()
        executed = 0
        waves_run = 0
        while done < subtrees:
            if max_waves is not None and waves_run >= max_waves:
                break
            count = min(wave_size, subtrees - done)
            obs.add("net.stream.waves")
            obs.add("net.stream.subtrees", count)
            obs.add("net.stream.nodes", count * spec.subtree_nodes)
            obs.gauge("net.stream.wave_size", wave_size)
            payloads = [
                (
                    spec,
                    seed,
                    duration_s,
                    index,
                    beacons,
                    sample_times,
                    root_readings,
                    steady_index,
                    profiles,
                )
                for index in range(done, done + count)
            ]
            with obs.span("net.stream.wave"):
                for parts in pool_map(
                    _simulate_subtree, payloads, min(workers, count)
                ):
                    for tier_state, part in zip(state, parts):
                        tier_state.fold(part)
            done += count
            executed += count
            waves_run += 1
            if checkpoint is not None:
                delta = None
                if registry is not None:
                    delta = obs.counter_delta(base, registry.deterministic())
                with obs.span("net.stream.checkpoint.write"):
                    self._write(checkpoint, token, done, state, delta)
        elapsed = run_span.stop()
        if profile_summary is not None:
            # Emitted once, after the final checkpoint write, so the
            # persisted delta never contains it: cold, killed and
            # resumed runs all end up with exactly one emission.
            record_compute_counters(profile_summary)

        root_energy = RadioEnergy()
        root_energy.tx_messages = len(beacons)
        root_radio_uw = root_energy.average_uw(spec.base.radio, duration_s)
        root_power_uw = (
            binding_power_uw(root_binding, spec.base, duration_s, profiles)
            + root_radio_uw
        )

        tiers = []
        for index, (tier, tier_state) in enumerate(zip(spec.tiers, state)):
            nodes = tier_state.nodes
            sent = tier_state.beacons_sent
            if index == 0:
                sent += len(beacons)
            tiers.append(
                TierSummary(
                    name=tier.name,
                    protocol=tier.protocol,
                    beacon_period_s=tier.beacon_period_s,
                    fan_out=tier.fan_out,
                    nodes=nodes,
                    mean_power_uw=(
                        tier_state.power_sum_uw / nodes if nodes else 0.0
                    ),
                    mean_radio_uw=(
                        tier_state.radio_sum_uw / nodes if nodes else 0.0
                    ),
                    mean_floor_mhz=(
                        tier_state.floor_sum_mhz / nodes if nodes else 0.0
                    ),
                    repairs=tier_state.repairs,
                    beacons_sent=sent,
                    beacons_heard=tier_state.beacons_heard,
                    power_loss_resets=tier_state.resets,
                    hop_sync=tier_state.hop_sync,
                    steady_hop_sync=tier_state.steady_hop_sync,
                    sync=tier_state.sync,
                    steady_sync=tier_state.steady_sync,
                    unsync=tier_state.unsync,
                    steady_unsync=tier_state.steady_unsync,
                )
            )

        n_nodes = 1 + sum(part.nodes for part in state)
        total_power_uw = root_power_uw + sum(
            part.power_sum_uw for part in state
        )
        total_radio_uw = root_radio_uw + sum(
            part.radio_sum_uw for part in state
        )
        summary = FleetSummary(
            scenario=token,
            protocol="/".join(t.protocol for t in spec.tiers) or "none",
            n_nodes=n_nodes,
            duration_s=duration_s,
            total_power_uw=total_power_uw,
            mean_power_uw=total_power_uw / n_nodes,
            mean_radio_uw=total_radio_uw / n_nodes,
            sync=SyncError.merged([part.sync for part in state]),
            steady_sync=SyncError.merged(
                [part.steady_sync for part in state]
            ),
            unsync=SyncError.merged([part.unsync for part in state]),
            steady_unsync=SyncError.merged(
                [part.steady_unsync for part in state]
            ),
            beacons_sent=len(beacons)
            + sum(part.beacons_sent for part in state),
            beacons_heard=sum(part.beacons_heard for part in state),
            power_loss_resets=sum(part.resets for part in state),
            source=spec.base.apps.kind,
        )

        executed_nodes = executed * spec.subtree_nodes
        return HierarchyResult(
            spec=spec,
            token=token,
            seed=seed,
            duration_s=duration_s,
            wave_size=wave_size,
            subtrees=subtrees,
            subtrees_done=done,
            resumed_subtrees=resumed,
            waves=waves,
            waves_run=waves_run,
            completed=done >= subtrees,
            checkpoint=str(checkpoint) if checkpoint is not None else "",
            summary=summary,
            tiers=tuple(tiers),
            elapsed_s=elapsed,
            nodes_per_second=(
                executed_nodes / elapsed if elapsed > 0.0 else 0.0
            ),
            workers=workers,
            mode="streaming",
            peak_rss_mb=_peak_rss_mb(),
            compute=profile_summary,
        )


def run_streaming(
    tiers: str | HierarchySpec,
    duration_s: float = DEFAULT_DURATION_S,
    seed: int = DEFAULT_SEED,
    workers: int = 1,
    wave_size: int | None = None,
    checkpoint_dir: str | Path | None = None,
    max_waves: int | None = None,
    compute: str | ComputeSettings | None = None,
    compute_cache: str | None = None,
) -> HierarchyResult:
    """One-call streaming run of a hierarchy token, preset or spec.

    ``compute`` / ``compute_cache`` mirror
    :func:`repro.net.fleet.run_fleet`: None keeps the legacy
    per-worker profile memo, ``"exact"`` resolves the same profiles
    through the shared compute cache (byte-identical results), and
    ``"analytic"`` additionally screens them through the calibrated
    closed-form model.
    """
    if isinstance(tiers, HierarchySpec):
        spec = tiers
    else:
        spec = parse_hierarchy(str(tiers))
    config = StreamingConfig(
        spec=spec,
        duration_s=duration_s,
        seed=seed,
        wave_size=wave_size,
        checkpoint_dir=checkpoint_dir,
        compute=compute_settings(compute, compute_cache),
    )
    return StreamingRunner(config).run(workers=workers, max_waves=max_waves)
