"""One WBSN network node: clock + radio + a mapped application.

A :class:`NetworkNode` wraps one :func:`repro.sysc.engine.simulate`
run — the paper's multi-core sensor node with its intra-node
synchronizer — and surrounds it with the network-level concerns the
paper stops short of: a drifting :class:`repro.net.clock.LocalClock`,
a beacon :mod:`radio <repro.net.radio>` whose message energy is folded
into the node's :class:`~repro.power.energy.PowerReport`, and a
pluggable :mod:`time-sync <repro.net.timesync>` protocol estimating
the reference node's clock.

The application itself comes from the scenario's pluggable
:mod:`app source <repro.net.appsource>`: fixed Table I benchmarks,
generated-suite draws placed by a mapping policy, or a weighted mix.
The node simulates whatever plan its binding carries, so
heterogeneous fleets pay each node's *own* clock floor and power.

Nodes are pure functions of ``(scenario, fleet seed, node id)``: every
random draw comes from named per-node streams, so a node simulated in
a worker process is bit-identical to the same node simulated inline
(the contract :mod:`repro.net.fleet` builds on).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .. import obs
from ..apps.phases import AppSpec
from ..power.energy import PowerReport
from ..sysc.engine import BeatEvent, Mode, cached_uniform_schedule, simulate
from .appsource import APPS, AppBinding
from .compute import ComputeRequest, ResolvedCompute, build_request
from .clock import ClockSpec, LocalClock
from .radio import Beacon, RadioEnergy, receive_beacons
from .scenarios import Scenario
from .stats import SyncError
from .timesync import make_protocol

__all__ = [
    "APPS",
    "ERROR_SAMPLE_HZ",
    "REFERENCE_NODE_ID",
    "NetworkNode",
    "NodeResult",
    "build_node",
]

#: Node id of the sync reference (the continuously powered hub).
REFERENCE_NODE_ID = 0

#: Error-sampling rate of the residual sync error (Hz of global time).
ERROR_SAMPLE_HZ = 5.0


@dataclass(frozen=True)
class NodeResult:
    """Everything one node's simulation produces.

    Attributes:
        node_id: fleet-wide id (0 is the reference).
        app_name: application the node ran.
        protocol: sync protocol name ("reference" for node 0).
        drift_ppm: the node's sampled oscillator drift.
        bpm: the node's sampled heart rate.
        resets: power-loss reboots suffered during the run.
        beacons_heard: sync beacons actually received.
        radio_uw: average radio power, µW.
        power: node power decomposition (includes a ``radio``
            category on top of the paper's components).
        sync: residual sync error over the whole run (empty for the
            reference node, which *defines* reference time).
        steady_sync: residual sync error over the second half.
        unsync: the free-running counterfactual — the error the same
            node shows when it ignores every beacon.  Computed in the
            same replay (the baseline is just the raw local clock),
            so one fleet run yields both sides of the comparison.
        steady_unsync: free-running error over the second half.
        token: regeneration token of a generated app ("" for
            benchmarks).
        family: topology family of a generated app ("" for
            benchmarks).
        policy: mapping policy that placed the app ("" = paper
            default).
        floor_mhz: the placement's own clock requirement (0 when the
            paper default was derived inside the simulator).
        repairs: replicas trimmed to fit the platform.
        compute_key: content-addressed key of the node's app-compute
            work ("" when simulated inline, the legacy path).
        compute_tier: which tier resolved it (``"exact"`` /
            ``"analytic"``; "" when simulated inline).
    """

    node_id: int
    app_name: str
    protocol: str
    drift_ppm: float
    bpm: float
    resets: int
    beacons_heard: int
    radio_uw: float
    power: PowerReport
    sync: SyncError
    steady_sync: SyncError
    unsync: SyncError
    steady_unsync: SyncError
    token: str = ""
    family: str = ""
    policy: str = ""
    floor_mhz: float = 0.0
    repairs: int = 0
    compute_key: str = ""
    compute_tier: str = ""


def _stream(fleet_seed: int, node_id: int, stream: str) -> random.Random:
    """A named, order-independent per-node random stream.

    String seeding hashes through SHA-512 inside :class:`random.Random`,
    so streams are stable across processes and Python invocations
    (never ``hash()``, which is salted per process).
    """
    return random.Random(f"{fleet_seed}:{node_id}:{stream}")


class NetworkNode:
    """One node of the fleet, ready to simulate.

    Build with :func:`build_node` so every parameter is drawn from the
    node's own seeded streams.
    """

    def __init__(
        self,
        node_id: int,
        scenario: Scenario,
        binding: AppBinding,
        bpm: float,
        clock: LocalClock,
        rng_radio: random.Random,
        duration_s: float,
    ) -> None:
        self.node_id = node_id
        self.scenario = scenario
        self.binding = binding
        self.bpm = bpm
        self.clock = clock
        self.duration_s = duration_s
        self._rng_radio = rng_radio
        self.is_reference = node_id == REFERENCE_NODE_ID

    @property
    def app_name(self) -> str:
        """Name of the bound application."""
        return self.binding.name

    @property
    def app(self) -> AppSpec:
        """The bound (possibly repaired) application spec."""
        return self.binding.app

    def schedule(self) -> tuple[BeatEvent, ...]:
        """The node's beat schedule (memoised across same-shape nodes)."""
        return cached_uniform_schedule(
            self.duration_s,
            self.app.fs,
            bpm=self.bpm,
            abnormal_ratio=self.scenario.abnormal_ratio,
        )

    def mode(self) -> Mode:
        """Simulator mode the node's placement calls for."""
        plan = self.binding.plan
        return (
            Mode.MULTI_CORE
            if plan is None or plan.multicore
            else Mode.SINGLE_CORE
        )

    def compute_request(self) -> ComputeRequest:
        """Content-address the node's app-compute work."""
        return build_request(
            self.binding, self.mode(), self.duration_s, self.schedule()
        )

    def simulate(
        self,
        beacons: list[Beacon],
        sample_times: list[float],
        ref_readings: list[float],
        compute: ResolvedCompute | None = None,
    ) -> NodeResult:
        """Run the node over one window.

        Args:
            beacons: the reference node's broadcast schedule.
            sample_times: global times at which the residual sync
                error is sampled.
            ref_readings: the reference clock's exact reading at each
                sample time (``len(sample_times)`` values).
            compute: pre-resolved app-compute entry from
                :class:`repro.net.compute.ComputeResolver` (None =
                simulate inline, the legacy path).  The radio, clock
                and sync work below is always exact and per-node.
        """
        if compute is None:
            result = simulate(
                self.app,
                self.mode(),
                self.schedule(),
                duration_s=self.duration_s,
                num_cores=self.binding.num_cores,
                mapping=self.binding.plan,
            )
            power = result.power
            compute_key = compute_tier = ""
        else:
            power = compute.report()
            compute_key = compute.key
            compute_tier = compute.tier

        energy = RadioEnergy()
        errors: list[float] = []
        steady: list[float] = []
        base_errors: list[float] = []
        base_steady: list[float] = []
        if self.is_reference:
            energy.tx_messages = len(beacons)
            heard = 0
        else:
            receptions = receive_beacons(
                beacons, self.clock, self.scenario.radio, self._rng_radio
            )
            energy.rx_messages = heard = len(receptions)
            errors, steady, base_errors, base_steady = self._sync_errors(
                receptions, sample_times, ref_readings
            )

        radio_uw = energy.average_uw(self.scenario.radio, self.duration_s)
        obs.add("net.node.simulations")
        if heard:
            obs.add("net.node.beacons_heard", heard)
        power.categories["radio"] = radio_uw
        return NodeResult(
            node_id=self.node_id,
            app_name=self.app_name,
            protocol=(
                "reference" if self.is_reference else self.scenario.protocol
            ),
            drift_ppm=self.clock.spec.drift_ppm,
            bpm=self.bpm,
            resets=self.clock.resets_before(self.duration_s),
            beacons_heard=heard,
            radio_uw=radio_uw,
            power=power,
            sync=SyncError.from_samples(errors),
            steady_sync=SyncError.from_samples(steady),
            unsync=SyncError.from_samples(base_errors),
            steady_unsync=SyncError.from_samples(base_steady),
            token=self.binding.token,
            family=self.binding.family,
            policy=self.binding.policy,
            floor_mhz=self.binding.floor_mhz,
            repairs=self.binding.repairs,
            compute_key=compute_key,
            compute_tier=compute_tier,
        )

    def _sync_errors(
        self, receptions, sample_times: list[float], ref_readings: list[float]
    ) -> tuple[list[float], list[float], list[float], list[float]]:
        """Replay receptions and error samples in global-time order.

        Returns the active protocol's error samples and, from the same
        replay, the free-running baseline (raw local clock vs.
        reference) — the counterfactual every report compares against.
        """
        protocol = make_protocol(self.scenario.protocol)
        events = [(r.rx_global, 0, r) for r in receptions]
        events += [(t, 1, i) for i, t in enumerate(sample_times)]
        events.sort(key=lambda event: (event[0], event[1]))
        errors: list[float] = []
        steady: list[float] = []
        base_errors: list[float] = []
        base_steady: list[float] = []
        steady_from = self.duration_s / 2.0
        seen_resets = 0
        for when, kind, payload in events:
            resets = self.clock.resets_before(when)
            if resets != seen_resets:
                protocol.on_reboot()
                seen_resets = resets
            if kind == 0:
                protocol.on_beacon(
                    payload.beacon.ref_timestamp, payload.rx_local
                )
            else:
                local = self.clock.read(when)
                error = (
                    protocol.estimate_reference(local) - ref_readings[payload]
                )
                baseline = local - ref_readings[payload]
                errors.append(error)
                base_errors.append(baseline)
                if when >= steady_from:
                    steady.append(error)
                    base_steady.append(baseline)
        return errors, steady, base_errors, base_steady


def build_node(
    scenario: Scenario, node_id: int, fleet_seed: int, duration_s: float
) -> NetworkNode:
    """Construct one node from its seeded streams.

    The node's application comes from the scenario's app source
    (benchmark mix, generated suite or weighted union); everything
    else — heart rate, drift, offset, reset schedule — is drawn from
    the same named streams as before, so benchmark-backed scenarios
    reproduce the historical fleets bit-for-bit.

    The reference node (id 0) is the hub: it is continuously powered
    (no power-loss resets) but its oscillator drifts like any other —
    the fleet synchronizes to it, not to true time.
    """
    rng_app = _stream(fleet_seed, node_id, "app")
    binding = scenario.apps.bind(rng_app, scenario.abnormal_ratio)
    bpm = rng_app.uniform(*scenario.bpm_range)

    magnitude = rng_app.uniform(*scenario.drift_ppm_range)
    sign = 1.0 if rng_app.random() < 0.5 else -1.0
    offset = rng_app.uniform(
        -scenario.initial_offset_s, scenario.initial_offset_s
    )
    loss_rate = (
        0.0 if node_id == REFERENCE_NODE_ID else scenario.power_loss_rate_hz
    )
    spec = ClockSpec(
        drift_ppm=sign * magnitude,
        jitter_s=scenario.jitter_s,
        initial_offset_s=offset,
        power_loss_rate_hz=loss_rate,
    )
    clock = LocalClock(
        spec, _stream(fleet_seed, node_id, "clock"), horizon_s=duration_s
    )
    return NetworkNode(
        node_id=node_id,
        scenario=scenario,
        binding=binding,
        bpm=bpm,
        clock=clock,
        rng_radio=_stream(fleet_seed, node_id, "radio"),
        duration_s=duration_s,
    )
