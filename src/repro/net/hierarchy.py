"""Tiered cluster→gateway→backbone hierarchies above flat fleets.

Real deployments of the paper's nodes are not flat stars: body
clusters sync to a gateway, gateways sync to a campus backbone
(Baumgartner et al.'s heterogeneous WSNs, Cappelle et al.'s multi-IMU
body networks).  This module describes such deployments:

* :class:`Tier` — one level of the hierarchy: the sync protocol its
  members run against their parent, the beacon period they are served
  at, the fan-out per parent and a drift scale (backbone gateways
  usually carry better crystals than leaf patches).
* :class:`HierarchySpec` — a base :class:`~repro.net.scenarios
  .Scenario` (clocks, radio, app source) plus an ordered tuple of
  tiers hanging off one backbone reference node.  Specs round-trip
  through compact ``tiers:`` tokens alongside the flat ``gen:``
  scenario tokens, so hierarchical fleets ride through JSON-scalar
  sweep points and CLI arguments unchanged.

**Error compounding.**  A member of tier *i* estimates its *parent's*
clock from the beacons it hears (:func:`hop_error_samples`); its
effective error to the backbone is that hop error composed with the
parent's own effective error at the shared sample instants
(:func:`compose_errors`).  The composition is first-order additive —
exact for the free-running baselines (the telescoping sum collapses
to leaf local clock minus backbone clock) and accurate to the product
of per-hop errors otherwise, which is far below the errors
themselves.

**Scale.**  Hierarchical fleets are sized in the tens of thousands of
nodes, so per-node exact application simulation is off the table.
Instead, node compute power comes from a memoised per-app profile
(:func:`binding_power_uw`): one exact
:func:`repro.sysc.engine.simulate` run per *distinct* application at
the scenario's canonical heart rate, shared by every node bound to
that app.  Radio energy, clocks, receptions and sync errors remain
exact per node.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from .. import obs
from .appsource import APPS, AppBinding, _resolve_generated
from .clock import ClockSpec, LocalClock
from .radio import Reception
from .scenarios import (
    DENSE_WARD,
    DRIFTING_WEARABLES,
    Scenario,
    parse_scenario,
    scenario_token,
)
from .timesync import PROTOCOLS, make_protocol

#: Prefix of hierarchy tokens (``tiers:<tier/...>:<base>``).
TIERS_TOKEN_PREFIX = "tiers"

#: Stream path of the backbone reference node.
ROOT_PATH = "root"

#: Simulated seconds of the memoised per-app power profile.  Profiles
#: are amortised over every node bound to the same app, so a short
#: exact simulation suffices; runs shorter than this profile at their
#: own duration.
PROFILE_DURATION_S = 4.0

#: Grammar hint quoted by every token error.
_TIER_GRAMMAR = "'tiers:<proto@<period>x<fan>[~<scale>]/...>:<base>'"


@dataclass(frozen=True)
class Tier:
    """One level of a deployment hierarchy.

    Attributes:
        name: human label of the level (``backbone``, ``ward`` ...).
        protocol: sync protocol its members run against their parent
            (any :data:`repro.net.timesync.PROTOCOLS` name).
        beacon_period_s: period of the beacons each parent broadcasts
            to this tier's members.
        fan_out: members per parent node (>= 1).
        drift_scale: multiplier on the base scenario's drift range
            for this tier's oscillators (gateways tend to carry
            better crystals than leaf patches).
    """

    name: str
    protocol: str
    beacon_period_s: float
    fan_out: int
    drift_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tier needs a non-empty name")
        if self.protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown tier protocol {self.protocol!r}; "
                f"choose from {sorted(PROTOCOLS)}"
            )
        if self.beacon_period_s <= 0.0:
            raise ValueError("tier beacon period must be positive")
        if self.fan_out < 1:
            raise ValueError("tier fan-out must be >= 1")
        if self.drift_scale <= 0.0:
            raise ValueError("tier drift scale must be positive")


def _default_tier_names(count: int) -> tuple[str, ...]:
    """Canonical tier names of a parsed token (position-derived)."""
    if count <= 0:
        return ()
    if count == 1:
        return ("cluster",)
    middles = tuple(f"relay{i}" for i in range(1, count - 1))
    return ("backbone",) + middles + ("cluster",)


@dataclass(frozen=True)
class HierarchySpec:
    """A hierarchical deployment: one backbone root plus tiers.

    The base scenario contributes everything *around* the hierarchy —
    app source, clock quality, radio, heart rates — while the tiers
    describe its shape: tier 0 hangs off the single backbone
    reference node, each member of tier *i* parents ``fan_out``
    members of tier *i + 1*.  Power-loss resets apply only to the
    last (leaf) tier; gateways and the root are powered
    infrastructure.

    Attributes:
        name: registry key or round-trip token.
        base: the flat scenario the hierarchy is built from.
        tiers: ordered levels, backbone-adjacent first.  An empty
            tuple is the degenerate root-only deployment.
    """

    name: str
    base: Scenario
    tiers: tuple[Tier, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.base, Scenario):
            raise ValueError("hierarchy base must be a Scenario")
        for tier in self.tiers:
            if not isinstance(tier, Tier):
                raise ValueError("hierarchy tiers must be Tier values")

    @property
    def tier_counts(self) -> tuple[int, ...]:
        """Node count per tier (cumulative fan-out products)."""
        counts = []
        members = 1
        for tier in self.tiers:
            members *= tier.fan_out
            counts.append(members)
        return tuple(counts)

    @property
    def n_nodes(self) -> int:
        """Total fleet size, the backbone root included."""
        return 1 + sum(self.tier_counts)

    @property
    def subtrees(self) -> int:
        """Independent tier-0 subtrees (the streaming work unit)."""
        return self.tiers[0].fan_out if self.tiers else 0

    @property
    def subtree_nodes(self) -> int:
        """Nodes per tier-0 subtree (root excluded)."""
        if not self.tiers:
            return 0
        return (self.n_nodes - 1) // self.subtrees


WARD_CAMPUS = HierarchySpec(
    name="ward-campus",
    base=DENSE_WARD,
    tiers=(
        Tier(
            name="backbone",
            protocol="ftsp",
            beacon_period_s=10.0,
            fan_out=8,
            drift_scale=0.5,
        ),
        Tier(
            name="ward",
            protocol="rbs",
            beacon_period_s=2.0,
            fan_out=16,
        ),
    ),
)

BODY_NETWORKS = HierarchySpec(
    name="body-networks",
    base=DRIFTING_WEARABLES,
    tiers=(
        Tier(
            name="backbone",
            protocol="ftsp",
            beacon_period_s=5.0,
            fan_out=12,
        ),
        Tier(
            name="body",
            protocol="rbs",
            beacon_period_s=1.0,
            fan_out=6,
        ),
    ),
)

MEGA_CAMPUS = HierarchySpec(
    name="mega-campus",
    base=DENSE_WARD,
    tiers=(
        Tier(
            name="backbone",
            protocol="ftsp",
            beacon_period_s=10.0,
            fan_out=320,
            drift_scale=0.5,
        ),
        Tier(
            name="ward",
            protocol="rbs",
            beacon_period_s=2.0,
            fan_out=320,
        ),
    ),
)

#: Hierarchy registry, keyed by name.
HIERARCHIES: dict[str, HierarchySpec] = {
    spec.name: spec
    for spec in (WARD_CAMPUS, BODY_NETWORKS, MEGA_CAMPUS)
}


def get_hierarchy(name: str) -> HierarchySpec:
    """Look up a hierarchy preset.

    Raises:
        ValueError: unknown preset name.
    """
    try:
        return HIERARCHIES[name]
    except KeyError:
        raise ValueError(
            f"unknown hierarchy {name!r}; "
            f"choose from {sorted(HIERARCHIES)}"
        ) from None


def _tier_token(tier: Tier) -> str:
    """One tier's token segment (names are position-derived)."""
    token = f"{tier.protocol}@{tier.beacon_period_s:g}x{tier.fan_out}"
    if tier.drift_scale != 1.0:
        token += f"~{tier.drift_scale:g}"
    return token


def _parse_tier(segment: str, name: str, text: str) -> Tier:
    """Parse one ``proto@<period>x<fan>[~<scale>]`` segment."""
    protocol, at, rest = segment.partition("@")
    body, tilde, scale_text = rest.partition("~")
    period_text, x, fan_text = body.rpartition("x")
    if not at or not x:
        raise ValueError(
            f"malformed hierarchy token {text!r}; expected "
            f"{_TIER_GRAMMAR}"
        )
    try:
        period = float(period_text)
        fan_out = int(fan_text)
        scale = float(scale_text) if tilde else 1.0
    except ValueError:
        raise ValueError(
            f"malformed hierarchy token {text!r}; period, fan-out "
            f"and scale must be numeric"
        ) from None
    return Tier(
        name=name,
        protocol=protocol,
        beacon_period_s=period,
        fan_out=fan_out,
        drift_scale=scale,
    )


def hierarchy_token(spec: HierarchySpec) -> str:
    """Compact string identity of a hierarchy.

    Presets serialise to their registry name; everything else to
    ``tiers:<proto@<period>x<fan>[~<scale>]/...>:<base>`` where
    ``<base>`` is the base scenario's own token (preset name or
    ``gen:`` form).  Tier names are not encoded — parsing assigns
    canonical position-derived names.

    Raises:
        ValueError: the base scenario has no token form.
    """
    preset = HIERARCHIES.get(spec.name)
    if preset is not None and preset == spec:
        return spec.name
    if not spec.tiers:
        raise ValueError(
            "tierless hierarchies have no token form; register a "
            "preset instead"
        )
    segments = "/".join(_tier_token(tier) for tier in spec.tiers)
    return (
        f"{TIERS_TOKEN_PREFIX}:{segments}:{scenario_token(spec.base)}"
    )


def parse_hierarchy(text: str) -> HierarchySpec:
    """Resolve a hierarchy token: preset name or ``tiers:`` form.

    Raises:
        ValueError: unknown preset or malformed token, with the
            valid choices listed.
    """
    if text in HIERARCHIES:
        return HIERARCHIES[text]
    if not text.startswith(TIERS_TOKEN_PREFIX + ":"):
        raise ValueError(
            f"unknown hierarchy {text!r}; choose from "
            f"{sorted(HIERARCHIES)} or a {_TIER_GRAMMAR} token"
        )
    parts = text.split(":", 2)
    if len(parts) != 3 or not parts[1] or not parts[2]:
        raise ValueError(
            f"malformed hierarchy token {text!r}; expected "
            f"{_TIER_GRAMMAR}"
        )
    segments = parts[1].split("/")
    names = _default_tier_names(len(segments))
    tiers = tuple(
        _parse_tier(segment, name, text)
        for segment, name in zip(segments, names)
    )
    return HierarchySpec(
        name=text, base=parse_scenario(parts[2]), tiers=tiers
    )


def _stream(seed: int, path: str, kind: str) -> random.Random:
    """A named per-node stream keyed by the node's hierarchy path.

    Paths are position-derived (``"3"`` is the fourth tier-0 subtree
    root, ``"3.7"`` its eighth child), so a node's draws never depend
    on wave boundaries or worker counts.  String seeding hashes
    through SHA-512 inside :class:`random.Random` — stable across
    processes, never ``hash()``.
    """
    return random.Random(f"{seed}:tiers:{path}:{kind}")


def build_member(
    spec: HierarchySpec,
    tier_index: int,
    path: str,
    seed: int,
    duration_s: float,
) -> tuple[AppBinding, LocalClock]:
    """Bind one hierarchy member's app and build its clock.

    Mirrors :func:`repro.net.node.build_node`'s draw discipline (app
    binding, drift magnitude, sign, offset — all from the member's
    own ``app`` stream) with two hierarchy twists: the tier's drift
    scale multiplies the drawn magnitude, and only leaf-tier members
    suffer power-loss resets.  ``tier_index`` -1 builds the backbone
    root (unscaled drift, continuously powered).
    """
    base = spec.base
    tier = spec.tiers[tier_index] if tier_index >= 0 else None
    rng = _stream(seed, path, "app")
    binding = base.apps.bind(rng, base.abnormal_ratio)
    scale = tier.drift_scale if tier is not None else 1.0
    magnitude = rng.uniform(*base.drift_ppm_range) * scale
    sign = 1.0 if rng.random() < 0.5 else -1.0
    offset = rng.uniform(-base.initial_offset_s, base.initial_offset_s)
    leaf = tier_index == len(spec.tiers) - 1
    loss = base.power_loss_rate_hz if tier is not None and leaf else 0.0
    clock_spec = ClockSpec(
        drift_ppm=sign * magnitude,
        jitter_s=base.jitter_s,
        initial_offset_s=offset,
        power_loss_rate_hz=loss,
    )
    clock = LocalClock(
        clock_spec, _stream(seed, path, "clock"), horizon_s=duration_s
    )
    return binding, clock


def hop_error_samples(
    protocol_name: str,
    receptions: list[Reception],
    clock: LocalClock,
    sample_times: list[float],
    parent_readings: list[float],
) -> tuple[list[float], list[float]]:
    """One member's signed per-sample error against its parent.

    Replays receptions and error samples in global-time order with
    power-loss reboot handling — the hierarchical analogue of
    :meth:`repro.net.node.NetworkNode._sync_errors`, returning the
    *signed* per-sample series (composition across hops needs signs,
    not magnitudes).

    Returns:
        ``(hop_errors, baselines)`` — the protocol's estimate of the
        parent clock minus the parent's true reading at each sample
        time, and the free-running counterfactual (raw local clock
        minus parent reading) from the same replay.
    """
    protocol = make_protocol(protocol_name)
    events = [(r.rx_global, 0, r) for r in receptions]
    events += [(t, 1, i) for i, t in enumerate(sample_times)]
    events.sort(key=lambda event: (event[0], event[1]))
    errors: list[float] = []
    baselines: list[float] = []
    seen_resets = 0
    for when, kind, payload in events:
        resets = clock.resets_before(when)
        if resets != seen_resets:
            protocol.on_reboot()
            seen_resets = resets
        if kind == 0:
            protocol.on_beacon(
                payload.beacon.ref_timestamp, payload.rx_local
            )
        else:
            local = clock.read(when)
            errors.append(
                protocol.estimate_reference(local)
                - parent_readings[payload]
            )
            baselines.append(local - parent_readings[payload])
    return errors, baselines


def compose_errors(
    hop: list[float], parent: list[float] | None
) -> list[float]:
    """Compose a hop's errors with the parent's effective errors.

    First-order additive composition at shared sample instants: the
    member's effective error to the backbone is its error against the
    parent plus the parent's error against the backbone.  Exact for
    free-running baselines (the sum telescopes to leaf local clock
    minus backbone clock); accurate to the product of per-hop errors
    otherwise.  Tier-0 members pass ``None`` (their parent *is* the
    backbone).
    """
    if parent is None:
        return list(hop)
    return [h + p for h, p in zip(hop, parent)]


@lru_cache(maxsize=512)
def _profile_power_uw(
    token: str,
    name: str,
    policy: str,
    num_cores: int,
    ratio: float,
    bpm: float,
    duration_s: float,
) -> float:
    """Average compute power of one app configuration (memoised).

    Pure function of its arguments: generated apps regenerate from
    their token through the same memoised resolution fleets use,
    benchmarks rebuild from the registry.  Radio power is *not*
    included — callers add their own exact per-node radio figure.

    Metrics collection is suspended for the body: how often the
    memoised profile actually *executes* depends on per-process cache
    state (worker counts, resume points), so only the deterministic
    request counter in :func:`binding_power_uw` is recorded.
    """
    from ..sysc.engine import Mode, simulate, uniform_schedule

    with obs.suspended():
        if token:
            app, plan, _ = _resolve_generated(token, policy, num_cores)
        else:
            app, plan = APPS[name](ratio), None
        schedule = uniform_schedule(
            duration_s, app.fs, bpm=bpm, abnormal_ratio=ratio
        )
        mode = (
            Mode.MULTI_CORE
            if plan is None or plan.multicore
            else Mode.SINGLE_CORE
        )
        result = simulate(
            app,
            mode,
            schedule,
            duration_s=duration_s,
            num_cores=num_cores,
            mapping=plan,
        )
        return result.power.total_uw


def profile_key(
    binding: AppBinding, base: Scenario, duration_s: float
) -> tuple:
    """The app-profile identity ``binding_power_uw`` resolves by."""
    bpm = (base.bpm_range[0] + base.bpm_range[1]) / 2.0
    return (
        binding.token,
        binding.name,
        binding.policy,
        binding.num_cores,
        base.abnormal_ratio,
        bpm,
        min(duration_s, PROFILE_DURATION_S),
    )


def binding_power_uw(
    binding: AppBinding,
    base: Scenario,
    duration_s: float,
    profiles: dict[tuple, float] | None = None,
) -> float:
    """One bound app's compute power from the shared profile, in µW.

    The profile runs at the scenario's canonical heart rate (the
    midpoint of ``bpm_range``) and a bounded duration
    (:data:`PROFILE_DURATION_S`), so a mega-fleet pays one exact
    simulation per *distinct* application instead of one per node —
    the deliberate accuracy/scale trade of the hierarchy layer.

    When ``profiles`` is given (a table pre-resolved in the main
    process from the source's binding universe, see
    :func:`profile_table`), the power is a plain lookup — workers
    never simulate.  A missing key is a hard error rather than a
    silent re-simulation.
    """
    obs.add("net.profile.requests")
    key = profile_key(binding, base, duration_s)
    if profiles is not None:
        return profiles[key]
    return _profile_power_uw(*key)


def profile_table(
    base: Scenario, duration_s: float, resolver
) -> "tuple[dict[tuple, float], object]":
    """Pre-resolve every profile the scenario's source can request.

    Enumerates the source's closed binding universe, resolves all
    distinct compute work in one batched
    :meth:`repro.net.compute.ComputeResolver.resolve` call, and
    returns ``(profile-key -> power µW table, ComputeSummary)``.
    The table values are byte-identical to what
    :func:`_profile_power_uw` would produce, because cached payloads
    rebuild their reports in the exact category order.
    """
    from ..sysc.engine import Mode, cached_uniform_schedule
    from .compute import build_request

    bindings = base.apps.universe(base.abnormal_ratio)
    bpm = (base.bpm_range[0] + base.bpm_range[1]) / 2.0
    bounded = min(duration_s, PROFILE_DURATION_S)
    requests = []
    for binding in bindings:
        schedule = cached_uniform_schedule(
            bounded,
            binding.app.fs,
            bpm=bpm,
            abnormal_ratio=base.abnormal_ratio,
        )
        mode = (
            Mode.MULTI_CORE
            if binding.plan is None or binding.plan.multicore
            else Mode.SINGLE_CORE
        )
        requests.append(build_request(binding, mode, bounded, schedule))
    resolution = resolver.resolve(requests)
    table = {
        profile_key(binding, base, duration_s): resolution.table[
            request.key
        ]
        .report()
        .total_uw
        for binding, request in zip(bindings, requests)
    }
    return table, resolution.summary


__all__ = [
    "BODY_NETWORKS",
    "HIERARCHIES",
    "HierarchySpec",
    "MEGA_CAMPUS",
    "PROFILE_DURATION_S",
    "ROOT_PATH",
    "TIERS_TOKEN_PREFIX",
    "Tier",
    "WARD_CAMPUS",
    "binding_power_uw",
    "build_member",
    "compose_errors",
    "get_hierarchy",
    "hierarchy_token",
    "hop_error_samples",
    "parse_hierarchy",
    "profile_key",
    "profile_table",
]
