"""Multi-node WBSN network simulation above the single-node stack.

The paper reproduces *one* sensor node (``repro.isa`` → ``repro.hw`` →
``repro.sysc``); this package simulates *fleets* of such nodes with
drifting local clocks, a beacon radio, pluggable inter-node time-sync
protocols and a sharded multiprocessing runner:

* :mod:`repro.net.appsource` — pluggable per-node application
  sources (benchmarks / generated suites / weighted mixes).
* :mod:`repro.net.clock` — per-node oscillators (drift / jitter /
  power-loss resets).
* :mod:`repro.net.radio` — beacon delivery and per-message energy.
* :mod:`repro.net.timesync` — NoSync / reference-broadcast /
  FTSP-style offset+skew protocols.
* :mod:`repro.net.node` — clock + radio + a mapped ECG application.
* :mod:`repro.net.compute` — content-addressed compute cache and
  the batched analytic fast path fleets resolve app power through.
* :mod:`repro.net.fleet` — deterministic serial/parallel execution.
* :mod:`repro.net.scenarios` — named deployment presets.
* :mod:`repro.net.hierarchy` — cluster→gateway→backbone tiers with
  per-tier protocols and error compounding across hops.
* :mod:`repro.net.streaming` — checkpointed bounded-memory waves for
  mega-fleets (10k–1M nodes).
* :mod:`repro.net.stats` — summary dataclasses shared with
  :mod:`repro.eval.report`.
"""

from .appsource import (
    AppBinding,
    AppSource,
    BenchmarkSource,
    GeneratedSuiteSource,
    MixedSource,
    source_from_mapping,
)
from .clock import ClockSpec, LocalClock
from .compute import (
    COMPUTE_CACHE_ENV,
    COMPUTE_ENTRY_SCHEMA,
    COMPUTE_MODES,
    ComputeCache,
    ComputeRequest,
    ComputeResolution,
    ComputeResolver,
    ComputeSettings,
    ComputeSummary,
    ResolvedCompute,
)
from .fleet import (
    DEFAULT_DURATION_S,
    DEFAULT_SEED,
    FleetConfig,
    FleetResult,
    FleetRunner,
    run_fleet,
)
from .hierarchy import (
    BODY_NETWORKS,
    HIERARCHIES,
    MEGA_CAMPUS,
    WARD_CAMPUS,
    HierarchySpec,
    Tier,
    compose_errors,
    get_hierarchy,
    hierarchy_token,
    hop_error_samples,
    parse_hierarchy,
)
from .node import (
    APPS,
    ERROR_SAMPLE_HZ,
    REFERENCE_NODE_ID,
    NetworkNode,
    NodeResult,
    build_node,
)
from .radio import (
    Beacon,
    RadioEnergy,
    RadioSpec,
    Reception,
    beacon_schedule,
    receive_beacons,
)
from .scenarios import (
    DENSE_WARD,
    DRIFTING_WEARABLES,
    GENERATED_SWARM,
    INTERMITTENT_HARVESTING,
    MIXED_CLINIC,
    SCENARIOS,
    Scenario,
    generated_scenario,
    get_scenario,
    parse_scenario,
    scenario_token,
    with_protocol,
)
from .stats import FleetSummary, GroupStats, SyncError, TierSummary
from .streaming import (
    CHECKPOINT_SCHEMA,
    DEFAULT_WAVE_SUBTREES,
    HierarchyResult,
    StreamingConfig,
    StreamingRunner,
    run_streaming,
)
from .timesync import (
    PROTOCOLS,
    FtspSync,
    NoSync,
    ReferenceBroadcastSync,
    SyncProtocol,
    make_protocol,
)

__all__ = [
    "APPS",
    "AppBinding",
    "AppSource",
    "BODY_NETWORKS",
    "Beacon",
    "BenchmarkSource",
    "CHECKPOINT_SCHEMA",
    "COMPUTE_CACHE_ENV",
    "COMPUTE_ENTRY_SCHEMA",
    "COMPUTE_MODES",
    "ClockSpec",
    "ComputeCache",
    "ComputeRequest",
    "ComputeResolution",
    "ComputeResolver",
    "ComputeSettings",
    "ComputeSummary",
    "DEFAULT_DURATION_S",
    "DEFAULT_SEED",
    "DEFAULT_WAVE_SUBTREES",
    "DENSE_WARD",
    "DRIFTING_WEARABLES",
    "ERROR_SAMPLE_HZ",
    "FleetConfig",
    "FleetResult",
    "FleetRunner",
    "FleetSummary",
    "FtspSync",
    "GENERATED_SWARM",
    "GeneratedSuiteSource",
    "GroupStats",
    "HIERARCHIES",
    "HierarchyResult",
    "HierarchySpec",
    "INTERMITTENT_HARVESTING",
    "LocalClock",
    "MEGA_CAMPUS",
    "MIXED_CLINIC",
    "MixedSource",
    "NetworkNode",
    "NoSync",
    "NodeResult",
    "PROTOCOLS",
    "REFERENCE_NODE_ID",
    "RadioEnergy",
    "RadioSpec",
    "Reception",
    "ReferenceBroadcastSync",
    "ResolvedCompute",
    "SCENARIOS",
    "Scenario",
    "StreamingConfig",
    "StreamingRunner",
    "SyncError",
    "SyncProtocol",
    "Tier",
    "TierSummary",
    "WARD_CAMPUS",
    "beacon_schedule",
    "build_node",
    "compose_errors",
    "generated_scenario",
    "get_hierarchy",
    "get_scenario",
    "hierarchy_token",
    "hop_error_samples",
    "make_protocol",
    "parse_hierarchy",
    "parse_scenario",
    "receive_beacons",
    "run_fleet",
    "run_streaming",
    "scenario_token",
    "source_from_mapping",
    "with_protocol",
]
