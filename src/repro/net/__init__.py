"""Multi-node WBSN network simulation above the single-node stack.

The paper reproduces *one* sensor node (``repro.isa`` → ``repro.hw`` →
``repro.sysc``); this package simulates *fleets* of such nodes with
drifting local clocks, a beacon radio, pluggable inter-node time-sync
protocols and a sharded multiprocessing runner:

* :mod:`repro.net.appsource` — pluggable per-node application
  sources (benchmarks / generated suites / weighted mixes).
* :mod:`repro.net.clock` — per-node oscillators (drift / jitter /
  power-loss resets).
* :mod:`repro.net.radio` — beacon delivery and per-message energy.
* :mod:`repro.net.timesync` — NoSync / reference-broadcast /
  FTSP-style offset+skew protocols.
* :mod:`repro.net.node` — clock + radio + a mapped ECG application.
* :mod:`repro.net.fleet` — deterministic serial/parallel execution.
* :mod:`repro.net.scenarios` — named deployment presets.
* :mod:`repro.net.stats` — summary dataclasses shared with
  :mod:`repro.eval.report`.
"""

from .appsource import (
    AppBinding,
    AppSource,
    BenchmarkSource,
    GeneratedSuiteSource,
    MixedSource,
    source_from_mapping,
)
from .clock import ClockSpec, LocalClock
from .fleet import (
    DEFAULT_DURATION_S,
    DEFAULT_SEED,
    FleetConfig,
    FleetResult,
    FleetRunner,
    run_fleet,
)
from .node import (
    APPS,
    ERROR_SAMPLE_HZ,
    REFERENCE_NODE_ID,
    NetworkNode,
    NodeResult,
    build_node,
)
from .radio import (
    Beacon,
    RadioEnergy,
    RadioSpec,
    Reception,
    beacon_schedule,
    receive_beacons,
)
from .scenarios import (
    DENSE_WARD,
    DRIFTING_WEARABLES,
    GENERATED_SWARM,
    INTERMITTENT_HARVESTING,
    MIXED_CLINIC,
    SCENARIOS,
    Scenario,
    generated_scenario,
    get_scenario,
    parse_scenario,
    scenario_token,
    with_protocol,
)
from .stats import FleetSummary, GroupStats, SyncError
from .timesync import (
    PROTOCOLS,
    FtspSync,
    NoSync,
    ReferenceBroadcastSync,
    SyncProtocol,
    make_protocol,
)

__all__ = [
    "APPS",
    "AppBinding",
    "AppSource",
    "Beacon",
    "BenchmarkSource",
    "ClockSpec",
    "DEFAULT_DURATION_S",
    "DEFAULT_SEED",
    "DENSE_WARD",
    "DRIFTING_WEARABLES",
    "ERROR_SAMPLE_HZ",
    "FleetConfig",
    "FleetResult",
    "FleetRunner",
    "FleetSummary",
    "FtspSync",
    "GENERATED_SWARM",
    "GeneratedSuiteSource",
    "GroupStats",
    "INTERMITTENT_HARVESTING",
    "LocalClock",
    "MIXED_CLINIC",
    "MixedSource",
    "NetworkNode",
    "NoSync",
    "NodeResult",
    "PROTOCOLS",
    "REFERENCE_NODE_ID",
    "RadioEnergy",
    "RadioSpec",
    "Reception",
    "ReferenceBroadcastSync",
    "SCENARIOS",
    "Scenario",
    "SyncError",
    "SyncProtocol",
    "beacon_schedule",
    "build_node",
    "generated_scenario",
    "get_scenario",
    "make_protocol",
    "parse_scenario",
    "receive_beacons",
    "run_fleet",
    "scenario_token",
    "source_from_mapping",
    "with_protocol",
]
