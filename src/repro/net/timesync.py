"""Pluggable inter-node time-synchronization protocols.

Each protocol consumes (reference timestamp, local receive timestamp)
pairs from heard beacons and exposes one query: *given my local clock
reading, what is the reference node's clock right now?*  The residual
|estimate − true reference time| is the network-level analogue of the
paper's intra-node lock-step error, and what
:class:`repro.net.stats.SyncError` aggregates.

Two real protocol families are modelled, plus a baseline:

* :class:`NoSync` — free-running local clock (the "unsynchronized
  drift" baseline every scenario is judged against).
* :class:`ReferenceBroadcastSync` — periodic reference broadcast:
  jump to the last beacon's offset and coast on the raw local clock
  until the next one.  Error grows linearly with relative drift over
  a beacon period.
* :class:`FtspSync` — FTSP-style offset *and skew* estimation: a
  least-squares line through a sliding window of beacon pairs
  compensates constant drift, leaving timestamp noise and drift
  wander as the error floor (Maróti et al.'s flooding is collapsed to
  one hop — the fleet topology is a star).

Protocols are deliberately stateful-but-tiny objects so a fleet of
thousands costs nothing, and all of them handle power-loss reboots
(:meth:`SyncProtocol.on_reboot`) by discarding state learned under
the previous power cycle, whose local epoch no longer exists.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque


class SyncProtocol(ABC):
    """Interface shared by all inter-node sync protocols."""

    #: Registry name; subclasses override.
    name = "abstract"

    @abstractmethod
    def on_beacon(self, ref_timestamp: float, rx_local: float) -> None:
        """Ingest one heard beacon.

        Args:
            ref_timestamp: the sender's local clock value in the packet.
            rx_local: this node's (noisy) timestamp of the reception.
        """

    @abstractmethod
    def estimate_reference(self, local: float) -> float:
        """Map a local clock reading to estimated reference time."""

    def on_reboot(self) -> None:
        """Forget state after a power-loss reset (new local epoch)."""


class NoSync(SyncProtocol):
    """Baseline: trust the local clock, ignore beacons."""

    name = "none"

    def on_beacon(self, ref_timestamp: float, rx_local: float) -> None:
        pass

    def estimate_reference(self, local: float) -> float:
        return local


class ReferenceBroadcastSync(SyncProtocol):
    """Offset-only sync against the last heard reference beacon."""

    name = "rbs"

    def __init__(self) -> None:
        self._last: tuple[float, float] | None = None  # (rx_local, ref)

    def on_beacon(self, ref_timestamp: float, rx_local: float) -> None:
        self._last = (rx_local, ref_timestamp)

    def estimate_reference(self, local: float) -> float:
        if self._last is None:
            return local
        rx_local, ref = self._last
        return ref + (local - rx_local)

    def on_reboot(self) -> None:
        self._last = None


class FtspSync(SyncProtocol):
    """Drift-compensated sync: offset + skew by linear regression.

    Args:
        window: number of most recent beacon pairs regressed over.
            Larger windows average more timestamp noise but react more
            slowly to drift changes; FTSP's reference implementation
            uses 8.
    """

    name = "ftsp"

    def __init__(self, window: int = 8) -> None:
        if window < 2:
            raise ValueError("regression window must hold >= 2 pairs")
        self._pairs: deque[tuple[float, float]] = deque(maxlen=window)

    def on_beacon(self, ref_timestamp: float, rx_local: float) -> None:
        self._pairs.append((rx_local, ref_timestamp))

    def estimate_reference(self, local: float) -> float:
        n = len(self._pairs)
        if n == 0:
            return local
        if n == 1:
            rx_local, ref = self._pairs[0]
            return ref + (local - rx_local)
        # Centered least squares: y = a + b * x with x = local RX
        # times, y = reference timestamps.  Centering keeps the sums
        # well-conditioned even though x sits at tens-of-seconds
        # magnitude with micro-second structure.
        x_mean = sum(x for x, _ in self._pairs) / n
        y_mean = sum(y for _, y in self._pairs) / n
        sxx = sum((x - x_mean) ** 2 for x, _ in self._pairs)
        if sxx == 0.0:
            rx_local, ref = self._pairs[-1]
            return ref + (local - rx_local)
        sxy = sum((x - x_mean) * (y - y_mean) for x, y in self._pairs)
        slope = sxy / sxx
        return y_mean + slope * (local - x_mean)

    def on_reboot(self) -> None:
        self._pairs.clear()


#: Protocol registry used by scenarios and the CLI.
PROTOCOLS: dict[str, type[SyncProtocol]] = {
    NoSync.name: NoSync,
    ReferenceBroadcastSync.name: ReferenceBroadcastSync,
    FtspSync.name: FtspSync,
}


def make_protocol(name: str) -> SyncProtocol:
    """Instantiate a protocol by registry name.

    Raises:
        ValueError: unknown protocol name.
    """
    try:
        cls = PROTOCOLS[name]
    except KeyError:
        raise ValueError(
            f"unknown sync protocol {name!r}; "
            f"choose from {sorted(PROTOCOLS)}"
        ) from None
    return cls()
