"""Per-node local clocks with drift, jitter and power-loss resets.

The paper's synchronizer keeps *cores inside one node* in lock-step;
at the network level every node free-runs on its own low-power
oscillator.  Cheap 32 kHz crystals are off nominal by tens of ppm and
wander with temperature, so two nodes that booted together drift apart
by milliseconds per minute — exactly the error the protocols in
:mod:`repro.net.timesync` must estimate away.  Intermittently powered
nodes are worse: a brown-out resets the counter to zero, discarding
the whole notion of local time (Yıldırım et al., "On the
Synchronization of Intermittently Powered Wireless Embedded Systems").

The model distinguishes *reading* the clock (exact, monotonic within a
power cycle) from *timestamping an event* with it (quantisation and
interrupt-latency noise, modelled as white jitter), because the sync
protocols only ever see the noisy timestamps.

All randomness is drawn from a caller-supplied :class:`random.Random`
so a node is a pure function of its seed (see
:mod:`repro.net.fleet`'s determinism contract).
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass

#: Conversion factor for drift expressed in parts-per-million.
PPM = 1e-6


@dataclass(frozen=True)
class ClockSpec:
    """Static description of one node's oscillator.

    Attributes:
        drift_ppm: constant frequency error in parts per million
            (positive = the local clock runs fast).
        jitter_s: standard deviation of the white timestamping noise,
            in seconds (crystal quantisation + interrupt latency).
        initial_offset_s: local time at global t=0 (nodes boot at
            different moments, so their counters are offset).
        power_loss_rate_hz: mean rate of power-loss resets (Poisson);
            0 disables intermittency.  On a reset the counter restarts
            from zero, as on an MCU without a persistent timekeeper.
    """

    drift_ppm: float = 0.0
    jitter_s: float = 0.0
    initial_offset_s: float = 0.0
    power_loss_rate_hz: float = 0.0


class LocalClock:
    """One node's free-running clock over a bounded simulation window.

    Power-loss reset times are pre-drawn for ``[0, horizon_s]`` at
    construction so that reads are pure lookups and the RNG call
    sequence does not depend on the order in which the clock is
    queried.

    Args:
        spec: oscillator description.
        rng: per-node random stream (resets and timestamp jitter).
        horizon_s: simulated time span the clock must cover.
    """

    def __init__(
        self, spec: ClockSpec, rng: random.Random, horizon_s: float
    ) -> None:
        self.spec = spec
        self._rng = rng
        self._rate = 1.0 + spec.drift_ppm * PPM
        self.reset_times: list[float] = []
        if spec.power_loss_rate_hz > 0.0:
            t = rng.expovariate(spec.power_loss_rate_hz)
            while t < horizon_s:
                self.reset_times.append(t)
                t += rng.expovariate(spec.power_loss_rate_hz)

    def resets_before(self, global_t: float) -> int:
        """Number of power-loss resets that happened up to ``global_t``."""
        return bisect.bisect_right(self.reset_times, global_t)

    def read(self, global_t: float) -> float:
        """Exact local time at global time ``global_t`` (no noise)."""
        resets = self.resets_before(global_t)
        if resets == 0:
            return self.spec.initial_offset_s + self._rate * global_t
        return self._rate * (global_t - self.reset_times[resets - 1])

    def timestamp(self, global_t: float) -> float:
        """Local timestamp of an event: a noisy :meth:`read`.

        This is what the radio hands to the sync protocol when a
        beacon arrives; successive calls consume the node RNG, so the
        caller must timestamp events in a deterministic order.
        """
        noisy = self.read(global_t)
        if self.spec.jitter_s > 0.0:
            noisy += self._rng.gauss(0.0, self.spec.jitter_s)
        return noisy
