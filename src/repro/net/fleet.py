"""Sharded, multiprocessing-backed execution of node fleets.

The fleet problem is embarrassingly parallel *by construction*: the
reference node's beacon schedule is precomputed once from the fleet
seed, after which every node is a pure function of
``(scenario, seed, node id, schedule)`` — no inter-process
communication during the run.  :class:`FleetRunner` shards the node-id
range into batches, executes them either inline or on a
:mod:`multiprocessing` pool, then merges per-node results in node-id
order.  Because the merge order is fixed and every random draw comes
from named per-node streams, serial and parallel execution produce
**bit-identical** :class:`~repro.net.stats.FleetSummary` values — the
property the determinism tests pin down.

Wall-clock timing (elapsed seconds, nodes/second) is reported on
:class:`FleetResult`, *outside* the deterministic summary.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..parallel import even_shard_size, pool_map, shard
from .compute import (
    ComputeResolver,
    ComputeSettings,
    ComputeSummary,
    ResolvedCompute,
    compute_settings,
    record_compute_counters,
)
from .node import (
    ERROR_SAMPLE_HZ,
    REFERENCE_NODE_ID,
    NodeResult,
    build_node,
)
from .radio import Beacon, beacon_schedule
from .scenarios import SCENARIOS, Scenario, parse_scenario, with_protocol
from .stats import FleetSummary, GroupStats, SyncError

#: Default fleet seed (the paper's year).
DEFAULT_SEED = 2014

#: Default simulated seconds per node (shorter than the single-node
#: experiments' 60 s: fleet cost is per-node work × fleet size).
DEFAULT_DURATION_S = 10.0


@dataclass(frozen=True)
class FleetConfig:
    """One fleet run: a scenario instantiated at a size and seed.

    Attributes:
        scenario: deployment description (see
            :mod:`repro.net.scenarios`).
        n_nodes: fleet size, including the reference node (0 is
            allowed and yields an empty summary).
        duration_s: simulated seconds of ECG per node.
        seed: fleet seed; all per-node streams derive from it.
        compute: app-compute resolution settings (None = simulate
            inline per node, the legacy path).
    """

    scenario: Scenario
    n_nodes: int
    duration_s: float = DEFAULT_DURATION_S
    seed: int = DEFAULT_SEED
    compute: ComputeSettings | None = None


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one :meth:`FleetRunner.run` call.

    Attributes:
        summary: deterministic aggregate (identical across serial and
            parallel execution for the same config).
        nodes: per-node results, ordered by node id.
        elapsed_s: wall-clock seconds the node simulations took.
        nodes_per_second: throughput over ``elapsed_s``.
        workers: worker processes used (1 = serial).
        shards: number of node batches executed.
        mode: ``"serial"`` or ``"parallel"``.
        compute: compute-resolution account (None = legacy inline
            simulation).
    """

    summary: FleetSummary
    nodes: tuple[NodeResult, ...]
    elapsed_s: float
    nodes_per_second: float
    workers: int
    shards: int
    mode: str
    compute: ComputeSummary | None = None


def _simulate_shard(payload: tuple) -> list[NodeResult]:
    """Simulate one batch of node ids (top-level: must pickle).

    ``resolved`` maps compute keys to pre-resolved entries (resolved
    once in the main process); None keeps the legacy inline path.  A
    missing key is a hard error — workers never fall back to silent
    re-simulation.
    """
    config, node_ids, beacons, sample_times, ref_readings, resolved = payload
    results = []
    for node_id in node_ids:
        node = build_node(
            config.scenario, node_id, config.seed, config.duration_s
        )
        compute: ResolvedCompute | None = None
        if resolved is not None:
            compute = resolved[node.compute_request().key]
        results.append(
            node.simulate(
                beacons, sample_times, ref_readings, compute=compute
            )
        )
    return results


class FleetRunner:
    """Executes a :class:`FleetConfig` serially or on a process pool."""

    def __init__(self, config: FleetConfig) -> None:
        if config.n_nodes < 0:
            raise ValueError("fleet size cannot be negative")
        if config.duration_s <= 0:
            raise ValueError("duration must be positive")
        self.config = config

    def _schedule(self) -> tuple[list[Beacon], list[float], list[float]]:
        """Precompute beacons, error-sample times and ref readings."""
        config = self.config
        if config.n_nodes == 0:
            return [], [], []
        reference = build_node(
            config.scenario, REFERENCE_NODE_ID, config.seed, config.duration_s
        )
        beacons = beacon_schedule(
            config.scenario.beacon_period_s, config.duration_s, reference.clock
        )
        samples = int(config.duration_s * ERROR_SAMPLE_HZ)
        sample_times = [(i + 1) / ERROR_SAMPLE_HZ for i in range(samples)]
        ref_readings = [reference.clock.read(t) for t in sample_times]
        return beacons, sample_times, ref_readings

    def run(
        self, workers: int = 1, shard_size: int | None = None
    ) -> FleetResult:
        """Simulate the whole fleet.

        Args:
            workers: worker processes; 1 executes inline.  More
                workers than shards is allowed (the extras idle).
            shard_size: nodes per batch; defaults to an even split
                across workers.  The node count need not divide
                evenly — the last shard is simply shorter.
        """
        if workers < 1:
            raise ValueError("need at least one worker")
        config = self.config
        node_ids = list(range(config.n_nodes))
        if shard_size is None:
            shard_size = even_shard_size(len(node_ids), workers)
        shards = shard(node_ids, shard_size)
        beacons, sample_times, ref_readings = self._schedule()
        parallel = workers > 1 and len(shards) > 1
        workers_used = min(workers, len(shards)) if parallel else 1
        obs.add("net.fleet.runs")
        obs.add("net.fleet.nodes", config.n_nodes)
        # The resolve step runs inside the timed window: reported
        # throughput always includes the compute work, whichever tier
        # performed it.
        span = obs.span("net.fleet.run").start()
        resolution = None
        if config.compute is not None and node_ids:
            with obs.span("net.compute.resolve"):
                resolution = ComputeResolver(config.compute).resolve(
                    [
                        build_node(
                            config.scenario,
                            node_id,
                            config.seed,
                            config.duration_s,
                        ).compute_request()
                        for node_id in node_ids
                    ]
                )
        resolved = resolution.table if resolution is not None else None
        payloads = [
            (config, ids, beacons, sample_times, ref_readings, resolved)
            for ids in shards
        ]
        if parallel:
            batches = pool_map(_simulate_shard, payloads, workers_used)
        else:
            batches = [_simulate_shard(payload) for payload in payloads]
        elapsed = span.stop()
        if resolution is not None:
            record_compute_counters(resolution.summary)

        results = sorted(
            (node for batch in batches for node in batch),
            key=lambda node: node.node_id,
        )
        return FleetResult(
            summary=self._aggregate(results, beacons),
            nodes=tuple(results),
            elapsed_s=elapsed,
            nodes_per_second=(len(results) / elapsed if elapsed > 0 else 0.0),
            workers=workers_used,
            shards=len(shards),
            mode="parallel" if parallel else "serial",
            compute=resolution.summary if resolution is not None else None,
        )

    @staticmethod
    def _group_stats(
        results: list[NodeResult], key
    ) -> tuple[GroupStats, ...]:
        """Per-group aggregates over a node grouping key, name order."""
        groups: dict[str, list[NodeResult]] = {}
        for node in results:
            groups.setdefault(key(node), []).append(node)
        stats = []
        for name in sorted(groups):
            members = groups[name]
            followers = [
                node for node in members if node.node_id != REFERENCE_NODE_ID
            ]
            power = sum(node.power.total_uw for node in members)
            floor = sum(node.floor_mhz for node in members)
            stats.append(
                GroupStats(
                    name=name,
                    nodes=len(members),
                    mean_power_uw=power / len(members),
                    mean_floor_mhz=floor / len(members),
                    repairs=sum(node.repairs for node in members),
                    steady_sync=SyncError.merged(
                        [node.steady_sync for node in followers]
                    ),
                )
            )
        return tuple(stats)

    def _aggregate(
        self, results: list[NodeResult], beacons: list[Beacon]
    ) -> FleetSummary:
        """Merge per-node results (already sorted by node id)."""
        config = self.config
        n = len(results)
        total_power = sum(node.power.total_uw for node in results)
        total_radio = sum(node.radio_uw for node in results)
        followers = [
            node for node in results if node.node_id != REFERENCE_NODE_ID
        ]
        return FleetSummary(
            scenario=config.scenario.name,
            protocol=config.scenario.protocol,
            n_nodes=n,
            duration_s=config.duration_s,
            total_power_uw=total_power,
            mean_power_uw=total_power / n if n else 0.0,
            mean_radio_uw=total_radio / n if n else 0.0,
            sync=SyncError.merged([node.sync for node in followers]),
            steady_sync=SyncError.merged(
                [node.steady_sync for node in followers]
            ),
            unsync=SyncError.merged([node.unsync for node in followers]),
            steady_unsync=SyncError.merged(
                [node.steady_unsync for node in followers]
            ),
            beacons_sent=len(beacons) if n else 0,
            beacons_heard=sum(node.beacons_heard for node in results),
            power_loss_resets=sum(node.resets for node in results),
            source=config.scenario.apps.kind,
            families=self._group_stats(
                results, lambda node: node.family or node.app_name
            ),
            policies=self._group_stats(
                results, lambda node: node.policy or "paper"
            ),
        )


def run_fleet(
    scenario: str | Scenario,
    n_nodes: int | None = None,
    duration_s: float = DEFAULT_DURATION_S,
    seed: int = DEFAULT_SEED,
    protocol: str | None = None,
    workers: int = 1,
    shard_size: int | None = None,
    compute: str | ComputeSettings | None = None,
    compute_cache: str | None = None,
) -> FleetResult:
    """Convenience wrapper: resolve a scenario and run it once.

    Args:
        scenario: preset name, a ``gen:...`` scenario token (see
            :func:`repro.net.scenarios.parse_scenario`) or an
            explicit :class:`Scenario`.
        n_nodes: fleet size; defaults to the scenario's preset size.
        duration_s: simulated seconds per node.
        seed: fleet seed.
        protocol: override the scenario's sync protocol (e.g.
            ``"none"`` for the unsynchronized baseline).
        workers: worker processes (1 = serial).
        shard_size: explicit batch size (defaults to an even split).
        compute: ``"exact"`` / ``"analytic"`` /
            :class:`~repro.net.compute.ComputeSettings` to resolve
            app compute through the fleet fast path (None = legacy
            inline simulation; ``"exact"`` is byte-identical to it).
        compute_cache: on-disk compute-cache root (used when
            ``compute`` is a mode string).

    Raises:
        ValueError: unknown scenario name — rejected here at the
            entry point, with the valid preset names listed.
    """
    if isinstance(scenario, str):
        # Fail fast with the full choice list instead of letting an
        # unknown name surface deep inside node construction.
        scenario = parse_scenario(scenario)
    elif not isinstance(scenario, Scenario):
        raise ValueError(
            f"scenario must be a name or Scenario, got "
            f"{type(scenario).__name__!r}; names: {sorted(SCENARIOS)}"
        )
    scenario = with_protocol(scenario, protocol)
    config = FleetConfig(
        scenario=scenario,
        n_nodes=scenario.default_nodes if n_nodes is None else n_nodes,
        duration_s=duration_s,
        seed=seed,
        compute=compute_settings(compute, compute_cache),
    )
    return FleetRunner(config).run(workers=workers, shard_size=shard_size)
