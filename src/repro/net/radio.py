"""Beacon radio model: delivery, loss, delay and per-message energy.

A deliberately small link model in the spirit of Cappelle et al.
("Low-Power Synchronization for Multi-IMU WSNs"): one hub node
broadcasts periodic sync beacons, every wearable listens.  The model
captures what the time-sync layer and the power ledger care about —
when a beacon is *heard* (propagation delay + reception jitter +
independent loss per receiver) and what hearing it *costs* (per-message
TX/RX energy plus an always-on listening floor, folded into the node's
:class:`repro.power.energy.PowerReport` as a ``radio`` category).

Bit-level framing, contention and MAC back-off are out of scope: sync
beacons are tiny, sparse and scheduled, so collisions are negligible
at the fleet sizes simulated here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .clock import LocalClock


@dataclass(frozen=True)
class RadioSpec:
    """Link and energy parameters of the node radio.

    Defaults approximate a duty-cycled 802.15.4/BLE-class radio used
    only for sync beacons: a short packet costs a few microjoules and
    the scheduled listening windows average out to a few microwatts.

    Attributes:
        tx_uj_per_msg: energy to transmit one beacon, in µJ.
        rx_uj_per_msg: energy to receive one beacon, in µJ.
        listen_uw: average power of the (duty-cycled) listening
            windows, in µW.
        loss_prob: independent probability that a given receiver
            misses a given beacon.
        propagation_s: fixed propagation + stack latency between the
            sender's timestamp and the receiver's interrupt.
        delay_jitter_s: standard deviation of the variable part of
            that latency, in seconds.
    """

    tx_uj_per_msg: float = 3.0
    rx_uj_per_msg: float = 2.0
    listen_uw: float = 2.5
    loss_prob: float = 0.02
    propagation_s: float = 200e-9
    delay_jitter_s: float = 20e-6


@dataclass(frozen=True)
class Beacon:
    """One sync broadcast from the reference node.

    Attributes:
        seq: sequence number (0-based).
        tx_global: true (global) transmission time.
        ref_timestamp: the reference node's *local* timestamp placed
            in the packet — all a receiver ever learns.
    """

    seq: int
    tx_global: float
    ref_timestamp: float


@dataclass(frozen=True)
class Reception:
    """A beacon as heard by one receiver."""

    beacon: Beacon
    rx_global: float
    rx_local: float


@dataclass
class RadioEnergy:
    """Message counters of one node, priced into an average power."""

    tx_messages: int = 0
    rx_messages: int = 0
    listening: bool = True

    def average_uw(self, spec: RadioSpec, duration_s: float) -> float:
        """Average radio power over the simulated window, in µW."""
        if duration_s <= 0.0:
            return 0.0
        dynamic_uj = (
            self.tx_messages * spec.tx_uj_per_msg
            + self.rx_messages * spec.rx_uj_per_msg
        )
        floor = spec.listen_uw if self.listening else 0.0
        return dynamic_uj / duration_s + floor


def receive_beacons(
    beacons: list[Beacon],
    clock: LocalClock,
    spec: RadioSpec,
    rng: random.Random,
) -> list[Reception]:
    """Deliver a beacon schedule to one receiver.

    Loss and delay jitter are drawn per (receiver, beacon) from the
    receiver's own RNG in beacon order, so the outcome is a pure
    function of the node seed.  The local timestamp additionally
    carries the receiver clock's timestamping noise.
    """
    heard: list[Reception] = []
    for beacon in beacons:
        lost = rng.random() < spec.loss_prob
        delay = spec.propagation_s
        if spec.delay_jitter_s > 0.0:
            delay += abs(rng.gauss(0.0, spec.delay_jitter_s))
        if lost:
            continue
        rx_global = beacon.tx_global + delay
        heard.append(
            Reception(
                beacon=beacon,
                rx_global=rx_global,
                rx_local=clock.timestamp(rx_global),
            )
        )
    return heard


#: Boot delay before the reference's first broadcast, seconds.
FIRST_BEACON_S = 0.5


def beacon_schedule(
    period_s: float, duration_s: float, reference: LocalClock
) -> list[Beacon]:
    """The reference node's broadcast schedule over one window.

    Beacons start shortly after boot (:data:`FIRST_BEACON_S`) and
    carry the reference's *exact* local time: the hub timestamps in
    hardware at the antenna, the receivers' noise dominates.
    """
    if period_s <= 0.0:
        raise ValueError("beacon period must be positive")
    beacons: list[Beacon] = []
    seq = 0
    t = min(FIRST_BEACON_S, period_s)
    while t < duration_s:
        beacons.append(
            Beacon(seq=seq, tx_global=t, ref_timestamp=reference.read(t))
        )
        seq += 1
        t += period_s
    return beacons
