"""Summary dataclasses shared by the fleet runner and `repro.eval`.

These are defined here (dependency-free) and re-exported from
:mod:`repro.eval.report`, so the network report and the Table-I-style
reports format results through one path without `repro.net` ever
importing the evaluation layer.

:class:`SyncError` supports *exact* merging: per-node statistics carry
their sample counts, and :meth:`SyncError.merged` recombines them with
count-weighted sums in caller order.  The fleet runner always merges
in node-id order, which is what makes serial and sharded-parallel
execution bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SyncError:
    """Residual inter-node clock error over a set of samples.

    Attributes:
        count: number of (node, instant) error samples aggregated.
        mean_abs_s: mean absolute error, seconds.
        rms_s: root-mean-square error, seconds.
        max_abs_s: worst absolute error, seconds.
    """

    count: int = 0
    mean_abs_s: float = 0.0
    rms_s: float = 0.0
    max_abs_s: float = 0.0

    @classmethod
    def from_samples(cls, errors_s: list[float]) -> "SyncError":
        """Summarise raw signed error samples (seconds)."""
        if not errors_s:
            return cls()
        n = len(errors_s)
        return cls(
            count=n,
            mean_abs_s=sum(abs(e) for e in errors_s) / n,
            rms_s=math.sqrt(sum(e * e for e in errors_s) / n),
            max_abs_s=max(abs(e) for e in errors_s),
        )

    @classmethod
    def merged(cls, parts: list["SyncError"]) -> "SyncError":
        """Exactly recombine per-node summaries (count-weighted)."""
        total = sum(part.count for part in parts)
        if total == 0:
            return cls()
        mean = sum(part.count * part.mean_abs_s for part in parts) / total
        mean_sq = sum(part.count * part.rms_s**2 for part in parts) / total
        return cls(
            count=total,
            mean_abs_s=mean,
            rms_s=math.sqrt(mean_sq),
            max_abs_s=max(part.max_abs_s for part in parts),
        )


def improvement_ratio(unsync_s: float, sync_s: float) -> float:
    """How many times smaller the synced error is (unsync / sync).

    A perfectly synced fleet (zero residual error) yields ``inf`` when
    the free-running error is positive and ``1.0`` when both are zero.
    The network report and the fleet sweep runner both quote this
    figure, so its edge-case semantics live here, once.
    """
    if sync_s > 0.0:
        return unsync_s / sync_s
    return float("inf") if unsync_s > 0.0 else 1.0


@dataclass(frozen=True)
class GroupStats:
    """Aggregate over one node group of a heterogeneous fleet.

    Fleets whose nodes draw from generated suites are reported per
    topology *family* and per mapping *policy* on top of the
    fleet-wide summary; each group row is one of these.

    Attributes:
        name: group key (topology family, benchmark name or mapping
            policy).
        nodes: nodes in the group (reference included).
        mean_power_uw: mean average node power of the group, µW.
        mean_floor_mhz: mean per-app clock floor of the group's
            placements (0 for paper-default benchmark nodes).
        repairs: total replicas trimmed across the group.
        steady_sync: merged steady-state sync error of the group's
            follower nodes.
    """

    name: str
    nodes: int
    mean_power_uw: float
    mean_floor_mhz: float
    repairs: int
    steady_sync: SyncError = field(default_factory=SyncError)


@dataclass(frozen=True)
class TierSummary:
    """Aggregate over one tier of a hierarchical fleet.

    Hierarchical runs report two error views per tier: the *hop*
    error (each member against its own parent — what the tier's
    protocol actually controls) and the *effective* error (composed
    across every hop down from the backbone — what an application
    distributed over the fleet observes).  The free-running
    counterfactuals are composed the same way.

    Attributes:
        name: tier label (``backbone``, ``ward`` ...).
        protocol: sync protocol the tier's members run.
        beacon_period_s: period of the beacons members receive.
        fan_out: members per parent node.
        nodes: total members of the tier.
        mean_power_uw: mean average member power (incl. radio), µW.
        mean_radio_uw: mean radio power per member, µW.
        mean_floor_mhz: mean per-app clock floor of the members'
            placements (0 for paper-default benchmark nodes).
        repairs: total replicas trimmed across the tier.
        beacons_sent: beacons broadcast *to* this tier by its parent
            nodes (each broadcast counted once, not per listener).
        beacons_heard: total receptions across the tier.
        power_loss_resets: total power-loss reboots (leaf tiers only;
            gateways are powered infrastructure).
        hop_sync: single-hop error against the members' own parents.
        steady_hop_sync: single-hop error over the second half.
        sync: effective error against the backbone (all hops
            composed).
        steady_sync: effective error over the second half.
        unsync: free-running effective counterfactual.
        steady_unsync: free-running effective error, second half.
    """

    name: str
    protocol: str
    beacon_period_s: float
    fan_out: int
    nodes: int
    mean_power_uw: float = 0.0
    mean_radio_uw: float = 0.0
    mean_floor_mhz: float = 0.0
    repairs: int = 0
    beacons_sent: int = 0
    beacons_heard: int = 0
    power_loss_resets: int = 0
    hop_sync: SyncError = field(default_factory=SyncError)
    steady_hop_sync: SyncError = field(default_factory=SyncError)
    sync: SyncError = field(default_factory=SyncError)
    steady_sync: SyncError = field(default_factory=SyncError)
    unsync: SyncError = field(default_factory=SyncError)
    steady_unsync: SyncError = field(default_factory=SyncError)


@dataclass(frozen=True)
class FleetSummary:
    """Deterministic aggregate of one fleet run.

    Everything here is a pure function of (scenario, seed, node
    count, duration): wall-clock timing lives on
    :class:`repro.net.fleet.FleetResult` instead, so summaries can be
    compared bit-for-bit across serial and parallel execution.

    Attributes:
        scenario: scenario name.
        protocol: sync protocol name the fleet ran.
        n_nodes: fleet size (including the reference node).
        duration_s: simulated seconds.
        total_power_uw: summed average node power (incl. radio), µW.
        mean_power_uw: mean average node power, µW.
        mean_radio_uw: mean radio power per node, µW.
        sync: residual sync error over the whole run (non-reference
            nodes only).
        steady_sync: residual sync error over the second half of the
            run — the steady-state figure scenarios are judged on.
        unsync: free-running counterfactual error (same fleet, every
            beacon ignored), computed in the same pass.
        steady_unsync: free-running error over the second half.
        beacons_sent: beacons broadcast by the reference node.
        beacons_heard: total receptions across the fleet.
        power_loss_resets: total power-loss reboots across the fleet.
        source: app-source kind of the scenario (``benchmark``,
            ``generated-suite`` or ``mixed``).
        families: per-family group aggregates, name order (benchmark
            nodes group under their app name).
        policies: per-mapping-policy group aggregates, name order
            (paper-default nodes group under ``paper``).
    """

    scenario: str
    protocol: str
    n_nodes: int
    duration_s: float
    total_power_uw: float = 0.0
    mean_power_uw: float = 0.0
    mean_radio_uw: float = 0.0
    sync: SyncError = field(default_factory=SyncError)
    steady_sync: SyncError = field(default_factory=SyncError)
    unsync: SyncError = field(default_factory=SyncError)
    steady_unsync: SyncError = field(default_factory=SyncError)
    beacons_sent: int = 0
    beacons_heard: int = 0
    power_loss_resets: int = 0
    source: str = "benchmark"
    families: tuple[GroupStats, ...] = ()
    policies: tuple[GroupStats, ...] = ()
