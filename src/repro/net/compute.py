"""Fleet-scale compute fast path: cache + batched analytic scoring.

Every fleet node pays two kinds of work.  The radio/clock/sync part —
beacon reception, drift replay, residual-error sampling — is cheap,
node-specific and stays exact.  The *app compute* part (the
:class:`~repro.power.energy.PowerReport` from a full cycle-level
:func:`repro.sysc.engine.simulate` run) is expensive and massively
shared: thousands of nodes bind the same ``(app, plan, mode,
num_cores, duration)`` and differ only in heart rate, which the
simulator reduces to the beat schedule's *abnormal* events.

This module resolves that shared part through three tiers:

1. **ComputeCache** — a process-local memo plus an optional
   content-addressed disk layer (same layout and code-fingerprint
   namespacing rules as :mod:`repro.sweep.cache`), keyed by
   ``(app fingerprint, plan hash, mode, num_cores, duration_s,
   schedule signature)``.
2. **Batched analytic tier** — all distinct uncached multi-core keys
   in a fleet/wave are grouped per application and scored in one
   :meth:`repro.oracle.AnalyticModel.score` call each, gated by
   :func:`repro.oracle.calibrate` (outside tolerance = nothing is
   screened).
3. **Exact fallback** — plain ``simulate()`` for single-core plans,
   unconvertible placements, or when the analytic tier is off.

Results travel as plain JSON payloads (:data:`COMPUTE_ENTRY_SCHEMA`)
and are rebuilt into fresh ``PowerReport`` objects with the category
insertion order of :func:`repro.power.energy.compute_power`, so a
cache hit is byte-identical to the simulation it replaced — cold and
warm runs ``cmp`` equal.

Counters (``net.compute.*``) use *logical* cache semantics — hits are
``requests - distinct keys``, independent of what happens to be on
disk — so metrics artifacts stay deterministic across cache states,
worker counts and resume points.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from .. import obs
from ..apps.mapping import MappingPlan, map_multicore
from ..apps.phases import AppSpec
from ..power.energy import PowerReport
from ..power.vfs import MIN_SYSTEM_CLOCK_MHZ, OperatingPoint
from ..sysc.engine import BeatEvent, Mode, simulate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .appsource import AppBinding

__all__ = [
    "ANALYTIC_TIER",
    "CALIBRATE_DURATION_S",
    "CALIBRATE_SAMPLES",
    "COMPUTE_CACHE_ENV",
    "COMPUTE_ENTRY_SCHEMA",
    "COMPUTE_MODES",
    "EXACT_TIER",
    "ComputeCache",
    "ComputeRequest",
    "ComputeResolution",
    "ComputeResolver",
    "ComputeSettings",
    "ComputeSummary",
    "ResolvedCompute",
    "app_plan_key",
    "build_request",
    "clear_process_caches",
    "compute_key",
    "compute_settings",
    "record_compute_counters",
    "report_from_payload",
    "schedule_signature",
]

#: Environment override for the on-disk compute cache root.  Unlike
#: the sweep cache there is *no* implicit home-directory default: the
#: disk layer is off unless a root is configured here or per run.
COMPUTE_CACHE_ENV = "REPRO_COMPUTE_CACHE"

#: Schema tag of one cached compute entry.
COMPUTE_ENTRY_SCHEMA = "repro-compute-entry/1"

#: Recognised resolver modes (CLI ``--compute`` choices).
COMPUTE_MODES = ("exact", "analytic")

#: Tier labels recorded on resolved entries.
EXACT_TIER = "exact"
ANALYTIC_TIER = "analytic"
_CALIBRATION_TIER = "calibration"

#: Reduced calibration budget: the gate runs once per fleet per
#: platform width, so a couple of short samples per app suffice (the
#: analytic model is closed-form — its error does not depend on the
#: simulated duration).
CALIBRATE_SAMPLES = 2
CALIBRATE_DURATION_S = 0.5

#: Category insertion order of :func:`repro.power.energy.compute_power`
#: — ``PowerReport.total_uw`` sums in this order, so cached payloads
#: must rebuild it to stay float-for-float identical to a live run.
_CATEGORY_ORDER = (
    "cores_logic",
    "clock_tree",
    "instr_mem",
    "data_mem",
    "interconnect",
    "synchronizer",
    "leakage",
)


@dataclass(frozen=True)
class ComputeSettings:
    """How a fleet resolves its app-compute work.

    Attributes:
        mode: ``"exact"`` (cache + dedupe, every miss simulated) or
            ``"analytic"`` (misses screened by the calibrated
            analytic model where possible).
        cache_dir: on-disk cache root; None means the
            :data:`COMPUTE_CACHE_ENV` override or, failing that,
            process-local memoisation only.

    Frozen and hashable so it can ride inside
    :class:`~repro.net.fleet.FleetConfig`.
    """

    mode: str = "exact"
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        if self.mode not in COMPUTE_MODES:
            raise ValueError(
                f"unknown compute mode {self.mode!r}; choose from "
                f"{list(COMPUTE_MODES)}"
            )


def compute_settings(
    compute: "str | ComputeSettings | None",
    cache_dir: str | None = None,
) -> ComputeSettings | None:
    """Normalise a user-facing ``compute=`` argument.

    Accepts None (legacy inline simulation), a mode string or a
    ready-made :class:`ComputeSettings`.
    """
    if compute is None:
        return None
    if isinstance(compute, ComputeSettings):
        return compute
    return ComputeSettings(mode=str(compute), cache_dir=cache_dir)


@dataclass(frozen=True)
class ComputeRequest:
    """One node's app-compute work, content-addressed.

    Attributes:
        key: content hash — nodes sharing it produce byte-identical
            simulation results (the schedule signature covers every
            schedule property ``simulate()`` reads).
        binding: the node's app binding.
        mode: simulator mode the node would run.
        duration_s: simulated seconds.
        schedule: the node's full beat schedule (used only if this
            request is the first of its key to reach the exact tier).
    """

    key: str
    binding: "AppBinding"
    mode: Mode
    duration_s: float
    schedule: tuple[BeatEvent, ...]


@dataclass(frozen=True)
class ResolvedCompute:
    """A resolved compute entry: JSON payload + provenance tier."""

    key: str
    tier: str
    payload: dict

    def report(self) -> PowerReport:
        """A fresh, mutable ``PowerReport`` (safe to annotate)."""
        return report_from_payload(self.payload)


@dataclass(frozen=True)
class ComputeSummary:
    """Deterministic account of one fleet's compute resolution.

    Cache counts are *logical*: ``cache_hits`` is the dedupe win
    (``requests - distinct_keys``) and ``cache_misses`` /
    ``cache_stores`` equal ``distinct_keys`` — independent of the
    physical cache state, so cold and warm runs report identically.
    """

    mode: str
    requests: int
    distinct_keys: int
    screened: int
    exact: int
    calibration: dict | None = None

    @property
    def cache_hits(self) -> int:
        return self.requests - self.distinct_keys

    @property
    def cache_misses(self) -> int:
        return self.distinct_keys

    @property
    def cache_stores(self) -> int:
        return self.distinct_keys

    def to_mapping(self) -> dict:
        """JSON-ready form (the artifact ``compute_summary`` block)."""
        payload = {
            "mode": self.mode,
            "requests": self.requests,
            "distinct_keys": self.distinct_keys,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "stores": self.cache_stores,
            },
            "screened": self.screened,
            "exact": self.exact,
        }
        if self.calibration is not None:
            payload["calibration"] = self.calibration
        return payload


@dataclass(frozen=True)
class ComputeResolution:
    """Everything a resolver run produced."""

    table: dict[str, ResolvedCompute]
    summary: ComputeSummary


def schedule_signature(
    schedule: Sequence[BeatEvent], ticks: int
) -> list:
    """The schedule properties ``simulate()`` actually reads.

    Multi-core consumes only abnormal events clipped to
    ``[0, ticks)`` (grouped by sample); the single-core clock
    requirement counts *all* abnormal events.  Normal beats never
    influence the result, so two schedules with equal signatures
    yield byte-identical simulations — dense wards (ratio 0) collapse
    every same-app node onto one signature.
    """
    total = 0
    clipped: list[int] = []
    for event in schedule:
        if event.abnormal:
            total += 1
            if 0 <= event.sample < ticks:
                clipped.append(event.sample)
    clipped.sort()
    return [ticks, total, clipped]


def app_plan_key(
    app: AppSpec, plan: MappingPlan | None, num_cores: int
) -> str:
    """Content hash of ``(app, placement, width)``.

    Reuses :func:`repro.gen.generator.app_fingerprint` for the app
    content and the search :meth:`Candidate.key` for multi-core
    placements, so the hash survives process boundaries and
    regeneration (unlike ``id()``-based memo keys).
    """
    from ..gen.generator import app_fingerprint

    if plan is None:
        plan_key = "default"
    elif plan.multicore:
        from ..search.space import candidate_from_plan

        plan_key = candidate_from_plan(plan).key()
    else:
        plan_key = "single-core"
    blob = json.dumps(
        {
            "app": app_fingerprint(app),
            "num_cores": num_cores,
            "plan": plan_key,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def compute_key(
    app_key: str,
    mode: Mode,
    duration_s: float,
    signature: list,
    floor_mhz: float = MIN_SYSTEM_CLOCK_MHZ,
) -> str:
    """Content-addressed cache key of one compute unit."""
    blob = json.dumps(
        {
            "app": app_key,
            "duration_s": duration_s,
            "floor_mhz": floor_mhz,
            "mode": mode.value,
            "schedule": signature,
            "schema": COMPUTE_ENTRY_SCHEMA,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:40]


def build_request(
    binding: "AppBinding",
    mode: Mode,
    duration_s: float,
    schedule: Sequence[BeatEvent],
) -> ComputeRequest:
    """Content-address one node's compute work."""
    from .appsource import binding_app_key

    ticks = int(round(duration_s * binding.app.fs))
    signature = schedule_signature(schedule, ticks)
    key = compute_key(
        binding_app_key(binding), mode, duration_s, signature
    )
    return ComputeRequest(
        key=key,
        binding=binding,
        mode=mode,
        duration_s=duration_s,
        schedule=tuple(schedule),
    )


def payload_from_report(report: PowerReport, tier: str) -> dict:
    """Serialise a ``PowerReport`` into a cache entry payload."""
    return {
        "schema": COMPUTE_ENTRY_SCHEMA,
        "tier": tier,
        "frequency_mhz": report.operating_point.frequency_mhz,
        "voltage": report.operating_point.voltage,
        "duration_s": report.duration_s,
        "categories": dict(report.categories),
    }


def report_from_payload(payload: dict) -> PowerReport:
    """Rebuild a ``PowerReport`` in canonical category order.

    ``total_uw`` sums the category dict in insertion order; JSON
    round-trips (and ``sort_keys``) would reorder it, so the report
    is rebuilt in :data:`_CATEGORY_ORDER` to keep the float sum
    bit-identical to a live ``compute_power`` result.
    """
    categories = payload["categories"]
    ordered = {
        name: float(categories[name])
        for name in _CATEGORY_ORDER
        if name in categories
    }
    for name in sorted(categories):
        if name not in ordered:
            ordered[name] = float(categories[name])
    return PowerReport(
        operating_point=OperatingPoint(
            frequency_mhz=float(payload["frequency_mhz"]),
            voltage=float(payload["voltage"]),
        ),
        duration_s=float(payload["duration_s"]),
        categories=ordered,
    )


#: Process-wide memo layers (cache-root independent: payloads are
#: pure functions of their content-addressed keys).
_MEMO: dict[str, dict] = {}
_CALIBRATION_MEMO: dict[str, dict] = {}


def clear_process_caches() -> None:
    """Drop the process-local memo layers (test isolation hook)."""
    _MEMO.clear()
    _CALIBRATION_MEMO.clear()


class ComputeCache:
    """Process memo + optional content-addressed disk layer.

    The disk layout mirrors :class:`repro.sweep.cache.ResultCache`:
    ``<root>/<code fingerprint>/<key[:2]>/<key>.json``, atomic
    writes, and corrupt or foreign files read as misses.  The cache
    is deliberately silent in metrics — physical hit patterns depend
    on prior runs, so only the resolver's logical counters surface.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get(COMPUTE_CACHE_ENV) or None
        self.root = Path(root) if root is not None else None
        self._fingerprint: str | None = None

    @property
    def fingerprint(self) -> str:
        """Code fingerprint namespacing the disk layer (lazy)."""
        if self._fingerprint is None:
            from ..sweep.cache import code_fingerprint

            self._fingerprint = code_fingerprint()
        return self._fingerprint

    def _path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / self.fingerprint / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Look up one entry (memo first, then disk)."""
        payload = _MEMO.get(key)
        if payload is not None:
            return payload
        if self.root is None:
            return None
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != COMPUTE_ENTRY_SCHEMA
            or not isinstance(payload.get("categories"), dict)
        ):
            return None
        _MEMO[key] = payload
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store one entry (memo always, disk when configured)."""
        _MEMO[key] = payload
        if self.root is None:
            return
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".{os.getpid()}.tmp")
            tmp.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, path)
        except OSError:
            return


class ComputeResolver:
    """Resolve a batch of compute requests through the three tiers."""

    def __init__(self, settings: ComputeSettings) -> None:
        self.settings = settings
        self.cache = ComputeCache(settings.cache_dir)

    def resolve(
        self, requests: Sequence[ComputeRequest]
    ) -> ComputeResolution:
        """Resolve every request; returns a key-indexed table.

        Deterministic for a given request set: dedupe, grouping and
        all tier decisions are functions of the content-addressed
        keys alone (never of the physical cache state).
        """
        unique: dict[str, ComputeRequest] = {}
        for request in requests:
            unique.setdefault(request.key, request)

        calibration: dict | None = None
        screen = False
        if self.settings.mode == "analytic":
            calibration = self._calibration(unique.values())
            screen = bool(calibration["within"])

        table: dict[str, ResolvedCompute] = {}
        exact_queue: list[ComputeRequest] = []
        groups: dict[str, list[tuple[ComputeRequest, object]]] = {}
        for key in sorted(unique):
            request = unique[key]
            payload = self.cache.get(key)
            if payload is not None:
                table[key] = ResolvedCompute(
                    key=key, tier=str(payload["tier"]), payload=payload
                )
                continue
            candidate = None
            if screen and request.mode is Mode.MULTI_CORE:
                candidate = self._candidate(request)
            if candidate is None:
                exact_queue.append(request)
            else:
                groups.setdefault(self._group_key(request), []).append(
                    (request, candidate)
                )

        for group in sorted(groups):
            self._score_group(groups[group], table, exact_queue)
        for request in sorted(exact_queue, key=lambda r: r.key):
            self._simulate(request, table)

        screened = sum(
            1
            for request in requests
            if table[request.key].tier == ANALYTIC_TIER
        )
        summary = ComputeSummary(
            mode=self.settings.mode,
            requests=len(requests),
            distinct_keys=len(unique),
            screened=screened,
            exact=len(requests) - screened,
            calibration=calibration,
        )
        return ComputeResolution(table=table, summary=summary)

    def _candidate(self, request: ComputeRequest):
        """The request's placement as a search candidate, or None."""
        from ..search.space import candidate_from_plan

        plan = request.binding.plan
        try:
            if plan is None:
                plan = map_multicore(
                    request.binding.app, request.binding.num_cores
                )
            return candidate_from_plan(plan)
        except ValueError:
            return None

    def _group_key(self, request: ComputeRequest) -> str:
        """Batch key: requests an ``AnalyticModel`` can share."""
        from ..gen.generator import app_fingerprint

        ticks = int(round(request.duration_s * request.binding.app.fs))
        return json.dumps(
            [
                app_fingerprint(request.binding.app),
                request.binding.num_cores,
                request.duration_s,
                schedule_signature(request.schedule, ticks),
            ],
            separators=(",", ":"),
        )

    def _score_group(
        self,
        items: list[tuple[ComputeRequest, object]],
        table: dict[str, ResolvedCompute],
        exact_queue: list[ComputeRequest],
    ) -> None:
        """Score one app group in a single vectorised model call."""
        from ..oracle.model import AnalyticModel

        first = items[0][0]
        with obs.suspended():
            model = AnalyticModel(
                first.binding.app,
                num_cores=first.binding.num_cores,
                kind="power",
                duration_s=first.duration_s,
                schedule=first.schedule,
            )
            try:
                scores = model.score([cand for _, cand in items])
            except ValueError:
                exact_queue.extend(request for request, _ in items)
                return
        for index, (request, _) in enumerate(items):
            payload = payload_from_report(
                scores.power_report(index), ANALYTIC_TIER
            )
            self.cache.put(request.key, payload)
            table[request.key] = ResolvedCompute(
                key=request.key, tier=ANALYTIC_TIER, payload=payload
            )

    def _simulate(
        self,
        request: ComputeRequest,
        table: dict[str, ResolvedCompute],
    ) -> None:
        """Exact tier: one full cycle-level simulation per key.

        Runs under suspended metrics — how many simulations actually
        execute depends on the cache state, so only the logical
        resolver counters are recorded.
        """
        with obs.suspended():
            result = simulate(
                request.binding.app,
                request.mode,
                request.schedule,
                duration_s=request.duration_s,
                num_cores=request.binding.num_cores,
                mapping=request.binding.plan,
            )
        payload = payload_from_report(result.power, EXACT_TIER)
        self.cache.put(request.key, payload)
        table[request.key] = ResolvedCompute(
            key=request.key, tier=EXACT_TIER, payload=payload
        )

    def _calibration(
        self, requests: Iterable[ComputeRequest]
    ) -> dict:
        """Gate the analytic tier per platform width.

        Calibrates over *every* distinct multi-core app in the
        request set (not only uncached ones) so the block is
        identical cold and warm; memoised in-process and through the
        disk cache.
        """
        from ..oracle.calibrate import CALIBRATE_TOLERANCE

        groups: dict[int, dict[str, AppSpec]] = {}
        for request in requests:
            if request.mode is not Mode.MULTI_CORE:
                continue
            from ..gen.generator import app_fingerprint

            fingerprint = app_fingerprint(request.binding.app)
            groups.setdefault(request.binding.num_cores, {})[
                fingerprint
            ] = request.binding.app
        blocks = []
        samples = 0
        apps_total = 0
        for num_cores in sorted(groups):
            by_fingerprint = groups[num_cores]
            block = self._calibrate_group(
                [by_fingerprint[f] for f in sorted(by_fingerprint)],
                sorted(by_fingerprint),
                num_cores,
            )
            blocks.append(block)
            samples += int(block["samples"])
            apps_total += int(block["apps"])
        max_error = max(
            (float(block["errors"]["max"]) for block in blocks),
            default=0.0,
        )
        return {
            "tolerance": CALIBRATE_TOLERANCE,
            "within": max_error <= CALIBRATE_TOLERANCE,
            "max_error": max_error,
            "apps": apps_total,
            "samples": samples,
            "groups": blocks,
        }

    def _calibrate_group(
        self,
        apps: list[AppSpec],
        fingerprints: list[str],
        num_cores: int,
    ) -> dict:
        """Calibrate one platform-width group (memoised)."""
        key = hashlib.sha256(
            json.dumps(
                {
                    "apps": fingerprints,
                    "duration_s": CALIBRATE_DURATION_S,
                    "kind": _CALIBRATION_TIER,
                    "num_cores": num_cores,
                    "samples": CALIBRATE_SAMPLES,
                    "schema": COMPUTE_ENTRY_SCHEMA,
                },
                sort_keys=True,
                separators=(",", ":"),
            ).encode("utf-8")
        ).hexdigest()[:40]
        payload = _CALIBRATION_MEMO.get(key)
        if payload is None and self.cache.root is not None:
            path = self.cache._path(key)
            try:
                with open(path, encoding="utf-8") as handle:
                    loaded = json.load(handle)
            except (OSError, ValueError):
                loaded = None
            if (
                isinstance(loaded, dict)
                and loaded.get("schema") == COMPUTE_ENTRY_SCHEMA
                and isinstance(loaded.get("errors"), dict)
            ):
                payload = loaded
        if payload is None:
            from ..oracle.calibrate import calibrate, calibration_payload

            with obs.suspended():
                report = calibrate(
                    apps,
                    kind="power",
                    duration_s=CALIBRATE_DURATION_S,
                    num_cores=num_cores,
                    samples=CALIBRATE_SAMPLES,
                    seed=0,
                )
            payload = calibration_payload(report)
            payload["schema"] = COMPUTE_ENTRY_SCHEMA
            payload["tier"] = _CALIBRATION_TIER
            if self.cache.root is not None:
                path = self.cache._path(key)
                try:
                    path.parent.mkdir(parents=True, exist_ok=True)
                    tmp = path.with_suffix(f".{os.getpid()}.tmp")
                    tmp.write_text(
                        json.dumps(payload, sort_keys=True),
                        encoding="utf-8",
                    )
                    os.replace(tmp, path)
                except OSError:
                    pass
        _CALIBRATION_MEMO[key] = payload
        block = {
            k: v
            for k, v in payload.items()
            if k not in ("schema", "tier")
        }
        return block


def record_compute_counters(summary: ComputeSummary) -> None:
    """Emit the deterministic ``net.compute.*`` counters once."""
    if summary.requests:
        obs.add("net.compute.requests", summary.requests)
    if summary.distinct_keys:
        obs.add("net.compute.keys", summary.distinct_keys)
    if summary.cache_hits:
        obs.add("net.compute.cache.hits", summary.cache_hits)
    if summary.cache_misses:
        obs.add("net.compute.cache.misses", summary.cache_misses)
    if summary.cache_stores:
        obs.add("net.compute.cache.stores", summary.cache_stores)
    if summary.screened:
        obs.add("net.compute.screened", summary.screened)
    if summary.exact:
        obs.add("net.compute.exact", summary.exact)
