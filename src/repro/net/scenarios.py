"""Named fleet scenario presets.

A :class:`Scenario` bundles everything that differs between
deployments: how many nodes, which ECG applications they run, how bad
their oscillators are, how lossy the radio is, how often beacons go
out and which sync protocol is in charge.  Presets:

* ``dense-ward`` — a hospital ward full of mains-adjacent monitors:
  many nodes, mild drift, clean radio, offset-only sync is plenty.
* ``drifting-wearables`` — battery wearables with cheap, temperature-
  stressed crystals: large drift spread and sparse beacons, the
  setting where FTSP-style skew compensation earns its keep.
* ``intermittent-harvesting`` — energy-harvesting patches that brown
  out and reboot mid-run, losing their local epoch entirely.

Scenarios are frozen dataclasses, so presets can be specialised with
``dataclasses.replace`` (node count, protocol, …) without mutating
the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .radio import RadioSpec


@dataclass(frozen=True)
class Scenario:
    """Static description of one fleet deployment.

    Attributes:
        name: registry key.
        description: one-line human summary.
        default_nodes: fleet size when the caller does not choose one.
        app_mix: ``(benchmark name, weight)`` pairs nodes draw their
            ECG application from (see :data:`repro.net.node.APPS`).
        bpm_range: per-node heart rate drawn uniformly from this range.
        abnormal_ratio: pathological-beat ratio of the input schedule
            (drives RP-CLASS's on-demand chain).
        drift_ppm_range: magnitude range of per-node oscillator drift;
            the sign is drawn separately, so a fleet spreads both ways.
        jitter_s: clock timestamping noise (stdev, seconds).
        initial_offset_s: per-node boot offset drawn uniformly from
            ``[-x, +x]``.
        power_loss_rate_hz: Poisson rate of power-loss resets per node
            (0 = continuously powered).
        beacon_period_s: reference broadcast period.
        protocol: default sync protocol name.
        radio: link/energy model of the node radios.
    """

    name: str
    description: str
    default_nodes: int
    app_mix: tuple[tuple[str, float], ...]
    bpm_range: tuple[float, float]
    abnormal_ratio: float
    drift_ppm_range: tuple[float, float]
    jitter_s: float
    initial_offset_s: float
    power_loss_rate_hz: float
    beacon_period_s: float
    protocol: str
    radio: RadioSpec = RadioSpec()


DENSE_WARD = Scenario(
    name="dense-ward",
    description="hospital ward: many stable monitors, clean radio",
    default_nodes=64,
    app_mix=(("3L-MF", 2.0), ("3L-MMD", 1.0)),
    bpm_range=(58.0, 96.0),
    abnormal_ratio=0.0,
    drift_ppm_range=(5.0, 25.0),
    jitter_s=5e-6,
    initial_offset_s=0.05,
    power_loss_rate_hz=0.0,
    beacon_period_s=2.0,
    protocol="rbs",
    radio=RadioSpec(loss_prob=0.01, delay_jitter_s=10e-6),
)

DRIFTING_WEARABLES = Scenario(
    name="drifting-wearables",
    description="battery wearables: cheap crystals, sparse beacons",
    default_nodes=24,
    app_mix=(("3L-MF", 2.0), ("RP-CLASS", 1.0)),
    bpm_range=(55.0, 110.0),
    abnormal_ratio=0.20,
    drift_ppm_range=(30.0, 120.0),
    jitter_s=10e-6,
    initial_offset_s=0.25,
    power_loss_rate_hz=0.0,
    beacon_period_s=5.0,
    protocol="ftsp",
    radio=RadioSpec(loss_prob=0.05, delay_jitter_s=25e-6),
)

INTERMITTENT_HARVESTING = Scenario(
    name="intermittent-harvesting",
    description="harvesting patches: brown-outs reset local clocks",
    default_nodes=16,
    app_mix=(("3L-MF", 1.0),),
    bpm_range=(60.0, 100.0),
    abnormal_ratio=0.0,
    drift_ppm_range=(20.0, 80.0),
    jitter_s=10e-6,
    initial_offset_s=0.10,
    power_loss_rate_hz=0.05,
    beacon_period_s=2.0,
    protocol="ftsp",
    radio=RadioSpec(loss_prob=0.08, delay_jitter_s=25e-6),
)

#: Scenario registry, keyed by name.
SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (DENSE_WARD, DRIFTING_WEARABLES,
                     INTERMITTENT_HARVESTING)
}


def with_protocol(scenario: Scenario,
                  protocol: str | None) -> Scenario:
    """The scenario with its sync protocol overridden (None = keep)."""
    if protocol is None or protocol == scenario.protocol:
        return scenario
    return replace(scenario, protocol=protocol)


def get_scenario(name: str, protocol: str | None = None) -> Scenario:
    """Look up a preset, optionally overriding its sync protocol.

    Raises:
        ValueError: unknown scenario name.
    """
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; "
            f"choose from {sorted(SCENARIOS)}") from None
    return with_protocol(scenario, protocol)
