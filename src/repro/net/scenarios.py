"""Named fleet scenario presets and the scenario token grammar.

A :class:`Scenario` bundles everything that differs between
deployments: how many nodes, which **application source** binds each
node's workload (see :mod:`repro.net.appsource`), how bad their
oscillators are, how lossy the radio is, how often beacons go out and
which sync protocol is in charge.  Presets:

* ``dense-ward`` — a hospital ward full of mains-adjacent monitors:
  many nodes, mild drift, clean radio, offset-only sync is plenty.
* ``drifting-wearables`` — battery wearables with cheap, temperature-
  stressed crystals: large drift spread and sparse beacons, the
  setting where FTSP-style skew compensation earns its keep.
* ``intermittent-harvesting`` — energy-harvesting patches that brown
  out and reboot mid-run, losing their local epoch entirely.
* ``generated-swarm`` — a research fleet whose every node draws a
  *generated* application (:mod:`repro.gen`) from one seeded suite,
  placed by the load-levelled ``balanced`` policy.
* ``mixed-clinic`` — certified Table I monitors beside pilot devices
  running generated apps under ``critical-path`` placement.

Scenarios are frozen dataclasses, so presets can be specialised with
``dataclasses.replace`` (node count, protocol, …) without mutating
the registry.  Beyond presets, *suite-backed* scenarios round-trip
through compact string tokens
(``"gen:<base>:<seed>:<count>:<policy>[:<fam+fam>][:<cores>]"``) via
:func:`scenario_token` / :func:`parse_scenario`, so heterogeneous
fleets ride through JSON-scalar sweep points and CLI arguments the
same way generated apps do.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .appsource import (
    AppSource,
    BenchmarkSource,
    GeneratedSuiteSource,
    MixedSource,
)
from .radio import RadioSpec

#: Prefix of suite-backed scenario tokens.
GEN_TOKEN_PREFIX = "gen"

#: Platform width scenario tokens omit (the paper's 8-core node).
DEFAULT_NUM_CORES = 8


@dataclass(frozen=True)
class Scenario:
    """Static description of one fleet deployment.

    Attributes:
        name: registry key (or scenario token for derived scenarios).
        description: one-line human summary.
        default_nodes: fleet size when the caller does not choose one.
        apps: the application source nodes bind their workload from
            (see :mod:`repro.net.appsource`).
        bpm_range: per-node heart rate drawn uniformly from this range.
        abnormal_ratio: pathological-beat ratio of the input schedule
            (drives the on-demand chains).
        drift_ppm_range: magnitude range of per-node oscillator drift;
            the sign is drawn separately, so a fleet spreads both ways.
        jitter_s: clock timestamping noise (stdev, seconds).
        initial_offset_s: per-node boot offset drawn uniformly from
            ``[-x, +x]``.
        power_loss_rate_hz: Poisson rate of power-loss resets per node
            (0 = continuously powered).
        beacon_period_s: reference broadcast period.
        protocol: default sync protocol name.
        radio: link/energy model of the node radios.
    """

    name: str
    description: str
    default_nodes: int
    apps: AppSource
    bpm_range: tuple[float, float]
    abnormal_ratio: float
    drift_ppm_range: tuple[float, float]
    jitter_s: float
    initial_offset_s: float
    power_loss_rate_hz: float
    beacon_period_s: float
    protocol: str
    radio: RadioSpec = RadioSpec()

    @property
    def app_mix(self) -> tuple[tuple[str, float], ...]:
        """The benchmark mix, when the source is benchmark-backed.

        Kept for the original ``app_mix`` callers; heterogeneous
        sources have no fixed mix and return ``()``.
        """
        if isinstance(self.apps, BenchmarkSource):
            return self.apps.mix
        return ()


DENSE_WARD = Scenario(
    name="dense-ward",
    description="hospital ward: many stable monitors, clean radio",
    default_nodes=64,
    apps=BenchmarkSource(mix=(("3L-MF", 2.0), ("3L-MMD", 1.0))),
    bpm_range=(58.0, 96.0),
    abnormal_ratio=0.0,
    drift_ppm_range=(5.0, 25.0),
    jitter_s=5e-6,
    initial_offset_s=0.05,
    power_loss_rate_hz=0.0,
    beacon_period_s=2.0,
    protocol="rbs",
    radio=RadioSpec(loss_prob=0.01, delay_jitter_s=10e-6),
)

DRIFTING_WEARABLES = Scenario(
    name="drifting-wearables",
    description="battery wearables: cheap crystals, sparse beacons",
    default_nodes=24,
    apps=BenchmarkSource(mix=(("3L-MF", 2.0), ("RP-CLASS", 1.0))),
    bpm_range=(55.0, 110.0),
    abnormal_ratio=0.20,
    drift_ppm_range=(30.0, 120.0),
    jitter_s=10e-6,
    initial_offset_s=0.25,
    power_loss_rate_hz=0.0,
    beacon_period_s=5.0,
    protocol="ftsp",
    radio=RadioSpec(loss_prob=0.05, delay_jitter_s=25e-6),
)

INTERMITTENT_HARVESTING = Scenario(
    name="intermittent-harvesting",
    description="harvesting patches: brown-outs reset local clocks",
    default_nodes=16,
    apps=BenchmarkSource(mix=(("3L-MF", 1.0),)),
    bpm_range=(60.0, 100.0),
    abnormal_ratio=0.0,
    drift_ppm_range=(20.0, 80.0),
    jitter_s=10e-6,
    initial_offset_s=0.10,
    power_loss_rate_hz=0.05,
    beacon_period_s=2.0,
    protocol="ftsp",
    radio=RadioSpec(loss_prob=0.08, delay_jitter_s=25e-6),
)

GENERATED_SWARM = Scenario(
    name="generated-swarm",
    description="research fleet: every node draws a generated app",
    default_nodes=24,
    apps=GeneratedSuiteSource(seed=2014, count=12, policy="balanced"),
    bpm_range=(55.0, 110.0),
    abnormal_ratio=0.20,
    drift_ppm_range=(30.0, 120.0),
    jitter_s=10e-6,
    initial_offset_s=0.25,
    power_loss_rate_hz=0.0,
    beacon_period_s=5.0,
    protocol="ftsp",
    radio=RadioSpec(loss_prob=0.05, delay_jitter_s=25e-6),
)

MIXED_CLINIC = Scenario(
    name="mixed-clinic",
    description="clinic floor: certified monitors beside pilot devices",
    default_nodes=32,
    apps=MixedSource(
        parts=(
            (BenchmarkSource(mix=(("3L-MF", 2.0), ("3L-MMD", 1.0))), 2.0),
            (
                GeneratedSuiteSource(seed=7, count=8, policy="critical-path"),
                1.0,
            ),
        )
    ),
    bpm_range=(58.0, 96.0),
    abnormal_ratio=0.10,
    drift_ppm_range=(5.0, 60.0),
    jitter_s=5e-6,
    initial_offset_s=0.10,
    power_loss_rate_hz=0.0,
    beacon_period_s=2.0,
    protocol="rbs",
    radio=RadioSpec(loss_prob=0.02, delay_jitter_s=10e-6),
)

#: Scenario registry, keyed by name.
SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        DENSE_WARD,
        DRIFTING_WEARABLES,
        INTERMITTENT_HARVESTING,
        GENERATED_SWARM,
        MIXED_CLINIC,
    )
}


def with_protocol(scenario: Scenario, protocol: str | None) -> Scenario:
    """The scenario with its sync protocol overridden (None = keep)."""
    if protocol is None or protocol == scenario.protocol:
        return scenario
    return replace(scenario, protocol=protocol)


def get_scenario(name: str, protocol: str | None = None) -> Scenario:
    """Look up a preset, optionally overriding its sync protocol.

    Raises:
        ValueError: unknown scenario name.
    """
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; "
            f"choose from {sorted(SCENARIOS)}"
        ) from None
    return with_protocol(scenario, protocol)


def generated_scenario(
    base: str | Scenario = "drifting-wearables",
    seed: int = 7,
    count: int = 12,
    policy: str = "balanced",
    families: tuple[str, ...] | None = None,
    num_cores: int = DEFAULT_NUM_CORES,
) -> Scenario:
    """A suite-backed scenario derived from a base preset.

    The base preset contributes everything *around* the application —
    clocks, radio, beacons, protocol — while the app source is
    replaced by a :class:`~repro.net.appsource.GeneratedSuiteSource`.
    The derived scenario's name is its round-trip token (see
    :func:`scenario_token`).

    Raises:
        ValueError: unknown base preset, family or policy.
    """
    base_scenario = get_scenario(base) if isinstance(base, str) else base
    source = GeneratedSuiteSource(
        seed=seed,
        count=count,
        families=tuple(families) if families else (),
        policy=policy,
        num_cores=num_cores,
    )
    derived = replace(base_scenario, apps=source)
    return replace(
        derived,
        name=scenario_token(derived),
        description=f"{base_scenario.description} "
        f"[{source.describe()}]",
    )


def scenario_token(scenario: Scenario) -> str:
    """Compact string identity of a scenario.

    Presets serialise to their registry name; suite-backed scenarios
    to ``gen:<base>:<seed>:<count>:<policy>[:<fam+fam>][:<cores>]``
    (the family segment may be empty, and the cores segment is
    omitted at the default platform width).  :func:`parse_scenario`
    inverts both forms, so fleet scenarios ride through JSON-scalar
    sweep points exactly like generated-app tokens.  Tokens do not
    carry a protocol override — pass that alongside, the way
    :func:`repro.net.fleet.run_fleet` does.

    Raises:
        ValueError: the scenario is neither a preset nor derivable
            from one (e.g. a hand-built :class:`MixedSource` fleet —
            pass such scenarios by value, not by token).
    """
    preset = SCENARIOS.get(scenario.name)
    if (
        preset is not None
        and with_protocol(preset, scenario.protocol) == scenario
    ):
        return scenario.name
    source = scenario.apps
    if isinstance(source, GeneratedSuiteSource):
        base = None
        for name, candidate in SCENARIOS.items():
            rebuilt = replace(
                candidate,
                apps=source,
                name=scenario.name,
                description=scenario.description,
                protocol=scenario.protocol,
            )
            if rebuilt == scenario:
                base = name
                break
        if base is not None:
            token = (
                f"{GEN_TOKEN_PREFIX}:{base}:{source.seed}:"
                f"{source.count}:{source.policy}"
            )
            custom_width = source.num_cores != DEFAULT_NUM_CORES
            if source.families or custom_width:
                token += ":" + "+".join(source.families)
            if custom_width:
                token += f":{source.num_cores}"
            return token
    raise ValueError(
        f"scenario {scenario.name!r} has no token form; only presets "
        f"and preset-derived generated-suite scenarios round-trip"
    )


def parse_scenario(text: str, protocol: str | None = None) -> Scenario:
    """Resolve a scenario token: preset name or ``gen:`` form.

    Raises:
        ValueError: unknown preset or malformed ``gen:`` token, with
            the valid choices listed.
    """
    if text in SCENARIOS:
        return get_scenario(text, protocol)
    grammar = "'gen:<base>:<seed>:<count>:<policy>[:<fam+fam>][:<cores>]'"
    if text.startswith(GEN_TOKEN_PREFIX + ":"):
        parts = text.split(":")
        if len(parts) not in (5, 6, 7):
            raise ValueError(
                f"malformed scenario token {text!r}; expected {grammar}"
            )
        _, base, seed_text, count_text, policy = parts[:5]
        families = (
            tuple(parts[5].split("+"))
            if len(parts) >= 6 and parts[5]
            else None
        )
        try:
            seed, count = int(seed_text), int(count_text)
            num_cores = (
                int(parts[6]) if len(parts) == 7 else DEFAULT_NUM_CORES
            )
        except ValueError:
            raise ValueError(
                f"malformed scenario token {text!r}; seed, count and "
                f"cores must be integers"
            ) from None
        return with_protocol(
            generated_scenario(
                base=base,
                seed=seed,
                count=count,
                policy=policy,
                families=families,
                num_cores=num_cores,
            ),
            protocol,
        )
    raise ValueError(
        f"unknown scenario {text!r}; choose from {sorted(SCENARIOS)} "
        f"or a {grammar} token"
    )
