"""Cached, sharded experiment sweeps (system S22).

Declare a campaign as a :class:`SweepSpec` (axes over applications,
platform parameters, VFS points, fleet scenarios and sync protocols),
execute it with :func:`run_sweep` on a sharded multiprocessing pool,
and get every point's metrics back in deterministic order — with each
result stored in a content-addressed on-disk cache so re-runs and
incremental sweeps only pay for new work.  :mod:`repro.sweep.artifacts`
turns results into the ``BENCH_<name>.json`` schema the CI regression
gate tracks.
"""

from .artifacts import (
    BENCH_SCHEMA,
    bench_payload,
    merge_bench,
    percentile_axes,
    sweep_rows,
    write_bench_json,
    write_csv,
)
from .bench import bench_main, run_all_benches, run_bench
from .cache import ResultCache, code_fingerprint, default_cache_dir
from .engine import PointResult, SweepResult, run_sweep
from .runners import HEADLINE_METRICS, RUNNERS, RunnerError, get_runner
from .spec import (
    SpecError,
    SweepSpec,
    canonical_point,
    expand,
    point_key,
    spec_from_mapping,
    stable_seed,
)
from .specs import BENCH_SPECS, SPECS, generated_app_axis, get_spec

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_SPECS",
    "HEADLINE_METRICS",
    "PointResult",
    "RUNNERS",
    "ResultCache",
    "RunnerError",
    "SPECS",
    "SpecError",
    "SweepResult",
    "SweepSpec",
    "bench_main",
    "bench_payload",
    "canonical_point",
    "run_all_benches",
    "run_bench",
    "code_fingerprint",
    "default_cache_dir",
    "expand",
    "generated_app_axis",
    "get_runner",
    "get_spec",
    "merge_bench",
    "percentile_axes",
    "point_key",
    "run_sweep",
    "spec_from_mapping",
    "stable_seed",
    "sweep_rows",
    "write_bench_json",
    "write_csv",
]
