"""Run families the sweep engine can execute.

Each runner is a pure function ``point -> metrics``: it takes one flat
parameter mapping produced by :func:`repro.sweep.spec.expand` and
returns a flat, JSON-serialisable metric mapping.  Purity is what the
cache relies on — a runner must depend only on its point (plus the
code the fingerprint covers), never on ambient state.

Families:

* ``app`` — one (benchmark, mode) system-level simulation through
  :func:`repro.sysc.engine.simulate`; axes reach the application
  (``app``, ``ratio``), the platform (``num_cores``), the VFS planner
  (``floor_mhz``) and the input (``duration_s``).
* ``fleet`` — one multi-node scenario through
  :func:`repro.net.fleet.run_fleet`; axes reach the scenario preset,
  sync protocol, fleet size, duration and seed.  Runs serially inside
  the sweep worker (the sweep pool is the parallelism).
* ``fleet-gen`` — one *heterogeneous* fleet whose nodes draw
  generated apps from a seeded suite
  (:func:`repro.net.scenarios.generated_scenario`); axes reach the
  base preset, suite identity (``suite_seed`` / ``suite_count`` /
  ``families`` as a ``+``-joined token), the mapping policy and every
  ``fleet`` axis.  Points stay JSON scalars: the scenario is rebuilt
  from its parameters inside the runner.  Reports
  ``distinct_families`` (named apart from the ``families`` axis so
  CSV headers never collide), ``mean_floor_mhz`` and ``repairs`` on
  top of the ``fleet`` metrics.
* ``fleet-tiers`` — one *hierarchical* fleet through the streaming
  executor (:func:`repro.net.streaming.run_streaming`); the
  deployment rides in the point as its ``tiers`` token (preset name
  or ``tiers:...`` form), so points stay JSON scalars.  Reports the
  tier count and each tier's steady-state hop error on top of the
  ``fleet`` metrics.
* ``platform`` — the cycle-accurate :class:`repro.hw.system.System`
  running a spin kernel; axes reach core count and cycle budget.
* ``ablation`` — one mechanism ablation from
  :mod:`repro.eval.ablations`.
* ``gen`` — one generated application under one mapping policy
  through :func:`repro.gen.explorer.evaluate_token`; the app rides in
  the point as its regeneration token (``"family:seed:index"``), so
  points stay JSON scalars and regeneration is deterministic.
* ``cover`` — the ``gen`` runner plus coverage classification
  (:mod:`repro.cover.model`): tokens may carry adversarial shape
  knobs (``"random-dag:7:0:depth=10+fanin=6"``), and every point
  reports its deterministic coverage-bin key alongside the explorer
  metrics.
* ``search`` — one stochastic placement search through
  :func:`repro.search.search_token`; axes reach the app token, the
  algorithm (``anneal``/``greedy``), the cost oracle, the proposal
  budget and the walk seed.  ``simulated_s`` counts the oracle calls
  actually paid (memoised duplicates are free).
* ``search-fast`` — the same walk on the two-tier oracle
  (:mod:`repro.oracle`): ``screen_budget`` proposals are scored by
  the vectorised analytic model, only the ``top_k`` survivors pay a
  full simulation.  Reports ``screened`` and ``screen_agreement``
  on top of the ``search`` metrics.

Every metric mapping carries ``simulated_s``: the simulated seconds
the point covered, the numerator of the benchmark schema's
simulated-seconds-per-second throughput figure.  The ``platform``
family counts cycles, reported as seconds at the 1 MHz platform floor
clock.
"""

from __future__ import annotations

from typing import Callable

from ..eval.ablations import (
    ablate_broadcast,
    ablate_lockstep_recovery,
    ablate_sleep,
    ablate_vfs,
)
from ..cover.model import bin_key, classify
from ..gen.explorer import EXPLORE_DURATION_S, evaluate_token
from ..gen.generator import app_from_token
from ..hw.system import System
from ..isa import assemble
from ..net.fleet import run_fleet
from ..net.node import APPS
from ..net.scenarios import generated_scenario
from ..net.stats import improvement_ratio
from ..net.streaming import run_streaming
from ..oracle import TWO_TIER_SCREEN_BUDGET, TWO_TIER_TOP_K, get_two_tier
from ..power.vfs import MIN_SYSTEM_CLOCK_MHZ
from ..search import ORACLE_DURATION_S, SEARCH_ITERATIONS, search_token
from ..sysc.engine import Mode, simulate, uniform_schedule
from .spec import Value, stable_seed

#: Benchmark-application factories, keyed by Table I name — the same
#: registry fleet nodes draw from (every factory takes the
#: pathological-beat ratio; the fixed filtering chains ignore it).
APP_FACTORIES: dict[str, Callable] = APPS

#: Default pathological ratio per application (Table I settings).
_DEFAULT_RATIO = {"3L-MF": 0.0, "3L-MMD": 0.0, "RP-CLASS": 0.20}

#: Spin kernel of the platform family (same shape as the platform
#: microbenchmarks' countdown loop, but endless so every point runs
#: its full cycle budget and the cycle count is budget-exact).
_SPIN_SOURCE = """
main:
    li r1, 1
loop:
    addi r1, r1, 1
    bnez r1, loop
    halt
"""

#: Metric columns the compact table renderer shows per family.
HEADLINE_METRICS: dict[str, tuple[str, ...]] = {
    "app": ("power_uw", "clock_mhz", "voltage", "runtime_overhead"),
    "fleet": (
        "mean_power_uw",
        "steady_sync_ms",
        "steady_unsync_ms",
        "improvement",
    ),
    "fleet-gen": (
        "mean_power_uw",
        "mean_floor_mhz",
        "steady_sync_ms",
        "improvement",
        "distinct_families",
        "repairs",
    ),
    "fleet-tiers": (
        "n_nodes",
        "mean_power_uw",
        "steady_sync_ms",
        "steady_unsync_ms",
        "improvement",
        "tiers",
    ),
    "platform": ("cycles", "im_broadcast", "active_cycles"),
    "ablation": ("with_uw", "without_uw", "penalty"),
    "gen": (
        "status",
        "power_uw",
        "clock_mhz",
        "duty_cycle",
        "sync_overhead",
    ),
    "cover": (
        "status",
        "depth",
        "fan_in",
        "sharing",
        "power_uw",
    ),
    "search": (
        "status",
        "paper_cost",
        "best_cost",
        "gap",
        "evaluations",
    ),
    "search-fast": (
        "status",
        "best_cost",
        "gap",
        "screened",
        "evaluations",
    ),
}


class RunnerError(ValueError):
    """A point carries parameters its runner cannot execute."""


def _param(point: dict, name: str, default: Value) -> Value:
    value = point.get(name, default)
    return default if value is None else value


def run_app_point(point: dict[str, Value]) -> dict[str, Value]:
    """Simulate one (application, mode) configuration."""
    app_name = str(_param(point, "app", "3L-MF"))
    if app_name not in APP_FACTORIES:
        raise RunnerError(
            f"unknown app {app_name!r}; choose from "
            f"{sorted(APP_FACTORIES)}"
        )
    mode_name = str(_param(point, "mode", Mode.MULTI_CORE.value))
    try:
        mode = Mode(mode_name)
    except ValueError:
        raise RunnerError(
            f"unknown mode {mode_name!r}; choose from "
            f"{sorted(m.value for m in Mode)}"
        ) from None
    ratio = float(_param(point, "ratio", _DEFAULT_RATIO[app_name]))
    duration_s = float(_param(point, "duration_s", 10.0))
    num_cores = int(_param(point, "num_cores", 8))
    floor_mhz = float(_param(point, "floor_mhz", MIN_SYSTEM_CLOCK_MHZ))
    app = APP_FACTORIES[app_name](ratio)
    schedule = uniform_schedule(duration_s, app.fs, abnormal_ratio=ratio)
    result = simulate(
        app,
        mode,
        schedule,
        duration_s=duration_s,
        num_cores=num_cores,
        floor_mhz=floor_mhz,
    )
    metrics: dict[str, Value] = {
        "simulated_s": duration_s,
        "power_uw": result.power.total_uw,
        "clock_mhz": result.operating_point.frequency_mhz,
        "voltage": result.operating_point.voltage,
        "required_mhz": result.required_mhz,
        "active_cores": result.mapping.active_cores,
        "im_broadcast": result.im_broadcast_fraction,
        "dm_broadcast": result.dm_broadcast_fraction,
        "code_overhead": result.code_overhead,
        "runtime_overhead": result.runtime_overhead,
        "max_latency_s": result.max_latency_s,
    }
    for category, power_uw in result.power.categories.items():
        metrics[f"power_{category}_uw"] = power_uw
    return metrics


def _run_fleet_summary(scenario, point: dict[str, Value], stream: str):
    """Run one fleet (serially); return (seed, duration_s, summary)."""
    duration_s = float(_param(point, "duration_s", 5.0))
    nodes = point.get("nodes")
    protocol = point.get("protocol")
    seed = point.get("seed")
    if seed is None:
        seed = stable_seed(stream, dict(point))
    result = run_fleet(
        scenario,
        n_nodes=None if nodes is None else int(nodes),
        duration_s=duration_s,
        seed=int(seed),
        protocol=None if protocol is None else str(protocol),
        workers=1,
    )
    return int(seed), duration_s, result.summary


def _fleet_metrics(
    seed: int, summary, duration_s: float
) -> dict[str, Value]:
    """Flatten one fleet summary into the shared metric mapping."""
    improvement = improvement_ratio(
        summary.steady_unsync.mean_abs_s, summary.steady_sync.mean_abs_s
    )
    return {
        "simulated_s": duration_s * summary.n_nodes,
        "n_nodes": summary.n_nodes,
        "protocol": summary.protocol,
        "seed": seed,
        "mean_power_uw": summary.mean_power_uw,
        "mean_radio_uw": summary.mean_radio_uw,
        "beacons_sent": summary.beacons_sent,
        "beacons_heard": summary.beacons_heard,
        "power_loss_resets": summary.power_loss_resets,
        "sync_ms": summary.sync.mean_abs_s * 1e3,
        "unsync_ms": summary.unsync.mean_abs_s * 1e3,
        "steady_sync_ms": summary.steady_sync.mean_abs_s * 1e3,
        "steady_unsync_ms": summary.steady_unsync.mean_abs_s * 1e3,
        "improvement": improvement,
    }


def run_fleet_point(point: dict[str, Value]) -> dict[str, Value]:
    """Simulate one multi-node fleet scenario (serially)."""
    scenario = str(_param(point, "scenario", "drifting-wearables"))
    seed, duration_s, summary = _run_fleet_summary(
        scenario, point, "fleet"
    )
    return _fleet_metrics(seed, summary, duration_s)


def run_fleet_gen_point(point: dict[str, Value]) -> dict[str, Value]:
    """Simulate one heterogeneous generated-app fleet (serially).

    The scenario never travels inside the point: it is rebuilt from
    the base preset and the suite parameters
    (:func:`repro.net.scenarios.generated_scenario`), so points stay
    JSON-scalar and the cache key covers the fleet's full identity.
    On top of the ``fleet`` metrics, the point reports the number of
    distinct app families the fleet bound (``distinct_families``),
    the mean per-app clock floor and the replicas trimmed by
    placement repair.
    """
    base = str(_param(point, "scenario", "drifting-wearables"))
    suite_seed = int(_param(point, "suite_seed", 7))
    suite_count = int(_param(point, "suite_count", 8))
    families = point.get("families")
    cycle = tuple(str(families).split("+")) if families else None
    policy = str(_param(point, "policy", "balanced"))
    num_cores = int(_param(point, "num_cores", 8))
    try:
        scenario = generated_scenario(
            base=base,
            seed=suite_seed,
            count=suite_count,
            policy=policy,
            families=cycle,
            num_cores=num_cores,
        )
    except ValueError as exc:
        raise RunnerError(str(exc)) from None
    seed, duration_s, summary = _run_fleet_summary(
        scenario, point, "fleet-gen"
    )
    metrics = _fleet_metrics(seed, summary, duration_s)
    nodes = summary.n_nodes
    weighted_floor = sum(
        group.nodes * group.mean_floor_mhz for group in summary.families
    )
    metrics["scenario_token"] = summary.scenario
    metrics["distinct_families"] = len(summary.families)
    metrics["mean_floor_mhz"] = weighted_floor / nodes if nodes else 0.0
    repairs = sum(group.repairs for group in summary.families)
    metrics["repairs"] = repairs
    return metrics


def run_fleet_tiers_point(point: dict[str, Value]) -> dict[str, Value]:
    """Stream one hierarchical fleet (serially).

    The deployment never travels inside the point: ``tiers`` is a
    preset name or round-trip token resolved by
    :func:`repro.net.hierarchy.parse_hierarchy`, so points stay
    JSON-scalar and the cache key covers the hierarchy's full
    identity.  On top of the shared fleet metrics, the point reports
    the tier count and each tier's steady-state single-hop error.
    """
    token = str(_param(point, "tiers", "ward-campus"))
    duration_s = float(_param(point, "duration_s", 4.0))
    seed = point.get("seed")
    if seed is None:
        seed = stable_seed("fleet-tiers", dict(point))
    try:
        result = run_streaming(
            token, duration_s=duration_s, seed=int(seed), workers=1
        )
    except ValueError as exc:
        raise RunnerError(str(exc)) from None
    metrics = _fleet_metrics(int(seed), result.summary, duration_s)
    metrics["scenario_token"] = result.token
    metrics["tiers"] = len(result.tiers)
    for tier in result.tiers:
        metrics[f"steady_hop_{tier.name}_ms"] = (
            tier.steady_hop_sync.mean_abs_s * 1e3
        )
    return metrics


def run_platform_point(point: dict[str, Value]) -> dict[str, Value]:
    """Run the cycle-accurate platform on a spin kernel."""
    cores = int(_param(point, "cores", 8))
    cycles = int(_param(point, "cycles", 20_000))
    if cores < 1:
        raise RunnerError("platform needs at least one core")
    if cores == 1:
        system = System.singlecore()
        image = assemble(_SPIN_SOURCE)
    else:
        system = System.multicore(num_cores=cores)
        entries = "\n".join(f".entry {core}, main" for core in range(cores))
        image = assemble(entries + _SPIN_SOURCE)
    system.load(image)
    system.run(cycles)
    activity = system.activity()
    return {
        # Cycle count rendered as seconds at the 1 MHz platform floor.
        "simulated_s": system.cycle / 1e6,
        "cycles": system.cycle,
        "active_cycles": sum(activity.core_active_cycles),
        "instructions": activity.instructions,
        "im_broadcast": activity.im_broadcast_fraction,
    }


def run_gen_point(point: dict[str, Value]) -> dict[str, Value]:
    """Evaluate one generated app under one mapping policy.

    The app never travels inside the point: ``gen_app`` is a
    regeneration token (``"family:seed:index"``), so the point stays
    JSON-scalar and the cache key covers the app's full identity.
    """
    token = str(_param(point, "gen_app", "pipeline:2014:0"))
    policy = str(_param(point, "policy", "paper"))
    num_cores = int(_param(point, "num_cores", 8))
    duration_s = float(_param(point, "duration_s", EXPLORE_DURATION_S))
    try:
        record = evaluate_token(
            token, policy, num_cores=num_cores, duration_s=duration_s
        )
    except ValueError as exc:
        raise RunnerError(str(exc)) from None
    return {
        "simulated_s": record.simulated_s,
        "app": record.app,
        "family": record.family,
        "status": record.status,
        "repairs": record.repairs,
        "error": record.error,
        "required_mhz": record.required_mhz,
        "clock_mhz": record.clock_mhz,
        "voltage": record.voltage,
        "power_uw": record.power_uw,
        "duty_cycle": record.duty_cycle,
        "sync_overhead": record.sync_overhead,
        "code_overhead": record.code_overhead,
        "active_cores": record.active_cores,
        "im_banks": record.im_banks,
    }


def run_cover_point(point: dict[str, Value]) -> dict[str, Value]:
    """Evaluate one (possibly shaped) token and classify its bin.

    The ``gen`` runner's metrics plus the coverage labels of
    :mod:`repro.cover.model`: the bin key and each structural axis
    as its own column, so CSV artifacts can pivot on them.
    """
    token = str(_param(point, "gen_app", "random-dag:7:0:depth=10"))
    policy = str(_param(point, "policy", "paper"))
    num_cores = int(_param(point, "num_cores", 8))
    duration_s = float(_param(point, "duration_s", EXPLORE_DURATION_S))
    try:
        app = app_from_token(token)
        record = evaluate_token(
            token, policy, num_cores=num_cores, duration_s=duration_s
        )
    except ValueError as exc:
        raise RunnerError(str(exc)) from None
    labels = classify(app, record)
    return {
        "simulated_s": record.simulated_s,
        "app": record.app,
        "family": record.family,
        "status": record.status,
        "bin": bin_key(labels),
        "depth": labels[1],
        "fan_in": labels[2],
        "sharing": labels[3],
        "replica_band": labels[5],
        "repairs": record.repairs,
        "error": record.error,
        "required_mhz": record.required_mhz,
        "clock_mhz": record.clock_mhz,
        "power_uw": record.power_uw,
        "duty_cycle": record.duty_cycle,
        "sync_overhead": record.sync_overhead,
        "active_cores": record.active_cores,
        "im_banks": record.im_banks,
    }


def run_search_point(point: dict[str, Value]) -> dict[str, Value]:
    """Search one generated app's placements (seeded, memoised).

    The walk seed defaults to the point's stable identity hash, so a
    campaign that omits ``seed`` still reproduces byte-identically
    while distinct points draw distinct walks.
    """
    token = str(_param(point, "gen_app", "pipeline:2014:0"))
    algorithm = str(_param(point, "algorithm", "anneal"))
    cost = str(_param(point, "cost", "power"))
    iterations = int(_param(point, "iterations", SEARCH_ITERATIONS))
    num_cores = int(_param(point, "num_cores", 8))
    duration_s = float(_param(point, "duration_s", ORACLE_DURATION_S))
    seed = point.get("seed")
    if seed is None:
        seed = stable_seed("search", dict(point))
    try:
        outcome = search_token(
            token,
            num_cores=num_cores,
            algorithm=algorithm,
            cost=cost,
            iterations=iterations,
            seed=int(seed),
            duration_s=duration_s,
        )
    except ValueError as exc:
        raise RunnerError(str(exc)) from None
    return _search_metrics(outcome, duration_s, int(seed))


def _search_metrics(outcome, duration_s: float,
                    seed: int) -> dict[str, Value]:
    """Flatten one search outcome into the shared metric mapping."""
    metrics: dict[str, Value] = {
        "simulated_s": outcome.evaluations * duration_s,
        "app": outcome.app,
        "family": outcome.family,
        "status": outcome.status,
        "repairs": outcome.repairs,
        "error": outcome.error,
        "start_policy": outcome.start_policy,
        "paper_feasible": outcome.paper_feasible,
        "paper_cost": outcome.paper_cost,
        "start_cost": outcome.start_cost,
        "best_cost": outcome.best_cost,
        "gap": outcome.gap,
        "evaluations": outcome.evaluations,
        "accepted": outcome.accepted,
        "infeasible": outcome.infeasible,
        "seed": seed,
    }
    for key, value in sorted(outcome.best_metrics.items()):
        metrics[f"best_{key}"] = value
    return metrics


def run_search_fast_point(point: dict[str, Value]) -> dict[str, Value]:
    """Search one app's placements on the two-tier oracle.

    The walk screens ``screen_budget`` proposals through the
    vectorised analytic model and simulates only the ``top_k``
    survivors (plus the start), so ``simulated_s`` — exact oracle
    calls actually paid — is a small fraction of the ``search``
    family's at the same budget.  Adds ``screened``, ``top_k`` and
    ``screen_agreement`` to the ``search`` metrics.
    """
    token = str(_param(point, "gen_app", "pipeline:2014:0"))
    algorithm = str(_param(point, "algorithm", "anneal"))
    cost = str(_param(point, "cost", "power"))
    screen_budget = int(
        _param(point, "screen_budget", TWO_TIER_SCREEN_BUDGET))
    top_k = int(_param(point, "top_k", TWO_TIER_TOP_K))
    num_cores = int(_param(point, "num_cores", 8))
    duration_s = float(_param(point, "duration_s", ORACLE_DURATION_S))
    seed = point.get("seed")
    if seed is None:
        seed = stable_seed("search-fast", dict(point))
    try:
        oracle = get_two_tier(cost, duration_s, top_k=top_k,
                              screen_budget=screen_budget)
        outcome = search_token(
            token,
            num_cores=num_cores,
            algorithm=algorithm,
            iterations=screen_budget,
            seed=int(seed),
            oracle=oracle,
        )
    except ValueError as exc:
        raise RunnerError(str(exc)) from None
    metrics = _search_metrics(outcome, duration_s, int(seed))
    metrics["screened"] = outcome.screened
    metrics["top_k"] = outcome.top_k
    metrics["screen_agreement"] = outcome.screen_agreement
    return metrics


#: Ablation registry: name -> (driver, result picker).  ``sleep``
#: returns one result per benchmark; the picker selects by the
#: point's ``app`` parameter.
_ABLATIONS: dict[str, Callable] = {
    "broadcast": ablate_broadcast,
    "vfs": ablate_vfs,
    "sleep": ablate_sleep,
    "lockstep": ablate_lockstep_recovery,
}


def run_ablation_point(point: dict[str, Value]) -> dict[str, Value]:
    """Run one mechanism ablation."""
    name = str(_param(point, "ablation", "broadcast"))
    if name not in _ABLATIONS:
        raise RunnerError(
            f"unknown ablation {name!r}; choose from {sorted(_ABLATIONS)}"
        )
    duration_s = float(_param(point, "duration_s", 10.0))
    outcome = _ABLATIONS[name](duration_s)
    if isinstance(outcome, list):
        # ``sleep`` ablates every benchmark; the ``app`` parameter
        # picks one (descriptions carry the benchmark name).
        wanted = point.get("app")
        matches = [
            result
            for result in outcome
            if wanted is not None and str(wanted) in result.description
        ]
        result = matches[0] if matches else outcome[0]
        simulated = duration_s * len(outcome)
    else:
        result = outcome
        simulated = duration_s
    return {
        "simulated_s": simulated,
        "name": result.name,
        "with_uw": result.with_feature_uw,
        "without_uw": result.without_feature_uw,
        "penalty": result.penalty_fraction,
    }


#: Run-family registry the engine dispatches through.
RUNNERS: dict[str, Callable[[dict], dict]] = {
    "app": run_app_point,
    "fleet": run_fleet_point,
    "fleet-gen": run_fleet_gen_point,
    "fleet-tiers": run_fleet_tiers_point,
    "platform": run_platform_point,
    "ablation": run_ablation_point,
    "gen": run_gen_point,
    "cover": run_cover_point,
    "search": run_search_point,
    "search-fast": run_search_fast_point,
}


def get_runner(name: str) -> Callable[[dict], dict]:
    """Look up a run family.

    Raises:
        RunnerError: unknown family name.
    """
    try:
        return RUNNERS[name]
    except KeyError:
        raise RunnerError(
            f"unknown runner {name!r}; choose from {sorted(RUNNERS)}"
        ) from None
