"""Content-addressed on-disk cache for sweep results.

A cached entry is addressed by two coordinates:

1. the *point key* — a stable hash of ``(runner, point)`` from
   :func:`repro.sweep.spec.point_key`, and
2. the *code fingerprint* — a stable hash over every ``repro/*.py``
   source file, so any change to the simulation code invalidates all
   prior results without ever serving a stale metric.

Entries live at ``<root>/<fingerprint>/<key[:2]>/<key>.json``; a new
fingerprint simply opens a fresh namespace (old entries stay behind
for rollbacks and can be garbage-collected with :meth:`ResultCache.prune`).
Writes are atomic (temp file + ``os.replace``), so a sweep killed
mid-write never leaves a corrupt entry, and concurrent workers racing
on the same point both land a complete file.

The default cache root honours ``REPRO_SWEEP_CACHE`` and falls back
to ``~/.cache/repro-sweep``.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from pathlib import Path

import repro

from .. import obs
from .spec import Value, point_key

#: Environment variable overriding the default cache root.
CACHE_ENV = "REPRO_SWEEP_CACHE"

#: Schema tag of on-disk entries (bump on incompatible changes).
ENTRY_SCHEMA = "repro-sweep-entry/1"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_SWEEP_CACHE`` or ``~/.cache/repro-sweep``."""
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-sweep"


def code_fingerprint(package_root: str | Path | None = None) -> str:
    """Hash the code-relevant configuration: every repro source file.

    The fingerprint is a SHA-256 over the sorted ``(relative path,
    content hash)`` pairs of all ``*.py`` files under the ``repro``
    package, so it is independent of checkout location and file-system
    walk order.
    """
    if package_root is None:
        package_root = Path(repro.__file__).resolve().parent
    root = Path(package_root)
    outer = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        relative = path.relative_to(root).as_posix()
        outer.update(f"{relative}\x00{digest}\x00".encode("utf-8"))
    return outer.hexdigest()[:16]


class ResultCache:
    """Content-addressed store of per-point sweep results.

    Args:
        root: cache directory (created lazily on first write).
        fingerprint: code fingerprint namespace; computed from the
            installed ``repro`` sources when omitted.  Tests inject
            explicit fingerprints to exercise invalidation.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        fingerprint: str | None = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.fingerprint = (
            fingerprint if fingerprint is not None else code_fingerprint()
        )

    def _path(self, key: str) -> Path:
        return self.root / self.fingerprint / key[:2] / f"{key}.json"

    def get(self, runner: str, point: dict[str, Value]) -> dict | None:
        """The stored entry for a point, or ``None`` on a miss.

        Unreadable or schema-mismatched files count as misses (the
        next :meth:`put` overwrites them).
        """
        path = self._path(point_key(runner, point))
        entry = self._read(path)
        if entry is not None:
            obs.add("sweep.cache.hit")
        else:
            obs.add("sweep.cache.miss")
        return entry

    @staticmethod
    def _read(path: Path) -> dict | None:
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("schema") != ENTRY_SCHEMA:
            return None
        if not isinstance(entry.get("metrics"), dict):
            return None  # truncated/hand-edited entry: treat as miss
        return entry

    def put(
        self,
        runner: str,
        point: dict[str, Value],
        metrics: dict[str, Value],
        wall_s: float,
    ) -> dict:
        """Store one result atomically and return the entry written."""
        obs.add("sweep.cache.store")
        key = point_key(runner, point)
        entry = {
            "schema": ENTRY_SCHEMA,
            "key": key,
            "fingerprint": self.fingerprint,
            "runner": runner,
            "point": point,
            "metrics": metrics,
            "wall_s": wall_s,
            "created_unix": time.time(),
        }
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(entry, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)
        return entry

    def __len__(self) -> int:
        """Entries stored under the current fingerprint."""
        namespace = self.root / self.fingerprint
        if not namespace.is_dir():
            return 0
        return sum(1 for _ in namespace.rglob("*.json"))

    def prune(self, keep_current: bool = True) -> int:
        """Delete stale fingerprint namespaces; return how many.

        Args:
            keep_current: keep the namespace of this cache's own
                fingerprint (pass ``False`` to clear everything).
        """
        if not self.root.is_dir():
            return 0
        removed = 0
        for child in self.root.iterdir():
            if not child.is_dir():
                continue
            if keep_current and child.name == self.fingerprint:
                continue
            shutil.rmtree(child)
            removed += 1
        return removed
