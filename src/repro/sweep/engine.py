"""Sharded, cached execution of sweep campaigns.

:func:`run_sweep` expands a :class:`~repro.sweep.spec.SweepSpec` into
its deduplicated point list, resolves as many points as possible from
the :class:`~repro.sweep.cache.ResultCache`, and executes the misses
on a :mod:`multiprocessing` pool using the same shard-and-merge
discipline as :class:`repro.net.fleet.FleetRunner`: contiguous batches
of points go to workers, results come back in arbitrary batch order,
and the final merge restores point order — so serial and parallel
sweeps produce identical result sequences (wall-clock fields aside).

Every executed point is stored back into the cache, which makes
re-runs and incremental sweeps (a grown axis, a few new points) cost
only the new work.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..parallel import even_shard_size, pool_map, shard
from .cache import ResultCache
from .runners import get_runner
from .spec import SweepSpec, Value, expand, point_key


@dataclass(frozen=True)
class PointResult:
    """Outcome of one sweep point.

    Attributes:
        index: position in the expanded point list.
        point: the run parameters.
        key: content-address of the point (cache key).
        metrics: runner output (flat JSON scalars).
        wall_s: wall-clock seconds the runner took when it actually
            executed (for cache hits: the stored original timing).
        cached: whether the result came from the cache.
    """

    index: int
    point: dict[str, Value]
    key: str
    metrics: dict[str, Value]
    wall_s: float
    cached: bool

    @property
    def simulated_s(self) -> float:
        """Simulated seconds this point covered."""
        return float(self.metrics.get("simulated_s", 0.0) or 0.0)

    @property
    def sim_s_per_s(self) -> float:
        """Simulated seconds per wall second of the original run."""
        if self.wall_s <= 0.0:
            return 0.0
        return self.simulated_s / self.wall_s


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one :func:`run_sweep` call.

    Attributes:
        spec: the campaign that ran.
        results: per-point results, in expansion order.
        elapsed_s: wall-clock seconds of this call (cache lookups,
            execution and merging included).
        cache_hits: points served from the cache.
        cache_misses: points actually executed.
        workers: worker processes used (1 = serial).
        shards: executed point batches.
        mode: ``"serial"`` or ``"parallel"``.
        fingerprint: code fingerprint the results are keyed under
            (empty when caching is disabled).
        cache_stores: executed points written back to the cache (0
            when caching is disabled).
    """

    spec: SweepSpec
    results: tuple[PointResult, ...]
    elapsed_s: float
    cache_hits: int
    cache_misses: int
    workers: int
    shards: int
    mode: str
    fingerprint: str
    cache_stores: int = 0

    @property
    def n_points(self) -> int:
        """Points in the campaign after deduplication."""
        return len(self.results)

    @property
    def simulated_s(self) -> float:
        """Total simulated seconds across all points."""
        return sum(result.simulated_s for result in self.results)

    @property
    def executed_wall_s(self) -> float:
        """Summed runner wall time of the points that executed."""
        return sum(
            result.wall_s for result in self.results if not result.cached
        )

    @property
    def sim_s_per_s(self) -> float:
        """Simulated-seconds/sec over this call's elapsed wall time."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.simulated_s / self.elapsed_s


def _execute_point(
    runner_name: str, point: dict[str, Value]
) -> tuple[dict[str, Value], float]:
    """Run one point, returning (metrics, runner wall seconds)."""
    runner = get_runner(runner_name)
    with obs.span("sweep.point") as span:
        metrics = runner(point)
    return metrics, span.elapsed_s


def _run_shard(payload: tuple) -> list[tuple[int, dict, float]]:
    """Execute one batch of points (top-level: must pickle)."""
    runner_name, batch = payload
    results = []
    for index, point in batch:
        metrics, wall_s = _execute_point(runner_name, point)
        results.append((index, metrics, wall_s))
    return results


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    cache: ResultCache | None = None,
    use_cache: bool = True,
    force: bool = False,
    shard_size: int | None = None,
) -> SweepResult:
    """Execute a sweep campaign.

    Args:
        spec: the campaign to run.
        workers: worker processes for cache misses; 1 executes inline.
        cache: result cache; a default-rooted one is created when
            ``use_cache`` is true and none is given.
        use_cache: disable all cache reads *and* writes when false.
        force: ignore cached entries (results are still written back,
            refreshing the cache).
        shard_size: points per worker batch; defaults to an even split
            of the misses across workers.

    Raises:
        repro.sweep.runners.RunnerError: unknown run family.
        repro.sweep.spec.SpecError: malformed spec.
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    get_runner(spec.runner)  # validate the family before any work
    run_span = obs.span("sweep.run").start()
    if use_cache and cache is None:
        cache = ResultCache()
    elif not use_cache:
        cache = None

    points = expand(spec)
    keys = [point_key(spec.runner, point) for point in points]
    slots: list[PointResult | None] = [None] * len(points)
    misses: list[tuple[int, dict[str, Value]]] = []
    for index, (point, key) in enumerate(zip(points, keys)):
        entry = None
        if cache is not None and not force:
            entry = cache.get(spec.runner, point)
        if entry is None:
            misses.append((index, point))
        else:
            slots[index] = PointResult(
                index=index,
                point=point,
                key=key,
                metrics=entry["metrics"],
                wall_s=float(entry.get("wall_s", 0.0)),
                cached=True,
            )

    if shard_size is None:
        shard_size = even_shard_size(len(misses), workers)
    shards = shard(misses, shard_size)
    payloads = [(spec.runner, batch) for batch in shards]

    parallel = workers > 1 and len(shards) > 1
    workers_used = min(workers, len(shards)) if parallel else 1
    if parallel:
        batches = pool_map(_run_shard, payloads, workers_used)
    else:
        batches = [_run_shard(payload) for payload in payloads]

    stores = 0
    for batch in batches:
        for index, metrics, wall_s in batch:
            point = points[index]
            if cache is not None:
                cache.put(spec.runner, point, metrics, wall_s)
                stores += 1
            slots[index] = PointResult(
                index=index,
                point=point,
                key=keys[index],
                metrics=metrics,
                wall_s=wall_s,
                cached=False,
            )

    results = tuple(slot for slot in slots if slot is not None)
    assert len(results) == len(points)
    obs.add("sweep.runs")
    obs.add("sweep.points", len(points))
    obs.add("sweep.points.executed", len(misses))
    return SweepResult(
        spec=spec,
        results=results,
        elapsed_s=run_span.stop(),
        cache_hits=len(points) - len(misses),
        cache_misses=len(misses),
        workers=workers_used,
        shards=len(shards),
        mode="parallel" if parallel else "serial",
        fingerprint=cache.fingerprint if cache is not None else "",
        cache_stores=stores,
    )
