"""Benchmark emission: replay BENCH campaigns and write artifacts.

The benchmark harness (``benchmarks/bench_*.py`` plain-script mode and
``benchmarks/run_all.py``) funnels through this module: each bench
replays its campaign from :data:`repro.sweep.specs.BENCH_SPECS` and
writes one ``BENCH_<name>.json`` document in the shared
``repro-bench/1`` schema; :func:`run_all_benches` additionally merges
everything into ``BENCH_all.json`` — the file the CI regression gate
reads.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from .artifacts import bench_payload, merge_bench, write_bench_json
from .cache import ResultCache
from .engine import run_sweep
from .specs import BENCH_SPECS


def run_bench(
    name: str,
    out_dir: str | Path = ".",
    workers: int = 1,
    cache: ResultCache | None = None,
    use_cache: bool = True,
    force: bool = False,
) -> tuple[dict, Path]:
    """Replay one BENCH campaign and write its artifact.

    Returns:
        ``(payload, path)`` — the BENCH document and where it landed.

    Raises:
        ValueError: unknown bench name.
    """
    try:
        spec = BENCH_SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown bench {name!r}; choose from {sorted(BENCH_SPECS)}"
        ) from None
    result = run_sweep(
        spec, workers=workers, cache=cache, use_cache=use_cache, force=force
    )
    path = write_bench_json(result, Path(out_dir) / f"BENCH_{name}.json")
    return bench_payload(result), path


def run_all_benches(
    out_dir: str | Path = ".",
    workers: int = 1,
    names: tuple[str, ...] | None = None,
    cache: ResultCache | None = None,
    use_cache: bool = True,
    force: bool = False,
) -> tuple[dict, Path]:
    """Replay every BENCH campaign and write the merged artifact.

    Returns:
        ``(merged payload, path of BENCH_all.json)``.
    """
    payloads: dict[str, dict] = {}
    for name in names if names is not None else sorted(BENCH_SPECS):
        payload, _ = run_bench(
            name,
            out_dir=out_dir,
            workers=workers,
            cache=cache,
            use_cache=use_cache,
            force=force,
        )
        payloads[name] = payload
    merged = merge_bench(payloads)
    path = Path(out_dir) / "BENCH_all.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return merged, path


def _describe(payload: dict) -> str:
    cache_stats = payload["cache"]
    return (
        f"BENCH_{payload['name']}: {payload['points']} point(s), "
        f"{payload['wall_s']:.2f} s wall, "
        f"{payload['sim_s_per_s']:.1f} simulated-s/s, "
        f"cache {cache_stats['hits']}/{cache_stats['misses']} hit/miss"
    )


def bench_main(name: str, argv: list[str] | None = None) -> int:
    """Shared plain-script entry point of one ``bench_*`` file."""
    parser = argparse.ArgumentParser(
        description=f"emit BENCH_{name}.json via the sweep subsystem"
    )
    parser.add_argument(
        "--out-dir",
        default=".",
        help="where to write the artifact (default: cwd)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for cache misses (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: $REPRO_SWEEP_CACHE "
        "or ~/.cache/repro-sweep)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable cache reads and writes",
    )
    parser.add_argument(
        "--force", action="store_true", help="re-execute every point"
    )
    args = parser.parse_args(argv)
    cache = (
        ResultCache(root=args.cache_dir)
        if args.cache_dir is not None and not args.no_cache
        else None
    )
    payload, path = run_bench(
        name,
        out_dir=args.out_dir,
        workers=args.workers,
        cache=cache,
        use_cache=not args.no_cache,
        force=args.force,
    )
    print(_describe(payload))
    print(f"wrote {path}")
    return 0
