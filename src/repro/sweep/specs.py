"""Built-in sweep campaigns.

:data:`SPECS` is the CLI-facing registry (``python -m repro.eval sweep
--spec <name>``); :data:`BENCH_SPECS` is the subset the benchmark
harness replays to emit ``BENCH_<name>.json`` artifacts (shorter
durations — the reproduced metrics are duration-invariant, which the
test suite pins separately).

The ``demo`` campaign is the canonical 3-axis example from the README:
benchmark x execution mode x simulated duration, 24 points.
"""

from __future__ import annotations

from ..eval.runconfig import FIG7_RATIOS
from ..gen.generator import suite_tokens
from .spec import SweepSpec, Value

#: Simulated seconds of the benchmark campaigns (mirrors the
#: pytest-benchmark harness's reduced duration).
BENCH_DURATION_S = 15.0

DEMO = SweepSpec(
    name="demo",
    runner="app",
    description="3-axis demo: benchmark x mode x duration (24 points)",
    axes=(
        ("app", ("3L-MF", "3L-MMD", "RP-CLASS")),
        ("mode", ("single-core", "multi-core")),
        ("duration_s", (120.0, 240.0, 360.0, 480.0)),
    ),
)

TABLE1 = SweepSpec(
    name="table1",
    runner="app",
    description="Table I grid: every benchmark, SC and MC",
    axes=(
        ("app", ("3L-MF", "3L-MMD", "RP-CLASS")),
        ("mode", ("single-core", "multi-core")),
    ),
    base=(("duration_s", BENCH_DURATION_S),),
)

FIG6 = SweepSpec(
    name="fig6",
    runner="app",
    description="Fig. 6 grid: every benchmark, all three configurations",
    axes=(
        ("app", ("3L-MF", "3L-MMD", "RP-CLASS")),
        ("mode", ("single-core", "multi-core-no-sync", "multi-core")),
    ),
    base=(("duration_s", BENCH_DURATION_S),),
)

FIG7 = SweepSpec(
    name="fig7",
    runner="app",
    description="Fig. 7 sweep: RP-CLASS pathological ratio, SC vs MC",
    axes=(
        ("ratio", FIG7_RATIOS),
        ("mode", ("single-core", "multi-core")),
    ),
    base=(("app", "RP-CLASS"), ("duration_s", BENCH_DURATION_S)),
)

VFS_FLOOR = SweepSpec(
    name="vfs-floor",
    runner="app",
    description="VFS sensitivity: system-clock floor x benchmark (MC)",
    axes=(
        ("app", ("3L-MF", "3L-MMD", "RP-CLASS")),
        ("floor_mhz", (1.0, 2.0, 3.3)),
    ),
    base=(("mode", "multi-core"), ("duration_s", 5.0)),
)

CORES = SweepSpec(
    name="cores",
    runner="app",
    description="platform width: cores provisioned x benchmark (MC)",
    axes=(
        ("app", ("3L-MF", "3L-MMD", "RP-CLASS")),
        ("num_cores", (6, 8, 12)),
    ),
    base=(("mode", "multi-core"), ("duration_s", 5.0)),
)

ABLATIONS = SweepSpec(
    name="ablations",
    runner="ablation",
    description="mechanism ablations ABL-1..4",
    axes=(("ablation", ("broadcast", "vfs", "sleep", "lockstep")),),
    base=(("duration_s", BENCH_DURATION_S),),
)

FLEET = SweepSpec(
    name="fleet",
    runner="fleet",
    description="fleet grid: scenario preset x sync protocol",
    axes=(
        (
            "scenario",
            (
                "dense-ward",
                "drifting-wearables",
                "intermittent-harvesting",
            ),
        ),
        ("protocol", ("none", "rbs", "ftsp")),
    ),
    base=(("nodes", 8), ("duration_s", 4.0), ("seed", 2014)),
)

FLEET_GEN = SweepSpec(
    name="fleet-gen",
    runner="fleet-gen",
    description="heterogeneous generated-app fleets: policy x protocol",
    axes=(
        ("policy", ("paper", "balanced", "critical-path")),
        ("protocol", ("none", "rbs", "ftsp")),
    ),
    base=(
        ("scenario", "dense-ward"),
        ("suite_seed", 2014),
        ("suite_count", 8),
        ("nodes", 6),
        ("duration_s", 4.0),
        ("seed", 2014),
    ),
)

FLEET_TIERS = SweepSpec(
    name="fleet-tiers",
    runner="fleet-tiers",
    description="hierarchical fleets: preset and token deployments",
    axes=(
        (
            "tiers",
            (
                "ward-campus",
                "body-networks",
                "tiers:ftsp@10x4/rbs@2x6:dense-ward",
                "tiers:none@5x4/rbs@2x6:dense-ward",
            ),
        ),
    ),
    base=(("duration_s", 4.0), ("seed", 2014)),
)

PLATFORM = SweepSpec(
    name="platform",
    runner="platform",
    description="cycle-accurate spin kernel across core counts",
    axes=(("cores", (1, 2, 4, 8)),),
    base=(("cycles", 20_000),),
)


def generated_app_axis(
    seed: int,
    count: int,
    families: tuple[str, ...] | None = None,
) -> tuple[str, tuple[Value, ...]]:
    """A ``gen_app`` sweep axis over one generated suite.

    Each value is a regeneration token (``"family:seed:index"``), so
    the axis is plain JSON scalars: specs carrying it serialise,
    cache and shard exactly like every other campaign.
    """
    return ("gen_app", tuple(suite_tokens(seed, count, families)))


GEN = SweepSpec(
    name="gen",
    runner="gen",
    description="generated synthetic workloads x mapping policy",
    axes=(
        generated_app_axis(seed=2014, count=6),
        ("policy", ("paper", "balanced", "critical-path")),
    ),
    base=(("duration_s", 5.0), ("num_cores", 8)),
)

#: Adversarial shaped tokens the cover campaign sweeps: one per
#: shape knob plus a kitchen-sink combination and an unshaped
#: control.  Each rides the cache/shard machinery as a plain string.
ADVERSARIAL_TOKENS: tuple[str, ...] = (
    "random-dag:2014:0:depth=10",
    "random-dag:2014:1:fanin=6",
    "random-dag:2014:2:diamond=1",
    "random-dag:2014:3:trig=1",
    "random-dag:2014:4:depth=9+fanin=5+diamond=1+trig=1+reps=6",
    "random-dag:2014:5",
)

COVER = SweepSpec(
    name="cover",
    runner="cover",
    description="adversarial shaped workloads x mapping policy, "
                "with coverage-bin classification",
    axes=(
        ("gen_app", ADVERSARIAL_TOKENS),
        ("policy", ("paper", "balanced")),
    ),
    base=(("duration_s", 2.0), ("num_cores", 8)),
)

SEARCH = SweepSpec(
    name="search",
    runner="search",
    description="stochastic placement search: generated app x algorithm",
    axes=(
        generated_app_axis(seed=2014, count=4),
        ("algorithm", ("greedy", "anneal")),
    ),
    base=(
        ("cost", "power"),
        ("iterations", 16),
        ("duration_s", 1.0),
        ("num_cores", 8),
        ("seed", 2014),
    ),
)

SEARCH_FAST = SweepSpec(
    name="search-fast",
    runner="search-fast",
    description="two-tier placement search: analytic screen, "
                "exact top-k verify",
    axes=(
        generated_app_axis(seed=2014, count=4),
        ("algorithm", ("greedy", "anneal")),
    ),
    base=(
        ("cost", "power"),
        ("screen_budget", 48),
        ("top_k", 3),
        ("duration_s", 1.0),
        ("num_cores", 8),
        ("seed", 2014),
    ),
)

#: All built-in campaigns, keyed by name.
SPECS: dict[str, SweepSpec] = {
    spec.name: spec
    for spec in (
        DEMO,
        TABLE1,
        FIG6,
        FIG7,
        VFS_FLOOR,
        CORES,
        ABLATIONS,
        FLEET,
        FLEET_GEN,
        FLEET_TIERS,
        PLATFORM,
        GEN,
        COVER,
        SEARCH,
        SEARCH_FAST,
    )
}

#: The campaigns the benchmark harness emits BENCH artifacts for.
BENCH_SPECS: dict[str, SweepSpec] = {
    spec.name: spec
    for spec in (
        TABLE1,
        FIG6,
        FIG7,
        ABLATIONS,
        FLEET,
        FLEET_GEN,
        FLEET_TIERS,
        PLATFORM,
        GEN,
        COVER,
        SEARCH,
        SEARCH_FAST,
    )
}


def get_spec(name: str) -> SweepSpec:
    """Look up a built-in campaign.

    Raises:
        ValueError: unknown campaign name.
    """
    try:
        return SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown sweep spec {name!r}; choose from {sorted(SPECS)}"
        ) from None
