"""Declarative sweep specifications and their expansion into runs.

A :class:`SweepSpec` names a *run family* (``runner``), a set of fixed
parameters (``base``) and an ordered mapping of *axes*, each axis being
a parameter name and the tuple of values it sweeps over.  Expansion is
the cartesian product of the axes overlaid on the base parameters, in
axis order, with exact duplicate points removed (first occurrence
wins) — so specs whose axes collapse onto each other (for example a
``ratio`` axis crossed with apps that ignore it) stay cheap.

Everything in a spec is restricted to JSON scalars, which gives every
point a *canonical form* (sorted-key JSON).  That canonical form is
the substrate for the content-addressed result cache
(:mod:`repro.sweep.cache`) and for the deterministic per-point seed
stream: points that carry no explicit ``seed`` parameter derive one
from their canonical hash, the same derive-from-stable-identity
pattern :mod:`repro.net.fleet` uses for its per-node RNG streams.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass

#: JSON scalar types allowed as parameter values.
Value = None | bool | int | float | str

#: Version tag mixed into every canonical point (bump to invalidate
#: all cached results when the point semantics change).
POINT_SCHEMA = "repro-sweep-point/1"


class SpecError(ValueError):
    """A sweep specification is malformed."""


def _check_value(name: str, value: Value) -> None:
    if value is not None and not isinstance(value, (bool, int, float, str)):
        raise SpecError(
            f"parameter {name!r} must be a JSON scalar, got "
            f"{type(value).__name__}"
        )


@dataclass(frozen=True)
class SweepSpec:
    """One declarative sweep campaign.

    Attributes:
        name: campaign name (used for artifact file names).
        runner: run-family key in :data:`repro.sweep.runners.RUNNERS`.
        axes: ordered ``(parameter, values)`` pairs; the cartesian
            product of the values is swept, last axis fastest.
        base: fixed parameters every point starts from; an axis with
            the same parameter name overrides the base value.
        description: one-line human summary.
    """

    name: str
    runner: str
    axes: tuple[tuple[str, tuple[Value, ...]], ...] = ()
    base: tuple[tuple[str, Value], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("spec needs a name")
        seen: set[str] = set()
        for axis, values in self.axes:
            if axis in seen:
                raise SpecError(f"duplicate axis {axis!r}")
            seen.add(axis)
            if not values:
                raise SpecError(f"axis {axis!r} has no values")
            for value in values:
                _check_value(axis, value)
        for key, value in self.base:
            _check_value(key, value)

    @property
    def axis_names(self) -> tuple[str, ...]:
        """The swept parameter names, in declaration order."""
        return tuple(axis for axis, _ in self.axes)

    def n_points(self) -> int:
        """Grid size before deduplication."""
        size = 1
        for _, values in self.axes:
            size *= len(values)
        return size

    def as_dict(self) -> dict:
        """JSON-ready form (inverse of :func:`spec_from_mapping`)."""
        return {
            "name": self.name,
            "runner": self.runner,
            "description": self.description,
            "base": dict(self.base),
            "axes": {axis: list(values) for axis, values in self.axes},
        }


def spec_from_mapping(data: dict) -> SweepSpec:
    """Build a spec from a JSON-style mapping.

    Expected shape::

        {"name": "demo", "runner": "app",
         "base": {"duration_s": 5.0},
         "axes": {"app": ["3L-MF", "3L-MMD"],
                  "mode": ["single-core", "multi-core"]}}

    Raises:
        SpecError: missing keys or non-scalar values.
    """
    if not isinstance(data, dict):
        raise SpecError("spec must be a JSON object")
    try:
        name = data["name"]
        runner = data["runner"]
    except KeyError as exc:
        raise SpecError(f"spec is missing required key {exc}") from None
    axes = data.get("axes", {})
    base = data.get("base", {})
    if not isinstance(axes, dict) or not isinstance(base, dict):
        raise SpecError("'axes' and 'base' must be JSON objects")
    for axis, values in axes.items():
        # tuple("abc") would silently sweep one point per character
        if not isinstance(values, (list, tuple)):
            raise SpecError(
                f"axis {axis!r} must be a list of values, got "
                f"{type(values).__name__}"
            )
    return SweepSpec(
        name=name,
        runner=runner,
        description=data.get("description", ""),
        axes=tuple((axis, tuple(values)) for axis, values in axes.items()),
        base=tuple(base.items()),
    )


def expand(spec: SweepSpec) -> list[dict[str, Value]]:
    """Expand a spec into its deduplicated list of run points.

    The cartesian product is walked in axis order (last axis varies
    fastest); each point is the base mapping overlaid with the axis
    values.  Points that canonicalise identically are dropped after
    their first occurrence.
    """
    base = dict(spec.base)
    if not spec.axes:
        return [base]
    names = [axis for axis, _ in spec.axes]
    grids = [values for _, values in spec.axes]
    points: list[dict[str, Value]] = []
    seen: set[str] = set()
    for combo in itertools.product(*grids):
        point = dict(base)
        point.update(zip(names, combo))
        key = canonical_point(spec.runner, point)
        if key in seen:
            continue
        seen.add(key)
        points.append(point)
    return points


def canonical_point(runner: str, point: dict[str, Value]) -> str:
    """The canonical JSON identity of one run point."""
    return json.dumps(
        {"schema": POINT_SCHEMA, "runner": runner, "point": point},
        sort_keys=True,
        separators=(",", ":"),
    )


def point_key(runner: str, point: dict[str, Value]) -> str:
    """Stable content hash of a run point (cache address)."""
    digest = hashlib.sha256(canonical_point(runner, point).encode("utf-8"))
    return digest.hexdigest()[:40]


def stable_seed(runner: str, point: dict[str, Value]) -> int:
    """Deterministic per-point seed derived from the point identity.

    Mirrors the fleet runner's per-node stream derivation: the seed is
    a pure function of stable identity, so serial and sharded parallel
    execution (and re-runs on other machines) draw identical streams.
    """
    digest = hashlib.sha256(
        ("seed:" + canonical_point(runner, point)).encode("utf-8")
    )
    return int.from_bytes(digest.digest()[:4], "big")
