"""Machine-readable sweep artifacts: the BENCH JSON schema and CSV.

Every benchmark emits one ``BENCH_<name>.json`` document in a single
schema (``repro-bench/1``)::

    {
      "schema": "repro-bench/1",
      "name": "table1",
      "spec": {"name": ..., "runner": ..., "axes": {...}, "base": {...}},
      "points": 6,
      "cache": {"hits": 0, "misses": 6, "stores": 6,
                "fingerprint": "ab12..."},
      "wall_s": 1.84,            # wall-clock of the sweep call
      "executed_wall_s": 1.79,   # summed runner time of the misses
      "simulated_s": 90.0,       # simulated seconds covered
      "sim_s_per_s": 48.9,       # simulated seconds per wall second
      "workers": 2,
      "mode": "parallel",
      "aggregates": {            # percentile axes per headline metric
        "power_uw": {"count": 6, "min": ..., "p50": ..., "p90": ...,
                     "max": ..., "mean": ...},
        ...
      },
      "results": [
        {"point": {...}, "metrics": {...},
         "wall_s": 0.31, "sim_s_per_s": 48.4, "cached": false},
        ...
      ]
    }

``sim_s_per_s`` is the headline throughput figure the CI regression
gate tracks; ``cache.hits`` / ``cache.misses`` make warm and cold runs
distinguishable in the uploaded artifacts.  ``aggregates`` are the
per-campaign *percentile axes*: a five-point summary
(:func:`repro.eval.aggregates.summary_stats`) of every numeric
headline metric of the campaign's run family, so population-scale
campaigns stay comparable without re-reading hundreds of points.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..eval.aggregates import summary_stats
from .engine import SweepResult
from .runners import HEADLINE_METRICS
from .spec import Value

#: Schema tag of BENCH documents (bump on incompatible changes).
BENCH_SCHEMA = "repro-bench/1"


def _sanitize(value: Value) -> Value:
    """JSON has no inf/nan; encode them as strings."""
    if isinstance(value, float) and (
        value != value or value in (float("inf"), float("-inf"))
    ):
        return repr(value)
    return value


def percentile_axes(result: SweepResult) -> dict[str, dict]:
    """Per-campaign aggregate blocks over the headline metrics.

    Every numeric headline metric of the campaign's run family (see
    :data:`repro.sweep.runners.HEADLINE_METRICS`) is summarised with
    count/min/p50/p90/max/mean over all points that report it.
    Non-numeric metrics (statuses, names) and metrics absent from
    every point are skipped, so the block never changes shape under
    partial failures.
    """
    axes: dict[str, dict] = {}
    for key in HEADLINE_METRICS.get(result.spec.runner, ()):
        values = []
        for point in result.results:
            value = point.metrics.get(key)
            numeric = isinstance(value, (int, float))
            if numeric and not isinstance(value, bool):
                values.append(value)
        if values:
            axes[key] = {
                stat: _sanitize(value)
                for stat, value in summary_stats(values).items()
            }
    return axes


def bench_payload(result: SweepResult, name: str | None = None) -> dict:
    """The BENCH document of one sweep result."""
    return {
        "aggregates": percentile_axes(result),
        "schema": BENCH_SCHEMA,
        "name": name or result.spec.name,
        "spec": result.spec.as_dict(),
        "points": result.n_points,
        "cache": {
            "hits": result.cache_hits,
            "misses": result.cache_misses,
            "stores": result.cache_stores,
            "fingerprint": result.fingerprint,
        },
        "wall_s": result.elapsed_s,
        "executed_wall_s": result.executed_wall_s,
        "simulated_s": result.simulated_s,
        "sim_s_per_s": result.sim_s_per_s,
        "workers": result.workers,
        "mode": result.mode,
        "results": [
            {
                "point": point.point,
                "metrics": {
                    key: _sanitize(value)
                    for key, value in point.metrics.items()
                },
                "wall_s": point.wall_s,
                "sim_s_per_s": point.sim_s_per_s,
                "cached": point.cached,
            }
            for point in result.results
        ],
    }


def write_bench_json(
    result: SweepResult,
    path: str | Path,
    name: str | None = None,
) -> Path:
    """Write one ``BENCH_<name>.json`` document; return its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(bench_payload(result, name), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return path


def sweep_rows(
    result: SweepResult,
) -> tuple[list[str], list[list[Value]]]:
    """Flatten a sweep into (header, rows) for CSV/tabular output.

    Columns are the union of point parameters (in first-seen order)
    followed by the union of metric keys, then the per-point timing
    columns.  Missing cells are empty.
    """
    param_cols: list[str] = []
    metric_cols: list[str] = []
    for point in result.results:
        for key in point.point:
            if key not in param_cols:
                param_cols.append(key)
        for key in point.metrics:
            if key not in metric_cols:
                metric_cols.append(key)
    header = param_cols + metric_cols + ["wall_s", "sim_s_per_s", "cached"]
    rows = []
    for point in result.results:
        row: list[Value] = [point.point.get(col, "") for col in param_cols]
        row.extend(
            _sanitize(point.metrics.get(col, "")) for col in metric_cols
        )
        row.extend([point.wall_s, point.sim_s_per_s, point.cached])
        rows.append(row)
    return header, rows


def write_csv(result: SweepResult, path: str | Path) -> Path:
    """Write the flat CSV table of one sweep; return its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header, rows = sweep_rows(result)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def merge_bench(payloads: dict[str, dict]) -> dict:
    """Merge per-bench BENCH documents into one ``BENCH_all`` document.

    Totals are summed; the aggregate ``sim_s_per_s`` is total
    simulated seconds over total wall seconds (not a mean of ratios).
    """
    wall = sum(payload["wall_s"] for payload in payloads.values())
    simulated = sum(payload["simulated_s"] for payload in payloads.values())
    return {
        "schema": BENCH_SCHEMA,
        "name": "all",
        "points": sum(payload["points"] for payload in payloads.values()),
        "cache": {
            "hits": sum(
                payload["cache"]["hits"] for payload in payloads.values()
            ),
            "misses": sum(
                payload["cache"]["misses"] for payload in payloads.values()
            ),
            "stores": sum(
                payload["cache"].get("stores", 0)
                for payload in payloads.values()
            ),
        },
        "wall_s": wall,
        "simulated_s": simulated,
        "sim_s_per_s": simulated / wall if wall > 0 else 0.0,
        "benches": payloads,
    }
