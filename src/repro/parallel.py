"""Shared shard-and-merge multiprocessing helpers.

Both embarrassingly parallel layers — the fleet runner
(:mod:`repro.net.fleet`) and the sweep engine
(:mod:`repro.sweep.engine`) — follow the same discipline: split work
into contiguous shards, execute them on a :mod:`multiprocessing` pool
(or inline), and merge results in a fixed order so serial and parallel
execution are indistinguishable.  The platform-sensitive policy (fork
on Linux, the platform default elsewhere) lives here, once.

When metrics collection is active (:mod:`repro.obs`), worker payloads
are wrapped so each worker collects into its own fresh registry and
ships a snapshot back beside its result; the parent merges snapshots
in payload index order.  Counters are integers merged by addition and
gauges max-merge, so the merged registry is identical for any worker
count — the property the metrics determinism tests pin down.
"""

from __future__ import annotations

import math
import multiprocessing
import sys
from typing import Callable, Sequence, TypeVar

from . import obs

Item = TypeVar("Item")
Result = TypeVar("Result")


def shard(items: Sequence[Item], shard_size: int) -> list[list[Item]]:
    """Split items into contiguous batches of at most ``shard_size``."""
    if shard_size < 1:
        raise ValueError("shard size must be positive")
    return [
        list(items[start : start + shard_size])
        for start in range(0, len(items), shard_size)
    ]


def even_shard_size(count: int, workers: int) -> int:
    """The batch size that spreads ``count`` items evenly."""
    return max(1, math.ceil(count / workers)) if count else 1


def _observed(payload: tuple) -> tuple:
    """Run one wrapped payload under a fresh worker-local registry.

    Top-level so it pickles under spawn.  Under fork the worker
    *inherits* the parent's active registry; activating a fresh one
    here replaces it, so worker events are collected exactly once —
    in the worker — and merged exactly once — in the parent.
    """
    fn, item = payload
    registry = obs.activate()
    try:
        result = fn(item)
    finally:
        obs.deactivate()
    return result, registry.snapshot()


def pool_map(
    fn: Callable[[Item], Result],
    payloads: Sequence[Item],
    workers: int,
) -> list[Result]:
    """Map a picklable top-level function over payloads on a pool.

    Empty payload lists and single-worker calls never touch
    :mod:`multiprocessing`: fully cached sweeps over generated apps
    (zero surviving points) and serial runs execute inline, with no
    pool start-up cost and no pickling requirement.  Inline execution
    records metrics (when collection is active) straight into the
    caller's registry; pooled execution wraps each payload through
    :func:`_observed` and merges the returned snapshots in payload
    index order.

    fork is the cheap path but is only reliably safe on Linux (macOS
    lists it as available, yet forking with numpy/Accelerate loaded
    can crash); elsewhere use the platform default (spawn) — payloads
    must be picklable either way.
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    if not payloads:
        return []
    if workers == 1:
        return [fn(payload) for payload in payloads]
    registry = obs.active()
    use_fork = (
        sys.platform.startswith("linux")
        and "fork" in multiprocessing.get_all_start_methods()
    )
    ctx = multiprocessing.get_context("fork" if use_fork else None)
    with ctx.Pool(processes=workers) as pool:
        if registry is None:
            return pool.map(fn, payloads)
        wrapped = pool.map(
            _observed, [(fn, payload) for payload in payloads]
        )
    results = []
    for result, snapshot in wrapped:
        registry.merge(snapshot)
        results.append(result)
    return results
