"""System-level architectural simulator (system S19 of DESIGN.md)."""

from .costmodel import CostConsistency, derive_filter_cost
from .engine import (
    BeatEvent,
    Mode,
    SimulationResult,
    schedule_from_record,
    simulate,
    uniform_schedule,
)

__all__ = [
    "BeatEvent",
    "CostConsistency",
    "Mode",
    "SimulationResult",
    "derive_filter_cost",
    "schedule_from_record",
    "simulate",
    "uniform_schedule",
]
