"""System-level behavioural simulator (the paper's SystemC analogue).

Sec. IV-C: cycle-accurate (RTL) simulation of 60 s of ECG is
infeasible, so the paper annotates a SystemC architectural model with
per-component energies and simulates at the application level.  This
module is that model: it replays a beat schedule through a mapped
application at *sample granularity*, tracking per-core work queues,
clock-gated cycles, instruction/data traffic, broadcast merging and
synchronization activity — everything
:func:`repro.power.energy.compute_power` needs, plus the behavioural
rows of Table I.

Three execution modes mirror the paper's comparisons:

* ``SINGLE_CORE`` — the baseline: all phases time-share one core that
  is sized to the average workload (duty ~1 at the chosen clock).
* ``MULTI_CORE`` — the proposed system: one core per phase replica,
  clock-gating through the synchronizer, lock-step broadcast.
* ``MULTI_CORE_NO_SYNC`` — the Fig. 6 strawman: same mapping but
  *active waiting* instead of SLEEP (idle capacity burns as spin
  loops) and no lock-step recovery (no instruction broadcast).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from .. import obs
from ..apps.mapping import (
    MappingPlan,
    map_multicore,
    map_singlecore,
    plan_required_mhz,
)
from ..apps.phases import AppSpec, Trigger
from ..power.components import DEFAULT_ENERGY, EnergyParams
from ..power.energy import ActivityVector, PowerReport, compute_power
from ..power.process import DEFAULT_PROCESS, ProcessModel
from ..power.vfs import (
    MIN_SYSTEM_CLOCK_MHZ,
    OperatingPoint,
    plan_operating_point,
)
from ..signals.records import EcgRecord

#: Data accesses per cycle of a busy-wait polling loop (one flag load
#: every ~3 instructions).
SPIN_DM_RATE = 1.0 / 3.0

#: Fraction of executed synchronization instructions that end up as a
#: (merged) memory modification of a sync point; SLEEPs never write
#: and same-cycle batches collapse into single writes.
SYNC_WRITE_FRACTION = 0.5


class Mode(enum.Enum):
    """Execution configuration being simulated."""

    SINGLE_CORE = "single-core"
    MULTI_CORE = "multi-core"
    MULTI_CORE_NO_SYNC = "multi-core-no-sync"


@dataclass(frozen=True)
class BeatEvent:
    """One heartbeat in the input schedule.

    Attributes:
        sample: R-peak position in samples.
        abnormal: True when the beat triggers the on-demand chain.
    """

    sample: int
    abnormal: bool


def schedule_from_record(record: EcgRecord) -> list[BeatEvent]:
    """Extract the beat schedule of a synthesised record."""
    return [BeatEvent(sample=beat.sample, abnormal=beat.is_pathological)
            for beat in record.annotations]


def uniform_schedule(duration_s: float, fs: float, bpm: float = 72.0,
                     abnormal_ratio: float = 0.0) -> list[BeatEvent]:
    """Synthetic schedule with uniformly spread abnormal beats.

    Matches the Fig. 7 setting ("the abnormal heartbeats have been
    distributed uniformly") without synthesising waveforms.
    """
    period = 60.0 / bpm * fs
    count = int(duration_s * fs / period)
    if count <= 0:
        return []
    abnormal_target = abnormal_ratio * count
    events = []
    credit = 0.0
    for index in range(count):
        credit += abnormal_target / count
        abnormal = credit >= 1.0
        if abnormal:
            credit -= 1.0
        events.append(BeatEvent(sample=int((index + 0.6) * period),
                                abnormal=abnormal))
    return events


@lru_cache(maxsize=4096)
def cached_uniform_schedule(duration_s: float, fs: float,
                            bpm: float = 72.0,
                            abnormal_ratio: float = 0.0
                            ) -> tuple[BeatEvent, ...]:
    """Memoised :func:`uniform_schedule` (immutable tuple form).

    Fleets rebuild identical schedules for every node that shares a
    ``(duration, fs, bpm, abnormal_ratio)`` shape; this caches the
    construction per process.  The result is a tuple of frozen
    :class:`BeatEvent` values, so sharing one schedule across nodes
    (and threads) is safe — ``simulate()`` only ever reads it.
    """
    return tuple(uniform_schedule(duration_s, fs, bpm=bpm,
                                  abnormal_ratio=abnormal_ratio))


@dataclass
class SimulationResult:
    """Everything one (application, mode) simulation produces.

    Attributes:
        mode: simulated configuration.
        mapping: the mapping plan used.
        operating_point: chosen clock and voltage (VFS).
        required_mhz: clock requirement before the platform floor.
        activity: platform-neutral counters for the power model.
        power: average-power decomposition.
        im_broadcast_fraction: Table I "IM Broadcast".
        dm_broadcast_fraction: Table I "DM Broadcast".
        runtime_overhead: Table I "Run-time Overhead".
        max_latency_s: worst work-queue latency observed (real-time
            check; streaming phases must stay near zero).
        duration_s: simulated time span.
    """

    mode: Mode
    mapping: MappingPlan
    operating_point: OperatingPoint
    required_mhz: float
    activity: ActivityVector
    power: PowerReport
    im_broadcast_fraction: float
    dm_broadcast_fraction: float
    runtime_overhead: float
    max_latency_s: float
    duration_s: float

    @property
    def app_name(self) -> str:
        """Benchmark name."""
        return self.mapping.app.name

    @property
    def code_overhead(self) -> float:
        """Table I "Code Overhead" (static, from the mapping)."""
        return self.mapping.code_overhead


@dataclass
class _CoreState:
    """Work-queue state of one simulated core."""

    phase_name: str
    streaming_cycles: float  # enqueued every sample
    streaming_sync: float
    dm_rate: float
    queue: float = 0.0
    executed: float = 0.0
    spin: float = 0.0
    dm_accesses: float = 0.0
    sync_ops: float = 0.0
    executed_this_tick: float = 0.0
    group: str | None = None  # lock-step group (phase name)
    shared_read_fraction: float = 0.0
    alignment: float = 0.0


def _required_clock_mhz(app: AppSpec, mode: Mode,
                        schedule: Sequence[BeatEvent],
                        duration_s: float,
                        mapping: MappingPlan) -> float:
    """Sizing step of Sec. V-A: the minimum clock for real time."""
    if mode is Mode.SINGLE_CORE:
        abnormal = sum(1 for event in schedule if event.abnormal)
        streaming = app.streaming_cycles_per_sample * app.fs
        triggered = (abnormal * app.triggered_cycles_per_beat
                     / duration_s if duration_s > 0 else 0.0)
        return (streaming + triggered) / 1e6
    # Multi-core: the busiest *streaming* core sets the clock; the
    # on-demand chain runs at beat rate with a relaxed (multi-beat)
    # deadline and never dominates.  Cores hosting several streaming
    # phases (coalesced search placements) are sized for their summed
    # load.
    return plan_required_mhz(mapping, with_sync=mode is Mode.MULTI_CORE)


def simulate(app: AppSpec, mode: Mode, schedule: Sequence[BeatEvent],
             duration_s: float = 60.0, num_cores: int = 8,
             energy: EnergyParams = DEFAULT_ENERGY,
             process: ProcessModel = DEFAULT_PROCESS,
             floor_mhz: float = MIN_SYSTEM_CLOCK_MHZ,
             mapping: MappingPlan | None = None) -> SimulationResult:
    """Simulate one application in one configuration.

    Args:
        app: benchmark application.
        mode: configuration to simulate.
        schedule: input beat schedule (drives the on-demand phases).
        duration_s: simulated time span (the paper uses 60 s).
        num_cores: cores of the multi-core platform.
        energy: component-energy calibration.
        process: VFS process model.
        floor_mhz: minimum system clock the VFS planner may choose
            (the paper's platform floor is 1 MHz; sweeps raise it to
            probe VFS sensitivity).
        mapping: a precomputed mapping plan for ``app`` (the policy
            explorer evaluates alternative placements this way); the
            paper's default placement is derived when omitted.

    Raises:
        ValueError: ``mapping`` targets the wrong platform kind for
            ``mode``.
    """
    app.validate()
    multicore = mode is not Mode.SINGLE_CORE
    if mapping is None:
        mapping = map_multicore(app, num_cores) if multicore \
            else map_singlecore(app)
    elif mapping.multicore != multicore:
        raise ValueError(
            f"mapping is {'multi' if mapping.multicore else 'single'}"
            f"-core but mode is {mode.value}")
    required = _required_clock_mhz(app, mode, schedule, duration_s,
                                   mapping)
    point = plan_operating_point(required, process=process,
                                 single_core=not multicore,
                                 floor_mhz=floor_mhz)

    # ------------------------------------------------------------------
    # Build per-core state.
    # ------------------------------------------------------------------
    with_sync = mode is Mode.MULTI_CORE
    cores: list[_CoreState] = []
    triggered_cores: dict[str, list[int]] = {}
    if multicore:
        for assignment in mapping.assignments:
            phase = app.phase(assignment.phase)
            streaming = phase.trigger is Trigger.STREAMING
            state = _CoreState(
                phase_name=phase.name,
                streaming_cycles=phase.cycles_per_sample
                if streaming else 0.0,
                streaming_sync=phase.sync_ops_per_sample
                if (streaming and with_sync) else 0.0,
                dm_rate=phase.dm_access_rate,
                group=phase.name if (phase.replicas > 1
                                     and phase.lockstep_alignment > 0)
                else None,
                shared_read_fraction=phase.shared_read_fraction,
                alignment=phase.lockstep_alignment if with_sync else 0.0,
            )
            cores.append(state)
            if not streaming:
                triggered_cores.setdefault(phase.name, []).append(
                    len(cores) - 1)
    else:
        streaming_total = app.streaming_cycles_per_sample
        rates = [(phase.cycles_per_sample * phase.replicas,
                  phase.dm_access_rate) for phase in app.phases]
        total = sum(cycles for cycles, _ in rates) or 1.0
        blended_rate = sum(cycles * rate for cycles, rate in rates) / total
        cores.append(_CoreState(
            phase_name="all", streaming_cycles=streaming_total,
            streaming_sync=0.0, dm_rate=blended_rate))
        for phase in app.phases:
            if phase.trigger is not Trigger.STREAMING:
                triggered_cores.setdefault(phase.name, []).append(0)

    # ------------------------------------------------------------------
    # Tick loop at sample granularity.
    # ------------------------------------------------------------------
    fs = app.fs
    ticks = int(round(duration_s * fs))
    capacity = point.cycles_per_second / fs  # cycles per tick
    beats_by_tick: dict[int, int] = {}
    for event in schedule:
        if event.abnormal and 0 <= event.sample < ticks:
            beats_by_tick[event.sample] = \
                beats_by_tick.get(event.sample, 0) + 1

    obs.add("engine.simulations")
    obs.add(f"engine.mode.{mode.value}")
    obs.add("engine.ticks", ticks)
    abnormal_beats = sum(beats_by_tick.values())
    if abnormal_beats:
        obs.add("engine.beats.abnormal", abnormal_beats)

    groups: dict[str, list[_CoreState]] = {}
    for state in cores:
        if state.group is not None:
            groups.setdefault(state.group, []).append(state)

    im_merged = 0.0
    dm_merged = 0.0
    max_queue = 0.0
    triggered_sync = {
        phase.name: (phase.sync_ops_per_sample if with_sync else 0.0)
        for phase in app.phases
    }
    for tick in range(ticks):
        arrivals = beats_by_tick.get(tick, 0)
        if arrivals:
            for phase in app.phases:
                if phase.trigger is not Trigger.ON_ABNORMAL:
                    continue
                work = (phase.cycles_per_sample
                        + triggered_sync[phase.name]) \
                    * app.beat_span_samples * arrivals
                for core_index in triggered_cores.get(phase.name, []):
                    state = cores[core_index]
                    state.queue += work
                    state.sync_ops += (triggered_sync[phase.name]
                                       * app.beat_span_samples * arrivals)
        for state in cores:
            state.queue += state.streaming_cycles + state.streaming_sync
            state.sync_ops += state.streaming_sync
            executed = min(state.queue, capacity)
            state.queue -= executed
            state.executed += executed
            state.executed_this_tick = executed
            state.dm_accesses += executed * state.dm_rate
            if mode is Mode.MULTI_CORE_NO_SYNC:
                spin = capacity - executed
                state.spin += spin
                state.dm_accesses += spin * SPIN_DM_RATE
            max_queue = max(max_queue, state.queue)
        for members in groups.values():
            active = [m for m in members if m.executed_this_tick > 0]
            if len(active) < 2:
                continue
            share = (len(active) - 1) / len(active)
            fetched = sum(m.executed_this_tick for m in active)
            alignment = active[0].alignment
            im_merged += alignment * share * fetched
            dm_merged += (alignment * share
                          * active[0].shared_read_fraction
                          * sum(m.executed_this_tick * m.dm_rate
                                for m in active))

    # ------------------------------------------------------------------
    # Aggregate.
    # ------------------------------------------------------------------
    total_executed = sum(state.executed for state in cores)
    total_spin = sum(state.spin for state in cores)
    total_fetch = total_executed + total_spin
    total_dm = sum(state.dm_accesses for state in cores)
    total_sync = sum(state.sync_ops for state in cores) if with_sync else 0.0
    sync_writes = total_sync * SYNC_WRITE_FRACTION
    wall_cycles = ticks * capacity

    activity = ActivityVector(
        cycles=wall_cycles,
        core_active_cycles=total_fetch,
        im_accesses=total_fetch - im_merged,
        dm_accesses=total_dm - dm_merged + sync_writes,
        interconnect_grants=total_fetch + total_dm + sync_writes,
        sync_ops=total_sync,
        cores_on=mapping.active_cores,
        im_banks_on=len(mapping.im_banks_used),
        dm_banks_on=mapping.dm_banks_active,
        platform_cores=num_cores if multicore else 1,
    )
    power = compute_power(activity, point, multicore=multicore,
                          params=energy, process=process)
    return SimulationResult(
        mode=mode,
        mapping=mapping,
        operating_point=point,
        required_mhz=required,
        activity=activity,
        power=power,
        im_broadcast_fraction=im_merged / total_fetch if total_fetch else 0.0,
        dm_broadcast_fraction=dm_merged / total_dm if total_dm else 0.0,
        runtime_overhead=total_sync / total_executed
        if total_executed else 0.0,
        max_latency_s=max_queue / point.cycles_per_second,
        duration_s=duration_s,
    )
