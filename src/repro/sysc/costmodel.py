"""Cross-validation of the calibrated workload budgets (DESIGN 5.4).

The system-level model uses calibrated per-phase cycle budgets
(:mod:`repro.apps.benchmarks`), anchored to the paper's single-core
minimum clocks.  This module *derives* the same quantity bottom-up —
operation counts of the real DSP implementation times per-operation
cycle costs measured on the cycle-accurate platform — and reports how
well the two agree.  A large disagreement would mean the calibration
is hiding modelling error; the test suite keeps the ratio within a
factor of 2.  In practice the calibrated budget sits ~1.8x above the
bare inner-loop estimate: the headroom covers circular-buffer index
arithmetic, fixed-point scaling and inter-pass buffering that the
micro-kernel's straight-line loop omits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.benchmarks import MF_CYCLES
from ..dsp.morphology import MorphologicalFilter
from ..kernels.characterize import characterize_window_min

#: Default cycles per window element when no measurement is supplied
#: (the cycle-level window-minimum kernel at W=32 measures ~6.2).
DEFAULT_CYCLES_PER_ELEMENT = 6.2


@dataclass(frozen=True)
class CostConsistency:
    """Derived vs. calibrated cost of the filter phase.

    Attributes:
        ops_per_sample: operation count of the real DSP implementation.
        cycles_per_element: measured cycles per window element.
        derived_cycles_per_sample: bottom-up cycle estimate.
        calibrated_cycles_per_sample: the budget used by the model
            (anchored to Table I's 2.3 MHz single-core clock).
    """

    ops_per_sample: int
    cycles_per_element: float
    derived_cycles_per_sample: float
    calibrated_cycles_per_sample: float

    @property
    def ratio(self) -> float:
        """calibrated / derived; 1.0 would be perfect agreement."""
        if self.derived_cycles_per_sample == 0:
            return float("inf")
        return (self.calibrated_cycles_per_sample
                / self.derived_cycles_per_sample)


def derive_filter_cost(fs: float = 250.0,
                       cycles_per_element: float | None = None,
                       measure: bool = False) -> CostConsistency:
    """Derive the conditioning filter's cycles/sample bottom-up.

    Args:
        fs: sampling rate (sets the structuring-element widths).
        cycles_per_element: per-element cost; measured on the
            cycle-level platform when ``measure`` is True, otherwise
            the supplied value or the recorded default.
        measure: run the window-minimum kernel to obtain the cost.
    """
    if measure:
        report = characterize_window_min(cores=1, window=32, outputs=48)
        cycles_per_element = report.cycles_per_element
    if cycles_per_element is None:
        cycles_per_element = DEFAULT_CYCLES_PER_ELEMENT
    mf = MorphologicalFilter(fs=fs)
    # Window elements touched per output sample: two passes at each
    # baseline width plus four short noise passes (see ops_per_sample).
    elements = (2 * mf.open_size + 2 * mf.close_size + 4 * mf.noise_size)
    derived = elements * cycles_per_element
    return CostConsistency(
        ops_per_sample=mf.ops_per_sample(),
        cycles_per_element=cycles_per_element,
        derived_cycles_per_sample=derived,
        calibrated_cycles_per_sample=MF_CYCLES,
    )
