"""Energy accounting: activity counters -> average power decomposition.

This is the annotation step of the paper's methodology (Sec. IV-C):
activity gathered from simulation (either the cycle-level platform or
the system-level model) is combined with the per-component energies of
:mod:`repro.power.components`, scaled to the operating voltage, and
reported as the average power over the simulated interval — the
quantity of Table I ("Avg. Power (µW)") and the stacked decomposition
of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .components import DEFAULT_ENERGY, EnergyParams
from .process import DEFAULT_PROCESS, ProcessModel
from .vfs import OperatingPoint

#: Decomposition categories, in Fig. 6 stacking order.
CATEGORIES = (
    "clock_tree",
    "leakage",
    "interconnect",
    "synchronizer",
    "cores_logic",
    "data_mem",
    "instr_mem",
)


@dataclass(frozen=True)
class ActivityVector:
    """Platform-neutral activity counts over one simulated interval.

    Attributes:
        cycles: elapsed system clock cycles.
        core_active_cycles: non-clock-gated core-cycles, summed over
            enabled cores.
        im_accesses: instruction-memory bank accesses (post-broadcast).
        dm_accesses: data-memory bank accesses (post-broadcast,
            including the synchronizer's point updates).
        interconnect_grants: requests served by the interconnect
            (merged requests still traverse the fan-out and are
            counted).
        sync_ops: synchronization instructions processed.
        cores_on: enabled (powered) cores.
        im_banks_on: powered instruction-memory banks.
        dm_banks_on: powered data-memory banks.
        platform_cores: cores the clock tree is sized for (8 on the
            paper's multi-core platform even when fewer are enabled).
    """

    cycles: float
    core_active_cycles: float
    im_accesses: float
    dm_accesses: float
    interconnect_grants: float
    sync_ops: float
    cores_on: int
    im_banks_on: int
    dm_banks_on: int
    platform_cores: int

    @classmethod
    def from_system(cls, activity, platform_cores: int | None = None
                    ) -> "ActivityVector":
        """Adapter from :class:`repro.hw.system.SystemActivity`."""
        return cls(
            cycles=activity.cycles,
            core_active_cycles=sum(activity.core_active_cycles),
            im_accesses=activity.im.accesses,
            dm_accesses=activity.dm.accesses,
            interconnect_grants=(activity.im_xbar.grants
                                 + activity.dm_xbar.grants),
            sync_ops=activity.sync.total_sync_instructions,
            cores_on=activity.active_cores,
            im_banks_on=activity.im.powered_banks,
            dm_banks_on=activity.dm.powered_banks,
            platform_cores=platform_cores
            if platform_cores is not None
            else len(activity.core_active_cycles),
        )


@dataclass
class PowerReport:
    """Average power of one configuration, decomposed by component.

    Attributes:
        operating_point: the (frequency, voltage) the run assumed.
        duration_s: simulated wall-clock time.
        categories: average power per category, µW (see
            :data:`CATEGORIES`).
    """

    operating_point: OperatingPoint
    duration_s: float
    categories: dict[str, float] = field(default_factory=dict)

    @property
    def total_uw(self) -> float:
        """Total average power in µW."""
        return sum(self.categories.values())

    def saving_vs(self, baseline: "PowerReport") -> float:
        """Fractional power saving of ``self`` relative to ``baseline``."""
        if baseline.total_uw == 0:
            return 0.0
        return 1.0 - self.total_uw / baseline.total_uw

    def __str__(self) -> str:  # pragma: no cover - convenience
        lines = [f"P_avg = {self.total_uw:7.2f} uW @ "
                 f"{self.operating_point.frequency_mhz:.2f} MHz / "
                 f"{self.operating_point.voltage:.2f} V"]
        extras = [name for name in self.categories
                  if name not in CATEGORIES]
        for name in (*CATEGORIES, *extras):
            lines.append(f"  {name:<13} {self.categories.get(name, 0.0):7.2f}")
        return "\n".join(lines)


def compute_power(activity: ActivityVector, point: OperatingPoint,
                  multicore: bool,
                  params: EnergyParams = DEFAULT_ENERGY,
                  process: ProcessModel = DEFAULT_PROCESS) -> PowerReport:
    """Turn activity counters into an average-power decomposition.

    Args:
        activity: counters gathered over one simulated interval.
        point: operating point the platform ran at (sets the duration
            via ``cycles / f`` and the voltage scaling).
        multicore: True for the crossbar-based platform, False for the
            decoder-based single-core baseline (selects interconnect
            energy, synchronizer idle power and crossbar leakage).
        params: per-component energies at the reference voltage.
        process: voltage scaling model.
    """
    if activity.cycles <= 0:
        raise ValueError("activity must span at least one cycle")
    duration_s = activity.cycles / point.cycles_per_second
    dyn = process.dynamic_scale(point.voltage)
    leak = process.leakage_scale(point.voltage)

    # Dynamic energies in pJ.
    cores_pj = activity.core_active_cycles * params.core_active_pj
    clock_pj = (activity.cycles
                * (params.clock_root_base_pj
                   + params.clock_root_per_core_pj * activity.platform_cores)
                + activity.core_active_cycles * params.clock_branch_pj)
    im_pj = activity.im_accesses * params.im_access_pj
    dm_pj = activity.dm_accesses * params.dm_access_pj
    grant_pj = params.xbar_grant_pj if multicore else params.decoder_access_pj
    xbar_pj = activity.interconnect_grants * grant_pj
    sync_pj = activity.sync_ops * params.sync_op_pj
    if multicore:
        sync_pj += activity.cycles * params.sync_idle_pj

    def to_uw(pico_joules: float) -> float:
        return pico_joules * dyn / duration_s * 1e-6

    leakage_uw = leak * (
        activity.im_banks_on * params.leak_im_bank_uw
        + activity.dm_banks_on * params.leak_dm_bank_uw
        + activity.cores_on * params.leak_core_uw
        + (params.leak_xbar_uw if multicore else 0.0))

    return PowerReport(
        operating_point=point,
        duration_s=duration_s,
        categories={
            "cores_logic": to_uw(cores_pj),
            "clock_tree": to_uw(clock_pj),
            "instr_mem": to_uw(im_pj),
            "data_mem": to_uw(dm_pj),
            "interconnect": to_uw(xbar_pj),
            "synchronizer": to_uw(sync_pj),
            "leakage": leakage_uw,
        },
    )
