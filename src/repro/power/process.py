"""90 nm low-leakage process model: voltage, frequency, scaling.

The paper measures energy on a 90 nm low-leakage flow and exploits
voltage-frequency scaling (VFS): lowering the clock frequency allows a
lower supply voltage, which reduces both dynamic and leakage power
(Sec. I, II, V).  We model the process with:

* a **maximum-frequency table** ``fmax(V)`` over a discrete voltage
  grid (near-threshold operation is steep: each 50 mV step roughly
  doubles the achievable clock, consistent with published
  sub/near-threshold silicon [4][5][6]);
* a **dynamic-energy scale** ``(V / V_ref) ** dynamic_exponent`` with
  ``dynamic_exponent`` slightly above 2 (pure CV² plus the
  short-circuit/glitch component that shrinks with voltage);
* a **leakage-power scale** ``(V / V_ref) ** leakage_exponent`` with a
  cubic-ish exponent (sub-threshold current shrinks super-linearly with
  V through DIBL).

The table anchors the paper's operating points: 1.0 MHz at 0.5 V (all
multi-core rows of Table I) and 3.5 MHz at 0.6 V — just above the
single-core rows (2.3-3.4 MHz, all at 0.6 V, with 0.55 V topping out
below 2.3 MHz).  The tight 0.6 V headroom matters for Fig. 7: when the
pathological-beat ratio pushes the single-core clock past ~3.5 MHz the
baseline must hop to 0.65 V, which is where the paper's reduction curve
climbs toward its ~38 % best case.

Calibration note (DESIGN.md Sec. 5.3): the exponents and the table are
*process* calibration shared by every experiment; per-benchmark numbers
are never fitted.
"""

from __future__ import annotations

from dataclasses import dataclass


#: (voltage V, maximum clock frequency MHz) on the legal voltage grid.
DEFAULT_FMAX_TABLE: tuple[tuple[float, float], ...] = (
    (0.40, 0.12),
    (0.45, 0.40),
    (0.50, 1.00),
    (0.55, 2.20),
    (0.60, 3.50),
    (0.65, 5.60),
    (0.70, 9.00),
    (0.80, 36.0),
    (0.90, 60.0),
    (1.00, 90.0),
    (1.10, 120.0),
    (1.20, 150.0),
)


@dataclass(frozen=True)
class ProcessModel:
    """Voltage/frequency/energy behaviour of the silicon process.

    Attributes:
        reference_voltage: voltage at which the component energies of
            :class:`repro.power.components.EnergyParams` are specified.
        dynamic_exponent: exponent of the dynamic-energy voltage scale.
        leakage_exponent: exponent of the leakage-power voltage scale.
        fmax_table: (voltage, MHz) pairs, ascending in voltage.
    """

    reference_voltage: float = 0.6
    dynamic_exponent: float = 2.8
    leakage_exponent: float = 3.0
    fmax_table: tuple[tuple[float, float], ...] = DEFAULT_FMAX_TABLE

    def __post_init__(self) -> None:
        voltages = [v for v, _ in self.fmax_table]
        freqs = [f for _, f in self.fmax_table]
        if voltages != sorted(voltages) or len(set(voltages)) != len(voltages):
            raise ValueError("fmax table voltages must be strictly ascending")
        if freqs != sorted(freqs):
            raise ValueError("fmax must be monotonic in voltage")

    @property
    def voltage_grid(self) -> tuple[float, ...]:
        """Legal supply voltages, ascending."""
        return tuple(v for v, _ in self.fmax_table)

    def fmax(self, voltage: float) -> float:
        """Maximum clock frequency (MHz) at a grid voltage."""
        for grid_voltage, frequency in self.fmax_table:
            if abs(grid_voltage - voltage) < 1e-9:
                return frequency
        raise ValueError(f"voltage {voltage} V is not on the grid "
                         f"{self.voltage_grid}")

    def min_voltage(self, frequency_mhz: float,
                    frequency_boost: float = 1.0) -> float:
        """Smallest grid voltage able to clock at ``frequency_mhz``.

        Args:
            frequency_mhz: required clock frequency.
            frequency_boost: multiplier on ``fmax`` for platforms with
                shorter critical paths — the single-core baseline's
                simple decoders "allow higher clock frequencies at the
                same voltage level" (Sec. IV-B).
        """
        if frequency_mhz <= 0:
            raise ValueError("frequency must be positive")
        for grid_voltage, fmax in self.fmax_table:
            if fmax * frequency_boost >= frequency_mhz - 1e-12:
                return grid_voltage
        raise ValueError(
            f"no grid voltage reaches {frequency_mhz} MHz "
            f"(max {self.fmax_table[-1][1] * frequency_boost} MHz)")

    def dynamic_scale(self, voltage: float) -> float:
        """Dynamic energy multiplier relative to the reference voltage."""
        return (voltage / self.reference_voltage) ** self.dynamic_exponent

    def leakage_scale(self, voltage: float) -> float:
        """Leakage power multiplier relative to the reference voltage."""
        return (voltage / self.reference_voltage) ** self.leakage_exponent


#: Shared default process instance.
DEFAULT_PROCESS = ProcessModel()
