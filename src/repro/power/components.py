"""Per-component energy parameters (the "RTL annotation" of Sec. IV-C).

The paper extracts "the average energy consumption of each
architectural element when executing small code sections" from
post-layout simulations and annotates a SystemC model with them.  We
cannot run a 90 nm flow, so the per-access/per-cycle energies below are
*calibrated* instead, following DESIGN.md Sec. 5.3:

* a linear fit of the three **single-core** Table I rows pins the total
  dynamic energy per cycle at 0.6 V (~22.5 pJ) and the per-bank leakage
  (IM 0.40 µW, DM 0.25 µW);
* the split of those 22.5 pJ across core logic, clock tree, instruction
  fetch and data access follows the usual breakdown of low-power
  sensor-node cores, where instruction-memory fetch dominates — which
  is precisely why the paper's instruction *broadcast* buys so much;
* multi-core-only elements (crossbar traversal, larger clock-tree root,
  synchronizer) are sized so the no-synchronization multi-core overhead
  lands near the paper's "up to 34 % of the total energy in 3L-MF".

Every multi-core number in Table I / Fig. 6 / Fig. 7 is then a *model
output*, not a fit.

All dynamic energies are in pJ at the process reference voltage; all
leakage numbers are µW at the reference voltage.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyParams:
    """Energy cost of each architectural element.

    Dynamic (pJ at V_ref):

    Attributes:
        core_active_pj: core datapath + control, per non-gated cycle.
        clock_branch_pj: per-core clock-tree branch, per non-gated
            cycle (clock gating prunes the branch).
        clock_root_base_pj: clock-tree root, per cycle while the
            platform runs.
        clock_root_per_core_pj: clock-root increment per attached core
            (the multi-core tree is "more complex", Sec. V-B).
        im_access_pj: one instruction-memory bank read.
        dm_access_pj: one data-memory bank read/write.
        xbar_grant_pj: one request traversing a logarithmic crossbar
            (multi-core only).
        decoder_access_pj: one request through the baseline's simple
            address decoder (single-core only).
        sync_op_pj: one synchronization instruction processed by the
            synchronizer unit.
        sync_idle_pj: synchronizer idle toggle, per cycle (multi-core
            only).

    Leakage (µW at V_ref):

    Attributes:
        leak_im_bank_uw: one powered instruction-memory bank.
        leak_dm_bank_uw: one powered data-memory bank.
        leak_core_uw: one enabled core.
        leak_xbar_uw: crossbars + synchronizer (multi-core only).
    """

    core_active_pj: float = 3.0
    clock_branch_pj: float = 1.0
    clock_root_base_pj: float = 0.5
    clock_root_per_core_pj: float = 0.45
    im_access_pj: float = 14.0
    dm_access_pj: float = 14.0
    xbar_grant_pj: float = 2.0
    decoder_access_pj: float = 0.3
    sync_op_pj: float = 2.0
    sync_idle_pj: float = 0.3
    leak_im_bank_uw: float = 0.40
    leak_dm_bank_uw: float = 0.25
    leak_core_uw: float = 0.15
    leak_xbar_uw: float = 0.20


#: Calibrated defaults used by all experiments.
DEFAULT_ENERGY = EnergyParams()
