"""Power modelling (systems S12-S13 of DESIGN.md).

90 nm-style process/VFS model, calibrated per-component energies, and
the activity-to-power accounting that produces Table I's average power
and Fig. 6's decomposition.
"""

from .components import DEFAULT_ENERGY, EnergyParams
from .energy import (
    ActivityVector,
    CATEGORIES,
    PowerReport,
    compute_power,
)
from .process import DEFAULT_FMAX_TABLE, DEFAULT_PROCESS, ProcessModel
from .vfs import (
    MIN_SYSTEM_CLOCK_MHZ,
    OperatingPoint,
    SINGLE_CORE_FMAX_BOOST,
    plan_operating_point,
)

__all__ = [
    "ActivityVector",
    "CATEGORIES",
    "DEFAULT_ENERGY",
    "DEFAULT_FMAX_TABLE",
    "DEFAULT_PROCESS",
    "EnergyParams",
    "MIN_SYSTEM_CLOCK_MHZ",
    "OperatingPoint",
    "PowerReport",
    "ProcessModel",
    "SINGLE_CORE_FMAX_BOOST",
    "compute_power",
    "plan_operating_point",
]
