"""Voltage-frequency scaling: choosing the platform operating point.

Sec. V-A: "the unused memory banks are powered-off and the system clock
frequency is reduced to the minimum in order to exploit the benefits of
voltage-frequency scaling".  The planner therefore:

1. takes the *required* throughput in cycles per second (the worst-case
   per-core workload under real-time constraints),
2. clamps it to the platform's minimum system clock (the paper's
   multi-core rows all read 1.0 MHz: the ADC/system timing floor),
3. picks the smallest grid voltage whose ``fmax`` reaches the clock —
   giving the Table I "Min. Clock (MHz)" and "Min. Voltage (V)" rows.

The single-core baseline gets a small ``fmax`` boost because its simple
decoders shorten the memory path ("allowing higher clock frequencies at
the same voltage level", Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from .process import DEFAULT_PROCESS, ProcessModel

#: Platform minimum system clock in MHz (ADC and peripheral timing).
MIN_SYSTEM_CLOCK_MHZ = 1.0

#: fmax multiplier of the single-core baseline's decoder datapath.
#: Kept small (4 %) so that 2.3 MHz still requires 0.6 V, matching the
#: 3L-MF single-core row of Table I.
SINGLE_CORE_FMAX_BOOST = 1.04


@dataclass(frozen=True)
class OperatingPoint:
    """A (frequency, voltage) pair the platform runs at.

    Attributes:
        frequency_mhz: system clock frequency in MHz.
        voltage: supply voltage in V.
    """

    frequency_mhz: float
    voltage: float

    @property
    def cycles_per_second(self) -> float:
        """Clock cycles per second."""
        return self.frequency_mhz * 1e6


def plan_operating_point(required_mhz: float,
                         process: ProcessModel = DEFAULT_PROCESS,
                         single_core: bool = False,
                         floor_mhz: float = MIN_SYSTEM_CLOCK_MHZ
                         ) -> OperatingPoint:
    """Choose the minimum (frequency, voltage) meeting a throughput need.

    Args:
        required_mhz: worst-case required clock in MHz (work cycles per
            second / 1e6, already including stall and overhead cycles).
        process: silicon process model.
        single_core: apply the decoder fmax boost of the baseline.
        floor_mhz: minimum system clock the platform supports.

    Returns:
        The chosen operating point; frequency is the exact requirement
        (clamped to the floor), voltage is the smallest grid value able
        to clock it.
    """
    if required_mhz < 0:
        raise ValueError("required frequency cannot be negative")
    frequency = max(required_mhz, floor_mhz)
    boost = SINGLE_CORE_FMAX_BOOST if single_core else 1.0
    voltage = process.min_voltage(frequency, frequency_boost=boost)
    return OperatingPoint(frequency_mhz=frequency, voltage=voltage)
