"""Pluggable cost oracles over ``simulate(mapping=...)``.

The search treats the behavioural simulator as a black-box cost
oracle: a candidate becomes a :class:`~repro.apps.mapping.MappingPlan`,
one simulation runs, and the oracle distils a single scalar to
minimise.  Three kinds ship:

* ``power``  — average platform power in uW (the paper's Table I
  figure of merit, and the default);
* ``clock``  — the VFS operating frequency in MHz (the clock-floor
  minimisation of Picu et al.);
* ``composite`` — power plus a weighted clock term, for co-tuning
  placements that should not buy microwatts with megahertz.

Oracles are pure functions of ``(app, plan, num_cores)``, so the
search can memoise them by candidate identity and the whole run stays
byte-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.phases import AppSpec, Trigger
from ..apps.mapping import MappingPlan
from ..sysc.engine import Mode, simulate, uniform_schedule

#: Cost kinds :func:`get_oracle` accepts.
ORACLE_KINDS = ("power", "clock", "composite")

#: Default simulated seconds per oracle call (500 ticks at 250 Hz —
#: short enough to afford dozens of calls per app, long enough for the
#: metrics to settle; the paper's reproduced metrics are
#: duration-invariant).
ORACLE_DURATION_S = 2.0

#: Pathological-beat ratio of oracle schedules when the app has
#: triggered phases (the explorer's Table I setting).
ORACLE_ABNORMAL_RATIO = 0.20

#: uW charged per MHz of operating clock by the composite oracle.
COMPOSITE_CLOCK_WEIGHT_UW_PER_MHZ = 25.0


@dataclass(frozen=True)
class CostOracle:
    """One scalar cost function over a simulated placement.

    Attributes:
        kind: ``power`` / ``clock`` / ``composite``.
        duration_s: simulated seconds per evaluation.
        clock_weight_uw_per_mhz: composite-kind clock weight.
    """

    kind: str = "power"
    duration_s: float = ORACLE_DURATION_S
    clock_weight_uw_per_mhz: float = COMPOSITE_CLOCK_WEIGHT_UW_PER_MHZ

    def evaluate(self, app: AppSpec, plan: MappingPlan,
                 num_cores: int = 8) -> tuple[float, dict]:
        """Simulate one placement and score it.

        Args:
            app: the application the plan places.
            plan: the candidate placement.
            num_cores: provisioned platform width.

        Returns:
            ``(cost, metrics)`` — the scalar to minimise plus the
            JSON-scalar metric mapping of the underlying simulation
            (power, clock, voltage, duty cycle, sync overhead, active
            banks/cores).
        """
        has_triggered = any(phase.trigger is Trigger.ON_ABNORMAL
                            for phase in app.phases)
        ratio = ORACLE_ABNORMAL_RATIO if has_triggered else 0.0
        schedule = uniform_schedule(self.duration_s, app.fs,
                                    abnormal_ratio=ratio)
        result = simulate(app, Mode.MULTI_CORE, schedule,
                          duration_s=self.duration_s,
                          num_cores=num_cores, mapping=plan)
        activity = result.activity
        provisioned = activity.cycles * activity.cores_on
        metrics = {
            "power_uw": result.power.total_uw,
            "clock_mhz": result.operating_point.frequency_mhz,
            "voltage": result.operating_point.voltage,
            "required_mhz": result.required_mhz,
            "duty_cycle": activity.core_active_cycles / provisioned
            if provisioned > 0 else 0.0,
            "sync_overhead": result.runtime_overhead,
            "code_overhead": result.code_overhead,
            "im_banks": len(plan.im_banks_used),
            "active_cores": plan.active_cores,
        }
        return self.cost_of(metrics), metrics

    def cost_of(self, metrics: dict) -> float:
        """The scalar cost of one evaluation's metric mapping."""
        if self.kind == "clock":
            return float(metrics["clock_mhz"])
        if self.kind == "power":
            return float(metrics["power_uw"])
        return (float(metrics["power_uw"])
                + self.clock_weight_uw_per_mhz
                * float(metrics["clock_mhz"]))


def get_oracle(kind: str = "power",
               duration_s: float = ORACLE_DURATION_S) -> CostOracle:
    """Build a cost oracle.

    Args:
        kind: one of :data:`ORACLE_KINDS`.
        duration_s: simulated seconds per evaluation.

    Raises:
        ValueError: unknown kind or non-positive duration.
    """
    if kind not in ORACLE_KINDS:
        raise ValueError(
            f"unknown cost oracle {kind!r}; choose from "
            f"{list(ORACLE_KINDS)}")
    if duration_s <= 0.0:
        raise ValueError("oracle duration must be positive")
    return CostOracle(kind=kind, duration_s=duration_s)
