"""The placement search space: candidates, repair moves, proposals.

A :class:`Candidate` is one point of the space the stochastic search
walks: a section->bank map plus a phase-replica->core assignment, both
in canonical form so candidates hash, deduplicate and serialise
deterministically.  The module provides everything the annealer needs
short of a cost:

* :func:`candidate_from_plan` / :func:`plan_from_candidate` convert to
  and from the :class:`~repro.apps.mapping.MappingPlan` the simulator
  consumes, so every mapping policy's output is a legal start point;
* :func:`violations` is the cheap analytic pre-filter — bank
  capacities, core ranges and replica-collision rules checked without
  touching the simulator;
* :func:`repair` applies the deterministic repair moves (IM-overflow
  sections migrate to the least-filled fitting bank, colliding
  replicas move to the lowest free core) that turn most infeasible
  mutations back into legal candidates;
* :func:`propose` draws one mutated, repaired, normalised neighbour
  from a seeded RNG;
* :func:`candidate_required_mhz` is the analytic per-core clock bound
  (mapping-aware: coalesced cores pay the *sum* of their loads).

Unlike the paper's one-replica-per-core policies, candidates may
coalesce several phases onto one core — trading core leakage against
the higher clock (and voltage) the shared core then needs.  The
behavioural simulator prices that honestly through
:func:`repro.apps.mapping.plan_required_mhz`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.mapping import (
    CoreAssignment,
    MappingPlan,
    distinct_sections,
    dm_footprint,
    plan_required_mhz,
    sync_points,
)
from ..apps.phases import AppSpec
from ..isa.layout import ImGeometry

#: Mutation kinds, repeated to weight the draw (section moves dominate
#: because the bank map is the larger sub-space).
_MOVES = ("section", "section", "section", "swap", "core", "core",
          "spread")


@dataclass(frozen=True)
class Candidate:
    """One point of the placement search space (canonical form).

    Attributes:
        section_banks: ``(section name, IM bank)`` pairs sorted by
            section name.
        cores: core id per canonical slot; slot ``i`` is the ``i``-th
            ``(phase, replica)`` pair in app phase order, replicas
            ascending.  Core ids are normalised to first-use order, so
            placements differing only by a core permutation compare
            equal.
    """

    section_banks: tuple[tuple[str, int], ...]
    cores: tuple[int, ...]

    def bank_of(self) -> dict[str, int]:
        """The section->bank map as a plain dict."""
        return dict(self.section_banks)

    def key(self) -> str:
        """Stable identity string (memoisation / dedup key)."""
        banks = ",".join(f"{name}={bank}"
                         for name, bank in self.section_banks)
        cores = ",".join(str(core) for core in self.cores)
        return f"b[{banks}]c[{cores}]"


def slot_phases(app: AppSpec) -> list[str]:
    """Phase name of every canonical slot, in slot order."""
    return [phase.name for phase in app.phases
            for _ in range(phase.replicas)]


def normalize_cores(cores: tuple[int, ...]) -> tuple[int, ...]:
    """Relabel core ids in first-use order (0, 1, 2, ...)."""
    labels: dict[int, int] = {}
    out = []
    for core in cores:
        if core not in labels:
            labels[core] = len(labels)
        out.append(labels[core])
    return tuple(out)


def make_candidate(section_banks: dict[str, int],
                   cores: tuple[int, ...] | list[int]) -> Candidate:
    """Build a candidate in canonical form.

    Args:
        section_banks: section name -> IM bank.
        cores: core id per canonical slot.

    Returns:
        The candidate with sections sorted and cores normalised.
    """
    return Candidate(
        section_banks=tuple(sorted(section_banks.items())),
        cores=normalize_cores(tuple(cores)),
    )


def candidate_from_plan(plan: MappingPlan) -> Candidate:
    """The canonical candidate of a multi-core mapping plan.

    Raises:
        ValueError: single-core plan, or a slot without an assignment.
    """
    if not plan.multicore:
        raise ValueError("search candidates are multi-core placements")
    by_slot = {(assignment.phase, assignment.replica): assignment.core
               for assignment in plan.assignments}
    cores = []
    for phase in plan.app.phases:
        for replica in range(phase.replicas):
            try:
                cores.append(by_slot[(phase.name, replica)])
            except KeyError:
                raise ValueError(
                    f"plan misses a core for ({phase.name!r}, "
                    f"{replica})") from None
    return make_candidate(plan.section_banks, cores)


def plan_from_candidate(app: AppSpec, candidate: Candidate) -> MappingPlan:
    """The mapping plan a candidate describes (for the simulator)."""
    assignments = []
    slot = 0
    for phase in app.phases:
        for replica in range(phase.replicas):
            assignments.append(CoreAssignment(
                core=candidate.cores[slot], phase=phase.name,
                replica=replica))
            slot += 1
    return MappingPlan(
        app=app, multicore=True, assignments=assignments,
        section_banks=candidate.bank_of(),
        sync_points_used=sync_points(app),
        dm_footprint_words=dm_footprint(app))


def candidate_to_mapping(candidate: Candidate) -> dict:
    """Canonical JSON-ready form of a candidate (artifact substrate)."""
    return {
        "section_banks": {name: bank
                          for name, bank in candidate.section_banks},
        "cores": list(candidate.cores),
    }


def _bank_fill(app: AppSpec, banks: dict[str, int],
               geometry: ImGeometry) -> list[int]:
    """Words per bank under a section->bank map (runtime in bank 0)."""
    fill = [0] * geometry.banks
    fill[0] = app.runtime_words
    for section in distinct_sections(app):
        bank = banks.get(section.name)
        if bank is not None and 0 <= bank < geometry.banks:
            fill[bank] += section.words
    return fill


def violations(app: AppSpec, candidate: Candidate, num_cores: int = 8,
               geometry: ImGeometry | None = None) -> list[str]:
    """The analytic pre-filter: every constraint a candidate breaks.

    Checks (no simulation): slot count, core ranges, same-phase
    replicas on distinct cores, the section set, bank ranges and bank
    capacities.  An empty list means the candidate is feasible and
    worth a full simulation.

    Returns:
        Human-readable violation messages (empty when feasible).
    """
    geom = geometry or ImGeometry()
    problems: list[str] = []
    phases = slot_phases(app)
    if len(candidate.cores) != len(phases):
        problems.append(
            f"{len(candidate.cores)} core slots for {len(phases)} "
            f"phase replicas")
        return problems
    used: dict[str, set[int]] = {}
    for name, core in zip(phases, candidate.cores):
        if not 0 <= core < num_cores:
            problems.append(f"core {core} outside 0..{num_cores - 1}")
        if core in used.setdefault(name, set()):
            problems.append(
                f"phase {name!r} has two replicas on core {core}")
        used[name].add(core)
    wanted = {section.name for section in distinct_sections(app)}
    got = {name for name, _ in candidate.section_banks}
    if wanted != got:
        problems.append(
            f"section set mismatch: missing {sorted(wanted - got)}, "
            f"extra {sorted(got - wanted)}")
        return problems
    for name, bank in candidate.section_banks:
        if not 0 <= bank < geom.banks:
            problems.append(
                f"section {name!r} on bank {bank} outside "
                f"0..{geom.banks - 1}")
            return problems
    fill = _bank_fill(app, candidate.bank_of(), geom)
    for bank, words in enumerate(fill):
        if words > geom.words_per_bank:
            problems.append(
                f"bank {bank} holds {words} words "
                f"(> {geom.words_per_bank})")
    return problems


def repair(app: AppSpec, candidate: Candidate, num_cores: int = 8,
           geometry: ImGeometry | None = None) -> Candidate | None:
    """Apply the deterministic repair moves to a broken candidate.

    Core repairs: out-of-range cores and same-phase collisions move to
    the lowest in-range core the phase does not already use.  Bank
    repairs: out-of-range banks re-place best-fit; overflowing banks
    (lowest id first) shed their smallest section to the least-filled
    other bank that fits.

    Returns:
        A feasible candidate, or ``None`` when the overflow cannot be
        shed (the application genuinely does not fit the IM) or a
        phase has more replicas than cores.
    """
    geom = geometry or ImGeometry()
    phases = slot_phases(app)
    if len(candidate.cores) != len(phases):
        return None

    cores = list(candidate.cores)
    used: dict[str, set[int]] = {}
    for index, (name, core) in enumerate(zip(phases, cores)):
        taken = used.setdefault(name, set())
        if not 0 <= core < num_cores or core in taken:
            free = [c for c in range(num_cores) if c not in taken]
            if not free:
                return None  # more replicas than cores: app-level fix
            core = free[0]
            cores[index] = core
        taken.add(core)

    sizes = {section.name: section.words
             for section in distinct_sections(app)}
    banks = candidate.bank_of()
    if set(banks) != set(sizes):
        return None  # wrong section set: not a candidate for this app
    fill = [0] * geom.banks
    fill[0] = app.runtime_words
    for name in sorted(banks):
        if not 0 <= banks[name] < geom.banks:
            banks[name] = -1  # re-place below
        else:
            fill[banks[name]] += sizes[name]
    for name in sorted(banks):
        if banks[name] >= 0:
            continue
        bank = _least_filled_fit(fill, sizes[name], geom.words_per_bank)
        if bank is None:
            return None
        banks[name] = bank
        fill[bank] += sizes[name]
    for bank in range(geom.banks):
        while fill[bank] > geom.words_per_bank:
            movable = sorted(
                (sizes[name], name) for name, where in banks.items()
                if where == bank)
            moved = False
            for words, name in movable:
                target = _least_filled_fit(
                    fill, words, geom.words_per_bank, exclude=bank)
                if target is not None:
                    banks[name] = target
                    fill[bank] -= words
                    fill[target] += words
                    moved = True
                    break
            if not moved:
                return None  # nothing sheds: the app does not fit
    return make_candidate(banks, cores)


def _least_filled_fit(fill: list[int], words: int, capacity: int,
                      exclude: int | None = None) -> int | None:
    """Least-filled bank with room for ``words`` (ties: lowest id)."""
    best: int | None = None
    for bank, current in enumerate(fill):
        if bank == exclude or current + words > capacity:
            continue
        if best is None or current < fill[best]:
            best = bank
    return best


def candidate_required_mhz(app: AppSpec, candidate: Candidate,
                           with_sync: bool = True) -> float:
    """Analytic per-core clock bound of a candidate, in MHz.

    Delegates to :func:`repro.apps.mapping.plan_required_mhz` — the
    exact sizing rule the simulator applies — so the analytic bound
    can never drift from what a full evaluation would charge.  No
    simulation is run.
    """
    return plan_required_mhz(plan_from_candidate(app, candidate),
                             with_sync=with_sync)


def propose(app: AppSpec, candidate: Candidate, rng,
            num_cores: int = 8,
            geometry: ImGeometry | None = None) -> Candidate | None:
    """Draw one mutated, repaired, normalised neighbour.

    Moves: relocate a section to a random bank, swap two sections'
    banks, move a phase replica to a random core, or spread a replica
    from a shared core onto a free one.  The mutation is repaired
    before it is returned; irreparable mutations yield ``None`` (the
    caller counts them and never simulates them).

    Args:
        app: the application being placed.
        candidate: the current candidate.
        rng: a seeded ``random.Random`` (all stochastic choices draw
            from it, keeping the walk deterministic).
        num_cores: provisioned platform width.
        geometry: IM geometry (platform default when omitted).
    """
    geom = geometry or ImGeometry()
    banks = candidate.bank_of()
    cores = list(candidate.cores)
    sections = sorted(banks)
    move = rng.choice(_MOVES)
    if move == "swap" and len(sections) < 2:
        move = "section"
    if move == "spread":
        shared = [index for index, core in enumerate(cores)
                  if cores.count(core) > 1]
        free = [core for core in range(num_cores)
                if core not in set(cores)]
        if shared and free:
            cores[rng.choice(shared)] = free[0]
        else:
            move = "core"
    if move == "section":
        name = rng.choice(sections)
        banks[name] = rng.randrange(geom.banks)
    elif move == "swap":
        first, second = rng.sample(sections, 2)
        banks[first], banks[second] = banks[second], banks[first]
    elif move == "core":
        slot = rng.randrange(len(cores))
        cores[slot] = rng.randrange(num_cores)
    return repair(app, make_candidate(banks, cores), num_cores, geom)
