"""Seeded stochastic search drivers: annealing + greedy hill-climb.

:func:`search_mapping` walks the candidate space of
:mod:`repro.search.space` under a cost oracle of
:mod:`repro.search.cost`, starting from the best mapping policy that
places the application (the paper's placement when it fits, so the
reported gap is always >= 0).  Two algorithms ship:

* ``greedy`` — hill-climb: accept a neighbour iff it is no worse
  (plateau walks allowed);
* ``anneal`` — simulated annealing: also accept worse neighbours with
  probability ``exp(-relative delta / T)`` under a geometric
  temperature schedule, escaping the local minima greedy parks in.

Every stochastic choice draws from one ``random.Random(seed)``; costs
are memoised by candidate identity, and infeasible mutations are
discarded by the analytic pre-filter before any simulation — so a
search is a pure function of ``(app identity, parameters, seed)`` and
its outcome serialises byte-identically across processes and
``PYTHONHASHSEED`` values.

Both drivers also accept an ``oracle=`` override.  A plain
:class:`repro.search.cost.CostOracle` swaps the exact tier; an oracle
exposing a truthy ``screens`` attribute (the
:class:`repro.oracle.TwoTierOracle`) switches the walk to two-tier
mode: every proposal is scored by the vectorised analytic model, the
visited candidates are ranked by ``(analytic cost, visit order)``, and
only the top-k survivors (plus the start) pay an exact ``simulate()``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..apps.mapping import MappingError, MappingPlan
from ..apps.phases import AppSpec
from ..gen.explorer import (
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_REPAIRED,
    repair_app,
)
from ..gen.generator import app_from_token, parse_app_token
from ..gen.policies import get_policy
from ..isa.layout import ImGeometry
from .cost import ORACLE_DURATION_S, CostOracle, get_oracle
from .space import (
    Candidate,
    candidate_from_plan,
    candidate_to_mapping,
    plan_from_candidate,
    propose,
)

#: Search algorithms :func:`search_mapping` accepts.
ALGORITHMS = ("anneal", "greedy")

#: Default proposal budget per search.
SEARCH_ITERATIONS = 48

#: Policies tried (in order) for the start candidate; ``paper`` first
#: so the best-found cost can never exceed the paper's and the gap is
#: >= 0 by construction whenever the paper's placement is feasible.
START_POLICIES = ("paper", "balanced", "critical-path")

#: Geometric temperature schedule of the annealer, in units of
#: relative cost (a 8 % uphill move starts ~37 % likely and becomes
#: vanishingly unlikely by the end).
ANNEAL_T0 = 0.08
ANNEAL_T_END = 0.004


@dataclass(frozen=True)
class SearchOutcome:
    """Everything one placement search produces.

    Attributes:
        app: application name.
        token: regeneration token (empty for literal apps).
        family: topology family (empty for literal apps).
        algorithm: search algorithm used.
        cost_kind: cost-oracle kind minimised.
        seed: RNG seed of the walk.
        iterations: proposal budget.
        num_cores: provisioned platform width.
        duration_s: simulated seconds per oracle call.
        status: ``ok`` / ``repaired`` / ``rejected``.
        repairs: replicas trimmed to fit the platform (app-level).
        error: placement error text (rejected searches only).
        start_policy: policy that produced the start candidate.
        paper_feasible: whether the paper's placement mapped at all.
        paper_cost: oracle cost of the paper's placement (0 when
            infeasible).
        start_cost: oracle cost of the start candidate.
        best_cost: oracle cost of the best candidate found.
        gap: relative improvement over the reference placement
            (paper's when feasible, else the start candidate);
            >= 0 by construction.
        evaluations: full simulations paid (memoised; <= iterations
            plus the start/paper evaluations).
        accepted: proposals accepted by the walk.
        infeasible: proposals the analytic pre-filter discarded
            unrepaired (never simulated).
        best_metrics: simulator metrics of the best candidate.
        best_candidate: canonical JSON form of the best candidate.
        best_plan: the best placement as a simulator-ready plan
            (``None`` for rejected searches; excluded from
            artifacts).
        oracle: evaluation mode (``exact`` or ``two-tier``).
        screened: distinct candidates the analytic tier scored
            (two-tier searches only).
        top_k: analytic survivors exact-verified (two-tier only).
        screen_agreement: whether the analytic front-runner was also
            the exact-verified best (trivially True for exact).
    """

    app: str
    token: str
    family: str
    algorithm: str
    cost_kind: str
    seed: int
    iterations: int
    num_cores: int
    duration_s: float
    status: str
    repairs: int = 0
    error: str = ""
    start_policy: str = ""
    paper_feasible: bool = False
    paper_cost: float = 0.0
    start_cost: float = 0.0
    best_cost: float = 0.0
    gap: float = 0.0
    evaluations: int = 0
    accepted: int = 0
    infeasible: int = 0
    best_metrics: dict = field(default_factory=dict)
    best_candidate: dict = field(default_factory=dict)
    best_plan: MappingPlan | None = None
    oracle: str = "exact"
    screened: int = 0
    top_k: int = 0
    screen_agreement: bool = True


def outcome_to_mapping(outcome: SearchOutcome,
                       screen: bool = False) -> dict:
    """JSON-ready form of an outcome (``best_plan`` excluded).

    ``screen=True`` adds the two-tier fields (oracle, screened,
    top_k, screen_agreement) for ``repro-search/2`` artifacts; the
    default keeps the ``repro-search/1`` shape byte-identical.
    """
    data = {
        "app": outcome.app,
        "token": outcome.token,
        "family": outcome.family,
        "algorithm": outcome.algorithm,
        "cost_kind": outcome.cost_kind,
        "seed": outcome.seed,
        "iterations": outcome.iterations,
        "num_cores": outcome.num_cores,
        "duration_s": outcome.duration_s,
        "status": outcome.status,
        "repairs": outcome.repairs,
        "error": outcome.error,
        "start_policy": outcome.start_policy,
        "paper_feasible": outcome.paper_feasible,
        "paper_cost": outcome.paper_cost,
        "start_cost": outcome.start_cost,
        "best_cost": outcome.best_cost,
        "gap": outcome.gap,
        "evaluations": outcome.evaluations,
        "accepted": outcome.accepted,
        "infeasible": outcome.infeasible,
        "best_metrics": dict(outcome.best_metrics),
        "best_candidate": dict(outcome.best_candidate),
    }
    if screen:
        data["oracle"] = outcome.oracle
        data["screened"] = outcome.screened
        data["top_k"] = outcome.top_k
        data["screen_agreement"] = outcome.screen_agreement
    return data


def search_mapping(app: AppSpec, num_cores: int = 8,
                   geometry: ImGeometry | None = None,
                   algorithm: str = "anneal", cost: str = "power",
                   iterations: int = SEARCH_ITERATIONS, seed: int = 0,
                   duration_s: float = ORACLE_DURATION_S,
                   token: str = "", family: str = "",
                   oracle: CostOracle | None = None) -> SearchOutcome:
    """Search for a better placement of one application.

    Args:
        app: the application to place (trimmed via
            :func:`repro.gen.explorer.repair_app` when it needs more
            cores than the platform has).
        num_cores: provisioned platform width.
        geometry: IM geometry (platform default when omitted).
        algorithm: one of :data:`ALGORITHMS`.
        cost: cost-oracle kind (see :data:`repro.search.cost.ORACLE_KINDS`).
        iterations: proposal budget of the walk.
        seed: RNG seed (the whole search is a pure function of the
            app identity, the parameters and this seed).
        duration_s: simulated seconds per oracle call.
        token: regeneration token recorded in the outcome.
        family: topology family recorded in the outcome.
        oracle: evaluation backend override.  ``None`` builds the
            exact oracle from ``cost`` / ``duration_s``; an oracle
            with a truthy ``screens`` attribute (e.g.
            :class:`repro.oracle.TwoTierOracle`) runs the walk in
            two-tier mode.  When given, ``cost`` and ``duration_s``
            are taken from the oracle itself.

    Returns:
        The search outcome; ``status == "rejected"`` when no policy
        places the app at all.

    Raises:
        ValueError: unknown algorithm/cost kind or negative budget.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown search algorithm {algorithm!r}; choose from "
            f"{list(ALGORITHMS)}")
    if iterations < 0:
        raise ValueError("iteration budget cannot be negative")
    if oracle is None:
        oracle = get_oracle(cost, duration_s)
    else:
        cost = oracle.kind
        duration_s = oracle.duration_s
    screens = bool(getattr(oracle, "screens", False))
    geom = geometry or ImGeometry()
    candidate_app, repairs = repair_app(app, num_cores)
    base = dict(app=app.name, token=token, family=family,
                algorithm=algorithm, cost_kind=cost, seed=seed,
                iterations=iterations, num_cores=num_cores,
                duration_s=duration_s,
                oracle="two-tier" if screens else "exact")

    memo: dict[Candidate, tuple[float, dict]] = {}
    evaluations = 0
    memo_hits = 0

    def cost_of(candidate: Candidate) -> tuple[float, dict]:
        nonlocal evaluations, memo_hits
        hit = memo.get(candidate)
        if hit is None:
            plan = plan_from_candidate(candidate_app, candidate)
            hit = oracle.evaluate(candidate_app, plan, num_cores)
            memo[candidate] = hit
            evaluations += 1
        else:
            memo_hits += 1
        return hit

    if screens:
        model = oracle.model_for(candidate_app, num_cores, geom)
        screen_memo: dict[Candidate, float] = {}
        visited: list[Candidate] = []

        def walk_cost(candidate: Candidate) -> float:
            # Analytic tier: no simulation, first-visit order kept
            # so the keep policy can break ties deterministically.
            hit = screen_memo.get(candidate)
            if hit is None:
                hit = float(model.score([candidate]).cost[0])
                screen_memo[candidate] = hit
                visited.append(candidate)
            return hit
    else:
        def walk_cost(candidate: Candidate) -> float:
            return cost_of(candidate)[0]

    start: Candidate | None = None
    start_policy = ""
    paper_feasible = False
    paper_cost = 0.0
    error = ""
    for name in START_POLICIES:
        try:
            plan = get_policy(name).map(candidate_app, num_cores, geom)
        except MappingError as exc:
            error = str(exc)
            continue
        candidate = candidate_from_plan(plan)
        if name == "paper":
            paper_feasible = True
            paper_cost, _ = cost_of(candidate)
        start = candidate
        start_policy = name
        break  # first feasible policy wins; paper is tried first
    if start is None:
        obs.add("search.walks")
        obs.add("search.rejected")
        if repairs:
            obs.add("search.repairs", repairs)
        return SearchOutcome(**base, status=STATUS_REJECTED,
                             repairs=repairs, error=error)

    start_cost, _ = cost_of(start)
    current_cost = walk_cost(start)
    best, best_cost = start, current_cost
    current = start
    rng = random.Random(seed)
    accepted = 0
    infeasible = 0
    for step in range(iterations):
        neighbour = propose(candidate_app, current, rng, num_cores,
                            geom)
        if neighbour is None:
            infeasible += 1
            continue
        neighbour_cost = walk_cost(neighbour)
        delta = neighbour_cost - current_cost
        take = delta <= 0.0
        if not take and algorithm == "anneal":
            scale = max(abs(current_cost), 1e-9)
            frac = step / max(iterations - 1, 1)
            temperature = ANNEAL_T0 * (ANNEAL_T_END / ANNEAL_T0) ** frac
            take = rng.random() < math.exp(-(delta / scale)
                                           / temperature)
        if take:
            current, current_cost = neighbour, neighbour_cost
            accepted += 1
            if neighbour_cost < best_cost:
                best, best_cost = neighbour, neighbour_cost

    screened = 0
    top_k = 0
    screen_agreement = True
    if screens:
        # Rank the visited candidates by (analytic cost, first-visit
        # order) through the oracle's keep policy, then exact-verify
        # the survivors plus the start candidate: the final best is
        # always simulator-backed and never worse than the start.
        costs = np.asarray([screen_memo[c] for c in visited])
        kept = oracle.keep(costs, oracle.top_k)
        verify = list(kept)
        if 0 not in verify:
            verify.append(0)
        best, best_cost = None, math.inf
        for index in verify:
            exact_cost, _ = cost_of(visited[index])
            if exact_cost < best_cost:
                best, best_cost = visited[index], exact_cost
        screened = len(visited)
        top_k = oracle.top_k
        screen_agreement = best == visited[kept[0]]
        oracle.record(screened, len(verify), screen_agreement)

    best_cost, best_metrics = cost_of(best)
    obs.add("search.walks")
    obs.add("search.proposals", iterations)
    obs.add("search.accepted", accepted)
    obs.add("search.infeasible", infeasible)
    obs.add("search.evaluations", evaluations)
    obs.add("search.memo_hits", memo_hits)
    if repairs:
        obs.add("search.repairs", repairs)
    if screens:
        obs.add("search.screened", screened)
    reference = paper_cost if paper_feasible else start_cost
    gap = (reference - best_cost) / reference if reference > 0 else 0.0
    return SearchOutcome(
        **base,
        status=STATUS_REPAIRED if repairs else STATUS_OK,
        repairs=repairs,
        start_policy=start_policy,
        paper_feasible=paper_feasible,
        paper_cost=paper_cost,
        start_cost=start_cost,
        best_cost=best_cost,
        gap=max(gap, 0.0),
        evaluations=evaluations,
        accepted=accepted,
        infeasible=infeasible,
        best_metrics=dict(best_metrics),
        best_candidate=candidate_to_mapping(best),
        best_plan=plan_from_candidate(candidate_app, best),
        screened=screened,
        top_k=top_k,
        screen_agreement=screen_agreement,
    )


def search_token(token: str, num_cores: int = 8,
                 algorithm: str = "anneal", cost: str = "power",
                 iterations: int = SEARCH_ITERATIONS, seed: int = 0,
                 duration_s: float = ORACLE_DURATION_S,
                 oracle: CostOracle | None = None) -> SearchOutcome:
    """Regenerate an app from its token and search its placements.

    Raises:
        ValueError: malformed token, unknown family/algorithm/cost.
    """
    family, _, _, _ = parse_app_token(token)
    app = app_from_token(token)
    return search_mapping(app, num_cores=num_cores, algorithm=algorithm,
                          cost=cost, iterations=iterations, seed=seed,
                          duration_s=duration_s, token=token,
                          family=family, oracle=oracle)
