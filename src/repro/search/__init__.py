"""Stochastic mapping search over section->bank and phase->core maps.

The paper's Table I rests on one hand-crafted dedicated-bank
placement; this package answers "how far from optimal is it?" by
searching the placement space with seeded, byte-deterministic
stochastic walks:

* :mod:`repro.search.space` — the candidate representation, the
  analytic feasibility pre-filter, the deterministic repair moves for
  IM-overflow and core collisions, and the mutation proposals;
* :mod:`repro.search.cost` — pluggable cost oracles (power, clock
  floor, weighted composite) over ``simulate(mapping=...)``;
* :mod:`repro.search.anneal` — the simulated-annealing and greedy
  hill-climb drivers plus the :class:`SearchOutcome` record.

Entry points elsewhere: the ``search-anneal`` / ``search-greedy``
policy family in :data:`repro.gen.policies.POLICIES`, the ``search``
run family in :mod:`repro.sweep.runners`, the ``python -m repro.eval
search`` subcommand (``repro-search/1`` artifacts) and
``benchmarks/bench_search.py``.
"""

from .anneal import (
    ALGORITHMS,
    ANNEAL_T0,
    ANNEAL_T_END,
    SEARCH_ITERATIONS,
    START_POLICIES,
    SearchOutcome,
    outcome_to_mapping,
    search_mapping,
    search_token,
)
from .cost import (
    COMPOSITE_CLOCK_WEIGHT_UW_PER_MHZ,
    ORACLE_DURATION_S,
    ORACLE_KINDS,
    CostOracle,
    get_oracle,
)
from .space import (
    Candidate,
    candidate_from_plan,
    candidate_required_mhz,
    candidate_to_mapping,
    make_candidate,
    normalize_cores,
    plan_from_candidate,
    propose,
    repair,
    slot_phases,
    violations,
)

__all__ = [
    "ALGORITHMS",
    "ANNEAL_T0",
    "ANNEAL_T_END",
    "COMPOSITE_CLOCK_WEIGHT_UW_PER_MHZ",
    "Candidate",
    "CostOracle",
    "ORACLE_DURATION_S",
    "ORACLE_KINDS",
    "SEARCH_ITERATIONS",
    "START_POLICIES",
    "SearchOutcome",
    "candidate_from_plan",
    "candidate_required_mhz",
    "candidate_to_mapping",
    "get_oracle",
    "make_candidate",
    "normalize_cores",
    "outcome_to_mapping",
    "plan_from_candidate",
    "propose",
    "repair",
    "search_mapping",
    "search_token",
    "slot_phases",
    "violations",
]
