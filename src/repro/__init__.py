"""repro — reproduction of Braojos et al., DATE 2014.

"Hardware/Software Approach for Code Synchronization in Low-Power
Multi-Core Sensor Nodes": a hybrid HW/SW synchronization mechanism
(SINC/SDEC/SNOP/SLEEP instructions + a lightweight synchronizer unit)
for multi-core wireless body sensor nodes, evaluated on three embedded
ECG applications.

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — synchronization points, synchronizer unit,
  protocol primitives (the paper's contribution).
* :mod:`repro.isa` — 16-bit RISC ISA with the sync ISE; assembler,
  disassembler, builder/linker.
* :mod:`repro.hw` — cycle-level platform: cores, banked memories,
  broadcasting crossbars, ATU, ADC, single-/multi-core systems.
* :mod:`repro.power` — 90 nm-style VFS and component energy models.
* :mod:`repro.signals` — synthetic multi-lead ECG (CSE substitute).
* :mod:`repro.dsp` — benchmark DSP: morphological filtering, MMD
  delineation, random-projection beat classification.
* :mod:`repro.apps` — application graphs + the partition / insert /
  map methodology.
* :mod:`repro.sysc` — system-level (SystemC-analog) simulator.
* :mod:`repro.gen` — seeded synthetic workload generator and
  mapping-policy explorer (beyond the paper's three apps).
* :mod:`repro.net` — multi-node WBSN fleets: drifting clocks, beacon
  radio, inter-node time synchronization.
* :mod:`repro.sweep` — declarative cached experiment campaigns.
* :mod:`repro.eval` — experiment drivers for Table I, Fig. 6, Fig. 7,
  the network report and the generated-workload exploration.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
