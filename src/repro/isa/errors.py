"""Exception hierarchy for the ISA tool-chain.

Every tool-chain stage (assembler, encoder, linker, loader) raises a
subclass of :class:`IsaError` so callers can catch tool-chain problems
with a single ``except`` clause while still being able to tell stages
apart.
"""

from __future__ import annotations


class IsaError(Exception):
    """Base class for all ISA tool-chain errors."""


class EncodingError(IsaError):
    """A field does not fit its encoding slot or an opcode is unknown."""


class AssemblerError(IsaError):
    """Syntax or semantic error in an assembly source file.

    Carries the source line number (1-based) when available so error
    messages can point at the offending line.
    """

    def __init__(self, message: str, line: int | None = None,
                 source_name: str | None = None) -> None:
        self.line = line
        self.source_name = source_name
        location = ""
        if source_name is not None:
            location += f"{source_name}:"
        if line is not None:
            location += f"{line}:"
        if location:
            message = f"{location} {message}"
        super().__init__(message)


class LinkError(IsaError):
    """Sections overlap, overflow a bank, or a symbol is unresolved."""


class LoadError(IsaError):
    """A program image cannot be loaded onto the simulated platform."""
