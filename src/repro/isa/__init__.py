"""ISA tool-chain: instruction set, assembler, disassembler, images.

This package is substrate S4/S5 of the reproduction (see DESIGN.md): a
16-bit RISC instruction set with 24-bit instruction words, extended with
the paper's synchronization instructions (``sinc``, ``sdec``, ``snop``,
``sleep``), plus the programming tool-chain (assembler + builder/linker
with bank-placement directives) of the paper's Sec. IV-C.
"""

from .assembler import Assembler, assemble, assemble_many
from .disassembler import disassemble_image, disassemble_word
from .encoding import Instruction, decode, encode
from .errors import AssemblerError, EncodingError, IsaError, LinkError
from .layout import (
    DEFAULT_GEOMETRY,
    DmGeometry,
    ImGeometry,
    MemoryMap,
    PlatformGeometry,
)
from .program import ProgramImage, SectionInfo
from .spec import OP_TABLE, Format, Op

__all__ = [
    "Assembler",
    "AssemblerError",
    "DEFAULT_GEOMETRY",
    "DmGeometry",
    "EncodingError",
    "Format",
    "ImGeometry",
    "Instruction",
    "IsaError",
    "LinkError",
    "MemoryMap",
    "OP_TABLE",
    "Op",
    "PlatformGeometry",
    "ProgramImage",
    "SectionInfo",
    "assemble",
    "assemble_many",
    "decode",
    "disassemble_image",
    "disassemble_word",
    "encode",
]
