"""Program images produced by the assembler/builder.

A :class:`ProgramImage` is everything the platform loader needs: the
instruction words (sparse, addressed by IM word address), initial data
memory contents, per-core entry points, the symbol table and per-section
placement records.  It also knows how to compute the *code overhead* of
the synchronization methodology (Table I row "Code Overhead"), i.e. the
fraction of instruction words occupied by the synchronization ISE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .encoding import decode
from .errors import LinkError
from .layout import ImGeometry
from .spec import OP_TABLE


@dataclass(frozen=True)
class SectionInfo:
    """Placement record of one assembled section.

    Attributes:
        name: section name as written in the source.
        bank: IM bank the section was placed in.
        base: absolute IM word address of the first word.
        size: section size in instruction words.
    """

    name: str
    bank: int
    base: int
    size: int

    @property
    def end(self) -> int:
        """One past the last occupied address."""
        return self.base + self.size


@dataclass
class ProgramImage:
    """An executable image for the WBSN platform.

    Attributes:
        im: sparse instruction memory contents (word address -> word).
        dm_init: initial data memory contents (logical address -> word).
        entries: per-core entry points (core id -> IM word address).
        symbols: absolute values of all labels and constants.
        sections: placement records, in assembly order.
    """

    im: dict[int, int] = field(default_factory=dict)
    dm_init: dict[int, int] = field(default_factory=dict)
    entries: dict[int, int] = field(default_factory=dict)
    symbols: dict[str, int] = field(default_factory=dict)
    sections: list[SectionInfo] = field(default_factory=list)
    dm_footprint: int = 0

    def dm_highest_address(self) -> int:
        """Highest data address the program declares it will touch.

        The maximum of the statically initialised words and the
        ``.dmfootprint`` building directive; the single-core loader
        powers off every bank above this address (Sec. V-A: "unused
        memory banks are powered-off").
        """
        highest = self.dm_footprint
        if self.dm_init:
            highest = max(highest, max(self.dm_init))
        return highest

    @property
    def code_words(self) -> int:
        """Total number of occupied instruction words."""
        return len(self.im)

    def banks_used(self, geometry: ImGeometry | None = None) -> set[int]:
        """IM banks containing at least one word of this image."""
        geom = geometry or ImGeometry()
        return {geom.bank_of(addr) for addr in self.im}

    def sync_instruction_count(self) -> int:
        """Number of synchronization-ISE words in the image.

        Counts ``sinc``/``sdec``/``snop``/``sleep``; this is the
        numerator of the paper's "Code Overhead" metric.
        """
        count = 0
        for word in self.im.values():
            try:
                instr = decode(word)
            except Exception:
                continue  # raw .word data, not an instruction
            if OP_TABLE[instr.op].is_sync:
                count += 1
        return count

    def code_overhead(self) -> float:
        """Fraction of the code occupied by synchronization instructions."""
        if not self.im:
            return 0.0
        return self.sync_instruction_count() / self.code_words

    def entry_for(self, core: int) -> int | None:
        """Entry point of ``core``, or ``None`` if the core is unused."""
        return self.entries.get(core)

    def words_in_bank(self, bank: int,
                      geometry: ImGeometry | None = None) -> int:
        """Number of occupied words inside IM bank ``bank``."""
        geom = geometry or ImGeometry()
        return sum(1 for addr in self.im if geom.bank_of(addr) == bank)

    def merged_with(self, other: "ProgramImage") -> "ProgramImage":
        """Combine two images, raising :class:`LinkError` on any clash."""
        overlap = self.im.keys() & other.im.keys()
        if overlap:
            addr = min(overlap)
            raise LinkError(f"IM overlap while merging images at {addr:#06x}")
        dm_overlap = self.dm_init.keys() & other.dm_init.keys()
        if dm_overlap:
            addr = min(dm_overlap)
            raise LinkError(f"DM overlap while merging images at {addr:#06x}")
        entry_overlap = self.entries.keys() & other.entries.keys()
        if entry_overlap:
            core = min(entry_overlap)
            raise LinkError(f"both images define an entry for core {core}")
        sym_clashes = {
            name for name in self.symbols.keys() & other.symbols.keys()
            if self.symbols[name] != other.symbols[name]
        }
        if sym_clashes:
            name = sorted(sym_clashes)[0]
            raise LinkError(f"conflicting definitions of symbol {name!r}")
        return ProgramImage(
            im={**self.im, **other.im},
            dm_init={**self.dm_init, **other.dm_init},
            entries={**self.entries, **other.entries},
            symbols={**self.symbols, **other.symbols},
            sections=[*self.sections, *other.sections],
        )
