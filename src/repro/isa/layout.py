"""Memory geometry and memory map of the WBSN platform.

The defaults follow Sec. IV-B of the paper:

* instruction memory: 96 KByte = 32 KWords x 24 bit, in 8 banks;
* data memory: 64 KByte = 32 KWords x 16 bit, in 16 banks;
* a three-channel ADC behind memory-mapped registers in shared DM;
* data-ready interrupt lines wired to the synchronizer.

Logical data addresses are 16-bit word addresses.  The top 256 words
(``0x7F00``-``0x7FFF``) form the peripheral window, which is intercepted
by the platform before it reaches the ATU/data memory.  Synchronization
points live in the *shared* data region so that ordinary ``lw`` can
inspect them, as in the paper where they are "reserved locations ... in
the shared data memory".
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ImGeometry:
    """Instruction memory geometry."""

    banks: int = 8
    words_per_bank: int = 4096

    @property
    def total_words(self) -> int:
        """Total instruction words across all banks."""
        return self.banks * self.words_per_bank

    def bank_of(self, address: int) -> int:
        """Bank index holding instruction word ``address``."""
        return address // self.words_per_bank


@dataclass(frozen=True)
class DmGeometry:
    """Data memory geometry."""

    banks: int = 16
    words_per_bank: int = 2048

    @property
    def total_words(self) -> int:
        """Total data words across all banks."""
        return self.banks * self.words_per_bank


#: Base of the memory-mapped peripheral window (logical DM address).
PERIPH_BASE = 0x7F00

#: Synchronizer: interrupt subscription mask register (read/write).
REG_INT_SUBSCRIBE = 0x7F00
#: Synchronizer: pending interrupt lines (read-only).
REG_INT_STATUS = 0x7F01
#: ADC sample registers, one per channel (read clears data-ready).
REG_ADC_DATA0 = 0x7F10
REG_ADC_DATA1 = 0x7F11
REG_ADC_DATA2 = 0x7F12
#: ADC control: write a channel-enable bitmask.
REG_ADC_CTRL = 0x7F18
#: ADC status: data-ready bitmask (read-only, non-destructive).
REG_ADC_STATUS = 0x7F19
#: Identifier of the issuing core (read-only).
REG_CORE_ID = 0x7F20
#: Free-running cycle counter, low and high 16-bit halves (read-only).
REG_CYCLE_LO = 0x7F21
REG_CYCLE_HI = 0x7F22

#: Interrupt line numbers of the ADC channels.
IRQ_ADC_CH0 = 0
IRQ_ADC_CH1 = 1
IRQ_ADC_CH2 = 2


@dataclass(frozen=True)
class MemoryMap:
    """Logical data-memory map shared by tool-chain and platform.

    Attributes:
        private_words: size of each core's private region; logical
            addresses ``[0, private_words)`` are private (translated by
            the ATU with the issuing core's tag).
        shared_base: first logical address of the shared region (equals
            ``private_words``).
        shared_words: number of logical words in the shared region.
        sync_point_base: logical address of synchronization point 0.
        sync_points: number of reserved synchronization points.
    """

    private_words: int = 2048
    shared_words: int = 15 * 1024
    sync_point_base: int = 0x4000
    sync_points: int = 64

    @property
    def shared_base(self) -> int:
        """First logical address of the shared section."""
        return self.private_words

    @property
    def shared_limit(self) -> int:
        """One past the last logical shared address."""
        return self.shared_base + self.shared_words

    def sync_point_address(self, index: int) -> int:
        """Logical DM address of synchronization point ``index``."""
        if not 0 <= index < self.sync_points:
            raise ValueError(
                f"sync point index {index} out of range "
                f"[0, {self.sync_points})")
        return self.sync_point_base + index

    def is_sync_point(self, address: int) -> bool:
        """True if ``address`` falls inside the sync point region."""
        return (self.sync_point_base <= address
                < self.sync_point_base + self.sync_points)

    def is_private(self, address: int) -> bool:
        """True if ``address`` belongs to the private section."""
        return 0 <= address < self.private_words

    def is_peripheral(self, address: int) -> bool:
        """True if ``address`` falls inside the peripheral window."""
        return address >= PERIPH_BASE

    def validate(self) -> None:
        """Raise ``ValueError`` on an inconsistent map."""
        if self.private_words < 0:
            raise ValueError("private_words must be non-negative")
        if self.shared_limit > PERIPH_BASE:
            raise ValueError("shared region overlaps peripheral window")
        span = (self.sync_point_base, self.sync_point_base + self.sync_points)
        if not (self.shared_base <= span[0] and span[1] <= self.shared_limit):
            raise ValueError("sync points must live in the shared region")


@dataclass(frozen=True)
class PlatformGeometry:
    """Full platform geometry: memories plus the memory map."""

    im: ImGeometry = field(default_factory=ImGeometry)
    dm: DmGeometry = field(default_factory=DmGeometry)
    memory_map: MemoryMap = field(default_factory=MemoryMap)

    def validate(self) -> None:
        """Raise ``ValueError`` on an inconsistent geometry."""
        self.memory_map.validate()
        if self.im.banks <= 0 or self.dm.banks <= 0:
            raise ValueError("memories need at least one bank")


#: Geometry used throughout the paper's experiments.
DEFAULT_GEOMETRY = PlatformGeometry()
