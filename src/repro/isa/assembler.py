"""Two-pass assembler and builder for the WBSN RISC ISA.

This is the "programming tool-chain (compiler, builder and linker)" of
the paper's Sec. IV-C, scaled to the reproduction: assembly sources are
translated to machine code and *building directives* guide the placement
of each code section into a specific instruction-memory bank, which is
step 3 ("Mapping") of the synchronization methodology — code of
different application phases is placed in different IM banks so that
cores running the same phase fetch from the same bank and benefit from
instruction broadcasting.

Syntax overview
---------------

* one statement per line; comments start with ``;`` or ``#``;
* labels are ``name:`` (several may share a line with a statement);
* registers: ``r0``-``r7`` plus aliases ``zero`` (r0), ``sp`` (r6),
  ``ra`` (r7);
* memory operands use ``offset(reg)``, e.g. ``lw r1, 4(r2)``;
* expressions allow integers (``42``, ``0x2A``, ``0b1010``), symbols,
  ``+ - * / % << >> & | ^ ~`` and parentheses, plus ``%hi(e)``/``%lo(e)``
  for the high/low byte of a 16-bit value;

Directives
----------

``.section NAME [bank=N] [org=ADDR]``
    open (or re-open) a code section; ``bank`` pins the section to an IM
    bank, ``org`` pins it to an absolute IM word address.
``.bank N`` / ``.org ADDR``
    set the placement of the *current* section (before any code).
``.align N``
    pad with ``nop`` up to a multiple of N words.
``.word E, ...``
    emit raw 24-bit words.
``.equ NAME, E``
    define a constant.
``.dm ADDR, E, ...``
    initial data-memory words at logical address ADDR.
``.dmfootprint E``
    declare the highest data address the program touches at run time
    (drives bank power-off on the single-core baseline).
``.entry CORE, LABEL``
    set the reset PC of core CORE.
``.global NAME``
    accepted for compatibility; all symbols share one namespace.

Pseudo-instructions
-------------------

``li rd, e`` (lui+ori, always two words), ``mv``, ``j``, ``jr``,
``call``, ``ret``, ``beqz``, ``bnez``, ``bltz``, ``bgez``, ``bgt``,
``ble``, ``bgtu``, ``bleu``, ``inc``, ``dec``, ``not``, ``neg``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .encoding import Instruction, encode
from .errors import AssemblerError, LinkError
from .layout import PlatformGeometry, DEFAULT_GEOMETRY
from .program import ProgramImage, SectionInfo
from .spec import MNEMONIC_TABLE, REG_ALIASES, Op

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<num>0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)"
    r"|(?P<name>%?[A-Za-z_.$][A-Za-z0-9_.$]*)"
    r"|(?P<op><<|>>|[-+*/%&|^~(),:=])"
    r")")

_LABEL_RE = re.compile(r"^\s*([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:")


@dataclass
class _Section:
    """Assembly-time state of one code section."""

    name: str
    bank: int | None = None
    org: int | None = None
    words: list[object] = field(default_factory=list)  # int | _Pending
    base: int = 0

    @property
    def size(self) -> int:
        return len(self.words)


@dataclass
class _Pending:
    """A word whose value needs pass-2 symbol resolution."""

    build: object  # callable(resolver) -> int
    line: int
    source: str


class _ExprParser:
    """Recursive-descent evaluator for assembler expressions."""

    _PRECEDENCE = {
        "|": 1, "^": 2, "&": 3, "<<": 4, ">>": 4,
        "+": 5, "-": 5, "*": 6, "/": 6, "%": 6,
    }

    def __init__(self, tokens: list[str], resolve) -> None:
        self._tokens = tokens
        self._pos = 0
        self._resolve = resolve

    def parse(self) -> int:
        value = self._parse_binary(0)
        if self._pos != len(self._tokens):
            raise ValueError(
                f"trailing tokens in expression: {self._tokens[self._pos:]}")
        return value

    def _peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise ValueError("unexpected end of expression")
        self._pos += 1
        return token

    def _parse_binary(self, min_prec: int) -> int:
        left = self._parse_unary()
        while True:
            token = self._peek()
            prec = self._PRECEDENCE.get(token or "")
            if prec is None or prec < min_prec:
                return left
            self._next()
            right = self._parse_binary(prec + 1)
            left = self._apply(token, left, right)

    @staticmethod
    def _apply(op: str, a: int, b: int) -> int:
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0:
                raise ValueError("division by zero in expression")
            return a // b
        if op == "%":
            if b == 0:
                raise ValueError("modulo by zero in expression")
            return a % b
        if op == "<<":
            return a << b
        if op == ">>":
            return a >> b
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        return a ^ b

    def _parse_unary(self) -> int:
        token = self._next()
        if token == "-":
            return -self._parse_unary()
        if token == "+":
            return self._parse_unary()
        if token == "~":
            return ~self._parse_unary()
        if token == "(":
            value = self._parse_binary(0)
            if self._next() != ")":
                raise ValueError("missing ')' in expression")
            return value
        if token in ("%hi", "%lo"):
            if self._next() != "(":
                raise ValueError(f"{token} requires parentheses")
            value = self._parse_binary(0)
            if self._next() != ")":
                raise ValueError(f"missing ')' after {token}")
            return (value >> 8) & 0xFF if token == "%hi" else value & 0xFF
        if re.fullmatch(r"0[xX][0-9a-fA-F]+", token):
            return int(token, 16)
        if re.fullmatch(r"0[bB][01]+", token):
            return int(token, 2)
        if token.isdigit():
            return int(token)
        if re.fullmatch(r"[A-Za-z_.$][A-Za-z0-9_.$]*", token):
            return self._resolve(token)
        raise ValueError(f"unexpected token {token!r} in expression")


def _tokenize_expr(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            rest = text[pos:].strip()
            if not rest:
                break
            raise ValueError(f"cannot tokenize {rest!r}")
        token = match.group("num") or match.group("name") or match.group("op")
        tokens.append(token)
        pos = match.end()
    return tokens


def _split_operands(text: str) -> list[str]:
    """Split an operand list on top-level commas."""
    parts: list[str] = []
    depth = 0
    current = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


_MEM_OPERAND_RE = re.compile(r"^(?P<off>.*?)\s*\(\s*(?P<reg>\w+)\s*\)$")


class Assembler:
    """Assembles one or more sources into a :class:`ProgramImage`.

    The assembler keeps a single symbol namespace across all added
    sources (the builder of the paper links all application phases into
    one image), performs bank placement according to the building
    directives, and encodes in a second pass once every label has an
    absolute address.
    """

    def __init__(self, geometry: PlatformGeometry | None = None) -> None:
        self._geometry = geometry or DEFAULT_GEOMETRY
        self._sections: dict[str, _Section] = {}
        self._order: list[str] = []
        self._symbols: dict[str, tuple[str, int]] = {}  # label -> (sec, off)
        self._equs: dict[str, int] = {}
        self._entries: dict[int, tuple[str, int, str]] = {}
        self._dm_items: list[tuple[str, str, int, str]] = []
        self._dm_footprints: list[tuple[str, str, int]] = []
        self._current: _Section | None = None
        self._source_name = "<asm>"
        self._line = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def add_source(self, text: str, name: str = "<asm>") -> "Assembler":
        """Run pass 1 over ``text``; returns self for chaining."""
        self._source_name = name
        for lineno, raw in enumerate(text.splitlines(), start=1):
            self._line = lineno
            try:
                self._pass1_line(raw)
            except AssemblerError:
                raise
            except ValueError as exc:
                raise AssemblerError(str(exc), lineno, name) from exc
        return self

    def build(self) -> ProgramImage:
        """Place sections, resolve symbols and encode (pass 2)."""
        self._place_sections()
        image = ProgramImage()
        for name in self._order:
            section = self._sections[name]
            base = section.base
            bank = self._geometry.im.bank_of(base)
            image.sections.append(
                SectionInfo(name=name, bank=bank, base=base,
                            size=section.size))
            for offset, word in enumerate(section.words):
                address = base + offset
                if isinstance(word, _Pending):
                    try:
                        value = word.build(self._resolve_symbol)
                    except ValueError as exc:
                        raise AssemblerError(
                            str(exc), word.line, word.source) from exc
                else:
                    value = word
                if address in image.im:
                    raise LinkError(
                        f"IM address {address:#06x} assigned twice "
                        f"(section {name!r})")
                image.im[address] = value

        for name, (sec_name, offset) in self._symbols.items():
            image.symbols[name] = self._sections[sec_name].base + offset
        image.symbols.update(self._equs)

        for source, addr_expr, line, values_text in self._dm_items:
            address = self._eval(addr_expr, line, source)
            for value_expr in _split_operands(values_text):
                value = self._eval(value_expr, line, source) & 0xFFFF
                if address in image.dm_init:
                    raise LinkError(
                        f"DM address {address:#06x} initialized twice")
                image.dm_init[address] = value
                address += 1

        for core, (label, line, source) in self._entries.items():
            image.entries[core] = self._eval(label, line, source)

        for source, expr, line in self._dm_footprints:
            image.dm_footprint = max(image.dm_footprint,
                                     self._eval(expr, line, source))

        if not image.entries and image.im:
            main = image.symbols.get("main")
            image.entries[0] = main if main is not None else min(image.im)
        return image

    # ------------------------------------------------------------------
    # Pass 1
    # ------------------------------------------------------------------

    def _pass1_line(self, raw: str) -> None:
        line = raw.split(";", 1)[0].split("#", 1)[0].rstrip()
        while True:
            match = _LABEL_RE.match(line)
            if match is None:
                break
            self._define_label(match.group(1))
            line = line[match.end():]
        line = line.strip()
        if not line:
            return
        if line.startswith("."):
            self._directive(line)
        else:
            self._instruction(line)

    def _section_for_code(self) -> _Section:
        if self._current is None:
            self._open_section("text")
        assert self._current is not None
        return self._current

    def _open_section(self, name: str, bank: int | None = None,
                      org: int | None = None) -> None:
        section = self._sections.get(name)
        if section is None:
            section = _Section(name=name)
            self._sections[name] = section
            self._order.append(name)
        if bank is not None:
            if section.words and section.bank not in (None, bank):
                raise AssemblerError(
                    f"section {name!r} re-banked after emitting code",
                    self._line, self._source_name)
            section.bank = bank
        if org is not None:
            if section.words:
                raise AssemblerError(
                    f"section {name!r} given org after emitting code",
                    self._line, self._source_name)
            section.org = org
        self._current = section

    def _define_label(self, name: str) -> None:
        if name in self._symbols or name in self._equs:
            raise AssemblerError(f"duplicate symbol {name!r}",
                                 self._line, self._source_name)
        section = self._section_for_code()
        self._symbols[name] = (section.name, section.size)

    def _directive(self, line: str) -> None:
        parts = line.split(None, 1)
        name = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".section":
            self._directive_section(rest)
        elif name == ".bank":
            value = self._eval_now(rest)
            self._open_section(self._section_for_code().name, bank=value)
        elif name == ".org":
            value = self._eval_now(rest)
            self._open_section(self._section_for_code().name, org=value)
        elif name == ".align":
            value = self._eval_now(rest)
            if value <= 0:
                raise AssemblerError(".align needs a positive argument",
                                     self._line, self._source_name)
            section = self._section_for_code()
            while section.size % value:
                section.words.append(encode(Instruction(Op.NOP)))
        elif name == ".word":
            section = self._section_for_code()
            for expr in _split_operands(rest):
                section.words.append(self._pending_word(expr))
        elif name == ".equ":
            operands = _split_operands(rest)
            if len(operands) != 2:
                raise AssemblerError(".equ needs NAME, VALUE",
                                     self._line, self._source_name)
            symbol = operands[0]
            if symbol in self._symbols or symbol in self._equs:
                raise AssemblerError(f"duplicate symbol {symbol!r}",
                                     self._line, self._source_name)
            self._equs[symbol] = self._eval_now(operands[1])
        elif name == ".dm":
            operands = _split_operands(rest)
            if len(operands) < 2:
                raise AssemblerError(".dm needs ADDR, VALUE[, ...]",
                                     self._line, self._source_name)
            self._dm_items.append(
                (self._source_name, operands[0], self._line,
                 ", ".join(operands[1:])))
        elif name == ".dmfootprint":
            self._dm_footprints.append(
                (self._source_name, rest, self._line))
        elif name == ".entry":
            operands = _split_operands(rest)
            if len(operands) != 2:
                raise AssemblerError(".entry needs CORE, LABEL",
                                     self._line, self._source_name)
            core = self._eval_now(operands[0])
            if core in self._entries:
                raise AssemblerError(f"core {core} already has an entry",
                                     self._line, self._source_name)
            self._entries[core] = (operands[1], self._line, self._source_name)
        elif name == ".global":
            pass  # single namespace; accepted for source compatibility
        else:
            raise AssemblerError(f"unknown directive {name!r}",
                                 self._line, self._source_name)

    def _directive_section(self, rest: str) -> None:
        tokens = rest.replace(",", " ").split()
        if not tokens:
            raise AssemblerError(".section needs a name",
                                 self._line, self._source_name)
        name = tokens[0]
        bank: int | None = None
        org: int | None = None
        for token in tokens[1:]:
            if "=" not in token:
                raise AssemblerError(
                    f"bad .section attribute {token!r} (want key=value)",
                    self._line, self._source_name)
            key, value_text = token.split("=", 1)
            value = self._eval_now(value_text)
            if key == "bank":
                bank = value
            elif key == "org":
                org = value
            else:
                raise AssemblerError(f"unknown .section attribute {key!r}",
                                     self._line, self._source_name)
        self._open_section(name, bank=bank, org=org)

    # ------------------------------------------------------------------
    # Instructions
    # ------------------------------------------------------------------

    def _instruction(self, line: str) -> None:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = _split_operands(operand_text) if operand_text else []
        section = self._section_for_code()
        emit = self._expand(mnemonic, operands)
        section.words.extend(emit)

    def _expand(self, mnemonic: str, ops: list[str]) -> list[object]:
        """Expand one statement into encoded or pending words."""
        pseudo = getattr(self, f"_pseudo_{mnemonic}", None)
        if pseudo is not None:
            return pseudo(ops)
        info = MNEMONIC_TABLE.get(mnemonic)
        if info is None:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}",
                                 self._line, self._source_name)
        handler = {
            "R": self._emit_r, "I": self._emit_i, "S": self._emit_s,
            "B": self._emit_b, "J": self._emit_j, "U": self._emit_u,
            "Y": self._emit_y, "N": self._emit_n,
        }[info.fmt.value]
        return handler(info.op, ops)

    # -- real formats ---------------------------------------------------

    def _emit_r(self, op: Op, ops: list[str]) -> list[object]:
        self._expect(ops, 3, op)
        rd, ra, rb = (self._reg(o) for o in ops)
        return [encode(Instruction(op, rd=rd, ra=ra, rb=rb))]

    def _emit_i(self, op: Op, ops: list[str]) -> list[object]:
        if op is Op.LW:
            self._expect(ops, 2, op)
            rd = self._reg(ops[0])
            base, offset = self._mem_operand(ops[1])
            return [self._pending_instr(
                lambda r, o=offset: Instruction(op, rd=rd, ra=base,
                                                imm=self._to_int(o, r)))]
        if op is Op.JALR:
            if len(ops) == 2:
                ops = [*ops, "0"]
            self._expect(ops, 3, op)
            rd, ra = self._reg(ops[0]), self._reg(ops[1])
            return [self._pending_instr(
                lambda r, o=ops[2]: Instruction(op, rd=rd, ra=ra,
                                                imm=self._to_int(o, r)))]
        self._expect(ops, 3, op)
        rd, ra = self._reg(ops[0]), self._reg(ops[1])
        return [self._pending_instr(
            lambda r, o=ops[2]: Instruction(op, rd=rd, ra=ra,
                                            imm=self._to_int(o, r)))]

    def _emit_s(self, op: Op, ops: list[str]) -> list[object]:
        self._expect(ops, 2, op)
        rb = self._reg(ops[0])
        base, offset = self._mem_operand(ops[1])
        return [self._pending_instr(
            lambda r, o=offset: Instruction(op, rb=rb, ra=base,
                                            imm=self._to_int(o, r)))]

    def _emit_b(self, op: Op, ops: list[str]) -> list[object]:
        self._expect(ops, 3, op)
        ra, rb = self._reg(ops[0]), self._reg(ops[1])
        section = self._section_for_code()
        pc = section.size  # offset of this instruction within the section
        sec_name = section.name

        def build(resolve, target=ops[2]) -> Instruction:
            absolute = self._to_int(target, resolve)
            here = self._sections[sec_name].base + pc
            return Instruction(op, ra=ra, rb=rb, imm=absolute - (here + 1))

        return [self._pending_instr(build)]

    def _emit_j(self, op: Op, ops: list[str]) -> list[object]:
        self._expect(ops, 2, op)
        rd = self._reg(ops[0])
        return [self._pending_instr(
            lambda r, t=ops[1]: Instruction(op, rd=rd,
                                            imm=self._to_int(t, r)))]

    def _emit_u(self, op: Op, ops: list[str]) -> list[object]:
        self._expect(ops, 2, op)
        rd = self._reg(ops[0])
        return [self._pending_instr(
            lambda r, o=ops[1]: Instruction(op, rd=rd,
                                            imm=self._to_int(o, r)))]

    def _emit_y(self, op: Op, ops: list[str]) -> list[object]:
        self._expect(ops, 1, op)
        return [self._pending_instr(
            lambda r, o=ops[0]: Instruction(op, imm=self._to_int(o, r)))]

    def _emit_n(self, op: Op, ops: list[str]) -> list[object]:
        self._expect(ops, 0, op)
        return [encode(Instruction(op))]

    # -- pseudo-instructions ---------------------------------------------

    def _pseudo_li(self, ops: list[str]) -> list[object]:
        self._expect_pseudo(ops, 2, "li")
        rd = self._reg(ops[0])
        expr = ops[1]
        hi = self._pending_instr(
            lambda r: Instruction(Op.LUI, rd=rd,
                                  imm=(self._to_int(expr, r) >> 8) & 0xFF))
        lo = self._pending_instr(
            lambda r: Instruction(Op.ORI, rd=rd, ra=rd,
                                  imm=self._to_int(expr, r) & 0xFF))
        return [hi, lo]

    def _pseudo_mv(self, ops: list[str]) -> list[object]:
        self._expect_pseudo(ops, 2, "mv")
        return self._expand("addi", [ops[0], ops[1], "0"])

    def _pseudo_j(self, ops: list[str]) -> list[object]:
        self._expect_pseudo(ops, 1, "j")
        return self._expand("jal", ["zero", ops[0]])

    def _pseudo_jr(self, ops: list[str]) -> list[object]:
        self._expect_pseudo(ops, 1, "jr")
        return self._expand("jalr", ["zero", ops[0], "0"])

    def _pseudo_call(self, ops: list[str]) -> list[object]:
        self._expect_pseudo(ops, 1, "call")
        return self._expand("jal", ["ra", ops[0]])

    def _pseudo_ret(self, ops: list[str]) -> list[object]:
        self._expect_pseudo(ops, 0, "ret")
        return self._expand("jalr", ["zero", "ra", "0"])

    def _pseudo_beqz(self, ops: list[str]) -> list[object]:
        self._expect_pseudo(ops, 2, "beqz")
        return self._expand("beq", [ops[0], "zero", ops[1]])

    def _pseudo_bnez(self, ops: list[str]) -> list[object]:
        self._expect_pseudo(ops, 2, "bnez")
        return self._expand("bne", [ops[0], "zero", ops[1]])

    def _pseudo_bltz(self, ops: list[str]) -> list[object]:
        self._expect_pseudo(ops, 2, "bltz")
        return self._expand("blt", [ops[0], "zero", ops[1]])

    def _pseudo_bgez(self, ops: list[str]) -> list[object]:
        self._expect_pseudo(ops, 2, "bgez")
        return self._expand("bge", [ops[0], "zero", ops[1]])

    def _pseudo_bgt(self, ops: list[str]) -> list[object]:
        self._expect_pseudo(ops, 3, "bgt")
        return self._expand("blt", [ops[1], ops[0], ops[2]])

    def _pseudo_ble(self, ops: list[str]) -> list[object]:
        self._expect_pseudo(ops, 3, "ble")
        return self._expand("bge", [ops[1], ops[0], ops[2]])

    def _pseudo_bgtu(self, ops: list[str]) -> list[object]:
        self._expect_pseudo(ops, 3, "bgtu")
        return self._expand("bltu", [ops[1], ops[0], ops[2]])

    def _pseudo_bleu(self, ops: list[str]) -> list[object]:
        self._expect_pseudo(ops, 3, "bleu")
        return self._expand("bgeu", [ops[1], ops[0], ops[2]])

    def _pseudo_inc(self, ops: list[str]) -> list[object]:
        self._expect_pseudo(ops, 1, "inc")
        return self._expand("addi", [ops[0], ops[0], "1"])

    def _pseudo_dec(self, ops: list[str]) -> list[object]:
        self._expect_pseudo(ops, 1, "dec")
        return self._expand("addi", [ops[0], ops[0], "-1"])

    def _pseudo_not(self, ops: list[str]) -> list[object]:
        self._expect_pseudo(ops, 2, "not")
        return self._expand("xori", [ops[0], ops[1], "-1"])

    def _pseudo_neg(self, ops: list[str]) -> list[object]:
        self._expect_pseudo(ops, 2, "neg")
        return self._expand("sub", [ops[0], "zero", ops[1]])

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _expect(self, ops: list[str], count: int, op: Op) -> None:
        if len(ops) != count:
            raise AssemblerError(
                f"{op.name.lower()} expects {count} operand(s), "
                f"got {len(ops)}", self._line, self._source_name)

    def _expect_pseudo(self, ops: list[str], count: int, name: str) -> None:
        if len(ops) != count:
            raise AssemblerError(
                f"{name} expects {count} operand(s), got {len(ops)}",
                self._line, self._source_name)

    def _reg(self, text: str) -> int:
        reg = REG_ALIASES.get(text.strip().lower())
        if reg is None:
            raise AssemblerError(f"unknown register {text!r}",
                                 self._line, self._source_name)
        return reg

    def _mem_operand(self, text: str) -> tuple[int, str]:
        match = _MEM_OPERAND_RE.match(text.strip())
        if match is None:
            raise AssemblerError(
                f"expected offset(reg) memory operand, got {text!r}",
                self._line, self._source_name)
        base = self._reg(match.group("reg"))
        offset = match.group("off").strip() or "0"
        return base, offset

    def _pending_instr(self, build) -> _Pending:
        return _Pending(
            build=lambda resolve: encode(build(resolve)),
            line=self._line, source=self._source_name)

    def _pending_word(self, expr: str) -> _Pending:
        return _Pending(
            build=lambda resolve: self._to_int(expr, resolve) & 0xFFFFFF,
            line=self._line, source=self._source_name)

    def _to_int(self, expr: str, resolve) -> int:
        return _ExprParser(_tokenize_expr(expr), resolve).parse()

    def _eval_now(self, expr: str) -> int:
        """Evaluate an expression that may only use .equ constants."""

        def resolve(name: str) -> int:
            if name in self._equs:
                return self._equs[name]
            raise ValueError(
                f"symbol {name!r} not usable here (only .equ constants)")

        return self._to_int(expr, resolve)

    def _eval(self, expr: str, line: int, source: str) -> int:
        try:
            return self._to_int(expr, self._resolve_symbol)
        except ValueError as exc:
            raise AssemblerError(str(exc), line, source) from exc

    def _resolve_symbol(self, name: str) -> int:
        if name in self._equs:
            return self._equs[name]
        location = self._symbols.get(name)
        if location is None:
            raise ValueError(f"undefined symbol {name!r}")
        sec_name, offset = location
        return self._sections[sec_name].base + offset

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def _place_sections(self) -> None:
        geom = self._geometry.im
        cursors = {bank: 0 for bank in range(geom.banks)}
        placed: list[tuple[int, int, str]] = []  # (base, end, name)

        def reserve(base: int, size: int, name: str) -> None:
            end = base + size
            if end > geom.total_words:
                raise LinkError(
                    f"section {name!r} overflows instruction memory")
            first_bank = geom.bank_of(base)
            last_bank = geom.bank_of(max(base, end - 1))
            if size and first_bank != last_bank:
                raise LinkError(
                    f"section {name!r} crosses an IM bank boundary "
                    f"({first_bank} -> {last_bank})")
            for other_base, other_end, other in placed:
                if base < other_end and other_base < end:
                    raise LinkError(
                        f"sections {name!r} and {other!r} overlap in IM")
            placed.append((base, end, name))
            cursors[first_bank] = max(
                cursors[first_bank], end - first_bank * geom.words_per_bank)

        # Absolute sections first, then banked ones, then free ones.
        for name in self._order:
            section = self._sections[name]
            if section.org is not None:
                section.base = section.org
                reserve(section.base, section.size, name)
        for name in self._order:
            section = self._sections[name]
            if section.org is None and section.bank is not None:
                if not 0 <= section.bank < geom.banks:
                    raise LinkError(
                        f"section {name!r} placed in bank {section.bank}, "
                        f"but IM has {geom.banks} banks")
                start = cursors[section.bank]
                if start + section.size > geom.words_per_bank:
                    raise LinkError(
                        f"section {name!r} does not fit in bank "
                        f"{section.bank}")
                section.base = (section.bank * geom.words_per_bank + start)
                reserve(section.base, section.size, name)
        for name in self._order:
            section = self._sections[name]
            if section.org is None and section.bank is None:
                for bank in range(geom.banks):
                    start = cursors[bank]
                    if start + section.size <= geom.words_per_bank:
                        section.base = bank * geom.words_per_bank + start
                        reserve(section.base, section.size, name)
                        break
                else:
                    raise LinkError(
                        f"no IM bank has room for section {name!r}")


def assemble(source: str, name: str = "<asm>",
             geometry: PlatformGeometry | None = None) -> ProgramImage:
    """Assemble a single source text into a :class:`ProgramImage`."""
    return Assembler(geometry).add_source(source, name).build()


def assemble_many(sources: dict[str, str],
                  geometry: PlatformGeometry | None = None) -> ProgramImage:
    """Assemble several named sources into one linked image."""
    assembler = Assembler(geometry)
    for name, text in sources.items():
        assembler.add_source(text, name)
    return assembler.build()
