"""Binary encoding and decoding of 24-bit instruction words.

The :class:`Instruction` dataclass is the in-memory form used by the
assembler, the disassembler and the cycle-level core model.  ``encode``
packs it into a 24-bit integer; ``decode`` unpacks.  The pair round-trips
exactly (property-tested in ``tests/isa/test_encoding.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import EncodingError
from .spec import (
    IMM_BITS,
    INSTR_MASK,
    JUMP_ADDR_BITS,
    NUM_REGS,
    OP_TABLE,
    SYNC_LIT_BITS,
    Format,
    Op,
    fits_signed,
    fits_unsigned,
    signed,
)

_OPCODE_SHIFT = 18
_RD_SHIFT = 15
_RA_SHIFT = 12
_RB_SHIFT = 9
_FIELD3_MASK = 0x7
_IMM12_MASK = (1 << IMM_BITS) - 1
_ADDR15_MASK = (1 << JUMP_ADDR_BITS) - 1
_LIT16_SHIFT = 2
_LIT16_MASK = (1 << SYNC_LIT_BITS) - 1
_IMM8_SHIFT = 7
_IMM8_MASK = 0xFF


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction.

    Field use depends on the format; unused fields stay at zero:

    * R: ``rd``, ``ra``, ``rb``
    * I: ``rd``, ``ra``, ``imm`` (signed 12-bit)
    * S: ``rb`` (source), ``ra`` (base), ``imm`` (signed 12-bit)
    * B: ``ra``, ``rb``, ``imm`` (signed 12-bit word offset)
    * J: ``rd``, ``imm`` (absolute word address, unsigned 15-bit)
    * U: ``rd``, ``imm`` (unsigned 8-bit, loaded into the high byte)
    * Y: ``imm`` (unsigned 16-bit sync-point literal)
    * N: no fields
    """

    op: Op
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0

    @property
    def fmt(self) -> Format:
        """Encoding format of this instruction."""
        return OP_TABLE[self.op].fmt

    @property
    def mnemonic(self) -> str:
        """Assembler mnemonic of this instruction."""
        return OP_TABLE[self.op].mnemonic

    def __str__(self) -> str:  # pragma: no cover - convenience only
        from .disassembler import format_instruction

        return format_instruction(self)


def _check_reg(name: str, value: int) -> None:
    if not 0 <= value < NUM_REGS:
        raise EncodingError(f"register field {name}={value} out of range")


def encode(instr: Instruction) -> int:
    """Encode an :class:`Instruction` into a 24-bit word."""
    info = OP_TABLE.get(instr.op)
    if info is None:
        raise EncodingError(f"unknown opcode {instr.op!r}")
    word = int(instr.op) << _OPCODE_SHIFT
    fmt = info.fmt

    if fmt is Format.R:
        _check_reg("rd", instr.rd)
        _check_reg("ra", instr.ra)
        _check_reg("rb", instr.rb)
        word |= instr.rd << _RD_SHIFT
        word |= instr.ra << _RA_SHIFT
        word |= instr.rb << _RB_SHIFT
    elif fmt is Format.I:
        _check_reg("rd", instr.rd)
        _check_reg("ra", instr.ra)
        if not fits_signed(instr.imm, IMM_BITS):
            raise EncodingError(
                f"{info.mnemonic}: immediate {instr.imm} does not fit "
                f"signed {IMM_BITS}-bit field")
        word |= instr.rd << _RD_SHIFT
        word |= instr.ra << _RA_SHIFT
        word |= instr.imm & _IMM12_MASK
    elif fmt is Format.S:
        _check_reg("rb", instr.rb)
        _check_reg("ra", instr.ra)
        if not fits_signed(instr.imm, IMM_BITS):
            raise EncodingError(
                f"{info.mnemonic}: immediate {instr.imm} does not fit "
                f"signed {IMM_BITS}-bit field")
        word |= instr.rb << _RD_SHIFT
        word |= instr.ra << _RA_SHIFT
        word |= instr.imm & _IMM12_MASK
    elif fmt is Format.B:
        _check_reg("ra", instr.ra)
        _check_reg("rb", instr.rb)
        if not fits_signed(instr.imm, IMM_BITS):
            raise EncodingError(
                f"{info.mnemonic}: branch offset {instr.imm} does not fit "
                f"signed {IMM_BITS}-bit field")
        word |= instr.ra << _RD_SHIFT
        word |= instr.rb << _RA_SHIFT
        word |= instr.imm & _IMM12_MASK
    elif fmt is Format.J:
        _check_reg("rd", instr.rd)
        if not fits_unsigned(instr.imm, JUMP_ADDR_BITS):
            raise EncodingError(
                f"{info.mnemonic}: target address {instr.imm:#x} does not "
                f"fit unsigned {JUMP_ADDR_BITS}-bit field")
        word |= instr.rd << _RD_SHIFT
        word |= instr.imm & _ADDR15_MASK
    elif fmt is Format.U:
        _check_reg("rd", instr.rd)
        if not fits_unsigned(instr.imm, 8):
            raise EncodingError(
                f"{info.mnemonic}: immediate {instr.imm} does not fit "
                f"unsigned 8-bit field")
        word |= instr.rd << _RD_SHIFT
        word |= (instr.imm & _IMM8_MASK) << _IMM8_SHIFT
    elif fmt is Format.Y:
        if not fits_unsigned(instr.imm, SYNC_LIT_BITS):
            raise EncodingError(
                f"{info.mnemonic}: sync point literal {instr.imm} does not "
                f"fit unsigned {SYNC_LIT_BITS}-bit field")
        word |= (instr.imm & _LIT16_MASK) << _LIT16_SHIFT
    elif fmt is Format.N:
        pass
    else:  # pragma: no cover - enum is exhaustive
        raise EncodingError(f"unhandled format {fmt!r}")

    return word & INSTR_MASK


def decode(word: int) -> Instruction:
    """Decode a 24-bit word into an :class:`Instruction`."""
    if not 0 <= word <= INSTR_MASK:
        raise EncodingError(f"instruction word {word:#x} is not 24-bit")
    opcode = (word >> _OPCODE_SHIFT) & 0x3F
    try:
        op = Op(opcode)
    except ValueError as exc:
        raise EncodingError(f"illegal opcode {opcode:#04x}") from exc
    fmt = OP_TABLE[op].fmt

    if fmt is Format.R:
        return Instruction(
            op,
            rd=(word >> _RD_SHIFT) & _FIELD3_MASK,
            ra=(word >> _RA_SHIFT) & _FIELD3_MASK,
            rb=(word >> _RB_SHIFT) & _FIELD3_MASK,
        )
    if fmt is Format.I:
        return Instruction(
            op,
            rd=(word >> _RD_SHIFT) & _FIELD3_MASK,
            ra=(word >> _RA_SHIFT) & _FIELD3_MASK,
            imm=signed(word & _IMM12_MASK, IMM_BITS),
        )
    if fmt is Format.S:
        return Instruction(
            op,
            rb=(word >> _RD_SHIFT) & _FIELD3_MASK,
            ra=(word >> _RA_SHIFT) & _FIELD3_MASK,
            imm=signed(word & _IMM12_MASK, IMM_BITS),
        )
    if fmt is Format.B:
        return Instruction(
            op,
            ra=(word >> _RD_SHIFT) & _FIELD3_MASK,
            rb=(word >> _RA_SHIFT) & _FIELD3_MASK,
            imm=signed(word & _IMM12_MASK, IMM_BITS),
        )
    if fmt is Format.J:
        return Instruction(
            op,
            rd=(word >> _RD_SHIFT) & _FIELD3_MASK,
            imm=word & _ADDR15_MASK,
        )
    if fmt is Format.U:
        return Instruction(
            op,
            rd=(word >> _RD_SHIFT) & _FIELD3_MASK,
            imm=(word >> _IMM8_SHIFT) & _IMM8_MASK,
        )
    if fmt is Format.Y:
        return Instruction(op, imm=(word >> _LIT16_SHIFT) & _LIT16_MASK)
    return Instruction(op)
