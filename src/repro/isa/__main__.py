"""Assembler command line.

Usage::

    python -m repro.isa program.s           # assemble + listing
    python -m repro.isa program.s --symbols # also dump the symbol table
"""

from __future__ import annotations

import argparse
from pathlib import Path

from .assembler import assemble
from .disassembler import disassemble_image


def main(argv: list[str] | None = None) -> int:
    """Assemble a source file and print its listing."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.isa",
        description="Assemble a WBSN RISC source file.")
    parser.add_argument("source", type=Path, help="assembly source file")
    parser.add_argument("--symbols", action="store_true",
                        help="dump the symbol table")
    args = parser.parse_args(argv)

    image = assemble(args.source.read_text(), name=str(args.source))
    for line in disassemble_image(image.im):
        print(line)
    print(f"\n{image.code_words} words in banks "
          f"{sorted(image.banks_used())}, "
          f"{image.sync_instruction_count()} sync instructions "
          f"({image.code_overhead() * 100:.2f} % overhead)")
    if image.entries:
        entries = ", ".join(f"core {core} @ {addr:#06x}"
                            for core, addr in sorted(image.entries.items()))
        print(f"entry points: {entries}")
    if args.symbols:
        for name in sorted(image.symbols):
            print(f"  {name:<24} {image.symbols[name]:#06x}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
