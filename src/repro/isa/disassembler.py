"""Disassembler for the WBSN RISC ISA.

Turns encoded 24-bit words back into assembler-syntax text.  Used by the
debugger-style tracing of the cycle-level simulator and by tests that
check encode/decode/format round trips.
"""

from __future__ import annotations

from .encoding import Instruction, decode
from .spec import OP_TABLE, REG_NAMES, Format


def format_instruction(instr: Instruction) -> str:
    """Render one instruction in assembler syntax."""
    info = OP_TABLE[instr.op]
    mnemonic = info.mnemonic
    fmt = info.fmt
    if fmt is Format.R:
        return (f"{mnemonic} {REG_NAMES[instr.rd]}, "
                f"{REG_NAMES[instr.ra]}, {REG_NAMES[instr.rb]}")
    if fmt is Format.I:
        if mnemonic == "lw":
            return (f"lw {REG_NAMES[instr.rd]}, "
                    f"{instr.imm}({REG_NAMES[instr.ra]})")
        return (f"{mnemonic} {REG_NAMES[instr.rd]}, "
                f"{REG_NAMES[instr.ra]}, {instr.imm}")
    if fmt is Format.S:
        return (f"sw {REG_NAMES[instr.rb]}, "
                f"{instr.imm}({REG_NAMES[instr.ra]})")
    if fmt is Format.B:
        return (f"{mnemonic} {REG_NAMES[instr.ra]}, "
                f"{REG_NAMES[instr.rb]}, {instr.imm:+d}")
    if fmt is Format.J:
        return f"jal {REG_NAMES[instr.rd]}, {instr.imm:#x}"
    if fmt is Format.U:
        return f"lui {REG_NAMES[instr.rd]}, {instr.imm:#x}"
    if fmt is Format.Y:
        return f"{mnemonic} {instr.imm}"
    return mnemonic


def disassemble_word(word: int) -> str:
    """Decode and render one 24-bit instruction word."""
    return format_instruction(decode(word))


def disassemble_image(im: dict[int, int]) -> list[str]:
    """Render a sparse instruction image as ``addr: text`` lines."""
    lines = []
    for address in sorted(im):
        try:
            text = disassemble_word(im[address])
        except Exception:
            text = f".word {im[address]:#08x}"
        lines.append(f"{address:#06x}: {text}")
    return lines
