"""Instruction-set specification of the 16-bit WBSN RISC core.

The paper's platform uses 16-bit RISC cores with a three-stage pipeline
and 24-bit wide instruction memory words (Sec. IV-B: "32 KWords of 24
bits width").  This module defines a clean ISA with those parameters:

* 8 general-purpose 16-bit registers ``r0``..``r7``; ``r0`` reads as zero
  and writes to it are discarded.
* 24-bit instruction words, word-addressed instruction memory.
* 16-bit data words, word-addressed data memory.
* The synchronization instruction-set extension of the paper:
  ``sinc``, ``sdec``, ``snop`` (each taking a sync-point literal) and
  ``sleep`` (Sec. III-A/III-B).

Encoding formats (24 bits, opcode in the top 6 bits):

====== ======================================= =========================
Format Fields (msb -> lsb)                     Used by
====== ======================================= =========================
R      op[6] rd[3] ra[3] rb[3] pad[9]          register ALU ops
I      op[6] rd[3] ra[3] imm[12] (signed)      immediate ALU, lw, jalr
S      op[6] rb[3] ra[3] imm[12] (signed)      sw (rb stored at ra+imm)
B      op[6] ra[3] rb[3] off[12] (signed)      conditional branches
J      op[6] rd[3] addr[15] (absolute word)    jal
U      op[6] rd[3] imm[8] pad[7]               lui (rd = imm << 8)
Y      op[6] lit[16] pad[2]                    sinc / sdec / snop
N      op[6] pad[18]                           nop, halt, sleep
====== ======================================= =========================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Number of general purpose registers.
NUM_REGS = 8

#: Instruction word width in bits (matches the paper's IM geometry).
INSTR_BITS = 24

#: Data word width in bits.
DATA_BITS = 16

#: Mask for a 16-bit data word.
WORD_MASK = (1 << DATA_BITS) - 1

#: Mask for a 24-bit instruction word.
INSTR_MASK = (1 << INSTR_BITS) - 1

#: Width of the absolute jump target field (covers the 32 KWord IM).
JUMP_ADDR_BITS = 15

#: Width of signed immediate fields in I/S/B formats.
IMM_BITS = 12

#: Width of the sync-point literal field.
SYNC_LIT_BITS = 16


class Format(enum.Enum):
    """Instruction encoding formats."""

    R = "R"
    I = "I"  # noqa: E741 - conventional ISA format name
    S = "S"
    B = "B"
    J = "J"
    U = "U"
    Y = "Y"
    N = "N"


class Op(enum.IntEnum):
    """Opcode numbers.

    The numeric values are the 6-bit opcode field contents and are part
    of the binary format; do not renumber.
    """

    # -- R format: rd = ra OP rb ------------------------------------
    ADD = 0x00
    SUB = 0x01
    AND = 0x02
    OR = 0x03
    XOR = 0x04
    SLL = 0x05
    SRL = 0x06
    SRA = 0x07
    SLT = 0x08
    SLTU = 0x09
    MUL = 0x0A
    MULH = 0x0B

    # -- I format: rd = ra OP imm ------------------------------------
    ADDI = 0x10
    ANDI = 0x11
    ORI = 0x12
    XORI = 0x13
    SLLI = 0x14
    SRLI = 0x15
    SRAI = 0x16
    SLTI = 0x17
    LW = 0x18
    JALR = 0x19

    # -- S format ------------------------------------------------------
    SW = 0x1A

    # -- U format ------------------------------------------------------
    LUI = 0x1B

    # -- B format: branch if (ra OP rb) --------------------------------
    BEQ = 0x20
    BNE = 0x21
    BLT = 0x22
    BGE = 0x23
    BLTU = 0x24
    BGEU = 0x25

    # -- J format ------------------------------------------------------
    JAL = 0x28

    # -- Y format: synchronization ISE (the paper's contribution) ------
    SINC = 0x30
    SDEC = 0x31
    SNOP = 0x32

    # -- N format ------------------------------------------------------
    SLEEP = 0x33
    NOP = 0x38
    HALT = 0x3F


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode.

    Attributes:
        op: the opcode.
        mnemonic: assembler mnemonic (lower case).
        fmt: encoding format.
        cycles: base execution cycles on the 3-stage core.  Taken
            branches and jumps add one flush cycle on top (modelled by
            the core, not here).
        reads_mem: instruction performs a data-memory read.
        writes_mem: instruction performs a data-memory write.
        is_sync: instruction is part of the synchronization ISE.
    """

    op: Op
    mnemonic: str
    fmt: Format
    cycles: int = 1
    reads_mem: bool = False
    writes_mem: bool = False
    is_sync: bool = False


def _build_op_table() -> dict[Op, OpInfo]:
    infos = [
        OpInfo(Op.ADD, "add", Format.R),
        OpInfo(Op.SUB, "sub", Format.R),
        OpInfo(Op.AND, "and", Format.R),
        OpInfo(Op.OR, "or", Format.R),
        OpInfo(Op.XOR, "xor", Format.R),
        OpInfo(Op.SLL, "sll", Format.R),
        OpInfo(Op.SRL, "srl", Format.R),
        OpInfo(Op.SRA, "sra", Format.R),
        OpInfo(Op.SLT, "slt", Format.R),
        OpInfo(Op.SLTU, "sltu", Format.R),
        OpInfo(Op.MUL, "mul", Format.R, cycles=2),
        OpInfo(Op.MULH, "mulh", Format.R, cycles=2),
        OpInfo(Op.ADDI, "addi", Format.I),
        OpInfo(Op.ANDI, "andi", Format.I),
        OpInfo(Op.ORI, "ori", Format.I),
        OpInfo(Op.XORI, "xori", Format.I),
        OpInfo(Op.SLLI, "slli", Format.I),
        OpInfo(Op.SRLI, "srli", Format.I),
        OpInfo(Op.SRAI, "srai", Format.I),
        OpInfo(Op.SLTI, "slti", Format.I),
        OpInfo(Op.LW, "lw", Format.I, reads_mem=True),
        OpInfo(Op.JALR, "jalr", Format.I),
        OpInfo(Op.SW, "sw", Format.S, writes_mem=True),
        OpInfo(Op.LUI, "lui", Format.U),
        OpInfo(Op.BEQ, "beq", Format.B),
        OpInfo(Op.BNE, "bne", Format.B),
        OpInfo(Op.BLT, "blt", Format.B),
        OpInfo(Op.BGE, "bge", Format.B),
        OpInfo(Op.BLTU, "bltu", Format.B),
        OpInfo(Op.BGEU, "bgeu", Format.B),
        OpInfo(Op.JAL, "jal", Format.J),
        OpInfo(Op.SINC, "sinc", Format.Y, is_sync=True),
        OpInfo(Op.SDEC, "sdec", Format.Y, is_sync=True),
        OpInfo(Op.SNOP, "snop", Format.Y, is_sync=True),
        OpInfo(Op.SLEEP, "sleep", Format.N, is_sync=True),
        OpInfo(Op.NOP, "nop", Format.N),
        OpInfo(Op.HALT, "halt", Format.N),
    ]
    return {info.op: info for info in infos}


#: Opcode -> static properties.
OP_TABLE: dict[Op, OpInfo] = _build_op_table()

#: Mnemonic -> static properties (assembler entry point).
MNEMONIC_TABLE: dict[str, OpInfo] = {
    info.mnemonic: info for info in OP_TABLE.values()
}

#: Register aliases accepted by the assembler, mapping to register numbers.
REG_ALIASES: dict[str, int] = {
    **{f"r{i}": i for i in range(NUM_REGS)},
    "zero": 0,
    "sp": 6,
    "ra": 7,
}

#: Canonical register names used by the disassembler.
REG_NAMES: tuple[str, ...] = tuple(f"r{i}" for i in range(NUM_REGS))


def signed(value: int, bits: int) -> int:
    """Interpret ``value``'s low ``bits`` bits as a two's-complement int."""
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def to_signed16(value: int) -> int:
    """Interpret a 16-bit data word as a signed integer."""
    return signed(value, DATA_BITS)


def to_u16(value: int) -> int:
    """Wrap an integer into a 16-bit data word."""
    return value & WORD_MASK


def fits_signed(value: int, bits: int) -> bool:
    """True if ``value`` is representable as a signed ``bits``-bit field."""
    half = 1 << (bits - 1)
    return -half <= value < half


def fits_unsigned(value: int, bits: int) -> bool:
    """True if ``value`` is representable as an unsigned ``bits``-bit field."""
    return 0 <= value < (1 << bits)
