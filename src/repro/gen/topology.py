"""Topology families of the synthetic workload generator.

A topology is the *structural* half of a generated application: stages
(future :class:`~repro.apps.phases.PhaseSpec` instances) with replica
counts, trigger classes and producer-consumer edges.  The families
generalise the shapes of the paper's three benchmarks and of the wider
multi-core sync literature:

* ``pipeline`` — a linear chain of distinct stages (3L-MMD's
  filter -> combine -> delineate generalised to 2-4 stages, with an
  optionally replicated head);
* ``fork-join`` — a replicated worker stage feeding an aggregator,
  optionally followed by a tail stage (3L-MMD / classic fork-join);
* ``fan-in`` — several *distinct* producer stages all feeding one
  aggregator through a single multi-producer channel (heterogeneous
  sensor fusion, Baumgartner et al.'s simultaneous-event pattern);
* ``independent`` — one stage replicated with no channels at all:
  pure lock-step replicas, as in 3L-MF;
* ``random-dag`` — a layered random DAG: every stage in layer *k*
  consumes from one or two earlier stages (the adversarial family;
  shapes here exercise the mapper's rejection/repair path).

All random draws flow through the caller's :class:`random.Random`
stream in declaration order — no sets, no ``hash()`` — so topologies
are bit-reproducible across processes.

A suffix of a topology may be *triggered* (``on_abnormal``): those
stages activate per pathological beat, like RP-CLASS's delineation
chain.  Stage 0 is always streaming so every generated application
has a real-time clock requirement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class StageSpec:
    """One structural stage of a generated application.

    Attributes:
        name: stage name (unique within the topology).
        replicas: parallel instances (a lock-step group when > 1).
        inputs: indices of the stages this stage consumes from
            (empty for source stages).
        on_abnormal: activated per pathological beat instead of
            streaming.
    """

    name: str
    replicas: int
    inputs: tuple[int, ...] = ()
    on_abnormal: bool = False


@dataclass(frozen=True)
class Topology:
    """A generated application's structure: stages + edges."""

    family: str
    stages: tuple[StageSpec, ...]

    @property
    def total_replicas(self) -> int:
        """Cores a one-core-per-replica mapping needs."""
        return sum(stage.replicas for stage in self.stages)


def _pipeline(rng: random.Random) -> Topology:
    depth = rng.randint(2, 4)
    head_replicas = rng.randint(1, 3)
    triggered_tail = depth >= 3 and rng.random() < 0.25
    stages = [StageSpec(name="stage0", replicas=head_replicas)]
    for index in range(1, depth):
        stages.append(StageSpec(
            name=f"stage{index}",
            replicas=1,
            inputs=(index - 1,),
            on_abnormal=triggered_tail and index == depth - 1,
        ))
    return Topology(family="pipeline", stages=tuple(stages))


def _fork_join(rng: random.Random) -> Topology:
    workers = rng.randint(2, 4)
    with_tail = rng.random() < 0.5
    stages = [
        StageSpec(name="worker", replicas=workers),
        StageSpec(name="join", replicas=1, inputs=(0,)),
    ]
    if with_tail:
        stages.append(StageSpec(
            name="tail", replicas=1, inputs=(1,),
            on_abnormal=rng.random() < 0.3))
    return Topology(family="fork-join", stages=tuple(stages))


def _fan_in(rng: random.Random) -> Topology:
    producers = rng.randint(2, 3)
    stages = [StageSpec(name=f"source{index}", replicas=1)
              for index in range(producers)]
    stages.append(StageSpec(
        name="fuse", replicas=1, inputs=tuple(range(producers))))
    return Topology(family="fan-in", stages=tuple(stages))


def _independent(rng: random.Random) -> Topology:
    replicas = rng.randint(2, 4)
    return Topology(
        family="independent",
        stages=(StageSpec(name="replica", replicas=replicas),),
    )


def _random_dag(rng: random.Random) -> Topology:
    layers = rng.randint(2, 4)
    stages: list[StageSpec] = []
    layer_members: list[list[int]] = []
    for layer in range(layers):
        width = rng.randint(1, 2)
        members: list[int] = []
        for slot in range(width):
            if layer == 0:
                inputs: tuple[int, ...] = ()
                # Up to 3 replicas per source: wide draws overflow an
                # 8-core platform and exercise the repair path.
                replicas = rng.randint(1, 3)
            else:
                upstream = [index
                            for earlier in layer_members
                            for index in earlier]
                fan = min(len(upstream), rng.randint(1, 2))
                # Deterministic draw order: sample positions, then sort.
                picks = sorted(rng.sample(range(len(upstream)), fan))
                inputs = tuple(upstream[pick] for pick in picks)
                replicas = 1
            stages.append(StageSpec(
                name=f"n{layer}_{slot}",
                replicas=replicas,
                inputs=inputs,
                on_abnormal=layer == layers - 1 and rng.random() < 0.2,
            ))
            members.append(len(stages) - 1)
        layer_members.append(members)
    return Topology(family="random-dag", stages=tuple(stages))


#: Family registry, in the fixed order suites cycle through.
FAMILY_ORDER: tuple[str, ...] = (
    "pipeline",
    "fork-join",
    "fan-in",
    "independent",
    "random-dag",
)

FAMILIES = {
    "pipeline": _pipeline,
    "fork-join": _fork_join,
    "fan-in": _fan_in,
    "independent": _independent,
    "random-dag": _random_dag,
}


def require_family(family: str) -> str:
    """Validate a family name (the single source of the error text).

    Raises:
        ValueError: unknown family name.
    """
    if family not in FAMILIES:
        raise ValueError(
            f"unknown topology family {family!r}; choose from "
            f"{list(FAMILY_ORDER)}")
    return family


def build_topology(family: str, rng: random.Random) -> Topology:
    """Draw one topology of the requested family.

    Raises:
        ValueError: unknown family name.
    """
    return FAMILIES[require_family(family)](rng)
