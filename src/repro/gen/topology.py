"""Topology families of the synthetic workload generator.

A topology is the *structural* half of a generated application: stages
(future :class:`~repro.apps.phases.PhaseSpec` instances) with replica
counts, trigger classes and producer-consumer edges.  The families
generalise the shapes of the paper's three benchmarks and of the wider
multi-core sync literature:

* ``pipeline`` — a linear chain of distinct stages (3L-MMD's
  filter -> combine -> delineate generalised to 2-4 stages, with an
  optionally replicated head);
* ``fork-join`` — a replicated worker stage feeding an aggregator,
  optionally followed by a tail stage (3L-MMD / classic fork-join);
* ``fan-in`` — several *distinct* producer stages all feeding one
  aggregator through a single multi-producer channel (heterogeneous
  sensor fusion, Baumgartner et al.'s simultaneous-event pattern);
* ``independent`` — one stage replicated with no channels at all:
  pure lock-step replicas, as in 3L-MF;
* ``random-dag`` — a layered random DAG: every stage in layer *k*
  consumes from one or two earlier stages (the adversarial family;
  shapes here exercise the mapper's rejection/repair path).

All random draws flow through the caller's :class:`random.Random`
stream in declaration order — no sets, no ``hash()`` — so topologies
are bit-reproducible across processes.

A suffix of a topology may be *triggered* (``on_abnormal``): those
stages activate per pathological beat, like RP-CLASS's delineation
chain.  Stage 0 is always streaming so every generated application
has a real-time clock requirement.

The ``random-dag`` family additionally accepts a :class:`Shape` of
*adversarial knobs* — deep chains, wide fan-in, diamond DAGs sharing
code sections across phases, triggered subgraphs — so a coverage
fuzzer (:mod:`repro.cover`) can steer generation toward structural
corners blind sampling essentially never reaches.  A default
(falsy) shape takes the exact historical draw path, so every
pre-existing ``family:seed:index`` identity stays byte-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

#: Shape-knob bounds: generous enough to dwarf the 8-core / 10-bank
#: platform (the whole point of the adversarial shapes) while keeping
#: generated apps small enough to simulate in a fuzz loop.
MAX_SHAPE_DEPTH = 16
MAX_SHAPE_FAN_IN = 12
MAX_SHAPE_REPLICAS = 12


@dataclass(frozen=True)
class StageSpec:
    """One structural stage of a generated application.

    Attributes:
        name: stage name (unique within the topology).
        replicas: parallel instances (a lock-step group when > 1).
        inputs: indices of the stages this stage consumes from
            (empty for source stages).
        on_abnormal: activated per pathological beat instead of
            streaming.
        shares: index of an earlier stage whose code sections this
            stage reuses verbatim (diamond DAGs re-running one
            kernel in two phases); ``None`` for private sections.
    """

    name: str
    replicas: int
    inputs: tuple[int, ...] = ()
    on_abnormal: bool = False
    shares: int | None = None


@dataclass(frozen=True)
class Shape:
    """Adversarial structure knobs for the ``random-dag`` family.

    Every knob defaults to "off"; a default-constructed shape is
    falsy and selects the historical layered-DAG draw path.  Knobs
    compose freely — ``depth`` sets the chain backbone, ``fan_in``
    appends a multi-producer fuse, ``diamond`` appends a
    section-sharing branch/join, ``triggered`` marks a suffix
    subgraph pathological-beat-driven, ``replicas`` pins the source
    stage's lock-step width.

    Raises:
        ValueError: a knob outside its bound (the message names the
            knob).
    """

    depth: int | None = None
    fan_in: int | None = None
    diamond: bool = False
    triggered: bool = False
    replicas: int | None = None

    def __post_init__(self) -> None:
        if self.depth is not None and not 2 <= self.depth <= MAX_SHAPE_DEPTH:
            raise ValueError(
                f"shape knob depth={self.depth!r} outside "
                f"[2, {MAX_SHAPE_DEPTH}]")
        if self.fan_in is not None and (
                not 2 <= self.fan_in <= MAX_SHAPE_FAN_IN):
            raise ValueError(
                f"shape knob fanin={self.fan_in!r} outside "
                f"[2, {MAX_SHAPE_FAN_IN}]")
        if self.replicas is not None and (
                not 1 <= self.replicas <= MAX_SHAPE_REPLICAS):
            raise ValueError(
                f"shape knob reps={self.replicas!r} outside "
                f"[1, {MAX_SHAPE_REPLICAS}]")

    def __bool__(self) -> bool:
        return (self.depth is not None or self.fan_in is not None
                or self.diamond or self.triggered
                or self.replicas is not None)


#: Shape-knob token grammar: canonical serialisation order and the
#: per-knob (parse, serialise) behaviour.  Bools serialise as ``1``
#: and are simply omitted when off.
SHAPE_KNOB_ORDER: tuple[str, ...] = (
    "depth", "fanin", "diamond", "trig", "reps",
)

#: Token knob name -> Shape field.
_KNOB_FIELDS = {
    "depth": "depth",
    "fanin": "fan_in",
    "diamond": "diamond",
    "trig": "triggered",
    "reps": "replicas",
}

_BOOL_KNOBS = frozenset({"diamond", "trig"})


def shape_fragment(shape: Shape) -> str:
    """Canonical ``knob=value+knob=value`` form (empty for default).

    The inverse of :func:`parse_shape`; knobs always serialise in
    :data:`SHAPE_KNOB_ORDER` so equal shapes yield byte-equal
    fragments.
    """
    parts = []
    for knob in SHAPE_KNOB_ORDER:
        value = getattr(shape, _KNOB_FIELDS[knob])
        if value is None or value is False:
            continue
        parts.append(f"{knob}=1" if knob in _BOOL_KNOBS
                     else f"{knob}={value}")
    return "+".join(parts)


def parse_shape(fragment: str, token: str = "") -> Shape:
    """Invert :func:`shape_fragment`.

    Args:
        fragment: a non-empty ``knob=value+...`` string.
        token: enclosing app token, quoted in error messages.

    Raises:
        ValueError: empty fragment, unknown knob, duplicate knob,
            non-integer value, or a value outside the knob's bound —
            always naming the offending knob.
    """
    context = f" in app token {token!r}" if token else ""
    if not fragment:
        raise ValueError(
            f"empty shape fragment{context}; expected "
            f"'knob=value+...'")
    values: dict[str, object] = {}
    for part in fragment.split("+"):
        knob, eq, value_text = part.partition("=")
        if not eq or knob not in _KNOB_FIELDS:
            raise ValueError(
                f"unknown shape knob {part!r}{context}; choose from "
                f"{list(SHAPE_KNOB_ORDER)}")
        field = _KNOB_FIELDS[knob]
        if field in values:
            raise ValueError(
                f"duplicate shape knob {knob!r}{context}")
        try:
            value = int(value_text)
        except ValueError:
            raise ValueError(
                f"shape knob {knob!r} needs an integer value, got "
                f"{value_text!r}{context}") from None
        if knob in _BOOL_KNOBS:
            if value != 1:
                raise ValueError(
                    f"shape knob {knob!r} is a flag; write "
                    f"'{knob}=1' or omit it{context}")
            values[field] = True
        else:
            values[field] = value
    return Shape(**values)  # type: ignore[arg-type]


@dataclass(frozen=True)
class Topology:
    """A generated application's structure: stages + edges."""

    family: str
    stages: tuple[StageSpec, ...]

    @property
    def total_replicas(self) -> int:
        """Cores a one-core-per-replica mapping needs."""
        return sum(stage.replicas for stage in self.stages)


def _pipeline(rng: random.Random) -> Topology:
    depth = rng.randint(2, 4)
    head_replicas = rng.randint(1, 3)
    triggered_tail = depth >= 3 and rng.random() < 0.25
    stages = [StageSpec(name="stage0", replicas=head_replicas)]
    for index in range(1, depth):
        stages.append(StageSpec(
            name=f"stage{index}",
            replicas=1,
            inputs=(index - 1,),
            on_abnormal=triggered_tail and index == depth - 1,
        ))
    return Topology(family="pipeline", stages=tuple(stages))


def _fork_join(rng: random.Random) -> Topology:
    workers = rng.randint(2, 4)
    with_tail = rng.random() < 0.5
    stages = [
        StageSpec(name="worker", replicas=workers),
        StageSpec(name="join", replicas=1, inputs=(0,)),
    ]
    if with_tail:
        stages.append(StageSpec(
            name="tail", replicas=1, inputs=(1,),
            on_abnormal=rng.random() < 0.3))
    return Topology(family="fork-join", stages=tuple(stages))


def _fan_in(rng: random.Random) -> Topology:
    producers = rng.randint(2, 3)
    stages = [StageSpec(name=f"source{index}", replicas=1)
              for index in range(producers)]
    stages.append(StageSpec(
        name="fuse", replicas=1, inputs=tuple(range(producers))))
    return Topology(family="fan-in", stages=tuple(stages))


def _independent(rng: random.Random) -> Topology:
    replicas = rng.randint(2, 4)
    return Topology(
        family="independent",
        stages=(StageSpec(name="replica", replicas=replicas),),
    )


def _random_dag(rng: random.Random) -> Topology:
    layers = rng.randint(2, 4)
    stages: list[StageSpec] = []
    layer_members: list[list[int]] = []
    for layer in range(layers):
        width = rng.randint(1, 2)
        members: list[int] = []
        for slot in range(width):
            if layer == 0:
                inputs: tuple[int, ...] = ()
                # Up to 3 replicas per source: wide draws overflow an
                # 8-core platform and exercise the repair path.
                replicas = rng.randint(1, 3)
            else:
                upstream = [index
                            for earlier in layer_members
                            for index in earlier]
                fan = min(len(upstream), rng.randint(1, 2))
                # Deterministic draw order: sample positions, then sort.
                picks = sorted(rng.sample(range(len(upstream)), fan))
                inputs = tuple(upstream[pick] for pick in picks)
                replicas = 1
            stages.append(StageSpec(
                name=f"n{layer}_{slot}",
                replicas=replicas,
                inputs=inputs,
                on_abnormal=layer == layers - 1 and rng.random() < 0.2,
            ))
            members.append(len(stages) - 1)
        layer_members.append(members)
    return Topology(family="random-dag", stages=tuple(stages))


def _shaped_dag(rng: random.Random, shape: Shape) -> Topology:
    """A ``random-dag`` steered by adversarial :class:`Shape` knobs.

    The backbone is a chain whose length tracks ``shape.depth``
    (minus the layers any suffix blocks contribute), followed by an
    optional diamond (branch stages ``b0``/``b1`` — ``b1`` *shares*
    ``b0``'s sections — fused by ``join``) and an optional wide
    fan-in block (``shape.fan_in`` distinct producers feeding one
    ``fuse`` stage through a single multi-producer channel).  With
    ``shape.triggered`` a 2-3 stage suffix subgraph runs per
    pathological beat.  All draws stay on the caller's rng stream in
    declaration order, so shaped identities are as reproducible as
    plain ones.
    """
    replicas = (shape.replicas if shape.replicas is not None
                else rng.randint(1, 3))
    suffix_layers = (2 if shape.diamond else 0) + (
        2 if shape.fan_in is not None else 0)
    depth = (shape.depth if shape.depth is not None
             else rng.randint(3, 5))
    chain = max(1, depth - suffix_layers)
    stages = [StageSpec(name="n0", replicas=replicas)]
    for index in range(1, chain):
        stages.append(StageSpec(
            name=f"n{index}", replicas=1, inputs=(index - 1,)))
    if shape.diamond:
        tail = len(stages) - 1
        branch = len(stages)
        stages.append(StageSpec(
            name="b0", replicas=1, inputs=(tail,)))
        stages.append(StageSpec(
            name="b1", replicas=1, inputs=(tail,), shares=branch))
        stages.append(StageSpec(
            name="join", replicas=1, inputs=(branch, branch + 1)))
    if shape.fan_in is not None:
        tail = len(stages) - 1
        first = len(stages)
        for slot in range(shape.fan_in):
            stages.append(StageSpec(
                name=f"p{slot}", replicas=1, inputs=(tail,)))
        stages.append(StageSpec(
            name="fuse", replicas=1,
            inputs=tuple(range(first, first + shape.fan_in))))
    if shape.triggered:
        span = min(rng.randint(2, 3), len(stages) - 1)
        for index in range(len(stages) - span, len(stages)):
            stages[index] = replace(stages[index], on_abnormal=True)
    return Topology(family="random-dag", stages=tuple(stages))


#: Family registry, in the fixed order suites cycle through.
FAMILY_ORDER: tuple[str, ...] = (
    "pipeline",
    "fork-join",
    "fan-in",
    "independent",
    "random-dag",
)

FAMILIES = {
    "pipeline": _pipeline,
    "fork-join": _fork_join,
    "fan-in": _fan_in,
    "independent": _independent,
    "random-dag": _random_dag,
}


def require_family(family: str) -> str:
    """Validate a family name (the single source of the error text).

    Raises:
        ValueError: unknown family name.
    """
    if family not in FAMILIES:
        raise ValueError(
            f"unknown topology family {family!r}; choose from "
            f"{list(FAMILY_ORDER)}")
    return family


def require_shape(family: str, shape: Shape | None) -> Shape:
    """Validate a (family, shape) pair; a default shape for ``None``.

    Raises:
        ValueError: non-default knobs on a family other than
            ``random-dag``.
    """
    shape = shape if shape is not None else Shape()
    if shape and family != "random-dag":
        raise ValueError(
            f"shape knobs ({shape_fragment(shape)}) only apply to "
            f"the 'random-dag' family, not {family!r}")
    return shape


def build_topology(family: str, rng: random.Random,
                   shape: Shape | None = None) -> Topology:
    """Draw one topology of the requested family.

    A non-default ``shape`` routes ``random-dag`` through
    :func:`_shaped_dag`; the default shape keeps the historical draw
    path byte-for-byte.

    Raises:
        ValueError: unknown family name, or shape knobs on a family
            other than ``random-dag``.
    """
    require_family(family)
    shape = require_shape(family, shape)
    if shape:
        return _shaped_dag(rng, shape)
    return FAMILIES[family](rng)
