"""Workload distributions anchored to the platform characterisation.

Every sampled quantity is drawn from a range bracketing what the
paper's three hand-calibrated applications and the cycle-level kernel
characterisation (:mod:`repro.kernels.characterize`) actually measure,
so generated applications are *physically plausible* points of the
same space — not arbitrary numbers:

* per-phase cycle intensities bracket the calibrated budgets of
  :mod:`repro.apps.benchmarks` (``COMBINE_CYCLES`` .. a bit above
  ``CLASSIFY_HALF_CYCLES``), and whole-app streaming totals stay in
  the 0.6-3.6 MHz band Table I's "Min. Clock" row spans at 250 Hz;
* data-memory access rates bracket the measured 0.25 (filter) to 0.52
  (NN search) accesses/cycle;
* sync-instruction rates follow the calibrated per-phase overheads
  (50/3067 ~ 1.6 % down to 4/1400 ~ 0.3 % of executed cycles);
* lock-step alignment spans the characterised 0.20 (branchy NN) to
  0.92 (synchronizer-started chain) band;
* code-section and data footprints bracket the Fig. 5 linker sizes.

All draws go through one :class:`random.Random` stream in a fixed
order; nothing here touches ``hash()``, sets, or any other source of
process-dependent ordering, which is what makes generated apps
byte-identical across processes (see ``tests/gen/test_determinism``).
"""

from __future__ import annotations

import random

from ..apps.benchmarks import (
    CLASSIFY_HALF_CYCLES,
    COMBINE_CYCLES,
    MF_CYCLES,
)
from ..apps.phases import SectionSpec

#: Per-phase cycles/sample band (brackets the calibrated budgets:
#: 1400 combine .. 3966 classify-half, widened ~40 % each way).
PHASE_CYCLES_RANGE = (0.6 * COMBINE_CYCLES, 1.4 * CLASSIFY_HALF_CYCLES)

#: Whole-app streaming cycles/sample band (all replicas summed).  At
#: 250 Hz this is 0.6-3.6 MHz of single-core clock — the band Table I
#: spans (2.3-3.4 MHz) with headroom below for sparse apps.
APP_CYCLES_RANGE = (2_400.0, 14_400.0)

#: Data-memory accesses per executed cycle (measured 0.25-0.52).
DM_RATE_RANGE = (0.20, 0.55)

#: Sync instructions executed per executed cycle (calibrated
#: 0.3 %-1.6 %, widened to 0.2 %-2 %).
SYNC_RATE_RANGE = (0.002, 0.020)

#: Inserted sync instructions per phase (Table I rows use 6-92 words).
SYNC_CODE_RANGE = (6, 96)

#: Lock-step alignment of replica groups (characterised 0.20-0.92).
ALIGNMENT_RANGE = (0.20, 0.92)

#: Fraction of reads hitting shared constants (measured 0.085-0.126).
SHARED_READ_RANGE = (0.06, 0.14)

#: Code-section sizes in 24-bit words (Fig. 5 sections are 1800-3200).
SECTION_WORDS_RANGE = (600, 3_400)

#: Head-phase section size: the paper's apps start with a single
#: conditioning section that shares IM bank 0 with the runtime, so
#: head sections stay below bank capacity minus the runtime.
HEAD_SECTION_WORDS_RANGE = (600, 3_600)

#: Per-replica data footprint in 16-bit words (400 .. 7500 in Fig. 5).
DM_WORDS_RANGE = (300, 7_500)

#: Reference anchor re-exported for reports/tests.
ANCHOR_MF_CYCLES = MF_CYCLES


def sample_phase_cycles(rng: random.Random) -> float:
    """Raw per-phase cycle intensity (later rescaled to the app band)."""
    low, high = PHASE_CYCLES_RANGE
    return rng.uniform(low, high)


def sample_app_cycle_budget(rng: random.Random) -> float:
    """Whole-app streaming cycles/sample target (all replicas)."""
    low, high = APP_CYCLES_RANGE
    return rng.uniform(low, high)


def sample_dm_rate(rng: random.Random) -> float:
    """Data-memory accesses per executed cycle."""
    low, high = DM_RATE_RANGE
    return round(rng.uniform(low, high), 3)


def sample_sync_rate(rng: random.Random) -> float:
    """Executed sync instructions as a fraction of phase cycles."""
    low, high = SYNC_RATE_RANGE
    return rng.uniform(low, high)


def sample_sync_code_words(rng: random.Random) -> int:
    """Inserted sync instructions of one phase's code."""
    low, high = SYNC_CODE_RANGE
    return rng.randint(low, high)


def sample_alignment(rng: random.Random) -> float:
    """Lock-step alignment of a replica group."""
    low, high = ALIGNMENT_RANGE
    return round(rng.uniform(low, high), 3)


def sample_shared_reads(rng: random.Random) -> float:
    """Fraction of data reads targeting shared constants."""
    low, high = SHARED_READ_RANGE
    return round(rng.uniform(low, high), 3)


def sample_dm_words(rng: random.Random) -> int:
    """Per-replica data-memory footprint in words."""
    low, high = DM_WORDS_RANGE
    return rng.randint(low, high)


def sample_sections(rng: random.Random, stage: str, budget: int,
                    head: bool = False) -> tuple[SectionSpec, ...]:
    """Code sections of one phase.

    Args:
        rng: the app's draw stream.
        stage: stage name (section names derive from it).
        budget: maximum number of sections this phase may declare
            (the generator keeps whole-app section counts within the
            IM bank budget of the paper's mapping policy).
        head: first phase of the application — a single section sized
            to co-reside with the runtime in IM bank 0, like every
            paper benchmark's conditioning filter.
    """
    if head:
        low, high = HEAD_SECTION_WORDS_RANGE
        return (SectionSpec(name=f"{stage}_s0",
                            words=rng.randint(low, high)),)
    count = rng.randint(1, max(1, min(3, budget)))
    low, high = SECTION_WORDS_RANGE
    return tuple(
        SectionSpec(name=f"{stage}_s{index}",
                    words=rng.randint(low, high))
        for index in range(count)
    )
