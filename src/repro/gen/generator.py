"""Seeded synthetic application generator.

:func:`generate_app` turns ``(family, seed, index)`` into a fully
valid :class:`~repro.apps.phases.AppSpec`: the topology family gives
the structure (:mod:`repro.gen.topology`), and every workload knob is
sampled from the characterisation-anchored distributions of
:mod:`repro.gen.distributions`.  The per-app draw stream is seeded
from a SHA-256 over the identity triple — the same
derive-from-stable-identity pattern the sweep cache and the fleet
runner use — so generation is a pure function: the same triple yields
a byte-identical application in any process, under any
``PYTHONHASHSEED``, on any platform.

Identity triples round-trip through compact string *tokens*
(``"pipeline:2014:0"``) so generated applications can ride through
JSON-scalar-only sweep points (:mod:`repro.sweep.spec`) and CLI
arguments; :func:`app_fingerprint` gives the canonical content hash
the determinism tests pin.
"""

from __future__ import annotations

import hashlib
import json
import random

from ..apps.phases import (
    AppSpec,
    ChannelSpec,
    PhaseSpec,
    SectionSpec,
    Trigger,
)
from . import distributions as dist
from .topology import (
    FAMILY_ORDER,
    Shape,
    StageSpec,
    Topology,
    build_topology,
    parse_shape,
    require_family,
    require_shape,
    shape_fragment,
)

#: Schema tag mixed into every per-app seed derivation (bump to
#: re-roll the whole generated population).
GEN_SCHEMA = "repro-gen/1"

#: Sampling rate of generated applications (the paper's 250 Hz).
GEN_FS = 250.0

#: Shared runtime/boot section size (matches the paper benchmarks).
GEN_RUNTIME_WORDS = 300

#: Beat window of triggered phases, in samples (the paper's 208).
GEN_BEAT_SPAN = 208

#: Soft cap on distinct code sections per app.  Deliberately above
#: the IM bank count: the paper's multi-core policy dedicates one
#: bank per non-head section, so section-heavy draws overflow it and
#: can only map through the packing heuristics — the adversarial
#: corner of the generated population.
MAX_SECTIONS = 10

#: Beat-rate producer-consumer hand-off (RP-CLASS's chain channel).
BEAT_RATE_HANDOFFS = 0.01


def derive_seed(*parts: object) -> int:
    """Deterministic 64-bit seed from stable identity parts."""
    text = "\x00".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def app_token(family: str, seed: int, index: int,
              shape: Shape | None = None) -> str:
    """Compact string identity of one generated app.

    Default-shaped identities keep the historical three-segment form;
    adversarial shapes append a canonical fourth segment
    (``"random-dag:7:0:depth=10+trig=1"``).
    """
    base = f"{family}:{seed}:{index}"
    fragment = shape_fragment(shape) if shape is not None else ""
    return f"{base}:{fragment}" if fragment else base


def parse_app_token(token: str) -> tuple[str, int, int, Shape]:
    """Invert :func:`app_token`.

    Returns:
        ``(family, seed, index, shape)`` — ``shape`` is the default
        (falsy) :class:`~repro.gen.topology.Shape` for plain
        three-segment tokens.

    Raises:
        ValueError: malformed token, unknown family, or shape knobs
            on a family other than ``random-dag`` — naming the
            offending segment.
    """
    parts = token.split(":")
    if len(parts) not in (3, 4):
        raise ValueError(
            f"malformed app token {token!r}; expected "
            f"'family:seed:index[:knob=value+...]'")
    family, seed_text, index_text = parts[:3]
    require_family(family)
    try:
        seed, index = int(seed_text), int(index_text)
    except ValueError:
        raise ValueError(
            f"malformed app token {token!r}; seed and index must be "
            f"integers") from None
    shape = parse_shape(parts[3], token) if len(parts) == 4 else Shape()
    require_shape(family, shape)
    return family, seed, index, shape


def _stage_phase(stage: StageSpec, rng: random.Random,
                 section_budget: int, head: bool = False,
                 shared_from: PhaseSpec | None = None) -> PhaseSpec:
    """Sample one stage's workload knobs into a PhaseSpec.

    ``shared_from`` (diamond DAGs) bypasses the section draw
    entirely: the stage re-executes an earlier phase's code, so it
    lists the *same* section names, sizes and inserted sync words —
    the IM mapper deduplicates them, which is exactly the sharing
    pressure the shape exists to exercise.
    """
    cycles = dist.sample_phase_cycles(rng)
    if shared_from is not None:
        sections = tuple(shared_from.sections)
    else:
        sections = dist.sample_sections(rng, stage.name, section_budget,
                                        head=head)
    sync_rate = dist.sample_sync_rate(rng)
    sync_code = (shared_from.sync_code_words if shared_from is not None
                 else dist.sample_sync_code_words(rng))
    alignment = dist.sample_alignment(rng) if stage.replicas > 1 else 0.0
    shared = dist.sample_shared_reads(rng) if stage.replicas > 1 else 0.0
    return PhaseSpec(
        name=stage.name,
        cycles_per_sample=cycles,
        dm_access_rate=dist.sample_dm_rate(rng),
        sections=sections,
        sync_code_words=sync_code,
        sync_ops_per_sample=round(cycles * sync_rate, 2),
        replicas=stage.replicas,
        lockstep_alignment=alignment,
        shared_read_fraction=shared,
        trigger=Trigger.ON_ABNORMAL if stage.on_abnormal
        else Trigger.STREAMING,
        dm_words=dist.sample_dm_words(rng),
    )


def _rescale_cycles(phases: list[PhaseSpec],
                    rng: random.Random) -> list[PhaseSpec]:
    """Normalise streaming totals into the plausible app band.

    The raw per-phase draws are independent, so deep topologies would
    pile up implausible totals; rescaling the whole app onto a sampled
    single-core budget keeps every generated app inside the clock band
    the paper's platform actually serves.
    """
    streaming = sum(phase.cycles_per_sample * phase.replicas
                    for phase in phases
                    if phase.trigger is Trigger.STREAMING)
    if streaming <= 0.0:
        return phases
    target = dist.sample_app_cycle_budget(rng)
    scale = target / streaming
    rescaled = []
    for phase in phases:
        cycles = round(phase.cycles_per_sample * scale, 1)
        sync_ops = round(phase.sync_ops_per_sample * scale, 2)
        rescaled.append(PhaseSpec(
            name=phase.name,
            cycles_per_sample=cycles,
            dm_access_rate=phase.dm_access_rate,
            sections=phase.sections,
            sync_code_words=phase.sync_code_words,
            sync_ops_per_sample=sync_ops,
            replicas=phase.replicas,
            lockstep_alignment=phase.lockstep_alignment,
            shared_read_fraction=phase.shared_read_fraction,
            trigger=phase.trigger,
            dm_words=phase.dm_words,
        ))
    return rescaled


def _channels(topology: Topology,
              phases: list[PhaseSpec]) -> list[ChannelSpec]:
    channels = []
    for index, stage in enumerate(topology.stages):
        if not stage.inputs:
            continue
        handoffs = BEAT_RATE_HANDOFFS if stage.on_abnormal else 1.0
        channels.append(ChannelSpec(
            producers=tuple(topology.stages[i].name for i in stage.inputs),
            consumer=phases[index].name,
            handoffs_per_sample=handoffs,
        ))
    return channels


def generate_app(family: str, seed: int, index: int = 0,
                 shape: Shape | None = None) -> AppSpec:
    """Generate one valid application from its identity.

    Args:
        family: topology family (see
            :data:`repro.gen.topology.FAMILY_ORDER`).
        seed: suite seed.
        index: app index within the suite.
        shape: adversarial structure knobs (``random-dag`` only); a
            default shape reproduces the historical triple identity
            byte-for-byte.

    Raises:
        ValueError: unknown family, or shape knobs on a family other
            than ``random-dag``.
    """
    shape = require_shape(family, shape)
    identity: tuple[object, ...] = (GEN_SCHEMA, family, seed, index)
    if shape:
        identity += (shape_fragment(shape),)
    rng = random.Random(derive_seed(*identity))
    topology = build_topology(family, rng, shape=shape)
    phases: list[PhaseSpec] = []
    sections_used = 0
    for position, stage in enumerate(topology.stages):
        budget = MAX_SECTIONS - sections_used - (
            len(topology.stages) - len(phases) - 1)
        shared = (phases[stage.shares] if stage.shares is not None
                  else None)
        phase = _stage_phase(stage, rng, max(1, budget),
                             head=position == 0, shared_from=shared)
        if shared is None:
            sections_used += len(phase.sections)
        phases.append(phase)
    phases = _rescale_cycles(phases, rng)
    app = AppSpec(
        name=f"G{index:02d}-{family}",
        fs=GEN_FS,
        phases=phases,
        channels=_channels(topology, phases),
        runtime_words=GEN_RUNTIME_WORDS,
        beat_span_samples=GEN_BEAT_SPAN,
        description=f"generated {family} workload "
                    f"(seed {seed}, index {index}"
                    + (f", shape {shape_fragment(shape)})" if shape
                       else ")"),
    )
    app.validate()
    return app


def app_from_token(token: str) -> AppSpec:
    """Regenerate the application a token identifies.

    Args:
        token: a ``"family:seed:index"`` identity from
            :func:`app_token` / :func:`suite_tokens`.

    Returns:
        The byte-identical application the token names.

    Raises:
        ValueError: malformed token or unknown family.
    """
    family, seed, index, shape = parse_app_token(token)
    return generate_app(family, seed, index, shape=shape)


def suite_tokens(seed: int, count: int,
                 families: tuple[str, ...] | None = None) -> list[str]:
    """The identity tokens of one generated suite.

    Families are cycled round-robin in :data:`FAMILY_ORDER` (or the
    caller's explicit order), so any prefix of a suite is itself a
    balanced suite.

    Raises:
        ValueError: unknown family or non-positive count.
    """
    if count < 1:
        raise ValueError("suite needs at least one app")
    chosen = tuple(families) if families else FAMILY_ORDER
    for family in chosen:
        require_family(family)
    return [app_token(chosen[index % len(chosen)], seed, index)
            for index in range(count)]


def generate_suite(seed: int, count: int,
                   families: tuple[str, ...] | None = None
                   ) -> list[AppSpec]:
    """Generate a balanced suite of applications.

    Args:
        seed: suite seed (every app's draw stream derives from it).
        count: applications to generate (>= 1).
        families: family cycle; :data:`FAMILY_ORDER` when omitted.

    Returns:
        ``count`` valid applications, families cycled round-robin —
        the materialised form of :func:`suite_tokens`.

    Raises:
        ValueError: unknown family or non-positive count.
    """
    return [app_from_token(token)
            for token in suite_tokens(seed, count, families)]


def app_to_mapping(app: AppSpec) -> dict:
    """Canonical JSON-ready form of an application.

    Field order is the declaration order of the dataclasses; every
    container is a list; enums serialise to their values.  This is the
    substrate of :func:`app_fingerprint` and of the byte-identical
    artifact guarantee.
    """
    return {
        "name": app.name,
        "fs": app.fs,
        "runtime_words": app.runtime_words,
        "beat_span_samples": app.beat_span_samples,
        "description": app.description,
        "phases": [
            {
                "name": phase.name,
                "cycles_per_sample": phase.cycles_per_sample,
                "dm_access_rate": phase.dm_access_rate,
                "sections": [
                    {"name": section.name, "words": section.words}
                    for section in phase.sections
                ],
                "sync_code_words": phase.sync_code_words,
                "sync_ops_per_sample": phase.sync_ops_per_sample,
                "replicas": phase.replicas,
                "lockstep_alignment": phase.lockstep_alignment,
                "shared_read_fraction": phase.shared_read_fraction,
                "trigger": phase.trigger.value,
                "dm_words": phase.dm_words,
            }
            for phase in app.phases
        ],
        "channels": [
            {
                "producers": list(channel.producers),
                "consumer": channel.consumer,
                "handoffs_per_sample": channel.handoffs_per_sample,
            }
            for channel in app.channels
        ],
    }


def app_from_mapping(data: dict) -> AppSpec:
    """Rebuild an application from :func:`app_to_mapping` output."""
    phases = [
        PhaseSpec(
            name=entry["name"],
            cycles_per_sample=entry["cycles_per_sample"],
            dm_access_rate=entry["dm_access_rate"],
            sections=tuple(SectionSpec(s["name"], s["words"])
                           for s in entry["sections"]),
            sync_code_words=entry["sync_code_words"],
            sync_ops_per_sample=entry["sync_ops_per_sample"],
            replicas=entry["replicas"],
            lockstep_alignment=entry["lockstep_alignment"],
            shared_read_fraction=entry["shared_read_fraction"],
            trigger=Trigger(entry["trigger"]),
            dm_words=entry["dm_words"],
        )
        for entry in data["phases"]
    ]
    channels = [
        ChannelSpec(
            producers=tuple(entry["producers"]),
            consumer=entry["consumer"],
            handoffs_per_sample=entry["handoffs_per_sample"],
        )
        for entry in data["channels"]
    ]
    app = AppSpec(
        name=data["name"],
        fs=data["fs"],
        phases=phases,
        channels=channels,
        runtime_words=data["runtime_words"],
        beat_span_samples=data["beat_span_samples"],
        description=data["description"],
    )
    app.validate()
    return app


def app_fingerprint(app: AppSpec) -> str:
    """Stable content hash of an application's canonical form."""
    canonical = json.dumps(app_to_mapping(app), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
