"""Mapping-policy explorer: generated apps x policies -> metrics.

:func:`evaluate_app` runs one ``(application, policy, cores)`` point
through the behavioural simulator and distils the figures of merit the
paper's methodology optimises: the VFS clock floor, the duty cycle of
the provisioned cores, average power, and the synchronization
overheads.  Applications the policy cannot place are *repaired* when
the failure is a core shortage (replica groups are trimmed, largest
first — the same concession a developer would make porting a wide app
to a narrow platform) and *rejected* when code genuinely does not fit
the instruction memory.

Everything is a pure function of ``(app identity, policy, cores,
duration)``; records therefore cache cleanly under the sweep engine
and reproduce byte-identically across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .. import obs
from ..apps.mapping import MappingError
from ..apps.phases import AppSpec, Trigger
from ..sysc.engine import Mode, simulate, uniform_schedule
from .generator import app_from_token, parse_app_token
from .policies import POLICIES, get_policy

#: Default simulated seconds per exploration point (sample-granular
#: behavioural simulation: ~1250 ticks at 250 Hz).
EXPLORE_DURATION_S = 5.0

#: Pathological-beat ratio driving ON_ABNORMAL phases of generated
#: apps (the paper's Table I setting for RP-CLASS).
EXPLORE_ABNORMAL_RATIO = 0.20

#: Placement outcomes.
STATUS_OK = "ok"
STATUS_REPAIRED = "repaired"
STATUS_REJECTED = "rejected"

#: Outcome of candidates the analytic screen scored but never
#: simulated (see :func:`screen_policies`).
STATUS_SCREENED = "screened"


@dataclass(frozen=True)
class ExplorationRecord:
    """Outcome of one (application, policy, cores) point.

    Attributes:
        app: application name.
        token: regeneration token (empty for literal apps).
        family: topology family (empty for literal apps).
        policy: mapping policy applied.
        num_cores: provisioned platform width.
        status: ``ok`` / ``repaired`` / ``rejected``, or
            ``screened`` for analytic-only records (never simulated;
            ``simulated_s`` stays 0).
        repairs: replicas trimmed to fit the platform.
        error: placement error text (rejected points only).
        required_mhz: clock requirement before the platform floor.
        clock_mhz: chosen VFS clock (0 when rejected).
        voltage: chosen supply voltage (0 when rejected).
        power_uw: average power (0 when rejected).
        duty_cycle: executed cycles / provisioned core cycles.
        sync_overhead: executed sync ops / executed cycles.
        code_overhead: inserted sync words / total code words.
        active_cores: cores the placement occupies.
        im_banks: IM banks holding code.
        simulated_s: simulated seconds this point covered (0 when
            rejected).
    """

    app: str
    token: str
    family: str
    policy: str
    num_cores: int
    status: str
    repairs: int = 0
    error: str = ""
    required_mhz: float = 0.0
    clock_mhz: float = 0.0
    voltage: float = 0.0
    power_uw: float = 0.0
    duty_cycle: float = 0.0
    sync_overhead: float = 0.0
    code_overhead: float = 0.0
    active_cores: int = 0
    im_banks: int = 0
    simulated_s: float = 0.0


def repair_app(app: AppSpec, num_cores: int) -> tuple[AppSpec, int]:
    """Trim replica groups until one core per replica fits.

    Replicas are removed from the widest group first (ties: earliest
    phase), one at a time — deterministic, and minimal in the number
    of replicas lost.  Returns the (possibly unchanged) app and the
    number of replicas trimmed.
    """
    phases = list(app.phases)
    trimmed = 0
    while sum(phase.replicas for phase in phases) > num_cores:
        widest = max(range(len(phases)),
                     key=lambda index: (phases[index].replicas, -index))
        if phases[widest].replicas <= 1:
            break  # every group already minimal: nothing left to trim
        phases[widest] = replace(phases[widest],
                                 replicas=phases[widest].replicas - 1)
        trimmed += 1
    if trimmed == 0:
        return app, 0
    repaired = AppSpec(
        name=app.name,
        fs=app.fs,
        phases=phases,
        channels=list(app.channels),
        runtime_words=app.runtime_words,
        beat_span_samples=app.beat_span_samples,
        description=app.description,
    )
    repaired.validate()
    return repaired, trimmed


def evaluate_app(app: AppSpec, policy_name: str, num_cores: int = 8,
                 duration_s: float = EXPLORE_DURATION_S,
                 token: str = "", family: str = "") -> ExplorationRecord:
    """Run one application through one policy and summarise it.

    Args:
        app: the application to place and simulate.
        policy_name: key in :data:`repro.gen.policies.POLICIES`.
        num_cores: provisioned platform width.
        duration_s: simulated seconds.
        token: regeneration token recorded in the record.
        family: topology family recorded in the record.

    Returns:
        One :class:`ExplorationRecord` — placed (with the
        methodology's figures of merit) or rejected (with the
        placement error).

    Raises:
        ValueError: unknown policy name.
    """
    policy = get_policy(policy_name)
    repairs = 0
    candidate = app
    if policy.multicore:
        candidate, repairs = repair_app(app, num_cores)
    base = dict(app=app.name, token=token, family=family,
                policy=policy_name, num_cores=num_cores)
    obs.add("gen.points")
    if repairs:
        obs.add("gen.repairs", repairs)
    try:
        plan = policy.map(candidate, num_cores)
    except MappingError as exc:
        obs.add(f"gen.status.{STATUS_REJECTED}")
        return ExplorationRecord(
            **base, status=STATUS_REJECTED, repairs=repairs,
            error=str(exc))
    obs.add(
        f"gen.status.{STATUS_REPAIRED if repairs else STATUS_OK}"
    )
    mode = Mode.MULTI_CORE if policy.multicore else Mode.SINGLE_CORE
    has_triggered = any(phase.trigger is Trigger.ON_ABNORMAL
                        for phase in candidate.phases)
    ratio = EXPLORE_ABNORMAL_RATIO if has_triggered else 0.0
    schedule = uniform_schedule(duration_s, candidate.fs,
                                abnormal_ratio=ratio)
    result = simulate(candidate, mode, schedule, duration_s=duration_s,
                      num_cores=num_cores, mapping=plan)
    activity = result.activity
    provisioned = activity.cycles * activity.cores_on
    return ExplorationRecord(
        **base,
        status=STATUS_REPAIRED if repairs else STATUS_OK,
        repairs=repairs,
        required_mhz=result.required_mhz,
        clock_mhz=result.operating_point.frequency_mhz,
        voltage=result.operating_point.voltage,
        power_uw=result.power.total_uw,
        duty_cycle=activity.core_active_cycles / provisioned
        if provisioned > 0 else 0.0,
        sync_overhead=result.runtime_overhead,
        code_overhead=result.code_overhead,
        active_cores=plan.active_cores,
        im_banks=len(plan.im_banks_used),
        simulated_s=duration_s,
    )


def screen_policies(app: AppSpec,
                    policies: tuple[str, ...] = ("paper", "balanced"),
                    num_cores: int = 8,
                    duration_s: float = EXPLORE_DURATION_S,
                    top_k: int = 1, token: str = "",
                    family: str = "") -> list[ExplorationRecord]:
    """Screen one app's policy candidates; simulate only the best.

    Every multicore policy's placement is scored by the vectorised
    analytic model (:mod:`repro.oracle`) in one batched call; only
    the ``top_k`` analytically-cheapest candidates pay a full
    behavioural simulation.  The rest come back with analytic
    figures of merit under ``status == "screened"`` (and
    ``simulated_s == 0``).  Single-core policies cannot be screened
    (the model covers the multicore engine) and fall through to the
    exact :func:`evaluate_app`.

    Args:
        app: the application to place.
        policies: mapping-policy names to rank.
        num_cores: provisioned platform width.
        duration_s: simulated seconds per *exact* point.
        top_k: candidates promoted to exact simulation.
        token: regeneration token recorded in the records.
        family: topology family recorded in the records.

    Returns:
        One record per policy, in ``policies`` order.

    Raises:
        ValueError: unknown policy or ``top_k`` < 1.
    """
    from ..oracle import AnalyticModel, keep_top_k
    from ..search.space import candidate_from_plan

    if top_k < 1:
        raise ValueError(f"top-k must be >= 1, got {top_k}")
    repaired, repairs = repair_app(app, num_cores)
    base = dict(app=app.name, token=token, family=family,
                num_cores=num_cores)
    records: dict[str, ExplorationRecord] = {}
    feasible: list[tuple[str, object]] = []
    for name in policies:
        policy = get_policy(name)
        if not policy.multicore:
            records[name] = evaluate_app(
                app, name, num_cores=num_cores, duration_s=duration_s,
                token=token, family=family)
            continue
        try:
            plan = policy.map(repaired, num_cores)
        except MappingError as exc:
            obs.add("gen.points")
            obs.add(f"gen.status.{STATUS_REJECTED}")
            records[name] = ExplorationRecord(
                **base, policy=name, status=STATUS_REJECTED,
                repairs=repairs, error=str(exc))
            continue
        feasible.append((name, candidate_from_plan(plan)))
    if feasible:
        model = AnalyticModel(repaired, num_cores=num_cores,
                              kind="power", duration_s=duration_s)
        scores = model.score([candidate for _, candidate in feasible])
        obs.add("gen.screen.scored", len(feasible))
        kept = set(keep_top_k(scores.cost, top_k))
        for index, (name, _) in enumerate(feasible):
            if index in kept:
                records[name] = evaluate_app(
                    app, name, num_cores=num_cores,
                    duration_s=duration_s, token=token, family=family)
                continue
            metrics = scores.metrics(index)
            obs.add("gen.points")
            obs.add(f"gen.status.{STATUS_SCREENED}")
            records[name] = ExplorationRecord(
                **base, policy=name, status=STATUS_SCREENED,
                repairs=repairs,
                required_mhz=metrics["required_mhz"],
                clock_mhz=metrics["clock_mhz"],
                voltage=metrics["voltage"],
                power_uw=metrics["power_uw"],
                duty_cycle=metrics["duty_cycle"],
                sync_overhead=metrics["sync_overhead"],
                code_overhead=metrics["code_overhead"],
                active_cores=metrics["active_cores"],
                im_banks=metrics["im_banks"],
                simulated_s=0.0)
    return [records[name] for name in policies]


def screen_tokens(tokens: list[str],
                  policies: tuple[str, ...] = ("paper", "balanced"),
                  num_cores: int = 8,
                  duration_s: float = EXPLORE_DURATION_S,
                  top_k: int = 1) -> list[ExplorationRecord]:
    """:func:`screen_policies` over a token suite, app-major order.

    Raises:
        ValueError: unknown policy, malformed token, or bad top-k.
    """
    for name in policies:
        get_policy(name)  # fail fast before any scoring
    records: list[ExplorationRecord] = []
    for token in tokens:
        family, _, _, _ = parse_app_token(token)
        app = app_from_token(token)
        records.extend(screen_policies(
            app, policies, num_cores=num_cores, duration_s=duration_s,
            top_k=top_k, token=token, family=family))
    return records


def policy_rates(records: list[ExplorationRecord]
                 ) -> dict[str, dict[str, float | int]]:
    """Per-policy placement-outcome rates — the standing metric.

    Adversarial generated populations (deep chains, wide fan-in,
    section-heavy draws) are exactly where placement heuristics
    diverge, so every exploration reports how often each policy had
    to repair (trim replicas) or outright reject, alongside the
    absolute counts.

    Returns:
        ``{policy: {"points", "ok", "repaired", "rejected",
        "screened", "replicas_trimmed", "repair_rate",
        "reject_rate"}}`` in first-seen policy order.  Rates are
        fractions of the policy's points (0.0 when the policy saw no
        points).
    """
    per: dict[str, dict[str, float | int]] = {}
    for record in records:
        entry = per.setdefault(record.policy, {
            "points": 0, STATUS_OK: 0, STATUS_REPAIRED: 0,
            STATUS_REJECTED: 0, STATUS_SCREENED: 0,
            "replicas_trimmed": 0})
        entry["points"] += 1
        entry[record.status] += 1
        entry["replicas_trimmed"] += record.repairs
    for entry in per.values():
        points = entry["points"]
        entry["repair_rate"] = entry[STATUS_REPAIRED] / points \
            if points else 0.0
        entry["reject_rate"] = entry[STATUS_REJECTED] / points \
            if points else 0.0
    return per


def evaluate_token(token: str, policy_name: str, num_cores: int = 8,
                   duration_s: float = EXPLORE_DURATION_S
                   ) -> ExplorationRecord:
    """Regenerate an app from its token and evaluate it.

    Raises:
        ValueError: malformed token or unknown policy.
    """
    family, _, _, _ = parse_app_token(token)
    app = app_from_token(token)
    return evaluate_app(app, policy_name, num_cores=num_cores,
                        duration_s=duration_s, token=token, family=family)


def explore(tokens: list[str],
            policies: tuple[str, ...] = ("paper", "balanced"),
            num_cores: int = 8,
            duration_s: float = EXPLORE_DURATION_S
            ) -> list[ExplorationRecord]:
    """Evaluate every (token, policy) pair, app-major order.

    Args:
        tokens: regeneration tokens of the apps to explore.
        policies: mapping-policy names to apply to each app.
        num_cores: provisioned platform width.
        duration_s: simulated seconds per point.

    Returns:
        ``len(tokens) * len(policies)`` records, apps outermost.

    Raises:
        ValueError: unknown policy or malformed token.
    """
    for name in policies:
        get_policy(name)  # fail fast before any simulation
    return [evaluate_token(token, name, num_cores=num_cores,
                           duration_s=duration_s)
            for token in tokens
            for name in policies]


__all__ = [
    "EXPLORE_ABNORMAL_RATIO",
    "EXPLORE_DURATION_S",
    "ExplorationRecord",
    "POLICIES",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_REPAIRED",
    "STATUS_SCREENED",
    "evaluate_app",
    "evaluate_token",
    "explore",
    "policy_rates",
    "repair_app",
    "screen_policies",
    "screen_tokens",
]
