"""Synthetic workload generation + mapping-policy exploration.

The paper validates its synchronization methodology on three
hand-calibrated ECG applications; this package widens that to an
unbounded, *seeded* population: :mod:`repro.gen.topology` draws task
graphs from five structural families, :mod:`repro.gen.generator`
fleshes them into valid :class:`~repro.apps.phases.AppSpec` instances
with workload knobs anchored to the kernel characterisation, and
:mod:`repro.gen.explorer` runs each one through the mapping policies
of :mod:`repro.gen.policies` (the paper's placement, the single-core
baseline, and two new heuristics) on the behavioural simulator.

Generation is a pure function of ``(family, seed, index)`` — byte
identical across processes and ``PYTHONHASHSEED`` values — so
generated apps ride through the sweep cache, the CLI and the
benchmark harness exactly like the paper's fixed benchmarks.
"""

from .explorer import (
    EXPLORE_DURATION_S,
    ExplorationRecord,
    evaluate_app,
    evaluate_token,
    explore,
    repair_app,
)
from .generator import (
    GEN_SCHEMA,
    app_fingerprint,
    app_from_mapping,
    app_from_token,
    app_to_mapping,
    app_token,
    generate_app,
    generate_suite,
    parse_app_token,
    suite_tokens,
)
from .policies import (
    POLICIES,
    MappingPolicy,
    critical_path_weights,
    get_policy,
    map_balanced,
    map_critical_path,
)
from .topology import (
    FAMILIES,
    FAMILY_ORDER,
    Shape,
    StageSpec,
    Topology,
)

__all__ = [
    "EXPLORE_DURATION_S",
    "ExplorationRecord",
    "FAMILIES",
    "FAMILY_ORDER",
    "GEN_SCHEMA",
    "MappingPolicy",
    "POLICIES",
    "Shape",
    "StageSpec",
    "Topology",
    "app_fingerprint",
    "app_from_mapping",
    "app_from_token",
    "app_to_mapping",
    "app_token",
    "critical_path_weights",
    "evaluate_app",
    "evaluate_token",
    "explore",
    "generate_app",
    "generate_suite",
    "get_policy",
    "map_balanced",
    "map_critical_path",
    "parse_app_token",
    "repair_app",
    "suite_tokens",
]
