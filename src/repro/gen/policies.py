"""Mapping policies the explorer compares.

The paper prescribes one multi-core placement (Sec. III-B step 3,
:func:`repro.apps.mapping.map_multicore`): every distinct non-head
code section gets a *dedicated* IM bank.  That maximises conflict
freedom but burns leakage on sparsely filled banks and rejects any
application with more sections than banks.  The generated-workload
space is exactly where those trade-offs bite, so two additional
heuristics join the paper policy and the single-core baseline:

* ``balanced`` — load-levelled packing: sections sorted by size land
  in the *least-filled* bank that fits, evening out IM pressure.
  Maps section-heavy apps the paper policy rejects (banks may be
  shared when they must be) while keeping per-bank contention low.
* ``critical-path`` — phases are placed in order of their critical
  path (cycles along the longest downstream producer-consumer chain):
  the heaviest chain's head shares bank 0 with the runtime (the
  broadcast-friendly slot), subsequent sections take dedicated banks
  while they last, then fall back to best-fit instead of failing.
* ``search-greedy`` / ``search-anneal`` — the stochastic placement
  search of :mod:`repro.search`, seeded per app from its content
  fingerprint so the family stays a pure (and cacheable) function of
  the application; reports how much headroom the fixed heuristics
  leave on the table.

Every policy is a pure ``(app, num_cores, geometry) -> MappingPlan``
function; single-core is the odd one out (it ignores ``num_cores``
and pairs with the baseline execution mode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..apps.mapping import (
    CoreAssignment,
    MappingError,
    MappingPlan,
    distinct_sections,
    dm_footprint,
    map_multicore,
    map_singlecore,
    sync_points,
)
from ..apps.phases import AppSpec
from ..isa.layout import ImGeometry
from .generator import app_fingerprint, derive_seed

#: Signature every mapper implements.
Mapper = Callable[[AppSpec, int, "ImGeometry | None"], MappingPlan]


@dataclass(frozen=True)
class MappingPolicy:
    """One placement heuristic the explorer can apply.

    Attributes:
        name: registry key.
        multicore: pairs with the multi-core execution mode (False
            for the single-core baseline).
        mapper: the placement function.
        description: one-line summary for reports.
    """

    name: str
    multicore: bool
    mapper: Mapper
    description: str

    def map(self, app: AppSpec, num_cores: int = 8,
            geometry: ImGeometry | None = None) -> MappingPlan:
        """Apply the policy.

        Args:
            app: the application to place.
            num_cores: provisioned platform width (ignored by the
                single-core baseline).
            geometry: IM geometry (platform default when omitted).

        Returns:
            The placement as a simulator-ready mapping plan.

        Raises:
            repro.apps.mapping.MappingError: the app does not fit.
        """
        return self.mapper(app, num_cores, geometry)


def _replica_assignments(app: AppSpec, num_cores: int,
                         phase_order: list[int] | None = None
                         ) -> list[CoreAssignment]:
    """One core per replica, phases placed in ``phase_order``."""
    order = phase_order if phase_order is not None \
        else list(range(len(app.phases)))
    assignments: list[CoreAssignment] = []
    next_core = 0
    for phase_index in order:
        phase = app.phases[phase_index]
        for replica in range(phase.replicas):
            if next_core >= num_cores:
                raise MappingError(
                    f"{app.name} needs more than {num_cores} cores")
            assignments.append(CoreAssignment(
                core=next_core, phase=phase.name, replica=replica))
            next_core += 1
    return assignments


def _best_fit_bank(bank_fill: list[int], words: int,
                   capacity: int) -> int | None:
    """Least-filled bank that still fits ``words`` (ties: lowest id)."""
    best: int | None = None
    for bank, fill in enumerate(bank_fill):
        if fill + words > capacity:
            continue
        if best is None or fill < bank_fill[best]:
            best = bank
    return best


def map_balanced(app: AppSpec, num_cores: int = 8,
                 geometry: ImGeometry | None = None) -> MappingPlan:
    """Load-levelled IM packing with one core per replica."""
    app.validate()
    geom = geometry or ImGeometry()
    assignments = _replica_assignments(app, num_cores)
    bank_fill = [app.runtime_words] + [0] * (geom.banks - 1)
    section_banks: dict[str, int] = {}
    ordered = sorted(distinct_sections(app),
                     key=lambda section: (-section.words, section.name))
    for section in ordered:
        bank = _best_fit_bank(bank_fill, section.words,
                              geom.words_per_bank)
        if bank is None:
            raise MappingError(
                f"{app.name}: section {section.name!r} does not fit IM")
        bank_fill[bank] += section.words
        section_banks[section.name] = bank
    return MappingPlan(
        app=app, multicore=True, assignments=assignments,
        section_banks=section_banks, sync_points_used=sync_points(app),
        dm_footprint_words=dm_footprint(app))


def critical_path_weights(app: AppSpec) -> dict[str, float]:
    """Per-phase critical-path weight over the channel DAG.

    The weight of a phase is its own cycle intensity plus the largest
    weight among its consumers — the classic longest-downstream-chain
    metric list schedulers prioritise by.
    """
    consumers: dict[str, list[str]] = {phase.name: []
                                       for phase in app.phases}
    for channel in app.channels:
        for producer in channel.producers:
            consumers[producer].append(channel.consumer)

    weights: dict[str, float] = {}

    def weight(name: str, trail: tuple[str, ...] = ()) -> float:
        if name in weights:
            return weights[name]
        if name in trail:
            raise MappingError(
                f"{app.name}: channel cycle through {name!r}")
        downstream = [weight(consumer, trail + (name,))
                      for consumer in consumers[name]]
        phase = app.phase(name)
        weights[name] = phase.cycles_per_sample + \
            (max(downstream) if downstream else 0.0)
        return weights[name]

    for phase in app.phases:
        weight(phase.name)
    return weights


def map_critical_path(app: AppSpec, num_cores: int = 8,
                      geometry: ImGeometry | None = None) -> MappingPlan:
    """Critical-path-first placement with graceful bank fallback."""
    app.validate()
    geom = geometry or ImGeometry()
    weights = critical_path_weights(app)
    order = sorted(
        range(len(app.phases)),
        key=lambda index: (-weights[app.phases[index].name], index))
    assignments = _replica_assignments(app, num_cores, phase_order=order)

    bank_fill = [app.runtime_words] + [0] * (geom.banks - 1)
    section_banks: dict[str, int] = {}
    next_bank = 0
    for position, phase_index in enumerate(order):
        for section in app.phases[phase_index].sections:
            if section.name in section_banks:
                continue
            if position == 0:
                bank: int | None = 0  # hottest chain shares bank 0
            elif next_bank + 1 < geom.banks:
                next_bank += 1
                bank = next_bank
            else:  # dedicated banks exhausted: pack instead of failing
                bank = _best_fit_bank(bank_fill, section.words,
                                      geom.words_per_bank)
            if bank is None or (bank_fill[bank] + section.words
                                > geom.words_per_bank):
                bank = _best_fit_bank(bank_fill, section.words,
                                      geom.words_per_bank)
            if bank is None:
                raise MappingError(
                    f"{app.name}: section {section.name!r} does not "
                    f"fit IM")
            bank_fill[bank] += section.words
            section_banks[section.name] = bank
    return MappingPlan(
        app=app, multicore=True, assignments=assignments,
        section_banks=section_banks, sync_points_used=sync_points(app),
        dm_footprint_words=dm_footprint(app))


#: Proposal budget of the search-backed policy family (kept modest:
#: the explorer pays one full-length simulation per record on top of
#: the oracle calls the search itself makes).
SEARCH_POLICY_ITERATIONS = 24

#: Simulated seconds per oracle call inside the policy family.
SEARCH_POLICY_DURATION_S = 1.0


def _search_mapper(algorithm: str) -> Mapper:
    """A mapper that searches for its placement (seeded per app)."""

    def mapper(app: AppSpec, num_cores: int = 8,
               geometry: ImGeometry | None = None) -> MappingPlan:
        # Deferred import: repro.search builds on this module.
        from ..search import search_mapping

        seed = derive_seed("search-policy", algorithm,
                           app_fingerprint(app), num_cores)
        outcome = search_mapping(
            app, num_cores=num_cores, geometry=geometry,
            algorithm=algorithm,
            iterations=SEARCH_POLICY_ITERATIONS,
            duration_s=SEARCH_POLICY_DURATION_S, seed=seed)
        if outcome.best_plan is None:
            raise MappingError(
                outcome.error
                or f"{app.name}: no feasible placement found")
        return outcome.best_plan

    return mapper


def _paper_mapper(app: AppSpec, num_cores: int,
                  geometry: ImGeometry | None) -> MappingPlan:
    return map_multicore(app, num_cores, geometry)


def _singlecore_mapper(app: AppSpec, num_cores: int,
                       geometry: ImGeometry | None) -> MappingPlan:
    return map_singlecore(app, geometry)


#: Policy registry, in report order.
POLICIES: dict[str, MappingPolicy] = {
    "paper": MappingPolicy(
        name="paper", multicore=True, mapper=_paper_mapper,
        description="the paper's dedicated-bank multi-core placement"),
    "single-core": MappingPolicy(
        name="single-core", multicore=False, mapper=_singlecore_mapper,
        description="single-core baseline (first-fit packed IM)"),
    "balanced": MappingPolicy(
        name="balanced", multicore=True, mapper=map_balanced,
        description="load-levelled IM packing (least-filled bank)"),
    "critical-path": MappingPolicy(
        name="critical-path", multicore=True, mapper=map_critical_path,
        description="critical-path-first placement with bank fallback"),
    "search-greedy": MappingPolicy(
        name="search-greedy", multicore=True,
        mapper=_search_mapper("greedy"),
        description="greedy hill-climb over section/core placements"),
    "search-anneal": MappingPolicy(
        name="search-anneal", multicore=True,
        mapper=_search_mapper("anneal"),
        description="simulated-annealing placement search"),
}


def get_policy(name: str) -> MappingPolicy:
    """Look up a mapping policy.

    Raises:
        ValueError: unknown policy name.
    """
    try:
        return POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown mapping policy {name!r}; choose from "
            f"{list(POLICIES)}"
        ) from None
