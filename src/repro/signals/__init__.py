"""Signal substrate (system S14): synthetic ECG, record containers."""

from .ecg import (
    EcgConfig,
    NoiseProfile,
    cse_like_record,
    rp_class_record,
    synthesize_ecg,
)
from .records import BeatAnnotation, BeatLabel, EcgRecord

__all__ = [
    "BeatAnnotation",
    "BeatLabel",
    "EcgConfig",
    "EcgRecord",
    "NoiseProfile",
    "cse_like_record",
    "rp_class_record",
    "synthesize_ecg",
]
