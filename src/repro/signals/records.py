"""Record containers for multi-lead ECG signals.

The paper evaluates on "standard multi-lead ECG inputs ... from a
healthy subject of the CSE Database" (Sec. IV-D).  The CSE database is
proprietary, so this reproduction substitutes synthetic records (see
:mod:`repro.signals.ecg` and DESIGN.md's substitution table); the
containers below are database-agnostic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class BeatLabel(enum.Enum):
    """Clinical class of one heartbeat."""

    NORMAL = "normal"
    PVC = "pvc"  # premature ventricular contraction (pathological)


@dataclass(frozen=True)
class BeatAnnotation:
    """Ground-truth annotation of one beat.

    Attributes:
        sample: R-peak position in samples.
        label: beat class.
    """

    sample: int
    label: BeatLabel

    @property
    def is_pathological(self) -> bool:
        """True for beats that must trigger the RP-CLASS delineation."""
        return self.label is not BeatLabel.NORMAL


@dataclass
class EcgRecord:
    """A multi-lead ECG recording with ground-truth annotations.

    Attributes:
        fs: sampling frequency in Hz.
        leads: per-lead sample arrays (int16-ranged ADC counts).
        annotations: ground-truth beats, ascending by sample index.
        name: identifier of the record.
    """

    fs: float
    leads: list[np.ndarray]
    annotations: list[BeatAnnotation] = field(default_factory=list)
    name: str = "synthetic"

    @property
    def num_leads(self) -> int:
        """Number of leads in the record."""
        return len(self.leads)

    @property
    def num_samples(self) -> int:
        """Samples per lead."""
        return len(self.leads[0]) if self.leads else 0

    @property
    def duration_s(self) -> float:
        """Record duration in seconds."""
        return self.num_samples / self.fs

    def pathological_ratio(self) -> float:
        """Fraction of annotated beats that are pathological."""
        if not self.annotations:
            return 0.0
        abnormal = sum(1 for beat in self.annotations
                       if beat.is_pathological)
        return abnormal / len(self.annotations)

    def lead(self, index: int) -> np.ndarray:
        """Samples of one lead."""
        return self.leads[index]

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent lead lengths/annotations."""
        lengths = {len(lead) for lead in self.leads}
        if len(lengths) > 1:
            raise ValueError("all leads must have the same length")
        for beat in self.annotations:
            if not 0 <= beat.sample < self.num_samples:
                raise ValueError(
                    f"annotation at {beat.sample} outside the record")
        positions = [beat.sample for beat in self.annotations]
        if positions != sorted(positions):
            raise ValueError("annotations must be sorted by sample")
