"""Synthetic multi-lead ECG generator (CSE-database substitute).

The paper uses a multi-lead record from the CSE database [23] and, for
RP-CLASS, inserts 20 % pathological beats (Sec. IV-D).  The CSE
database is not redistributable, so this module synthesises records
with the properties the evaluation actually depends on:

* multi-lead morphology (P-QRS-T as a sum of Gaussian bumps, the
  standard ECGSYN-style beat model, projected onto each lead with a
  per-lead gain/polarity);
* physiological rhythm (configurable heart rate with small RR jitter);
* **pathological (PVC-like) beats** at a configurable ratio: widened,
  high-amplitude QRS, discordant T wave and absent P wave, optionally
  premature — morphologically separable from normal beats, which is
  what the random-projection classifier needs;
* realistic contamination (baseline wander, powerline hum, wideband
  muscle noise) for the morphological filter to remove;
* integer ADC counts in a 16-bit range, ready for the platform's
  memory-mapped ADC registers.

Pathological beats are placed **uniformly** ("the abnormal heartbeats
have been distributed uniformly", Sec. V-C) or randomly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .records import BeatAnnotation, BeatLabel, EcgRecord

#: Gaussian bump parameters of a normal beat: (delay s, width s, amplitude).
_NORMAL_WAVES: tuple[tuple[float, float, float], ...] = (
    (-0.210, 0.035, 0.12),   # P
    (-0.035, 0.012, -0.14),  # Q
    (0.000, 0.016, 1.00),    # R
    (0.035, 0.014, -0.22),   # S
    (0.230, 0.070, 0.28),    # T
)

#: PVC-like pathological beat: wide/tall QRS, no P, discordant T.
_PVC_WAVES: tuple[tuple[float, float, float], ...] = (
    (-0.075, 0.024, -0.35),  # deep wide Q
    (0.000, 0.038, 1.55),    # wide tall R
    (0.085, 0.027, -0.50),   # deep wide S
    (0.300, 0.085, -0.40),   # inverted T
)

#: Per-lead projection gains of the beat template (3 pseudo-leads).
_LEAD_GAINS: tuple[float, ...] = (1.00, 0.72, -0.55, 0.85, -0.40, 0.60)


@dataclass(frozen=True)
class NoiseProfile:
    """Contamination levels relative to the R amplitude (1.0).

    Attributes:
        baseline_wander: amplitude of the respiratory drift (~0.3 Hz).
        powerline: amplitude of the mains interference.
        powerline_hz: mains frequency (50 Hz in the paper's region).
        muscle: standard deviation of the wideband noise.
    """

    baseline_wander: float = 0.18
    powerline: float = 0.04
    powerline_hz: float = 50.0
    muscle: float = 0.015


@dataclass(frozen=True)
class EcgConfig:
    """Generator configuration.

    Attributes:
        duration_s: record length in seconds.
        fs: sampling frequency (Hz).
        num_leads: leads to synthesise (up to 6).
        heart_rate_bpm: mean heart rate.
        rr_jitter: relative RR-interval standard deviation.
        pathological_ratio: fraction of beats that are PVC-like.
        uniform_pathology: place abnormal beats uniformly (paper's
            Fig. 7 setting) instead of randomly.
        premature_fraction: how much earlier a PVC arrives, as a
            fraction of the RR interval.
        adc_counts_per_mv: ADC gain (R peak ~ 1 mV).
        noise: contamination profile.
        seed: RNG seed (generation is fully reproducible).
    """

    duration_s: float = 60.0
    fs: float = 250.0
    num_leads: int = 3
    heart_rate_bpm: float = 72.0
    rr_jitter: float = 0.03
    pathological_ratio: float = 0.0
    uniform_pathology: bool = True
    premature_fraction: float = 0.12
    adc_counts_per_mv: float = 2000.0
    noise: NoiseProfile = field(default_factory=NoiseProfile)
    seed: int = 2014  # the paper's year, for luck and reproducibility


def _beat_template(waves, fs: float, width_scale: float = 1.0) -> np.ndarray:
    """Render one beat as a sampled sum of Gaussians, centred on R."""
    half_span = 0.45  # seconds on each side of the R peak
    t = np.arange(-half_span, half_span, 1.0 / fs)
    beat = np.zeros_like(t)
    for delay, width, amplitude in waves:
        sigma = width * width_scale
        beat += amplitude * np.exp(-0.5 * ((t - delay) / sigma) ** 2)
    return beat


def _place_pathological(num_beats: int, ratio: float, uniform: bool,
                        rng: np.random.Generator) -> np.ndarray:
    """Boolean mask of pathological beats."""
    mask = np.zeros(num_beats, dtype=bool)
    abnormal = int(round(num_beats * ratio))
    if abnormal <= 0:
        return mask
    if abnormal >= num_beats:
        mask[:] = True
        return mask
    if uniform:
        positions = np.linspace(0, num_beats - 1, abnormal + 1,
                                endpoint=False)[1:]
        mask[np.round(positions).astype(int)] = True
        # Rounding can merge two positions; top up randomly if short.
        deficit = abnormal - int(mask.sum())
        if deficit > 0:
            candidates = np.flatnonzero(~mask)
            mask[rng.choice(candidates, size=deficit, replace=False)] = True
    else:
        mask[rng.choice(num_beats, size=abnormal, replace=False)] = True
    return mask


def synthesize_ecg(config: EcgConfig | None = None) -> EcgRecord:
    """Generate a synthetic annotated multi-lead ECG record."""
    cfg = config or EcgConfig()
    if not 1 <= cfg.num_leads <= len(_LEAD_GAINS):
        raise ValueError(f"num_leads must be in [1, {len(_LEAD_GAINS)}]")
    if not 0.0 <= cfg.pathological_ratio <= 1.0:
        raise ValueError("pathological_ratio must be within [0, 1]")
    rng = np.random.default_rng(cfg.seed)
    num_samples = int(round(cfg.duration_s * cfg.fs))
    clean = np.zeros(num_samples)

    mean_rr = 60.0 / cfg.heart_rate_bpm
    # Schedule beats (R-peak times), with jitter and PVC prematurity.
    estimated = int(cfg.duration_s / mean_rr) + 3
    mask = _place_pathological(estimated, cfg.pathological_ratio,
                               cfg.uniform_pathology, rng)
    beat_times: list[tuple[float, bool]] = []
    t = mean_rr * 0.6
    for index in range(estimated):
        rr = mean_rr * (1.0 + cfg.rr_jitter * rng.standard_normal())
        is_pvc = bool(mask[index])
        arrival = t
        if is_pvc:
            arrival -= cfg.premature_fraction * mean_rr
        if arrival >= cfg.duration_s - 0.5:
            break
        beat_times.append((arrival, is_pvc))
        t += rr

    normal = _beat_template(_NORMAL_WAVES, cfg.fs)
    pvc = _beat_template(_PVC_WAVES, cfg.fs, width_scale=1.25)
    half = len(normal) // 2

    annotations: list[BeatAnnotation] = []
    for arrival, is_pvc in beat_times:
        center = int(round(arrival * cfg.fs))
        template = pvc if is_pvc else normal
        start = center - half
        lo = max(0, start)
        hi = min(num_samples, start + len(template))
        clean[lo:hi] += template[lo - start:hi - start]
        annotations.append(BeatAnnotation(
            sample=center,
            label=BeatLabel.PVC if is_pvc else BeatLabel.NORMAL))

    time = np.arange(num_samples) / cfg.fs
    leads: list[np.ndarray] = []
    for lead_index in range(cfg.num_leads):
        gain = _LEAD_GAINS[lead_index]
        signal = clean * gain
        noise = cfg.noise
        # Independent contamination per lead.
        wander = noise.baseline_wander * (
            np.sin(2 * np.pi * 0.28 * time + rng.uniform(0, 2 * np.pi))
            + 0.5 * np.sin(2 * np.pi * 0.11 * time
                           + rng.uniform(0, 2 * np.pi)))
        hum = noise.powerline * np.sin(
            2 * np.pi * noise.powerline_hz * time
            + rng.uniform(0, 2 * np.pi))
        muscle = noise.muscle * rng.standard_normal(num_samples)
        counts = (signal + wander + hum + muscle) * cfg.adc_counts_per_mv
        leads.append(np.clip(np.round(counts), -32768, 32767)
                     .astype(np.int16))

    record = EcgRecord(fs=cfg.fs, leads=leads, annotations=annotations,
                       name=f"synthetic-{cfg.seed}")
    record.validate()
    return record


def cse_like_record(duration_s: float = 60.0, num_leads: int = 3,
                    seed: int = 2014) -> EcgRecord:
    """Healthy multi-lead record, the stand-in for the CSE subject.

    Used by the 3L-MF and 3L-MMD experiments (Sec. IV-D).
    """
    return synthesize_ecg(EcgConfig(duration_s=duration_s,
                                    num_leads=num_leads, seed=seed))


def rp_class_record(duration_s: float = 60.0,
                    pathological_ratio: float = 0.20,
                    seed: int = 2014) -> EcgRecord:
    """Single-seed record with inserted pathological beats.

    Defaults to the paper's RP-CLASS setting: "20 % of pathological
    beats were inserted, representing the average presence of
    abnormalities in the CSE database" (Sec. IV-D).  Three leads are
    generated because the delineation chain needs them when a beat is
    flagged abnormal.
    """
    return synthesize_ecg(EcgConfig(duration_s=duration_s, num_leads=3,
                                    pathological_ratio=pathological_ratio,
                                    seed=seed))
