"""Morphological filtering of ECG signals (the 3L-MF benchmark).

Implements the conditioning stage of Sun et al., "ECG Signal
Conditioning by Morphological Filtering" [21], the paper's first
benchmark: baseline-wander removal by an opening-closing pair with long
structuring elements, followed by noise suppression averaging an
opening and a closing with short elements.

All operators use flat (constant-zero) structuring elements, so
erosion/dilation reduce to sliding-window minimum/maximum — exactly the
comparison-dominated inner loops that make morphological filtering a
good fit for tiny integer cores, and whose data-dependent branches are
what the paper's lock-step recovery mechanism re-synchronises.

The implementation is numpy-vectorised for simulation speed; the
embedded cost model (ops per sample) is exposed via
:meth:`MorphologicalFilter.ops_per_sample` and mirrors the naive
streaming implementation an MCU would run (k-1 comparisons plus k loads
per output sample for a k-wide window).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _sliding_extreme(signal: np.ndarray, size: int, take_max: bool
                     ) -> np.ndarray:
    """Sliding-window min/max with edge replication, output same length.

    Only odd sizes are accepted: a symmetric flat structuring element
    is its own reflection, which keeps erosion/dilation an adjunction
    and therefore opening anti-extensive and closing extensive (the
    properties the filter's correctness rests on).
    """
    if size < 1:
        raise ValueError("structuring element size must be >= 1")
    if size % 2 == 0:
        raise ValueError("structuring element size must be odd "
                         "(symmetric flat element)")
    if size == 1:
        return signal.astype(np.int32, copy=True)
    samples = np.asarray(signal, dtype=np.int32)
    left = size // 2
    right = size - 1 - left
    padded = np.concatenate([
        np.full(left, samples[0], dtype=np.int32),
        samples,
        np.full(right, samples[-1], dtype=np.int32),
    ])
    windows = np.lib.stride_tricks.sliding_window_view(padded, size)
    return windows.max(axis=1) if take_max else windows.min(axis=1)


def _make_odd(size: int) -> int:
    """Round up to the next odd size (symmetric structuring element)."""
    return size if size % 2 else size + 1


def erode(signal: np.ndarray, size: int) -> np.ndarray:
    """Flat erosion: sliding-window minimum of width ``size``."""
    return _sliding_extreme(signal, size, take_max=False)


def dilate(signal: np.ndarray, size: int) -> np.ndarray:
    """Flat dilation: sliding-window maximum of width ``size``."""
    return _sliding_extreme(signal, size, take_max=True)


def opening(signal: np.ndarray, size: int) -> np.ndarray:
    """Morphological opening (erosion then dilation)."""
    return dilate(erode(signal, size), size)


def closing(signal: np.ndarray, size: int) -> np.ndarray:
    """Morphological closing (dilation then erosion)."""
    return erode(dilate(signal, size), size)


@dataclass(frozen=True)
class MfParams:
    """Structuring-element sizing of the conditioning filter.

    Following [21], the baseline elements must be longer than the
    widest wave to remove drift without clipping the QRS complex:
    ``baseline_open_s`` ~ 0.2 s and ``baseline_close_s`` ~ 1.5x that.
    The noise elements are a few samples wide.

    Attributes:
        baseline_open_s: opening element length in seconds.
        baseline_close_s: closing element length in seconds.
        noise_element: short element length in samples (odd).
    """

    baseline_open_s: float = 0.20
    baseline_close_s: float = 0.30
    noise_element: int = 5


class MorphologicalFilter:
    """Single-lead ECG conditioning filter (one 3L-MF phase).

    Args:
        fs: sampling frequency in Hz.
        params: structuring-element sizing.
    """

    def __init__(self, fs: float, params: MfParams | None = None) -> None:
        self.fs = fs
        self.params = params or MfParams()
        self.open_size = _make_odd(
            max(3, int(round(self.params.baseline_open_s * fs))))
        self.close_size = _make_odd(
            max(3, int(round(self.params.baseline_close_s * fs))))
        if self.params.noise_element < 1:
            raise ValueError("noise element must be positive")
        self.noise_size = _make_odd(self.params.noise_element)

    def baseline(self, lead: np.ndarray) -> np.ndarray:
        """Estimated baseline drift of the lead ([21], eq. 1)."""
        return closing(opening(lead, self.open_size), self.close_size)

    def process(self, lead: np.ndarray) -> np.ndarray:
        """Return the conditioned lead (drift removed, noise suppressed)."""
        corrected = np.asarray(lead, dtype=np.int32) - self.baseline(lead)
        denoised = (opening(corrected, self.noise_size).astype(np.int64)
                    + closing(corrected, self.noise_size)) // 2
        return denoised.astype(np.int32)

    def ops_per_sample(self) -> int:
        """Embedded operation count per output sample.

        A streaming erosion/dilation of width ``k`` costs ``k`` loads
        and ``k - 1`` comparisons per sample on the 16-bit core (the
        MCU recomputes each window; no van-Herk optimisation at these
        memory budgets).  The filter runs opening+closing at the two
        baseline widths plus the two short noise passes, then a
        subtract and an average.
        """
        def pass_ops(size: int) -> int:
            return 2 * size - 1  # k loads + (k-1) compares

        baseline_ops = 2 * pass_ops(self.open_size) \
            + 2 * pass_ops(self.close_size)
        noise_ops = 4 * pass_ops(self.noise_size)
        return baseline_ops + noise_ops + 4  # subtract + add + shift + store


def qrs_preserving_error(clean: np.ndarray, filtered: np.ndarray,
                         r_peaks: list[int], fs: float,
                         window_s: float = 0.05) -> float:
    """RMS error around R peaks, normalised to the R amplitude.

    Validation metric: conditioning must remove drift *without*
    distorting the QRS complexes the downstream stages analyse.
    """
    if not r_peaks:
        return 0.0
    half = int(window_s * fs)
    errors = []
    amplitude = max(1.0, float(np.percentile(np.abs(clean), 99)))
    for peak in r_peaks:
        lo = max(0, peak - half)
        hi = min(len(clean), peak + half)
        segment_error = np.asarray(clean[lo:hi], dtype=float) \
            - np.asarray(filtered[lo:hi], dtype=float)
        errors.append(np.sqrt(np.mean(segment_error ** 2)))
    return float(np.mean(errors)) / amplitude
