"""Block-wise (streaming) morphological filtering.

A WBSN never sees the whole recording: samples arrive from the ADC and
must be conditioned incrementally under a bounded memory budget.
:class:`StreamingMorphologicalFilter` wraps the batch filter of
:mod:`repro.dsp.morphology` with exact chunked semantics: feeding the
same record in arbitrary block sizes yields *bit-identical* output to
one batch call (property-tested), while retaining only a
``2 x reach + block`` sample window — the memory the paper's per-lead
private DM section actually holds.
"""

from __future__ import annotations

import numpy as np

from .morphology import MfParams, MorphologicalFilter


class StreamingMorphologicalFilter:
    """Incremental version of :class:`MorphologicalFilter`.

    Args:
        fs: sampling rate in Hz.
        params: structuring-element sizing (as the batch filter).

    Usage::

        stream = StreamingMorphologicalFilter(fs=250.0)
        for chunk in chunks:
            out.append(stream.push(chunk))
        out.append(stream.finish())
    """

    def __init__(self, fs: float, params: MfParams | None = None) -> None:
        self.filter = MorphologicalFilter(fs, params)
        # One output sample depends on at most `reach` samples on each
        # side: each erosion/dilation pass widens the dependency by
        # half its element, and the filter chains two passes per
        # baseline element plus two short noise passes.
        self.reach = (self.filter.open_size + self.filter.close_size
                      + 2 * self.filter.noise_size)
        self._buffer = np.zeros(0, dtype=np.int32)
        self._buffer_start = 0  # global index of _buffer[0]
        self._emitted = 0       # global count of emitted outputs
        self._finished = False

    @property
    def pending_samples(self) -> int:
        """Samples buffered but not yet emitted."""
        return self._buffer_start + len(self._buffer) - self._emitted

    @property
    def memory_words(self) -> int:
        """Current buffer footprint in 16-bit words."""
        return len(self._buffer)

    def push(self, chunk: np.ndarray) -> np.ndarray:
        """Feed a block of samples; returns newly finalised output.

        Output sample ``i`` is emitted once ``i + reach`` input samples
        exist, so its value can no longer be influenced by future
        input — which makes the chunked output exactly equal to the
        batch output.
        """
        if self._finished:
            raise RuntimeError("push after finish()")
        chunk = np.asarray(chunk, dtype=np.int32)
        self._buffer = np.concatenate([self._buffer, chunk])
        total = self._buffer_start + len(self._buffer)
        # Global indices we can finalise now.
        ready_until = total - self.reach
        if ready_until <= self._emitted:
            return np.zeros(0, dtype=np.int32)
        out = self._emit(ready_until)
        self._trim()
        return out

    def finish(self) -> np.ndarray:
        """Flush the tail (uses edge replication like the batch filter)."""
        self._finished = True
        total = self._buffer_start + len(self._buffer)
        if total == self._emitted:
            return np.zeros(0, dtype=np.int32)
        return self._emit(total)

    def _emit(self, ready_until: int) -> np.ndarray:
        """Filter the buffer and emit global range [emitted, ready_until).

        The buffer always retains ``reach`` samples of left context
        (or starts at the true record start), so the batch filter's
        edge replication matches the full-record behaviour.
        """
        filtered = self.filter.process(self._buffer)
        local_from = self._emitted - self._buffer_start
        local_to = ready_until - self._buffer_start
        out = filtered[local_from:local_to].copy()
        self._emitted = ready_until
        return out

    def _trim(self) -> None:
        """Drop samples no future output can depend on."""
        keep_from_global = max(0, self._emitted - self.reach)
        drop = keep_from_global - self._buffer_start
        if drop > 0:
            self._buffer = self._buffer[drop:]
            self._buffer_start = keep_from_global
