"""Multi-scale morphological-derivative (MMD) ECG delineation.

The 3L-MMD benchmark (Sec. IV-D, after Rincon et al. [10]): the three
conditioned leads are *aggregated* into a single stream and analysed
with multi-scale morphological derivatives to locate the fiducial
points of every heartbeat (P peak, QRS onset, R peak, QRS offset,
T peak).

The morphological derivative at scale ``s`` is

    MMD_s(f) = (f (+) g_s) + (f (-) g_s) - 2 f

with a flat structuring element ``g_s`` — a second-derivative-like
corner detector: it peaks where the waveform bends, which is exactly
where wave onsets and offsets live.  Different scales select different
waves: a narrow element follows the steep QRS edges, a wide one the
smooth P/T transitions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .beatdet import detect_r_peaks
from .morphology import _make_odd, dilate, erode


@dataclass(frozen=True)
class MmdParams:
    """Scales and search windows of the delineator (seconds).

    Attributes:
        qrs_scale_s: structuring-element width for QRS corners.
        wave_scale_s: structuring-element width for P/T corners.
        qrs_search_s: onset/offset search span around the R peak.
        boundary_fraction: |MMD| level (relative to the complex's
            maximum response) below which the waveform is considered
            isoelectric — the onset/offset boundary.
        boundary_run: consecutive sub-threshold samples required to
            accept a boundary (debouncing).
        p_window_s: (start, end) of the P-wave window before the R peak.
        t_window_s: (start, end) of the T-wave window after the R peak.
        p_threshold: minimum P amplitude relative to R to report a P
            wave (PVC beats have none).
    """

    qrs_scale_s: float = 0.028
    wave_scale_s: float = 0.09
    qrs_search_s: float = 0.10
    boundary_fraction: float = 0.10
    boundary_run: int = 3
    p_window_s: tuple[float, float] = (0.30, 0.10)
    t_window_s: tuple[float, float] = (0.12, 0.42)
    p_threshold: float = 0.06


@dataclass(frozen=True)
class DelineatedBeat:
    """Fiducial points of one beat (sample indices; ``None`` = absent).

    Attributes:
        r_peak: R-peak position.
        qrs_onset: start of the QRS complex.
        qrs_offset: end of the QRS complex.
        p_peak: P-wave apex, or None when undetectable.
        t_peak: T-wave apex, or None when undetectable.
    """

    r_peak: int
    qrs_onset: int
    qrs_offset: int
    p_peak: int | None
    t_peak: int | None


def combine_leads(leads: list[np.ndarray]) -> np.ndarray:
    """Aggregate conditioned leads into one analysis stream.

    Root-sum-of-squares emphasises complexes present in any lead and is
    the usual multi-lead aggregation for delineation ([10]).
    """
    if not leads:
        raise ValueError("need at least one lead")
    acc = np.zeros(len(leads[0]), dtype=np.float64)
    for lead in leads:
        samples = np.asarray(lead, dtype=np.float64)
        acc += samples * samples
    return np.sqrt(acc / len(leads)).astype(np.int32)


def mmd_transform(signal: np.ndarray, size: int) -> np.ndarray:
    """Morphological derivative at one scale (corner detector)."""
    samples = np.asarray(signal, dtype=np.int64)
    return (dilate(signal, size).astype(np.int64)
            + erode(signal, size).astype(np.int64)
            - 2 * samples)


class MmdDelineator:
    """Multi-lead MMD delineator (the 3L-MMD analysis chain).

    Args:
        fs: sampling frequency in Hz.
        params: scales and windows.
    """

    def __init__(self, fs: float, params: MmdParams | None = None) -> None:
        self.fs = fs
        self.params = params or MmdParams()
        self.qrs_scale = _make_odd(
            max(3, int(round(self.params.qrs_scale_s * fs))))
        self.wave_scale = _make_odd(
            max(5, int(round(self.params.wave_scale_s * fs))))

    def delineate(self, combined: np.ndarray,
                  r_peaks: list[int] | None = None) -> list[DelineatedBeat]:
        """Locate the fiducial points of every beat in the stream.

        Args:
            combined: aggregated conditioned stream
                (see :func:`combine_leads`).
            r_peaks: optional precomputed R positions; detected when
                omitted.
        """
        p = self.params
        fs = self.fs
        if r_peaks is None:
            r_peaks = detect_r_peaks(combined, fs)
        corners_qrs = mmd_transform(combined, self.qrs_scale)
        amplitude = float(np.percentile(np.abs(combined), 99.5)) or 1.0
        search = int(p.qrs_search_s * fs)
        beats: list[DelineatedBeat] = []
        for peak in r_peaks:
            onset = self._boundary(corners_qrs, peak, -1, search)
            offset = self._boundary(corners_qrs, peak, +1, search)
            p_peak = self._wave_apex(
                combined, peak - int(p.p_window_s[0] * fs),
                peak - int(p.p_window_s[1] * fs),
                amplitude * p.p_threshold)
            t_peak = self._wave_apex(
                combined, peak + int(p.t_window_s[0] * fs),
                peak + int(p.t_window_s[1] * fs), 0.0)
            beats.append(DelineatedBeat(
                r_peak=peak, qrs_onset=onset, qrs_offset=offset,
                p_peak=p_peak, t_peak=t_peak))
        return beats

    def _boundary(self, corners: np.ndarray, peak: int, direction: int,
                  search: int) -> int:
        """Walk outward from the R peak until the MMD response dies out.

        The QRS complex bends strongly, so |MMD| stays high inside it;
        the onset/offset is the first sustained return to the
        isoelectric level (below ``boundary_fraction`` of the
        complex's maximum response).
        """
        p = self.params
        n = len(corners)
        lo = max(0, peak - self.qrs_scale)
        hi = min(n, peak + self.qrs_scale + 1)
        reference = float(np.abs(corners[lo:hi]).max()) or 1.0
        threshold = p.boundary_fraction * reference
        limit = peak + direction * search
        limit = max(0, min(n - 1, limit))
        run = 0
        index = peak
        while index != limit:
            index += direction
            if abs(int(corners[index])) < threshold:
                run += 1
                if run >= p.boundary_run:
                    return index - direction * (p.boundary_run - 1)
            else:
                run = 0
        return limit

    def _wave_apex(self, signal: np.ndarray, lo: int, hi: int,
                   min_amplitude: float) -> int | None:
        """Apex of a smooth wave in ``[lo, hi)``, if prominent enough."""
        lo = max(0, lo)
        hi = min(len(signal), hi)
        if hi <= lo:
            return None
        window = np.abs(np.asarray(signal[lo:hi], dtype=np.int64))
        apex = int(np.argmax(window))
        if window[apex] < min_amplitude:
            return None
        return lo + apex


def delineation_sensitivity(beats: list[DelineatedBeat],
                            truth_peaks: list[int], fs: float,
                            tolerance_s: float = 0.08) -> float:
    """Fraction of ground-truth beats with a matching delineation."""
    if not truth_peaks:
        return 1.0
    tolerance = int(tolerance_s * fs)
    found = 0
    detected = [beat.r_peak for beat in beats]
    for peak in truth_peaks:
        if any(abs(candidate - peak) <= tolerance
               for candidate in detected):
            found += 1
    return found / len(truth_peaks)
