"""Benchmark DSP (systems S15-S17): the paper's three applications.

* :mod:`repro.dsp.morphology` — ECG conditioning by morphological
  filtering (3L-MF, after Sun et al. [21]);
* :mod:`repro.dsp.mmd` — multi-scale morphological-derivative
  delineation (3L-MMD, after Rincon et al. [10]);
* :mod:`repro.dsp.beatdet` + :mod:`repro.dsp.rp` — R-peak detection and
  random-projection heartbeat classification (RP-CLASS, after Braojos
  et al. [22]).
"""

from .beatdet import BeatDetectorParams, detect_r_peaks, detection_f1
from .mmd import (
    DelineatedBeat,
    MmdDelineator,
    MmdParams,
    combine_leads,
    delineation_sensitivity,
    mmd_transform,
)
from .morphology import (
    MfParams,
    MorphologicalFilter,
    closing,
    dilate,
    erode,
    opening,
    qrs_preserving_error,
)
from .rp import RandomProjectionClassifier, RpParams, classification_accuracy
from .streaming import StreamingMorphologicalFilter

__all__ = [
    "StreamingMorphologicalFilter",
    "BeatDetectorParams",
    "DelineatedBeat",
    "MfParams",
    "MmdDelineator",
    "MmdParams",
    "MorphologicalFilter",
    "RandomProjectionClassifier",
    "RpParams",
    "classification_accuracy",
    "closing",
    "combine_leads",
    "delineation_sensitivity",
    "detect_r_peaks",
    "detection_f1",
    "dilate",
    "erode",
    "mmd_transform",
    "opening",
    "qrs_preserving_error",
]
