"""Random-projection heartbeat classification (the RP-CLASS front end).

Implements the method of Braojos et al., "A Methodology for Embedded
Classification of Heartbeats Using Random Projections" (DATE 2013,
[22]): a window around each detected R peak is normalised, projected
onto a low-dimensional space with a fixed ±1 random matrix, and
classified by nearest-neighbour search against stored projected
prototypes.  Random projection preserves pairwise distances
(Johnson-Lindenstrauss), so the cheap low-dimensional NN search
approximates the full-window comparison at a fraction of the memory
and compute — ideal for a 16-bit sensor node.

The stored prototype database is what makes the paper's RP-CLASS
single-core configuration occupy 11 data-memory banks (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..signals.records import BeatLabel


@dataclass(frozen=True)
class RpParams:
    """Classifier geometry.

    Attributes:
        window_pre_s: window span before the R peak, seconds.
        window_post_s: window span after the R peak, seconds.
        projected_dims: dimensionality after random projection.
        max_prototypes_per_class: stored prototype budget per class.
        seed: seed of the fixed ±1 projection matrix.
    """

    window_pre_s: float = 0.20
    window_post_s: float = 0.36
    projected_dims: int = 16
    max_prototypes_per_class: int = 64
    seed: int = 13


class RandomProjectionClassifier:
    """±1 random projection + nearest-neighbour beat classifier.

    Args:
        fs: sampling frequency in Hz.
        params: classifier geometry.
    """

    def __init__(self, fs: float, params: RpParams | None = None) -> None:
        self.fs = fs
        self.params = params or RpParams()
        self.pre = int(round(self.params.window_pre_s * fs))
        self.post = int(round(self.params.window_post_s * fs))
        self.window_len = self.pre + self.post
        rng = np.random.default_rng(self.params.seed)
        self.projection = rng.choice(
            (-1, 1),
            size=(self.params.projected_dims, self.window_len)
        ).astype(np.int32)
        self._prototypes: np.ndarray | None = None
        self._labels: list[BeatLabel] = []

    # ------------------------------------------------------------------
    # Window handling
    # ------------------------------------------------------------------

    def extract_window(self, lead: np.ndarray, peak: int
                       ) -> np.ndarray | None:
        """Cut and normalise the beat window around ``peak``.

        Returns ``None`` when the window falls outside the record.
        """
        lo = peak - self.pre
        hi = peak + self.post
        if lo < 0 or hi > len(lead):
            return None
        window = np.asarray(lead[lo:hi], dtype=np.float64)
        window = window - window.mean()
        scale = np.max(np.abs(window))
        if scale > 0:
            window = window / scale
        return window

    def project(self, window: np.ndarray) -> np.ndarray:
        """Random-project a normalised window."""
        if len(window) != self.window_len:
            raise ValueError(
                f"window length {len(window)} != {self.window_len}")
        return self.projection @ window

    # ------------------------------------------------------------------
    # Training and inference
    # ------------------------------------------------------------------

    def fit(self, lead: np.ndarray, peaks: list[int],
            labels: list[BeatLabel]) -> int:
        """Build the projected prototype database from labelled beats.

        Returns the number of prototypes stored.  Each class keeps at
        most ``max_prototypes_per_class`` evenly spread examples
        (the DATE-2013 flow condenses the training set so it fits the
        node's data memory).
        """
        if len(peaks) != len(labels):
            raise ValueError("peaks and labels must align")
        by_class: dict[BeatLabel, list[np.ndarray]] = {}
        for peak, label in zip(peaks, labels):
            window = self.extract_window(lead, peak)
            if window is None:
                continue
            by_class.setdefault(label, []).append(self.project(window))
        prototypes: list[np.ndarray] = []
        self._labels = []
        budget = self.params.max_prototypes_per_class
        for label, projected in by_class.items():
            if len(projected) > budget:
                chosen = np.linspace(0, len(projected) - 1, budget)
                projected = [projected[int(i)] for i in chosen]
            prototypes.extend(projected)
            self._labels.extend([label] * len(projected))
        if not prototypes:
            raise ValueError("no usable training beats")
        self._prototypes = np.stack(prototypes)
        return len(prototypes)

    @property
    def prototype_count(self) -> int:
        """Stored prototypes (0 before :meth:`fit`)."""
        return 0 if self._prototypes is None else len(self._prototypes)

    def classify_window(self, window: np.ndarray) -> BeatLabel:
        """Classify one normalised beat window (1-NN in RP space)."""
        if self._prototypes is None:
            raise RuntimeError("classifier not fitted")
        projected = self.project(window)
        distances = np.sum((self._prototypes - projected) ** 2, axis=1)
        return self._labels[int(np.argmin(distances))]

    def classify_beat(self, lead: np.ndarray, peak: int
                      ) -> BeatLabel | None:
        """Classify the beat at ``peak``; None if the window is cut off."""
        window = self.extract_window(lead, peak)
        if window is None:
            return None
        return self.classify_window(window)

    def dm_words(self) -> int:
        """Data-memory footprint of the model in 16-bit words.

        Projection matrix (±1, packed one sign per word here for
        simplicity) plus the prototype database.
        """
        matrix = self.projection.size
        prototypes = self.prototype_count * self.params.projected_dims
        return matrix + prototypes


def classification_accuracy(predicted: list[BeatLabel],
                            truth: list[BeatLabel]) -> float:
    """Fraction of beats with the correct label."""
    if len(predicted) != len(truth):
        raise ValueError("length mismatch")
    if not truth:
        return 1.0
    correct = sum(1 for a, b in zip(predicted, truth) if a is b)
    return correct / len(truth)
