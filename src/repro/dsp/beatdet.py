"""Streaming R-peak detection on a conditioned lead.

Front half of the RP-CLASS benchmark: before a heartbeat can be
classified, its R peak must be located.  The detector is a classic
embedded design — absolute-amplitude adaptive threshold with a
refractory period — cheap enough for a 16-bit core and robust on
conditioned (baseline-free) leads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BeatDetectorParams:
    """Tuning of the adaptive-threshold detector.

    Attributes:
        refractory_s: minimum distance between detections (physiologic
            refractory period, ~200 ms).
        threshold_fraction: detection threshold as a fraction of the
            running peak estimate.
        decay_per_s: per-second decay of the running peak estimate, so
            the detector recovers from one oversized beat.
        warmup_s: initial span used to seed the peak estimate.
    """

    refractory_s: float = 0.30
    threshold_fraction: float = 0.60
    decay_per_s: float = 0.08
    warmup_s: float = 2.0


def detect_r_peaks(lead: np.ndarray, fs: float,
                   params: BeatDetectorParams | None = None) -> list[int]:
    """Locate R peaks in a conditioned lead.

    Returns ascending sample indices of detected peaks.
    """
    p = params or BeatDetectorParams()
    samples = np.abs(np.asarray(lead, dtype=np.int64))
    if len(samples) == 0:
        return []
    refractory = max(1, int(p.refractory_s * fs))
    warmup = min(len(samples), max(1, int(p.warmup_s * fs)))
    peak_estimate = float(np.percentile(samples[:warmup], 99.5))
    if peak_estimate <= 0:
        peak_estimate = float(samples.max()) or 1.0
    decay = p.decay_per_s / fs

    peaks: list[int] = []
    index = 1
    last_peak = -refractory
    n = len(samples)
    while index < n - 1:
        threshold = p.threshold_fraction * peak_estimate
        value = samples[index]
        if (value >= threshold and index - last_peak >= refractory
                and value >= samples[index - 1]
                and value >= samples[index + 1]):
            # Refine to the true local maximum inside the refractory span.
            hi = min(n, index + refractory // 2)
            local = index + int(np.argmax(samples[index:hi]))
            peaks.append(local)
            last_peak = local
            # Track the peak amplitude: fast when it grows, slowly when
            # it shrinks, so a T-wave misfire cannot drag the threshold
            # down into P/T territory.
            if samples[local] >= peak_estimate:
                peak_estimate = 0.5 * peak_estimate + 0.5 * samples[local]
            else:
                peak_estimate = 0.95 * peak_estimate \
                    + 0.05 * samples[local]
            index = local + 1
        else:
            peak_estimate = max(1.0, peak_estimate * (1.0 - decay))
            index += 1
    return peaks


def detection_f1(detected: list[int], truth: list[int], fs: float,
                 tolerance_s: float = 0.08) -> float:
    """F1 score of detections against ground-truth annotations."""
    if not truth:
        return 1.0 if not detected else 0.0
    tolerance = int(tolerance_s * fs)
    truth_left = list(truth)
    true_positive = 0
    for peak in detected:
        best = None
        for candidate in truth_left:
            if abs(candidate - peak) <= tolerance:
                if best is None or abs(candidate - peak) < abs(best - peak):
                    best = candidate
        if best is not None:
            true_positive += 1
            truth_left.remove(best)
    precision = true_positive / len(detected) if detected else 0.0
    recall = true_positive / len(truth)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)
